// Epoll network front-end: thousands of concurrent TCP / Unix-domain
// connections multiplexed onto one serve::Engine.
//
// Architecture — one IO thread, an optional worker pool:
//
//   * The IO thread (the caller of run()) owns the epoll set, accepts,
//     reads, frames request lines (net/framing.h — shared max-line guard
//     with the pipe/batch front-ends), and writes responses. Per
//     connection it keeps a LineFramer, an ordered slot queue of
//     requests awaiting answers, and an output block queue written with
//     vectored sendmsg (partial writes and EINTR/EAGAIN handled; blocks
//     amortize hundreds of small responses per syscall).
//   * Workers (`workers` threads) pull requests from a bounded global
//     in-flight queue and answer them via Engine::handle_line_to into
//     the slot's own response buffer — the PR 7 zero-copy path. When the
//     queue is full the request is *shed* instead of queued: the client
//     gets an explicit ok:false "server overloaded" response in-order,
//     and net_shed counts it. With `workers == 0` requests execute
//     inline on the IO thread (no queue, no shedding — backpressure is
//     purely the read watermark + TCP); this is the fastest shape on a
//     single-core host and mirrors the classic single-threaded
//     event-loop servers.
//
// Pipelining: clients may send any number of requests without waiting;
// responses always come back in request order per connection (slots
// complete out of order across workers, but are flushed strictly FIFO).
//
// Overload & abuse guards: bounded in-flight queue (shed), per-connection
// read high-watermark (reads pause while the untransmitted output
// backlog is large), shared max request-line length (oversized lines are
// answered with the serve::oversize_line_error document and the
// connection resyncs at the next newline), max connection count (excess
// accepts are closed immediately), idle timeout.
//
// Graceful drain: begin_drain() (or SIGTERM via
// install_signal_drain/uninstall_signal_drain) stops accepting — the
// listeners close, so new connects are refused — finishes every request
// already received, flushes all responses, closes the connections, and
// run() returns. A second drain request forces immediate shutdown.
//
// Responses are byte-identical to the pipe and batch front-ends for the
// same request stream: framing rules are shared, and the engine is a
// pure function of the canonical request.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>

#include "core/thread_annotations.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/limits.h"

namespace hpcarbon::net {

struct ServerOptions {
  /// Engine configuration (cache geometry, trace store). The server
  /// installs its own FrontEndStats into `serve.frontend`.
  serve::ServeOptions serve;

  /// TCP listen address "host:port" (port 0 = ephemeral; see
  /// Server::tcp_endpoint). Empty = no TCP listener.
  std::string tcp;
  /// Unix-domain socket path (unlinked on drain). Empty = no UDS
  /// listener. TCP and UDS listeners can be active simultaneously.
  std::string unix_path;

  /// Worker threads answering requests. 0 = answer inline on the IO
  /// thread (fastest on one core; an expensive cold query blocks the
  /// loop, and no shedding occurs). Default: hardware threads - 1.
  std::size_t workers = default_workers();
  /// Bounded global in-flight queue (queued + executing). A request that
  /// would exceed it is shed with an explicit error response. Ignored
  /// when workers == 0.
  std::size_t max_inflight = 4096;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_conns = 10000;
  /// Seconds with no activity and no pending work before a connection is
  /// closed. <= 0 disables the sweep.
  double idle_timeout_s = 300.0;
  /// Pause reading a connection while its untransmitted output exceeds
  /// this many bytes; resume below half.
  std::size_t read_high_watermark = std::size_t{4} << 20;
  /// Shared request-line limit (serve/limits.h).
  std::size_t max_line_bytes = serve::kMaxRequestLineBytes;

  static std::size_t default_workers() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0;
  }
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on the configured endpoints and create the event
  /// loop plumbing. Throws hpcarbon::Error on any failure. Must be
  /// called (once) before run().
  void start();

  /// The actual "ip:port" of the TCP listener (resolves port 0). Valid
  /// after start(); empty when no TCP listener is configured.
  const std::string& tcp_endpoint() const { return tcp_endpoint_; }

  /// Run the event loop on the calling thread until drained. Spawns the
  /// worker pool on entry and joins it before returning.
  void run();

  /// Request graceful drain: stop accepting, answer everything already
  /// received, flush, close, return from run(). Callable from any
  /// thread; also callable from a signal handler (atomics + write(2)
  /// only). A second call forces immediate shutdown.
  void begin_drain();

  /// Transport counters ({"op":"stats"} reports these as net_*).
  const serve::FrontEndStats& stats() const { return fe_stats_; }
  serve::Engine& engine() { return engine_; }
  const ServerOptions& options() const { return opts_; }

 private:
  struct Slot {
    std::string line;      // owned request bytes (worker input)
    std::string response;  // filled by the worker, trailing '\n' included
    std::atomic<bool> done{false};
  };

  struct Conn;
  struct Task {
    std::shared_ptr<Conn> conn;
    Slot* slot = nullptr;
  };

  // IO-thread internals (no locks: single-threaded by construction).
  void accept_ready(int listen_fd);
  void conn_event(const std::shared_ptr<Conn>& c, std::uint32_t events);
  void read_ready(const std::shared_ptr<Conn>& c);
  void process_framed(const std::shared_ptr<Conn>& c, bool at_eof);
  void enqueue_line(const std::shared_ptr<Conn>& c, std::string_view line);
  void enqueue_preanswered(const std::shared_ptr<Conn>& c,
                           std::string_view response_line);
  void drain_ready_slots(const std::shared_ptr<Conn>& c);
  void flush(const std::shared_ptr<Conn>& c);
  void update_interest(const std::shared_ptr<Conn>& c);
  void close_conn(const std::shared_ptr<Conn>& c);
  void maybe_finish_conn(const std::shared_ptr<Conn>& c);
  void close_listeners();
  void pause_accept(bool paused);
  void sweep_idle();
  void drain_completions();
  std::string& out_block(Conn& c);

  // Worker pool.
  void worker_loop();
  bool try_submit(std::shared_ptr<Conn> c, Slot* slot)
      HPCARBON_EXCLUDES(task_mu_);
  void post_completion(std::shared_ptr<Conn> c) HPCARBON_EXCLUDES(done_mu_);
  void wake();

  ServerOptions opts_;
  serve::FrontEndStats fe_stats_;
  // Transport instruments beyond the stats-op net_* set, registered in
  // the same registry as fe_stats_ (serve.registry or the global one):
  // connection churn, live queue depth, and per-connection lifetime.
  obs::Counter& connections_closed_;
  obs::Gauge& queue_depth_;
  obs::Histogram& conn_lifetime_us_;
  serve::Engine engine_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: worker completions + drain requests
  int tcp_listen_fd_ = -1;
  int unix_listen_fd_ = -1;
  std::string tcp_endpoint_;
  bool started_ = false;

  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  // IO thread only
  bool draining_ = false;                                 // IO thread only
  std::uint32_t conn_gen_ = 0;       // guards against same-batch fd reuse
  std::uint64_t now_ms_ = 0;         // steady clock, refreshed per wakeup
  std::uint64_t last_sweep_ms_ = 0;  // idle-sweep cadence
  bool accept_paused_ = false;       // EMFILE backoff
  std::uint64_t accept_resume_ms_ = 0;

  std::atomic<std::uint32_t> drain_requests_{0};

  AnnotatedMutex task_mu_;
  std::condition_variable_any task_cv_;
  std::deque<Task> task_queue_ HPCARBON_GUARDED_BY(task_mu_);
  std::size_t executing_ HPCARBON_GUARDED_BY(task_mu_) = 0;
  std::uint64_t max_inflight_seen_ HPCARBON_GUARDED_BY(task_mu_) = 0;
  bool workers_stop_ HPCARBON_GUARDED_BY(task_mu_) = false;

  AnnotatedMutex done_mu_;
  std::vector<std::shared_ptr<Conn>> done_ HPCARBON_GUARDED_BY(done_mu_);

  std::vector<std::thread> workers_;
};

/// Route SIGTERM/SIGINT to server.begin_drain() (handler does atomics +
/// an eventfd write only). One server at a time; uninstall restores the
/// previous dispositions.
void install_signal_drain(Server& server);
void uninstall_signal_drain();

}  // namespace hpcarbon::net
