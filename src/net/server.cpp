#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "core/error.h"
#include "net/framing.h"
#include "net/listener.h"

namespace hpcarbon::net {

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// epoll user data: low 32 bits fd, high 32 bits connection generation.
// The generation guard matters within one epoll_wait batch: closing a
// connection and accepting a new one can recycle the fd number before the
// old fd's queued events are processed, and those stale events must not
// touch the new connection.
std::uint64_t epoll_key(int fd, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         static_cast<std::uint32_t>(fd);
}

// Responses are ~100-200 bytes; batching them into shared blocks turns a
// syscall per response into a vectored write per tens-of-KB.
constexpr std::size_t kOutBlockTarget = std::size_t{32} << 10;
constexpr int kMaxIov = 16;

obs::MetricsRegistry& registry_of(const ServerOptions& opts) {
  return opts.serve.registry != nullptr ? *opts.serve.registry
                                        : obs::MetricsRegistry::global();
}

}  // namespace

struct Server::Conn {
  explicit Conn(std::size_t max_line_bytes) : framer(max_line_bytes) {}

  int fd = -1;
  std::uint32_t gen = 0;
  LineFramer framer;
  // Requests awaiting answers, in arrival order. Workers fill
  // slot.response then flip slot.done; only the IO thread pushes/pops,
  // and std::deque never relocates other elements, so a worker's Slot*
  // stays valid until its slot is popped (which requires done == true).
  std::deque<Slot> slots;
  // Untransmitted response bytes, as a queue of append-only blocks;
  // front_off is the partial-write offset into the front block.
  std::deque<std::string> outq;
  std::size_t front_off = 0;
  std::size_t out_bytes = 0;
  std::uint64_t last_activity_ms = 0;
  std::uint64_t opened_at_ticks = 0;  // obs::ticks() at accept
  std::uint32_t interest = 0;  // current epoll event mask
  bool got_eof = false;
  bool paused = false;  // read high-watermark backpressure
  bool closed = false;
};

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      fe_stats_(registry_of(opts_)),
      connections_closed_(registry_of(opts_).counter(
          "hpcarbon_net_connections_closed_total", "", "Connections closed.")),
      queue_depth_(registry_of(opts_).gauge(
          "hpcarbon_net_queue_depth", "",
          "Requests queued or executing on the worker pool.")),
      conn_lifetime_us_(registry_of(opts_).histogram(
          "hpcarbon_net_conn_lifetime_us", "",
          "Connection lifetime, accept to close (overflow bucket past "
          "100 s).")),
      engine_((opts_.serve.frontend = &fe_stats_, opts_.serve)) {}

Server::~Server() {
  close_listeners();
  for (auto& [fd, c] : conns_) {
    if (!c->closed) {
      c->closed = true;
      ::close(c->fd);
    }
  }
  conns_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Server::start() {
  HPC_REQUIRE(!started_, "net: Server::start called twice");
  HPC_REQUIRE(!opts_.tcp.empty() || !opts_.unix_path.empty(),
              "net: no listen endpoint configured (need tcp and/or unix)");
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw Error("net: epoll_create1 failed");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw Error("net: eventfd failed");

  auto add = [&](int fd) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = epoll_key(fd, 0);
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw Error("net: epoll_ctl(ADD) failed");
    }
  };
  add(wake_fd_);
  if (!opts_.tcp.empty()) {
    tcp_listen_fd_ = listen_tcp(opts_.tcp);
    tcp_endpoint_ = bound_endpoint(tcp_listen_fd_);
    add(tcp_listen_fd_);
  }
  if (!opts_.unix_path.empty()) {
    unix_listen_fd_ = listen_unix(opts_.unix_path);
    add(unix_listen_fd_);
  }
  started_ = true;
}

void Server::begin_drain() {
  // Async-signal-safe: one atomic increment plus an eventfd write.
  drain_requests_.fetch_add(1, std::memory_order_acq_rel);
  wake();
}

void Server::wake() {
  const std::uint64_t one = 1;
  while (::write(wake_fd_, &one, sizeof(one)) < 0 && errno == EINTR) {
  }
  // EAGAIN means the counter is already huge — the loop is awake anyway.
}

void Server::close_listeners() {
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  if (unix_listen_fd_ >= 0) {
    ::close(unix_listen_fd_);
    unix_listen_fd_ = -1;
    ::unlink(opts_.unix_path.c_str());
  }
}

void Server::pause_accept(bool paused) {
  for (const int fd : {tcp_listen_fd_, unix_listen_fd_}) {
    if (fd < 0) continue;
    epoll_event ev{};
    ev.events = paused ? 0 : static_cast<std::uint32_t>(EPOLLIN);
    ev.data.u64 = epoll_key(fd, 0);
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
  accept_paused_ = paused;
}

void Server::accept_ready(int listen_fd) {
  while (true) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // EMFILE/ENFILE and friends: stop watching the listeners briefly,
      // otherwise level-triggered epoll spins on the un-acceptable
      // connection at 100% CPU.
      accept_resume_ms_ = now_ms_ + 100;
      pause_accept(true);
      return;
    }
    if (conns_.size() >= opts_.max_conns) {
      ::close(fd);  // explicit refusal: the client sees EOF immediately
      continue;
    }
    const int one = 1;
    // No-op (harmless failure) on Unix-domain sockets.
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto c = std::make_shared<Conn>(opts_.max_line_bytes);
    c->fd = fd;
    c->gen = ++conn_gen_;
    c->last_activity_ms = now_ms_;
    c->opened_at_ticks = obs::ticks();
    c->interest = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = epoll_key(fd, c->gen);
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(c));
    fe_stats_.connections_accepted.inc();
    fe_stats_.connections_active.add(1);
  }
}

void Server::close_conn(const std::shared_ptr<Conn>& c) {
  if (c->closed) return;
  c->closed = true;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  fe_stats_.connections_active.sub(1);
  connections_closed_.inc();
  conn_lifetime_us_.record_ns(
      obs::elapsed_ns(c->opened_at_ticks, obs::ticks()));
  conns_.erase(c->fd);  // `c` is the caller's own shared_ptr; still valid
}

void Server::maybe_finish_conn(const std::shared_ptr<Conn>& c) {
  if (c->closed) return;
  // Finished = no more input will arrive (peer EOF or server drain) and
  // every received request has been answered and transmitted.
  if ((c->got_eof || draining_) && c->slots.empty() && c->out_bytes == 0) {
    close_conn(c);
  }
}

void Server::update_interest(const std::shared_ptr<Conn>& c) {
  if (c->closed) return;
  std::uint32_t want = 0;
  if (!c->got_eof && !c->paused && !draining_) want |= EPOLLIN;
  if (c->out_bytes > 0) want |= EPOLLOUT;
  if (want == c->interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = epoll_key(c->fd, c->gen);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev) < 0) {
    close_conn(c);
    return;
  }
  c->interest = want;
}

std::string& Server::out_block(Conn& c) {
  if (c.outq.empty() || c.outq.back().size() >= kOutBlockTarget) {
    c.outq.emplace_back();
  }
  return c.outq.back();
}

void Server::enqueue_line(const std::shared_ptr<Conn>& c,
                          std::string_view line) {
  if (opts_.workers == 0) {
    // Inline mode: answer on the IO thread, straight into the output
    // block — the same zero-copy handle_line_to path the pipe loop uses.
    fe_stats_.max_inflight.observe_max(1);
    std::string& block = out_block(*c);
    const std::size_t before = block.size();
    engine_.handle_line_to(line, block);
    block += '\n';
    c->out_bytes += block.size() - before;
    return;
  }
  Slot& slot = c->slots.emplace_back();
  slot.line.assign(line);
  if (!try_submit(c, &slot)) {
    // Shed: answer in-order with an explicit error instead of queueing.
    fe_stats_.requests_shed.inc();
    serve::append_error_response(
        slot.response, {},
        "server overloaded: in-flight queue full (max " +
            std::to_string(opts_.max_inflight) + "), request shed");
    slot.response += '\n';
    // Same-thread consumer (drain_ready_slots) — relaxed is enough.
    slot.done.store(true, std::memory_order_relaxed);
  }
}

void Server::enqueue_preanswered(const std::shared_ptr<Conn>& c,
                                 std::string_view response_line) {
  if (c->slots.empty()) {
    std::string& block = out_block(*c);
    block.append(response_line);
    c->out_bytes += response_line.size();
    return;
  }
  // Earlier requests are still in flight: queue behind them so responses
  // stay in request order.
  Slot& slot = c->slots.emplace_back();
  slot.response.assign(response_line);
  slot.done.store(true, std::memory_order_relaxed);
}

void Server::process_framed(const std::shared_ptr<Conn>& c, bool at_eof) {
  while (true) {
    LineFramer::Item item = c->framer.next();
    if (item.kind == LineFramer::Item::Kind::kNone) {
      if (!at_eof) break;
      item = c->framer.finish();  // trailing unterminated line, if any
      at_eof = false;
      if (item.kind == LineFramer::Item::Kind::kNone) break;
    }
    if (item.kind == LineFramer::Item::Kind::kOversize) {
      std::string resp;
      serve::append_error_response(
          resp, {}, serve::oversize_line_error(item.oversize_bytes));
      resp += '\n';
      enqueue_preanswered(c, resp);
    } else {
      enqueue_line(c, item.line);
    }
  }
}

void Server::read_ready(const std::shared_ptr<Conn>& c) {
  char chunk[65536];
  // Cap the reads per event so one firehose connection cannot starve the
  // rest of the loop; level-triggered epoll re-delivers what is left.
  for (int i = 0; i < 8 && !c->closed && !c->paused; ++i) {
    const ssize_t n = ::recv(c->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      fe_stats_.bytes_in.inc(static_cast<std::uint64_t>(n));
      c->last_activity_ms = now_ms_;
      c->framer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
      process_framed(c, /*at_eof=*/false);
      if (c->out_bytes > opts_.read_high_watermark) c->paused = true;
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;  // drained
      continue;
    }
    if (n == 0) {
      // Peer EOF (possibly a half-close: keep flushing responses).
      c->got_eof = true;
      process_framed(c, /*at_eof=*/true);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(c);  // ECONNRESET and friends
    return;
  }
  if (c->closed) return;
  drain_ready_slots(c);
  flush(c);
  if (c->closed) return;
  update_interest(c);
  maybe_finish_conn(c);
}

void Server::drain_ready_slots(const std::shared_ptr<Conn>& c) {
  while (!c->slots.empty() &&
         c->slots.front().done.load(std::memory_order_acquire)) {
    std::string& resp = c->slots.front().response;
    const std::size_t bytes = resp.size();
    if (c->outq.empty() || c->outq.back().size() >= kOutBlockTarget) {
      c->outq.push_back(std::move(resp));  // adopt the buffer, no copy
    } else {
      c->outq.back().append(resp);
    }
    c->out_bytes += bytes;
    c->slots.pop_front();
  }
}

void Server::flush(const std::shared_ptr<Conn>& c) {
  while (c->out_bytes > 0 && !c->closed) {
    iovec iov[kMaxIov];
    int iovcnt = 0;
    std::size_t off = c->front_off;
    for (const std::string& block : c->outq) {
      if (iovcnt == kMaxIov) break;
      iov[iovcnt].iov_base = const_cast<char*>(block.data()) + off;
      iov[iovcnt].iov_len = block.size() - off;
      ++iovcnt;
      off = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(c->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // EPOLLOUT rearms
      close_conn(c);  // EPIPE/ECONNRESET: peer is gone
      return;
    }
    fe_stats_.bytes_out.inc(static_cast<std::uint64_t>(n));
    c->last_activity_ms = now_ms_;
    c->out_bytes -= static_cast<std::size_t>(n);
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      const std::size_t avail = c->outq.front().size() - c->front_off;
      if (left >= avail) {
        left -= avail;
        c->outq.pop_front();
        c->front_off = 0;
      } else {
        c->front_off += left;
        left = 0;
      }
    }
  }
  if (!c->closed && c->paused &&
      c->out_bytes < opts_.read_high_watermark / 2) {
    c->paused = false;  // update_interest re-arms EPOLLIN
  }
}

void Server::conn_event(const std::shared_ptr<Conn>& c, std::uint32_t events) {
  if (c->closed) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 && (events & EPOLLIN) == 0) {
    close_conn(c);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    flush(c);
    if (c->closed) return;
  }
  if ((events & EPOLLIN) != 0) {
    read_ready(c);  // flushes + updates interest itself
  } else {
    update_interest(c);
    maybe_finish_conn(c);
  }
}

void Server::sweep_idle() {
  if (opts_.idle_timeout_s <= 0) return;
  const auto limit_ms =
      static_cast<std::uint64_t>(opts_.idle_timeout_s * 1000.0);
  std::vector<std::shared_ptr<Conn>> victims;
  for (const auto& [fd, c] : conns_) {
    if (!c->slots.empty() || c->out_bytes > 0) continue;  // busy, not idle
    if (now_ms_ - c->last_activity_ms >= limit_ms) victims.push_back(c);
  }
  for (const auto& c : victims) close_conn(c);
}

void Server::drain_completions() {
  std::vector<std::shared_ptr<Conn>> done;
  {
    MutexLock lock(done_mu_);
    done.swap(done_);
  }
  for (const auto& c : done) {
    if (c->closed) continue;
    drain_ready_slots(c);
    flush(c);
    if (c->closed) continue;
    update_interest(c);
    maybe_finish_conn(c);
  }
}

void Server::run() {
  HPC_REQUIRE(started_, "net: Server::run before start");
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }

  // Epoll timeout doubles as the idle-sweep tick: fine-grained enough to
  // honor sub-second timeouts (tests), 1s when timeouts are long/off.
  int tick_ms = 1000;
  if (opts_.idle_timeout_s > 0) {
    const auto quarter =
        static_cast<int>(opts_.idle_timeout_s * 1000.0 / 4.0);
    tick_ms = quarter < 10 ? 10 : (quarter > 1000 ? 1000 : quarter);
  }

  std::vector<epoll_event> events(256);
  std::uint32_t drain_seen = 0;
  now_ms_ = steady_ms();
  while (true) {
    const std::uint32_t dr = drain_requests_.load(std::memory_order_acquire);
    if (dr > drain_seen) {
      drain_seen = dr;
      if (!draining_) {
        draining_ = true;
        close_listeners();
        // Stop reading everywhere; answer what was already received.
        std::vector<std::shared_ptr<Conn>> all;
        all.reserve(conns_.size());
        for (const auto& [fd, c] : conns_) all.push_back(c);
        for (const auto& c : all) {
          drain_ready_slots(c);
          flush(c);
          if (c->closed) continue;
          update_interest(c);
          maybe_finish_conn(c);
        }
      } else {
        // Second drain request: force shutdown, abandon pending work.
        {
          MutexLock lock(task_mu_);
          task_queue_.clear();
        }
        std::vector<std::shared_ptr<Conn>> all;
        all.reserve(conns_.size());
        for (const auto& [fd, c] : conns_) all.push_back(c);
        for (const auto& c : all) close_conn(c);
      }
    }
    if (draining_ && conns_.empty()) break;

    const int n =
        epoll_wait(epoll_fd_, events.data(),
                   static_cast<int>(events.size()), tick_ms);
    now_ms_ = steady_ms();
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("net: epoll_wait: ") + std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t key = events[i].data.u64;
      const int fd = static_cast<int>(key & 0xffffffffu);
      const auto gen = static_cast<std::uint32_t>(key >> 32);
      if (fd == wake_fd_) {
        std::uint64_t counter = 0;
        while (::read(wake_fd_, &counter, sizeof(counter)) < 0 &&
               errno == EINTR) {
        }
        drain_completions();
        continue;
      }
      if (fd == tcp_listen_fd_ || fd == unix_listen_fd_) {
        accept_ready(fd);
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end() || it->second->gen != gen) continue;  // stale
      const std::shared_ptr<Conn> c = it->second;  // close_conn erases
      conn_event(c, events[i].events);
    }
    // Completions can land while we were processing events; picking them
    // up here saves an eventfd round-trip.
    drain_completions();
    if (accept_paused_ && !draining_ && now_ms_ >= accept_resume_ms_) {
      pause_accept(false);
    }
    if (now_ms_ - last_sweep_ms_ >= static_cast<std::uint64_t>(tick_ms)) {
      last_sweep_ms_ = now_ms_;
      sweep_idle();
    }
  }

  {
    MutexLock lock(task_mu_);
    workers_stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
  {
    MutexLock lock(done_mu_);
    done_.clear();
  }
}

bool Server::try_submit(std::shared_ptr<Conn> c, Slot* slot) {
  {
    MutexLock lock(task_mu_);
    const std::size_t inflight = task_queue_.size() + executing_;
    if (inflight >= opts_.max_inflight) return false;
    task_queue_.push_back(Task{std::move(c), slot});
    const auto seen = static_cast<std::uint64_t>(inflight + 1);
    queue_depth_.set(static_cast<std::int64_t>(seen));
    if (seen > max_inflight_seen_) {
      max_inflight_seen_ = seen;
      fe_stats_.max_inflight.observe_max(static_cast<std::int64_t>(seen));
    }
  }
  task_cv_.notify_one();
  return true;
}

void Server::post_completion(std::shared_ptr<Conn> c) {
  bool was_empty = false;
  {
    MutexLock lock(done_mu_);
    was_empty = done_.empty();
    done_.push_back(std::move(c));
  }
  if (was_empty) wake();  // coalesce: one eventfd write per burst
}

void Server::worker_loop() {
  while (true) {
    Task task;
    {
      MutexLock lock(task_mu_);
      while (task_queue_.empty() && !workers_stop_) task_cv_.wait(task_mu_);
      if (task_queue_.empty()) break;  // stop requested and queue drained
      task = std::move(task_queue_.front());
      task_queue_.pop_front();
      ++executing_;
    }
    engine_.handle_line_to(task.slot->line, task.slot->response);
    task.slot->response += '\n';
    task.slot->done.store(true, std::memory_order_release);
    {
      MutexLock lock(task_mu_);
      --executing_;
      queue_depth_.set(
          static_cast<std::int64_t>(task_queue_.size() + executing_));
    }
    post_completion(std::move(task.conn));
  }
}

// ---------------------------------------------------------------------------
// Signal-driven drain.

namespace {
std::atomic<Server*> g_drain_server{nullptr};
struct sigaction g_prev_term;
struct sigaction g_prev_int;

void drain_signal_handler(int) {
  const int saved_errno = errno;
  Server* s = g_drain_server.load(std::memory_order_acquire);
  if (s != nullptr) s->begin_drain();
  errno = saved_errno;
}
}  // namespace

void install_signal_drain(Server& server) {
  g_drain_server.store(&server, std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = drain_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGTERM, &sa, &g_prev_term);
  sigaction(SIGINT, &sa, &g_prev_int);
}

void uninstall_signal_drain() {
  sigaction(SIGTERM, &g_prev_term, nullptr);
  sigaction(SIGINT, &g_prev_int, nullptr);
  g_drain_server.store(nullptr, std::memory_order_release);
}

}  // namespace hpcarbon::net
