// Incremental newline framing for the streaming front-ends.
//
// A LineFramer turns an arbitrary sequence of byte chunks (socket reads,
// pipe reads) into the request lines the serve engine answers, with the
// same trimming rules the batch front-end applies to whole files:
// trailing '\r', ' ' and '\t' are stripped (CRLF clients, trailing
// whitespace) and lines that are empty after trimming are skipped.
//
// The framer enforces serve::kMaxRequestLineBytes *while buffering*: once
// an unterminated line grows past the limit the buffered prefix is
// dropped and the framer switches to discard mode, counting (not
// storing) bytes until the terminating newline, then reports the line as
// oversized with its true byte count. A hostile or broken client can
// therefore never make a connection buffer more than the limit, and the
// oversize answer still carries the same count the batch path (which has
// the whole line in hand) would report — so every front-end rejects with
// identical bytes (serve::oversize_line_error).
//
// Single-owner object: one framer per connection (or per pipe), driven
// from one thread. Views returned by next() point into the internal
// buffer and are valid until the next feed()/next()/finish() call.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "serve/limits.h"

namespace hpcarbon::net {

class LineFramer {
 public:
  explicit LineFramer(std::size_t max_line_bytes = serve::kMaxRequestLineBytes)
      : max_line_(max_line_bytes) {}

  struct Item {
    enum class Kind {
      kNone,      // no complete line buffered; feed more bytes
      kLine,      // `line` is a complete, trimmed, non-empty request line
      kOversize,  // a line exceeded the limit; `oversize_bytes` is its
                  // length (excluding the newline)
    };
    Kind kind = Kind::kNone;
    std::string_view line;
    std::size_t oversize_bytes = 0;
  };

  /// Append one chunk of incoming bytes.
  void feed(std::string_view bytes);

  /// Next complete line (or oversize report) out of the buffered bytes;
  /// kNone when more input is needed. Call in a loop after each feed().
  Item next();

  /// End of stream: a trailing unterminated line (data after the last
  /// newline) is delivered as a final line, matching getline semantics on
  /// files without a trailing newline. Call next() afterwards returns
  /// kNone. Safe to call once, after the final feed().
  Item finish();

  /// Bytes currently buffered (bounded by max_line_bytes + one chunk).
  std::size_t buffered_bytes() const { return buf_.size() - pos_; }
  std::size_t max_line_bytes() const { return max_line_; }

 private:
  Item emit(std::size_t begin, std::size_t end);

  std::string buf_;
  std::size_t pos_ = 0;          // start of the first unconsumed byte
  std::size_t scanned_ = 0;      // newline search resumes here
  bool discarding_ = false;      // inside an oversized line
  std::size_t discarded_ = 0;    // bytes of the oversized line seen so far
  std::size_t max_line_;
};

}  // namespace hpcarbon::net
