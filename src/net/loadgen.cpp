#include "net/loadgen.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>

#include "core/error.h"
#include "core/rng.h"
#include "grid/presets.h"
#include "net/listener.h"
#include "serve/request.h"

namespace hpcarbon::net {

std::vector<std::string> query_universe() {
  std::vector<std::string> q;
  for (const auto& slug : serve::part_slugs()) {
    q.push_back(R"({"op":"embodied","params":{"part":")" + slug + "\"}}");
  }
  for (const auto& code : grid::codes_of(grid::all_regions())) {
    q.push_back(R"({"op":"trace","params":{"region":")" + code + "\"}}");
    q.push_back(R"({"op":"trace","params":{"region":")" + code +
                R"(","window_start_hour":3624,"window_hours":168}})");
  }
  for (const char* node : {"p100", "v100", "a100"}) {
    for (const char* region : {"ESO", "CISO", "ERCOT"}) {
      q.push_back(std::string(R"({"op":"lifetime","params":{"node":")") +
                  node + R"(","region":")" + region + "\"}}");
    }
  }
  q.push_back(R"({"op":"lifetime","params":{"node":"v100","samples":1024}})");
  for (const char* decline : {"0", "0.03", "0.07"}) {
    q.push_back(
        std::string(R"({"op":"breakeven","params":{"annual_decline":)") +
        decline + "}}");
  }
  // Default 28-day horizon at 2.5 jobs/h: the `hpcarbon run` scenario a
  // dashboard would poll, and the expensive tail of the mix.
  for (const char* policy : {"greedy", "net-benefit", "forecast-nb"}) {
    q.push_back(std::string(R"({"op":"sched","params":{"policy":")") +
                policy + "\"}}");
  }
  return q;
}

std::vector<std::string> zipf_mix(std::size_t count) {
  std::vector<std::string> universe = query_universe();
  Rng shuffle_rng(kShuffleSeed);
  for (std::size_t i = universe.size(); i > 1; --i) {
    std::swap(universe[i - 1],
              universe[static_cast<std::size_t>(shuffle_rng.uniform_int(
                  0, static_cast<std::int64_t>(i) - 1))]);
  }
  std::vector<double> cdf(universe.size());
  double total = 0;
  for (std::size_t r = 0; r < universe.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), 1.1);
    cdf[r] = total;
  }
  Rng mix_rng(kMixSeed);
  std::vector<std::string> mix;
  mix.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double u = mix_rng.uniform(0.0, total);
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    mix.push_back(universe[static_cast<std::size_t>(it - cdf.begin())]);
  }
  return mix;
}

std::vector<double> poisson_arrivals_us(std::size_t count, double rate_rps,
                                        std::uint64_t seed) {
  HPC_REQUIRE(rate_rps > 0, "loadgen: arrival rate must be positive");
  Rng rng(seed);
  std::vector<double> at;
  at.reserve(count);
  double t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(rate_rps) * 1e6;
    at.push_back(t);
  }
  return at;
}

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      static_cast<double>(sorted.size()) * p);
  return sorted[idx < sorted.size() ? idx : sorted.size() - 1];
}

namespace {

using clock_type = std::chrono::steady_clock;

double us_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::micro>(clock_type::now() - t0)
      .count();
}

int connect_target(const LoadTarget& target) {
  const int fd = target.tcp.empty() ? connect_unix(target.unix_path)
                                    : connect_tcp(target.tcp);
  set_nonblocking(fd);
  return fd;
}

/// One client connection of the load loop: pending outgoing bytes, the
/// send timestamps of in-flight requests (responses come back in order),
/// and the partial response line carried between reads.
struct ClientConn {
  int fd = -1;
  std::string out;
  std::size_t out_off = 0;
  std::deque<double> inflight_sent_us;
  std::string tail;
  std::uint32_t interest = 0;
  bool dead = false;
};

struct ClientLoop {
  int epoll_fd = -1;
  std::vector<ClientConn> conns;

  explicit ClientLoop(const LoadTarget& target, std::size_t n) {
    epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) throw Error("loadgen: epoll_create1 failed");
    conns.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      conns[i].fd = connect_target(target);
      set_interest(conns[i], EPOLLIN, /*add=*/true);
    }
  }
  ~ClientLoop() {
    for (auto& c : conns) {
      if (c.fd >= 0) ::close(c.fd);
    }
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  void set_interest(ClientConn& c, std::uint32_t want, bool add = false) {
    if (!add && want == c.interest) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = static_cast<std::uint64_t>(&c - conns.data());
    epoll_ctl(epoll_fd, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, c.fd, &ev);
    c.interest = want;
  }

  void kill(ClientConn& c, std::size_t* errors) {
    if (c.dead) return;
    c.dead = true;
    // Unanswered requests on a dead connection are lost, not latent.
    *errors += c.inflight_sent_us.size();
    c.inflight_sent_us.clear();
    epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    c.fd = -1;
  }

  /// Push buffered bytes out; arms EPOLLOUT on a partial write.
  void flush(ClientConn& c, std::size_t* errors) {
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        kill(c, errors);
        return;
      }
      c.out_off += static_cast<std::size_t>(n);
    }
    if (c.out_off == c.out.size()) {
      c.out.clear();
      c.out_off = 0;
      set_interest(c, EPOLLIN);
    } else {
      set_interest(c, EPOLLIN | EPOLLOUT);
    }
  }
};

}  // namespace

OpenLoopStats run_open_loop(const LoadTarget& target,
                            const std::vector<std::string>& mix,
                            double rate_rps, std::size_t conns,
                            std::uint64_t seed, double timeout_s) {
  HPC_REQUIRE(conns > 0 && !mix.empty(), "loadgen: need conns and requests");
  OpenLoopStats stats;
  stats.offered_rps = rate_rps;
  const std::vector<double> sched = poisson_arrivals_us(mix.size(), rate_rps,
                                                        seed);
  ClientLoop loop(target, conns);
  std::vector<epoll_event> events(256);
  char chunk[65536];

  const auto t0 = clock_type::now();
  std::size_t next = 0;  // first unsent request
  while (stats.received + stats.errors < mix.size()) {
    const double now_us = us_since(t0);
    if (now_us > timeout_s * 1e6) {
      stats.errors += mix.size() - stats.received - stats.errors;
      break;
    }
    // Send everything whose scheduled time has come — regardless of how
    // many responses are still outstanding (open loop).
    while (next < mix.size() && sched[next] <= now_us) {
      ClientConn& c = loop.conns[next % conns];
      if (c.dead) {
        ++stats.errors;
        ++next;
        continue;
      }
      c.out += mix[next];
      c.out += '\n';
      c.inflight_sent_us.push_back(sched[next]);
      ++stats.sent;
      ++next;
      loop.flush(c, &stats.errors);
    }
    int wait_ms = 50;
    if (next < mix.size()) {
      const double gap_us = sched[next] - us_since(t0);
      wait_ms = gap_us <= 0 ? 0 : static_cast<int>(gap_us / 1000.0);
      if (wait_ms > 50) wait_ms = 50;
    }
    const int n = epoll_wait(loop.epoll_fd, events.data(),
                             static_cast<int>(events.size()), wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("loadgen: epoll_wait failed");
    }
    for (int i = 0; i < n; ++i) {
      ClientConn& c = loop.conns[events[i].data.u64];
      if (c.dead) continue;
      if ((events[i].events & EPOLLOUT) != 0) loop.flush(c, &stats.errors);
      if (c.dead || (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) == 0) {
        continue;
      }
      while (true) {
        const ssize_t r = ::recv(c.fd, chunk, sizeof(chunk), 0);
        if (r > 0) {
          const double arrive_us = us_since(t0);
          c.tail.append(chunk, static_cast<std::size_t>(r));
          std::size_t pos = 0, nl = 0;
          while ((nl = c.tail.find('\n', pos)) != std::string::npos) {
            const std::string_view line(c.tail.data() + pos, nl - pos);
            ++stats.received;
            if (line.find("request shed") != std::string_view::npos) {
              ++stats.shed;
            }
            if (!c.inflight_sent_us.empty()) {
              stats.latencies_us.push_back(arrive_us -
                                           c.inflight_sent_us.front());
              c.inflight_sent_us.pop_front();
            }
            pos = nl + 1;
          }
          c.tail.erase(0, pos);
          if (r < static_cast<ssize_t>(sizeof(chunk))) break;
          continue;
        }
        if (r == 0) {
          loop.kill(c, &stats.errors);
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        loop.kill(c, &stats.errors);
        break;
      }
    }
  }
  stats.elapsed_s = us_since(t0) / 1e6;
  stats.achieved_rps =
      stats.elapsed_s > 0
          ? static_cast<double>(stats.received) / stats.elapsed_s
          : 0;
  std::sort(stats.latencies_us.begin(), stats.latencies_us.end());
  return stats;
}

ClosedLoopStats run_closed_loop(const LoadTarget& target,
                                const std::vector<std::string>& mix,
                                std::size_t conns, std::size_t depth,
                                double timeout_s) {
  HPC_REQUIRE(conns > 0 && depth > 0 && !mix.empty(),
              "loadgen: need conns, depth and requests");
  ClosedLoopStats stats;
  ClientLoop loop(target, conns);
  std::vector<epoll_event> events(256);
  char chunk[65536];
  // Request i rides connection i % conns; each connection walks its own
  // arithmetic slice of the mix so the Zipf skew is preserved everywhere.
  std::vector<std::size_t> next_idx(conns);
  for (std::size_t c = 0; c < conns; ++c) next_idx[c] = c;

  const auto t0 = clock_type::now();
  auto send_next = [&](std::size_t ci) {
    ClientConn& c = loop.conns[ci];
    if (c.dead || next_idx[ci] >= mix.size()) return false;
    c.out += mix[next_idx[ci]];
    c.out += '\n';
    c.inflight_sent_us.push_back(us_since(t0));
    next_idx[ci] += conns;
    ++stats.sent;
    return true;
  };
  for (std::size_t ci = 0; ci < conns; ++ci) {
    for (std::size_t d = 0; d < depth; ++d) send_next(ci);
    loop.flush(loop.conns[ci], &stats.errors);
  }

  while (stats.received + stats.errors < stats.sent ||
         [&] {  // any conn with unsent quota left?
           for (std::size_t ci = 0; ci < conns; ++ci) {
             if (!loop.conns[ci].dead && next_idx[ci] < mix.size()) {
               return true;
             }
           }
           return false;
         }()) {
    if (us_since(t0) > timeout_s * 1e6) {
      stats.errors += stats.sent - stats.received - stats.errors;
      break;
    }
    const int n = epoll_wait(loop.epoll_fd, events.data(),
                             static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("loadgen: epoll_wait failed");
    }
    for (int i = 0; i < n; ++i) {
      const std::size_t ci = events[i].data.u64;
      ClientConn& c = loop.conns[ci];
      if (c.dead) continue;
      if ((events[i].events & EPOLLOUT) != 0) loop.flush(c, &stats.errors);
      if (c.dead || (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) == 0) {
        continue;
      }
      bool sent_more = false;
      while (true) {
        const ssize_t r = ::recv(c.fd, chunk, sizeof(chunk), 0);
        if (r > 0) {
          const double arrive_us = us_since(t0);
          c.tail.append(chunk, static_cast<std::size_t>(r));
          std::size_t pos = 0, nl = 0;
          while ((nl = c.tail.find('\n', pos)) != std::string::npos) {
            const std::string_view line(c.tail.data() + pos, nl - pos);
            ++stats.received;
            if (line.find("request shed") != std::string_view::npos) {
              ++stats.shed;
            }
            if (!c.inflight_sent_us.empty()) {
              stats.latencies_us.push_back(arrive_us -
                                           c.inflight_sent_us.front());
              c.inflight_sent_us.pop_front();
            }
            sent_more |= send_next(ci);  // keep `depth` in flight
            pos = nl + 1;
          }
          c.tail.erase(0, pos);
          if (r < static_cast<ssize_t>(sizeof(chunk))) break;
          continue;
        }
        if (r == 0) {
          loop.kill(c, &stats.errors);
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        loop.kill(c, &stats.errors);
        break;
      }
      if (sent_more && !c.dead) loop.flush(c, &stats.errors);
    }
  }
  stats.elapsed_s = us_since(t0) / 1e6;
  stats.qps = stats.elapsed_s > 0
                  ? static_cast<double>(stats.received) / stats.elapsed_s
                  : 0;
  std::sort(stats.latencies_us.begin(), stats.latencies_us.end());
  return stats;
}

}  // namespace hpcarbon::net
