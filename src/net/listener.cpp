#include "net/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/error.h"

namespace hpcarbon::net {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error("net: " + what + ": " + std::strerror(errno));
}

struct AddrInfoHolder {
  addrinfo* res = nullptr;
  ~AddrInfoHolder() {
    if (res != nullptr) freeaddrinfo(res);
  }
};

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw Error("net: unix socket path must be 1.." +
                std::to_string(sizeof(addr.sun_path) - 1) + " bytes, got '" +
                path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void split_host_port(const std::string& host_port, std::string* host,
                     std::string* port) {
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 == host_port.size()) {
    throw Error("net: expected HOST:PORT, got '" + host_port + "'");
  }
  *host = host_port.substr(0, colon);
  *port = host_port.substr(colon + 1);
  // "[::1]:80" — strip the IPv6 brackets for getaddrinfo.
  if (host->size() >= 2 && host->front() == '[' && host->back() == ']') {
    *host = host->substr(1, host->size() - 2);
  }
  if (host->empty()) *host = "0.0.0.0";
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl(O_NONBLOCK)");
  }
}

namespace {

/// Resolve and apply `op` (bind or connect) over the candidate addresses;
/// returns the connected/bound socket fd.
int tcp_socket_for(const std::string& host_port, bool for_listen) {
  std::string host, port;
  split_host_port(host_port, &host, &port);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (for_listen) hints.ai_flags = AI_PASSIVE;
  AddrInfoHolder info;
  const int rc = getaddrinfo(host.c_str(), port.c_str(), &hints, &info.res);
  if (rc != 0) {
    throw Error("net: cannot resolve '" + host_port +
                "': " + gai_strerror(rc));
  }

  int last_errno = 0;
  for (addrinfo* ai = info.res; ai != nullptr; ai = ai->ai_next) {
    const int fd = socket(ai->ai_family,
                          ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (for_listen) {
      const int one = 1;
      setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) return fd;
    } else {
      if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) return fd;
    }
    last_errno = errno;
    close(fd);
  }
  errno = last_errno;
  sys_fail((for_listen ? "bind '" : "connect '") + host_port + "'");
}

}  // namespace

int listen_tcp(const std::string& host_port, int backlog) {
  const int fd = tcp_socket_for(host_port, /*for_listen=*/true);
  if (listen(fd, backlog) < 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    sys_fail("listen '" + host_port + "'");
  }
  set_nonblocking(fd);
  return fd;
}

int listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_addr(path);
  struct stat st{};
  if (lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      throw Error("net: '" + path + "' exists and is not a socket");
    }
    unlink(path.c_str());  // stale socket from an unclean shutdown
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) sys_fail("socket(AF_UNIX)");
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(fd, backlog) < 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    sys_fail("bind/listen unix '" + path + "'");
  }
  set_nonblocking(fd);
  return fd;
}

std::string bound_endpoint(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) < 0) {
    sys_fail("getsockname");
  }
  char host[INET6_ADDRSTRLEN] = {};
  unsigned port = 0;
  if (ss.ss_family == AF_INET) {
    const auto* a = reinterpret_cast<const sockaddr_in*>(&ss);
    inet_ntop(AF_INET, &a->sin_addr, host, sizeof(host));
    port = ntohs(a->sin_port);
  } else if (ss.ss_family == AF_INET6) {
    const auto* a = reinterpret_cast<const sockaddr_in6*>(&ss);
    inet_ntop(AF_INET6, &a->sin6_addr, host, sizeof(host));
    port = ntohs(a->sin6_port);
  } else {
    throw Error("net: bound_endpoint on a non-TCP socket");
  }
  return std::string(host) + ":" + std::to_string(port);
}

int connect_tcp(const std::string& host_port) {
  return tcp_socket_for(host_port, /*for_listen=*/false);
}

int connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_addr(path);
  const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) sys_fail("socket(AF_UNIX)");
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    sys_fail("connect unix '" + path + "'");
  }
  return fd;
}

}  // namespace hpcarbon::net
