#include "net/framing.h"

#include <cstring>

namespace hpcarbon::net {

void LineFramer::feed(std::string_view bytes) {
  if (discarding_) {
    // Count (never store) until the newline that ends the oversized
    // line; everything after it is buffered normally.
    const char* nl =
        static_cast<const char*>(std::memchr(bytes.data(), '\n', bytes.size()));
    if (nl == nullptr) {
      discarded_ += bytes.size();
      return;
    }
    discarded_ += static_cast<std::size_t>(nl - bytes.data());
    bytes.remove_prefix(static_cast<std::size_t>(nl - bytes.data()));
    // The '\n' itself and the pending oversize report are handled by
    // next(); keep the newline so next() sees the line terminator.
  }
  // Compact before growing: consumed bytes at the front are dead weight,
  // and dropping them keeps the buffer bounded by max_line_ + one chunk.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    scanned_ -= pos_;
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

LineFramer::Item LineFramer::emit(std::size_t begin, std::size_t end) {
  // Trim trailing '\r', ' ', '\t' — the batch front-end's rules.
  while (end > begin && (buf_[end - 1] == '\r' || buf_[end - 1] == ' ' ||
                         buf_[end - 1] == '\t')) {
    --end;
  }
  Item item;
  if (end == begin) return item;  // blank line: kNone, caller loops
  if (end - begin > max_line_) {
    item.kind = Item::Kind::kOversize;
    item.oversize_bytes = end - begin;
    return item;
  }
  item.kind = Item::Kind::kLine;
  item.line = std::string_view(buf_).substr(begin, end - begin);
  return item;
}

LineFramer::Item LineFramer::next() {
  while (true) {
    if (discarding_) {
      // Waiting for the newline that ends an oversized line. feed()
      // buffers from that newline onward, so the buffer's first byte (if
      // any) is the terminator.
      if (pos_ >= buf_.size()) return {};
      pos_ += 1;  // consume the '\n'
      scanned_ = pos_;
      discarding_ = false;
      Item item;
      item.kind = Item::Kind::kOversize;
      item.oversize_bytes = discarded_;
      discarded_ = 0;
      return item;
    }
    const std::size_t nl = buf_.find('\n', scanned_);
    if (nl == std::string::npos) {
      scanned_ = buf_.size();
      // No terminator yet: if the partial line already exceeds the
      // limit, stop buffering and start counting.
      if (buf_.size() - pos_ > max_line_) {
        discarded_ = buf_.size() - pos_;
        buf_.clear();
        pos_ = scanned_ = 0;
        discarding_ = true;
      }
      return {};
    }
    const Item item = emit(pos_, nl);
    pos_ = nl + 1;
    scanned_ = pos_;
    if (item.kind != Item::Kind::kNone) return item;
    // Blank line: keep scanning.
  }
}

LineFramer::Item LineFramer::finish() {
  if (discarding_) {
    // Stream ended inside an oversized line: report what was counted.
    discarding_ = false;
    Item item;
    item.kind = Item::Kind::kOversize;
    item.oversize_bytes = discarded_;
    discarded_ = 0;
    return item;
  }
  if (pos_ >= buf_.size()) return {};
  const Item item = emit(pos_, buf_.size());
  pos_ = buf_.size();
  scanned_ = pos_;
  return item;
}

}  // namespace hpcarbon::net
