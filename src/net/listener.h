// Socket plumbing for the network front-end: bind/listen/connect for TCP
// ("host:port") and Unix-domain stream sockets, plus the tiny fd helpers
// the event loop needs. All fds come back non-blocking and close-on-exec.
//
// TCP addresses are resolved with getaddrinfo, so "127.0.0.1:8080",
// "localhost:0" and "0.0.0.0:9000" all work; port 0 binds an ephemeral
// port and bound_endpoint() reports the actual one (tests and the netload
// bench rely on this). Errors throw hpcarbon::Error with the failing
// call and errno text — callers never see a raw -1.
#pragma once

#include <string>

namespace hpcarbon::net {

/// "host:port" -> non-blocking listening TCP socket (SO_REUSEADDR,
/// IPv4/IPv6 as resolved). `backlog` is the accept queue depth.
int listen_tcp(const std::string& host_port, int backlog = 512);

/// Filesystem path -> non-blocking listening Unix-domain stream socket.
/// An existing socket file at `path` is unlinked first (stale leftover
/// from an unclean shutdown); a non-socket file is an error.
int listen_unix(const std::string& path, int backlog = 512);

/// The "ip:port" a listening TCP socket actually bound (resolves port 0).
std::string bound_endpoint(int fd);

/// Blocking-connect client helpers (tests, the netload load generator,
/// CI smoke scripts). The returned fd is left *blocking*; callers that
/// want non-blocking IO call set_nonblocking themselves.
int connect_tcp(const std::string& host_port);
int connect_unix(const std::string& path);

void set_nonblocking(int fd);

/// Split "host:port" on the last ':' (IPv6 literals keep their colons).
/// Throws on a missing separator or empty port.
void split_host_port(const std::string& host_port, std::string* host,
                     std::string* port);

}  // namespace hpcarbon::net
