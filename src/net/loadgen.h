// Deterministic load generation for the serve front-ends, shared by the
// serve-load and netload benches (and their tests).
//
// The request stream is part of the benchmark's identity: the same two
// pinned seeds (kShuffleSeed, kMixSeed) that `hpcarbon bench serve-load`
// has used since its first trajectory row produce the same Zipf(1.1) mix
// here, so engine-level and network-level rows measure the same work.
// zipf_mix is prefix-stable: the first N requests of a longer mix equal a
// shorter mix of N — growing the replay never re-rolls history.
//
// Arrival times for the open-loop phase are a seeded Poisson process
// (exponential inter-arrival gaps). Open-loop means requests are sent on
// schedule whether or not earlier responses have come back, and latency
// is measured from the *scheduled* send time — so a stalled server keeps
// accumulating scheduled-but-unanswered requests and the tail reflects
// queueing delay instead of hiding it (no coordinated omission).
//
// Everything here is a pure function of its seeds: bit-identical across
// runs and machines (tests assert this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hpcarbon::net {

/// Pinned stream seeds — treat like a file-format version (changing
/// either invalidates cross-row bench comparisons).
inline constexpr std::uint64_t kShuffleSeed = 7;
inline constexpr std::uint64_t kMixSeed = 11;

/// The distinct-query universe: one spelling per question, spanning all
/// five request families (cheap embodied/trace lookups through expensive
/// scheduler runs).
std::vector<std::string> query_universe();

/// `count` request lines, Zipf(s=1.1)-ranked over the kShuffleSeed-
/// shuffled universe, drawn with kMixSeed. Prefix-stable in `count`.
std::vector<std::string> zipf_mix(std::size_t count);

/// Cumulative Poisson arrival offsets in microseconds: `count` scheduled
/// send times at `rate_rps` mean throughput, from seeded exponential
/// gaps. Strictly deterministic in (count, rate_rps, seed).
std::vector<double> poisson_arrivals_us(std::size_t count, double rate_rps,
                                        std::uint64_t seed);

/// Where the load goes: a TCP "host:port" (preferred when non-empty) or
/// a Unix-domain socket path.
struct LoadTarget {
  std::string tcp;
  std::string unix_path;
};

/// Open-loop replay: requests sent on their Poisson schedule across
/// `conns` connections (request i rides connection i % conns), latency
/// measured from scheduled send time to response arrival.
struct OpenLoopStats {
  std::vector<double> latencies_us;  // sorted ascending
  double elapsed_s = 0;
  double offered_rps = 0;   // the schedule's rate
  double achieved_rps = 0;  // responses / elapsed
  std::size_t sent = 0;
  std::size_t received = 0;
  std::size_t shed = 0;    // explicit overload-shed responses
  std::size_t errors = 0;  // connection failures / dropped requests
};
OpenLoopStats run_open_loop(const LoadTarget& target,
                            const std::vector<std::string>& mix,
                            double rate_rps, std::size_t conns,
                            std::uint64_t seed, double timeout_s = 120.0);

/// Closed-loop replay: every connection keeps `depth` requests in flight
/// (send-on-response), which measures saturation throughput rather than
/// latency under a fixed offered load.
struct ClosedLoopStats {
  std::vector<double> latencies_us;  // sorted; includes client queue time
  double elapsed_s = 0;
  double qps = 0;
  std::size_t sent = 0;
  std::size_t received = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
};
ClosedLoopStats run_closed_loop(const LoadTarget& target,
                                const std::vector<std::string>& mix,
                                std::size_t conns, std::size_t depth,
                                double timeout_s = 120.0);

/// p in [0,1] over an ascending vector (0.5 -> p50). Empty input -> 0.
double percentile_sorted(const std::vector<double>& sorted, double p);

}  // namespace hpcarbon::net
