#include "grid/source.h"

namespace hpcarbon::grid {

const char* to_string(SourceType t) {
  switch (t) {
    case SourceType::kCoal: return "coal";
    case SourceType::kGas: return "gas";
    case SourceType::kOil: return "oil";
    case SourceType::kNuclear: return "nuclear";
    case SourceType::kHydro: return "hydro";
    case SourceType::kWind: return "wind";
    case SourceType::kSolar: return "solar";
    case SourceType::kBiomass: return "biomass";
    case SourceType::kImports: return "imports";
  }
  return "?";
}

double lifecycle_ci(SourceType t) {
  switch (t) {
    case SourceType::kCoal: return 820.0;
    case SourceType::kGas: return 490.0;
    case SourceType::kOil: return 650.0;
    case SourceType::kNuclear: return 12.0;
    case SourceType::kHydro: return 24.0;
    case SourceType::kWind: return 11.0;
    case SourceType::kSolar: return 41.0;
    case SourceType::kBiomass: return 230.0;
    case SourceType::kImports: return 500.0;
  }
  return 0.0;
}

bool is_intermittent(SourceType t) {
  return t == SourceType::kWind || t == SourceType::kSolar;
}

bool is_low_carbon(SourceType t) {
  return lifecycle_ci(t) < 50.0;
}

}  // namespace hpcarbon::grid
