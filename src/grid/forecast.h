// Carbon-intensity forecasting.
//
// The paper's Sec. 4 implication — "robust system software support for
// real-time and automatic distribution of jobs is needed" — requires
// schedulers to anticipate intensity, not just observe it (the UK ESO API
// the paper cites ships 48-hour forecasts for exactly this reason). Two
// standard baselines are provided:
//
//  * PersistenceForecast  — CI(t+h) = CI(t); the strawman.
//  * DiurnalTemplateForecast — hour-of-day template from the trailing
//    window, the structure the paper's Fig. 7 analysis exploits.
//
// Both see only history (hours strictly before the query origin), so
// policies built on them are causally valid.
#pragma once

#include <array>
#include <memory>

#include "grid/trace.h"

namespace hpcarbon::grid {

class Forecast {
 public:
  virtual ~Forecast() = default;

  /// Predict the intensity at `origin + horizon_hours`, using only trace
  /// values strictly before `origin` (local time of the underlying trace).
  virtual double predict(HourOfYear origin, int horizon_hours) const = 0;

  /// Mean predicted intensity over [origin + start_h, origin + start_h +
  /// duration_h), hour-granular.
  double predict_window(HourOfYear origin, int start_h,
                        double duration_h) const;
};

/// CI(t+h) = CI(t-1): last observed value everywhere.
class PersistenceForecast : public Forecast {
 public:
  explicit PersistenceForecast(const CarbonIntensityTrace& trace);
  double predict(HourOfYear origin, int horizon_hours) const override;

 private:
  const CarbonIntensityTrace* trace_;
};

/// Hour-of-day mean over the trailing `window_days`, blended with the last
/// observation for level (bias) correction.
class DiurnalTemplateForecast : public Forecast {
 public:
  DiurnalTemplateForecast(const CarbonIntensityTrace& trace,
                          int window_days = 14, double level_blend = 0.3);
  double predict(HourOfYear origin, int horizon_hours) const override;

 private:
  std::array<double, kHoursPerDay> hourly_template(HourOfYear origin) const;

  const CarbonIntensityTrace* trace_;
  int window_days_;
  double level_blend_;
};

/// Forecast accuracy over a year at a fixed horizon.
struct ForecastSkill {
  double mae = 0;          // mean absolute error, g/kWh
  double mape_percent = 0; // mean absolute percentage error
};
ForecastSkill evaluate(const Forecast& forecast,
                       const CarbonIntensityTrace& truth, int horizon_hours,
                       int start_hour = 14 * kHoursPerDay);

}  // namespace hpcarbon::grid
