#include "grid/simulator.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/rng.h"
#include "core/thread_pool.h"

namespace hpcarbon::grid {

namespace {

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

// Smooth single-peak diurnal shape centered on peak_hour, range [-1, 1].
double diurnal(int hour_of_day, int peak_hour) {
  return std::cos(kTwoPi * (hour_of_day - peak_hour) / kHoursPerDay);
}

// Seasonal shape with peak at peak_day, range [-1, 1].
double seasonal(int day_of_year, int peak_day) {
  return std::cos(kTwoPi * (day_of_year - peak_day) / kDaysPerYear);
}

// Daylight availability: zero at night, cosine-shaped around solar noon.
// Half-width of the daylight window varies with season (longer summer days
// in the mid-latitudes all seven regions occupy).
double solar_shape(int hour_of_day, int day_of_year) {
  const double halfwidth =
      6.0 + 1.8 * std::sin(kTwoPi * (day_of_year - 81) / kDaysPerYear);
  const double x = (hour_of_day - 12.0) / halfwidth;
  if (std::fabs(x) >= 1.0) return 0.0;
  const double c = std::cos(x * kTwoPi / 4.0);  // cos(pi/2 * x)
  // Seasonal irradiance scale: summer peak (day 172).
  const double season =
      1.0 + 0.45 * std::cos(kTwoPi * (day_of_year - 172) / kDaysPerYear);
  return std::pow(c, 1.3) * season * 0.5;
}

struct WeatherState {
  Ar1 process;
  double volatility;
};

}  // namespace

GridSimulator::GridSimulator(RegionSpec spec) : spec_(std::move(spec)) {
  HPC_REQUIRE(!spec_.sources.empty(), "region has no generation sources");
  double total_capacity = 0;
  for (const auto& s : spec_.sources) {
    HPC_REQUIRE(s.capacity >= 0, "negative capacity");
    HPC_REQUIRE(s.capacity_factor >= 0 && s.capacity_factor <= 1.0,
                "capacity factor outside [0,1]");
    total_capacity += s.capacity;
  }
  HPC_REQUIRE(total_capacity > 0, "region has zero total capacity");
}

std::vector<DispatchHour> GridSimulator::run_detailed() const {
  Rng rng(spec_.seed);
  Ar1 demand_noise(spec_.demand_noise_rho, rng);

  // One weather process per intermittent source (wind gets the persistence
  // of multi-day weather systems; solar's process models cloud cover).
  std::vector<WeatherState> weather;
  weather.reserve(spec_.sources.size());
  for (const auto& s : spec_.sources) {
    weather.push_back(WeatherState{Ar1(s.weather_rho, rng), s.volatility});
  }

  std::vector<DispatchHour> hours;
  hours.reserve(kHoursPerYear);

  for (int h = 0; h < kHoursPerYear; ++h) {
    const HourOfYear hour(h);
    const int hod = hour.hour_of_day();
    const int doy = hour.day_of_year();

    DispatchHour snap;
    snap.generation.assign(spec_.sources.size(), 0.0);

    double demand =
        1.0 + spec_.demand_diurnal_amp * diurnal(hod, spec_.demand_peak_hour) +
        spec_.demand_seasonal_amp * seasonal(doy, spec_.demand_peak_day) +
        spec_.demand_noise * demand_noise.step();
    demand = std::max(0.2, demand);
    snap.demand = demand;

    double remaining = demand;
    double weighted_ci = 0;

    for (std::size_t i = 0; i < spec_.sources.size(); ++i) {
      const auto& s = spec_.sources[i];
      double w = weather[i].process.step();  // advance every hour regardless
      double available;
      switch (s.type) {
        case SourceType::kWind: {
          // Lognormal weather state keeps availability positive and skewed;
          // optional diurnal shape (e.g. nocturnal Texas wind).
          double cf = s.capacity_factor *
                      std::exp(s.volatility * w - 0.5 * s.volatility * s.volatility);
          cf *= 1.0 + s.diurnal_amp * diurnal(hod, s.diurnal_peak_hour);
          available = s.capacity * std::clamp(cf, 0.0, 0.97);
          break;
        }
        case SourceType::kSolar: {
          const double clouds =
              std::clamp(1.0 - 0.5 * std::max(0.0, w * s.volatility), 0.25, 1.0);
          available =
              s.capacity * s.capacity_factor * solar_shape(hod, doy) * clouds * 2.0;
          break;
        }
        default:
          available = s.capacity * s.capacity_factor;
          break;
      }
      const double gen = std::min(available, remaining);
      snap.generation[i] = gen;
      remaining -= gen;
      weighted_ci += gen * lifecycle_ci(s.type);
      if (remaining <= 0) {
        remaining = 0;
        // Keep advancing the remaining weather processes for continuity.
        for (std::size_t j = i + 1; j < spec_.sources.size(); ++j) {
          weather[j].process.step();
        }
        break;
      }
    }

    snap.imports = remaining;
    weighted_ci += remaining * lifecycle_ci(SourceType::kImports);
    snap.ci_g_per_kwh = weighted_ci / demand;
    hours.push_back(std::move(snap));
  }
  return hours;
}

CarbonIntensityTrace GridSimulator::run() const {
  const auto detail = run_detailed();
  std::vector<double> values;
  values.reserve(detail.size());
  for (const auto& h : detail) values.push_back(h.ci_g_per_kwh);
  return CarbonIntensityTrace(spec_.code, spec_.tz, std::move(values));
}

std::vector<double> GridSimulator::annual_mix() const {
  const auto detail = run_detailed();
  std::vector<double> energy(spec_.sources.size() + 1, 0.0);
  double total = 0;
  for (const auto& h : detail) {
    for (std::size_t i = 0; i < h.generation.size(); ++i) {
      energy[i] += h.generation[i];
    }
    energy.back() += h.imports;
    total += h.demand;
  }
  for (auto& e : energy) e /= total;
  return energy;
}

std::vector<CarbonIntensityTrace> generate_traces(
    const std::vector<RegionSpec>& specs) {
  std::vector<CarbonIntensityTrace> traces(specs.size());
  ThreadPool::global().parallel_for(0, specs.size(), [&](std::size_t i) {
    traces[i] = GridSimulator(specs[i]).run();
  });
  return traces;
}

}  // namespace hpcarbon::grid
