// Real grid-trace ingestion: Electricity-Maps-style CSV -> CarbonIntensityTrace.
//
// The paper's operational pipeline (Eq. 6, Figs. 6-7, carbon-aware
// scheduling) consumed Electricity Maps exports; this module loads that
// shape of file — a timestamp column plus a gCO2/kWh column, at whatever
// cadence the zone publishes (5-minute, 15-minute, or hourly) — and turns
// it into the trace type every analysis in the repo runs on:
//
//  * Column discovery: with a header row, the timestamp column is the one
//    whose name mentions time/date/hour and the intensity column the one
//    mentioning carbon/intensity/gco2 (fallback: columns 0 and 1). Without
//    a header, columns 0 and 1.
//  * Timestamps: ISO 8601 ("2021-06-01T13:05:00Z", 'T' or space separator,
//    seconds and zone suffix optional) mapped onto the modeled non-leap
//    year, or plain numbers read as fractional hours-of-year (the layout
//    CarbonIntensityTrace::to_csv emits). The calendar year digits and any
//    zone suffix are ignored: rows are taken as local time in
//    ImportOptions::tz, matching how grid operators publish.
//  * Cadence: inferred as the smallest gap between consecutive timestamps
//    (or forced via ImportOptions::step_seconds); every row must land on
//    the implied sample grid.
//  * Gap repair: missing rows and rows with an empty/non-numeric intensity
//    cell are forward-filled from the previous sample (wrapping the
//    period, so a missing first row fills from the last). Each gap run is
//    capped at max_gap_samples; anything longer is an error, not silent
//    fabrication. Fills are counted in ImportReport.
//  * Tiling: data covering a whole number of days (e.g. a two-day sample
//    fixture) is replicated periodically out to the full year when
//    tile_to_year is set — the fixture path that lets `hpcarbon run
//    --trace-csv` exercise real data end to end without shipping 105k
//    rows. Partial-day coverage (a download truncated mid-day) is
//    rejected: tiling it would drift the diurnal cycle out of phase.
#pragma once

#include <string>

#include "core/time.h"
#include "grid/trace.h"

namespace hpcarbon::grid {

struct ImportOptions {
  /// Zone the file's timestamps are local to (tags the produced trace).
  TimeZone tz = kUtc;
  /// Sample cadence in seconds; 0 infers it from the timestamp deltas.
  double step_seconds = 0;
  /// Longest gap run (in samples) forward-fill may repair; longer gaps
  /// abort the import. 12 samples = 1 h of 5-minute data.
  int max_gap_samples = 12;
  /// Replicate shorter-than-year coverage periodically to fill the year
  /// (whole days only; partial-day coverage is always an error).
  bool tile_to_year = true;
};

/// What the importer did — surfaced by `hpcarbon trace stats` and logged by
/// --trace-csv overrides so repaired data is never silently identical to
/// measured data.
struct ImportReport {
  std::size_t rows = 0;          // data rows parsed from the file
  double step_seconds = 0;       // cadence used
  std::size_t samples = 0;       // samples in the produced year trace
  std::size_t gaps_filled = 0;   // samples created by forward fill
  std::size_t gap_events = 0;    // distinct gap runs repaired
  std::size_t longest_gap = 0;   // samples in the longest repaired run
  /// Source samples tiled out to the year; 0 when the file covered the
  /// whole year natively.
  std::size_t tiled_from = 0;

  /// One-line summary ("105120 samples @300s, 3 gaps (7 samples) filled").
  std::string to_string() const;
};

/// Import CSV text. Throws hpcarbon::Error on malformed timestamps,
/// off-grid rows, duplicate timestamps, over-cap gaps, or coverage that is
/// neither a full year nor tileable.
CarbonIntensityTrace import_trace(const std::string& csv_text,
                                  const std::string& region_code,
                                  const ImportOptions& opts = {},
                                  ImportReport* report = nullptr);

/// Convenience: read_file + import_trace.
CarbonIntensityTrace import_trace_file(const std::string& path,
                                       const std::string& region_code,
                                       const ImportOptions& opts = {},
                                       ImportReport* report = nullptr);

/// Seconds since the modeled year's start for one timestamp cell (exposed
/// for tests; see the header comment for accepted formats).
double parse_timestamp_seconds(const std::string& cell);

}  // namespace hpcarbon::grid
