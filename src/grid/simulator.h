// Hourly grid simulator: RegionSpec -> 8760-hour carbon-intensity trace.
//
// For each local hour the simulator
//   1. evaluates the demand model (diurnal + seasonal + AR(1) noise),
//   2. evaluates each source's available output — weather-driven for wind
//      (lognormal AR(1) weather state, optional diurnal shape) and solar
//      (daylight geometry x season x cloud cover), constant capacity factor
//      for the others,
//   3. dispatches sources in list order up to demand (intermittent output
//      beyond demand is curtailed), topping up with imports,
//   4. emits CI = sum(gen_i * ci_i) / sum(gen_i).
//
// The generator is deterministic for a fixed RegionSpec::seed.
#pragma once

#include <vector>

#include "grid/region.h"
#include "grid/trace.h"

namespace hpcarbon::grid {

/// Per-hour generation snapshot (for tests and the mix report).
struct DispatchHour {
  double demand = 0;
  double imports = 0;
  std::vector<double> generation;  // parallel to RegionSpec::sources
  double ci_g_per_kwh = 0;
};

class GridSimulator {
 public:
  explicit GridSimulator(RegionSpec spec);

  const RegionSpec& spec() const { return spec_; }

  /// Generate the year-long carbon-intensity trace.
  CarbonIntensityTrace run() const;

  /// Generate the trace along with full dispatch detail (slower; testing
  /// and the energy-mix report).
  std::vector<DispatchHour> run_detailed() const;

  /// Annual energy share of each source (fractions summing to 1 with
  /// imports included). Computed from run_detailed().
  std::vector<double> annual_mix() const;

 private:
  RegionSpec spec_;
};

/// Generate traces for several regions in parallel on the global pool.
std::vector<CarbonIntensityTrace> generate_traces(
    const std::vector<RegionSpec>& specs);

}  // namespace hpcarbon::grid
