// Regional carbon-intensity analyses behind Figs. 6 and 7.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/time.h"
#include "grid/trace.h"

namespace hpcarbon::grid {

/// Fig. 6: per-region annual distribution (box stats) and CoV%.
struct RegionSummary {
  std::string code;
  stats::BoxStats box;
  double cov_percent = 0;
};
RegionSummary summarize(const CarbonIntensityTrace& trace);
std::vector<RegionSummary> summarize(
    const std::vector<CarbonIntensityTrace>& traces);

/// Fig. 7: for every hour of the day (in `reference_tz`, JST in the paper),
/// count on how many of the 365 days each region had the strictly lowest
/// carbon intensity among the inputs. Ties go to the earlier region in the
/// input order (matching an argmin scan).
struct HourlyWinners {
  std::vector<std::string> region_codes;
  // counts[r][h] = number of days region r wins hour h.
  std::vector<std::array<int, kHoursPerDay>> counts;
};
HourlyWinners hourly_lowest_ci(const std::vector<CarbonIntensityTrace>& traces,
                               TimeZone reference_tz = kJst);

/// Mean CI per hour-of-day (diurnal profile) in the trace's own zone.
std::array<double, kHoursPerDay> diurnal_profile(
    const CarbonIntensityTrace& trace);

/// Fraction of hours in which `a` is strictly lower than `b`, after aligning
/// both to UTC. Supports the paper's pairwise "PJM vs ERCOT" observation.
double fraction_lower(const CarbonIntensityTrace& a,
                      const CarbonIntensityTrace& b);

}  // namespace hpcarbon::grid
