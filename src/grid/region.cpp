#include "grid/region.h"

// RegionSpec is a plain aggregate; implementation lives in simulator.cpp and
// presets.cpp. This TU exists to anchor the header's ODR-used inline data.

namespace hpcarbon::grid {}  // namespace hpcarbon::grid
