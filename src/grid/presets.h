// Region presets: the seven independent system operators of Table 3.
//
//   Kansai (KN)  — Japan, Kansai region
//   Tokyo (TK)   — Japan, Tokyo region
//   ESO          — United Kingdom, Great Britain
//   CISO         — United States, California
//   PJM          — United States, Mid-Atlantic
//   MISO         — United States/Canada, Midwest + Manitoba
//   ERCOT        — United States, Texas
//
// Fleet compositions are stylized 2021 mixes; each preset is calibrated so
// the generated trace's annual median and CoV match the paper's Fig. 6
// (ESO lowest median with highest CoV, Tokyo highest median ~3x ESO with
// lowest CoV, etc.). The calibration is asserted by tests/test_presets.cpp.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "grid/region.h"

namespace hpcarbon::grid {

RegionSpec kansai();
RegionSpec tokyo();
RegionSpec eso();
RegionSpec ciso();
RegionSpec pjm();
RegionSpec miso();
RegionSpec ercot();

/// All seven, in the paper's Table 3 / Fig. 6 order.
std::vector<RegionSpec> all_regions();

/// The three most carbon-friendly regions compared hour-by-hour in Fig. 7.
std::vector<RegionSpec> fig7_regions();  // ESO, CISO, ERCOT

/// Preset lookup by Table 3 code; nullopt for unknown codes. The single
/// source for "is this a known region" — CLI validation, trace imports,
/// and the sweep sections all resolve codes through here.
std::optional<RegionSpec> find_region(const std::string& code);

/// The codes of a spec list, in order (e.g. fig7_regions() -> {"ESO",
/// "CISO", "ERCOT"}).
std::vector<std::string> codes_of(const std::vector<RegionSpec>& specs);

}  // namespace hpcarbon::grid
