#include "grid/import.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <vector>

#include "core/csv.h"
#include "core/error.h"

namespace hpcarbon::grid {

namespace {

std::string lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

bool name_matches(const std::string& name,
                  const std::vector<std::string>& needles) {
  const std::string n = lower(name);
  for (const auto& needle : needles) {
    if (n.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool parse_double_cell(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// "YYYY-MM-DD[T ]HH:MM[:SS][Z|±HH[:MM]]" -> seconds since year start, or
/// a negative value when the cell is not calendar-shaped.
double parse_iso_seconds(const std::string& cell) {
  int month = 0, day = 0, hour = 0, minute = 0;
  double second = 0;
  // Fixed-width date prefix: YYYY-MM-DD.
  if (cell.size() < 16 || cell[4] != '-' || cell[7] != '-') return -1.0;
  for (int i : {0, 1, 2, 3, 5, 6, 8, 9, 11, 12, 14, 15}) {
    if (std::isdigit(static_cast<unsigned char>(cell[static_cast<std::size_t>(
            i)])) == 0) {
      return -1.0;
    }
  }
  const char sep = cell[10];
  if (sep != 'T' && sep != ' ') return -1.0;
  if (cell[13] != ':') return -1.0;
  month = (cell[5] - '0') * 10 + (cell[6] - '0');
  day = (cell[8] - '0') * 10 + (cell[9] - '0');
  hour = (cell[11] - '0') * 10 + (cell[12] - '0');
  minute = (cell[14] - '0') * 10 + (cell[15] - '0');
  std::size_t pos = 16;
  if (pos < cell.size() && cell[pos] == ':') {
    char* end = nullptr;
    second = std::strtod(cell.c_str() + pos + 1, &end);
    pos = static_cast<std::size_t>(end - cell.c_str());
  }
  // Trailing zone designator ("Z", "+09:00", "-08") is tolerated and
  // ignored: rows are local time in ImportOptions::tz by contract.
  if (pos < cell.size() && cell[pos] != 'Z' && cell[pos] != '+' &&
      cell[pos] != '-') {
    return -1.0;
  }
  HPC_REQUIRE(month >= 1 && month <= 12, "timestamp month out of range: " +
                                             cell);
  HPC_REQUIRE(day >= 1 && day <= kDaysInMonth[static_cast<std::size_t>(
                              month - 1)],
              "timestamp day out of range for the modeled non-leap year: " +
                  cell);
  HPC_REQUIRE(hour < 24 && minute < 60 && second >= 0 && second < 61,
              "timestamp time-of-day out of range: " + cell);
  const double day_of_year =
      month_start_hour(month - 1) / static_cast<double>(kHoursPerDay) +
      (day - 1);
  return day_of_year * kHoursPerDay * kSecondsPerHour +
         hour * kSecondsPerHour + minute * 60.0 + second;
}

struct Sample {
  double seconds = 0;
  double value = std::numeric_limits<double>::quiet_NaN();  // NaN: missing
  std::size_t line = 0;
};

}  // namespace

double parse_timestamp_seconds(const std::string& cell) {
  const double iso = parse_iso_seconds(cell);
  if (iso >= 0.0) return iso;
  double hours = 0;
  HPC_REQUIRE(parse_double_cell(cell, &hours),
              "unparseable timestamp cell: '" + cell + "'");
  HPC_REQUIRE(std::isfinite(hours) && hours >= 0.0 && hours < kHoursPerYear,
              "numeric timestamp must be an hour-of-year in [0, 8760): '" +
                  cell + "'");
  return hours * kSecondsPerHour;
}

std::string ImportReport::to_string() const {
  std::ostringstream out;
  out << samples << " samples @" << step_seconds << "s from " << rows
      << " rows";
  if (gaps_filled > 0) {
    out << "; " << gap_events << " gap" << (gap_events == 1 ? "" : "s")
        << " forward-filled (" << gaps_filled << " samples, longest "
        << longest_gap << ")";
  }
  if (tiled_from > 0) {
    out << "; tiled to the year from " << tiled_from << " samples";
  }
  return out.str();
}

CarbonIntensityTrace import_trace(const std::string& csv_text,
                                  const std::string& region_code,
                                  const ImportOptions& opts,
                                  ImportReport* report) {
  const CsvTable table = parse_csv_table(csv_text);
  HPC_REQUIRE(!table.rows.empty(), "trace CSV has no rows");
  HPC_REQUIRE(table.rows[0].size() >= 2,
              "trace CSV needs a timestamp and an intensity column");

  // Column discovery. A header exists when the first row's would-be
  // timestamp cell parses as neither a number nor a calendar timestamp.
  std::size_t ts_col = 0;
  std::size_t ci_col = 1;
  std::size_t first_data = 0;
  {
    const auto& row0 = table.rows[0];
    double tmp = 0;
    const bool has_header = !parse_double_cell(row0[0], &tmp) &&
                            parse_iso_seconds(row0[0]) < 0.0;
    if (has_header) {
      first_data = 1;
      for (std::size_t c = 0; c < row0.size(); ++c) {
        if (name_matches(row0[c], {"datetime", "timestamp", "date", "time",
                                   "hour"})) {
          ts_col = c;
          break;
        }
      }
      for (std::size_t c = 0; c < row0.size(); ++c) {
        if (c == ts_col) continue;
        if (name_matches(row0[c], {"carbon_intensity", "intensity", "gco2",
                                   "ci_", "g_per_kwh"})) {
          ci_col = c;
          break;
        }
      }
      HPC_REQUIRE(ci_col != ts_col, "cannot tell the intensity column from "
                                    "the timestamp column");
    }
  }

  // Parse rows; a blank or non-numeric intensity cell is a gap, not an
  // error (Electricity Maps exports carry holes exactly like missing rows).
  std::vector<Sample> samples;
  samples.reserve(table.rows.size() - first_data);
  for (std::size_t r = first_data; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    Sample s;
    s.seconds = parse_timestamp_seconds(row[ts_col]);
    s.line = table.line_numbers[r];
    double v = 0;
    if (parse_double_cell(row[ci_col], &v)) {
      HPC_REQUIRE(std::isfinite(v) && v >= 0.0,
                  "carbon intensity must be finite and non-negative (CSV "
                  "line " + std::to_string(s.line) + ")");
      s.value = v;
    }
    samples.push_back(s);
  }
  HPC_REQUIRE(!samples.empty(), "trace CSV has no data rows");
  std::stable_sort(samples.begin(), samples.end(),
                   [](const Sample& a, const Sample& b) {
                     return a.seconds < b.seconds;
                   });

  // Cadence: forced, or the smallest positive delta between neighbours.
  double step = opts.step_seconds;
  if (step <= 0.0) {
    double min_delta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 1; i < samples.size(); ++i) {
      const double d = samples[i].seconds - samples[i - 1].seconds;
      if (d > 0.0) min_delta = std::min(min_delta, d);
    }
    HPC_REQUIRE(std::isfinite(min_delta),
                "cannot infer the cadence from a single distinct timestamp; "
                "pass step_seconds");
    step = min_delta;
  }
  HPC_REQUIRE(std::isfinite(step) && step > 0.0, "cadence must be positive");
  {
    const double n = kSecondsPerYear / step;
    HPC_REQUIRE(std::abs(n - std::round(n)) < 1e-9,
                "cadence must divide the year evenly (got " +
                    std::to_string(step) + " s)");
  }
  const auto year_samples =
      static_cast<std::size_t>(std::llround(kSecondsPerYear / step));

  // Place every row on the sample grid.
  std::vector<double> grid(year_samples,
                           std::numeric_limits<double>::quiet_NaN());
  std::size_t max_slot = 0;
  long last_slot = -1;
  for (const auto& s : samples) {
    const double pos = s.seconds / step;
    const auto slot = static_cast<std::size_t>(std::llround(pos));
    HPC_REQUIRE(std::abs(pos - static_cast<double>(slot)) < 1e-6,
                "timestamp off the " + std::to_string(step) +
                    " s sample grid (CSV line " + std::to_string(s.line) +
                    ")");
    HPC_REQUIRE(slot < year_samples, "timestamp beyond the modeled year "
                                     "(CSV line " + std::to_string(s.line) +
                                     ")");
    HPC_REQUIRE(static_cast<long>(slot) != last_slot,
                "duplicate timestamp (CSV line " + std::to_string(s.line) +
                    ")");
    last_slot = static_cast<long>(slot);
    grid[slot] = s.value;
    max_slot = std::max(max_slot, slot);
  }

  // Coverage: the sample span the file addresses. Shorter-than-year spans
  // tile; anything else must be the full year.
  std::size_t span = max_slot + 1;
  if (span != year_samples) {
    HPC_REQUIRE(opts.tile_to_year,
                "trace covers " + std::to_string(span) + " of " +
                    std::to_string(year_samples) +
                    " samples and tiling is disabled");
    // Tiling replicates the diurnal cycle, so the covered span must be a
    // whole number of days — a download truncated mid-day would otherwise
    // tile out of phase (its midnight landing at a different local hour
    // every repetition) with no diagnostic, and trailing missing rows
    // never trip the max-gap guard.
    const double covered_days =
        static_cast<double>(span) * step / (kHoursPerDay * kSecondsPerHour);
    HPC_REQUIRE(std::abs(covered_days - std::round(covered_days)) < 1e-9 &&
                    covered_days > 0.5,
                "tiling needs whole days of coverage, got " +
                    std::to_string(covered_days) +
                    " days — is the export truncated mid-day?");
  }

  // Forward-fill gaps inside the covered span, treating it as periodic (a
  // missing opening sample fills from the span's last value).
  ImportReport rep;
  rep.rows = samples.size();
  rep.step_seconds = step;
  std::size_t first_known = span;
  for (std::size_t i = 0; i < span; ++i) {
    if (!std::isnan(grid[i])) {
      first_known = i;
      break;
    }
  }
  HPC_REQUIRE(first_known < span, "trace CSV has no usable intensity values");
  double prev = grid[first_known];
  std::size_t run = 0;
  for (std::size_t k = 1; k <= span; ++k) {
    const std::size_t i = (first_known + k) % span;
    if (std::isnan(grid[i])) {
      grid[i] = prev;
      ++run;
      ++rep.gaps_filled;
      HPC_REQUIRE(run <= static_cast<std::size_t>(
                             std::max(0, opts.max_gap_samples)),
                  "gap of more than " +
                      std::to_string(opts.max_gap_samples) +
                      " samples around sample " + std::to_string(i) +
                      "; refusing to forward-fill that much");
    } else {
      if (run > 0) {
        ++rep.gap_events;
        rep.longest_gap = std::max(rep.longest_gap, run);
        run = 0;
      }
      prev = grid[i];
    }
  }

  if (span != year_samples) {
    rep.tiled_from = span;
    for (std::size_t i = span; i < year_samples; ++i) {
      grid[i] = grid[i % span];
    }
  }
  rep.samples = year_samples;
  if (report != nullptr) *report = rep;
  return CarbonIntensityTrace(region_code, opts.tz, std::move(grid), step);
}

CarbonIntensityTrace import_trace_file(const std::string& path,
                                       const std::string& region_code,
                                       const ImportOptions& opts,
                                       ImportReport* report) {
  return import_trace(read_file(path), region_code, opts, report);
}

}  // namespace hpcarbon::grid
