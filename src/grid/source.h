// Electricity generation sources and their lifecycle carbon intensities.
//
// Carbon intensity of a grid hour is the generation-weighted mean of the
// per-source lifecycle intensities (gCO2/kWh). Values follow the IPCC
// AR5/2014 lifecycle medians, the same family of constants behind
// Electricity Maps — and consistent with the paper's framing (renewables
// < 50, coal > 800 gCO2/kWh).
#pragma once

#include <string>

namespace hpcarbon::grid {

enum class SourceType {
  kCoal,
  kGas,
  kOil,
  kNuclear,
  kHydro,
  kWind,
  kSolar,
  kBiomass,
  kImports,  // unspecified out-of-region mix
};

const char* to_string(SourceType t);

/// Lifecycle carbon intensity in gCO2/kWh.
double lifecycle_ci(SourceType t);

/// True for weather-driven, non-dispatchable sources (wind, solar).
bool is_intermittent(SourceType t);
/// True for sources with near-zero operating emissions.
bool is_low_carbon(SourceType t);

}  // namespace hpcarbon::grid
