// Region (balancing-authority) description for the grid simulator.
//
// Each of the paper's seven operators (Table 3) is described by a demand
// model and a fleet of generation sources. The simulator turns this into an
// hourly carbon-intensity trace whose distributional properties (median,
// quartiles, CoV, diurnal phase) are calibrated against the published 2021
// statistics the paper visualizes in Fig. 6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/time.h"
#include "grid/source.h"

namespace hpcarbon::grid {

/// One generation fleet entry. Capacities are in units of average regional
/// demand (capacity 1.0 == enough to serve the average load by itself).
struct SourceCapacity {
  SourceType type = SourceType::kGas;
  double capacity = 0;          // relative to average demand
  double capacity_factor = 1.0; // mean availability of that capacity
  // Weather model (intermittent sources): log-scale volatility and the
  // AR(1) persistence of the weather state.
  double volatility = 0.0;
  double weather_rho = 0.95;
  // Diurnal availability modulation (e.g. Texas wind peaks at night).
  double diurnal_amp = 0.0;
  int diurnal_peak_hour = 0;
};

struct RegionSpec {
  std::string code;      // "ESO"
  std::string name;      // "Electricity System Operator"
  std::string country;   // "United Kingdom"
  std::string area;      // "Great Britain"
  TimeZone tz = kUtc;

  // Demand model: D(h) = 1 + diurnal + seasonal + noise, in average-demand
  // units (the base level is normalized out of the CI computation).
  double demand_diurnal_amp = 0.15;
  int demand_peak_hour = 18;       // local time
  double demand_seasonal_amp = 0.08;
  int demand_peak_day = 15;        // day-of-year of the seasonal peak
  double demand_noise = 0.02;
  double demand_noise_rho = 0.7;

  /// Dispatch order: sources are taken in list order (must-run/must-take
  /// first, then the dispatchable merit order). Shortfall is served by
  /// imports at lifecycle_ci(kImports).
  std::vector<SourceCapacity> sources;

  std::uint64_t seed = 1;  // weather realization; fixed per region
};

}  // namespace hpcarbon::grid
