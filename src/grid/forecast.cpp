#include "grid/forecast.h"

#include <cmath>

#include "core/error.h"

namespace hpcarbon::grid {

double Forecast::predict_window(HourOfYear origin, int start_h,
                                double duration_h) const {
  HPC_REQUIRE(duration_h > 0, "window duration must be positive");
  double acc = 0;
  double remaining = duration_h;
  int h = start_h;
  while (remaining > 0) {
    const double w = remaining >= 1.0 ? 1.0 : remaining;
    acc += predict(origin, h) * w;
    remaining -= w;
    ++h;
  }
  return acc / duration_h;
}

PersistenceForecast::PersistenceForecast(const CarbonIntensityTrace& trace)
    : trace_(&trace) {}

double PersistenceForecast::predict(HourOfYear origin,
                                    int /*horizon_hours*/) const {
  return trace_->at(origin.shifted(-1)).to_g_per_kwh();
}

DiurnalTemplateForecast::DiurnalTemplateForecast(
    const CarbonIntensityTrace& trace, int window_days, double level_blend)
    : trace_(&trace), window_days_(window_days), level_blend_(level_blend) {
  HPC_REQUIRE(window_days_ >= 1, "window must cover at least one day");
  HPC_REQUIRE(level_blend_ >= 0.0 && level_blend_ <= 1.0,
              "level blend must be in [0,1]");
}

std::array<double, kHoursPerDay> DiurnalTemplateForecast::hourly_template(
    HourOfYear origin) const {
  std::array<double, kHoursPerDay> sum{};
  std::array<int, kHoursPerDay> count{};
  for (int back = 1; back <= window_days_ * kHoursPerDay; ++back) {
    const HourOfYear h = origin.shifted(-back);
    sum[static_cast<std::size_t>(h.hour_of_day())] +=
        trace_->at(h).to_g_per_kwh();
    ++count[static_cast<std::size_t>(h.hour_of_day())];
  }
  std::array<double, kHoursPerDay> tmpl{};
  for (int i = 0; i < kHoursPerDay; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    tmpl[iu] = count[iu] > 0 ? sum[iu] / count[iu] : 0.0;
  }
  return tmpl;
}

double DiurnalTemplateForecast::predict(HourOfYear origin,
                                        int horizon_hours) const {
  const auto tmpl = hourly_template(origin);
  const HourOfYear target = origin.shifted(horizon_hours);
  const double template_value =
      tmpl[static_cast<std::size_t>(target.hour_of_day())];
  // Level correction: shift toward the latest observation's deviation from
  // its own template slot (persistence of the weather regime).
  const HourOfYear last = origin.shifted(-1);
  const double last_dev =
      trace_->at(last).to_g_per_kwh() -
      tmpl[static_cast<std::size_t>(last.hour_of_day())];
  return std::max(0.0, template_value + level_blend_ * last_dev);
}

ForecastSkill evaluate(const Forecast& forecast,
                       const CarbonIntensityTrace& truth, int horizon_hours,
                       int start_hour) {
  HPC_REQUIRE(horizon_hours >= 0, "horizon must be non-negative");
  HPC_REQUIRE(start_hour >= 0 && start_hour < kHoursPerYear,
              "start hour out of range");
  double abs_err = 0;
  double ape = 0;
  int n = 0;
  for (int h = start_hour; h + horizon_hours < kHoursPerYear; ++h) {
    const HourOfYear origin(h);
    const double pred = forecast.predict(origin, horizon_hours);
    const double actual =
        truth.at(origin.shifted(horizon_hours)).to_g_per_kwh();
    abs_err += std::fabs(pred - actual);
    if (actual > 0) ape += std::fabs(pred - actual) / actual;
    ++n;
  }
  ForecastSkill s;
  if (n > 0) {
    s.mae = abs_err / n;
    s.mape_percent = 100.0 * ape / n;
  }
  return s;
}

}  // namespace hpcarbon::grid
