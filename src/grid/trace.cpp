#include "grid/trace.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "core/csv.h"
#include "core/error.h"

namespace hpcarbon::grid {

HourlyPrefixSum::HourlyPrefixSum(std::vector<double> hourly_values)
    : hourly_(std::move(hourly_values)) {
  HPC_REQUIRE(hourly_.size() == kHoursPerYear,
              "prefix sum must cover exactly one year (8760 hours)");
  prefix_.resize(hourly_.size() + 1);
  prefix_[0] = 0.0;
  for (std::size_t i = 0; i < hourly_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + hourly_[i];
  }
}

double HourlyPrefixSum::cumulative(double hour) const {
  const auto i = static_cast<std::size_t>(hour);  // hour >= 0 by contract
  const double frac = hour - static_cast<double>(i);
  double c = prefix_[i];
  if (frac > 0.0) c += hourly_[i] * frac;
  return c;
}

double HourlyPrefixSum::integral(double start_hour,
                                 double duration_hours) const {
  HPC_REQUIRE(!empty(), "integral over an empty prefix sum");
  HPC_REQUIRE(std::isfinite(start_hour) && std::isfinite(duration_hours) &&
                  duration_hours >= 0.0,
              "interval must be finite with non-negative duration");
  double s = std::fmod(start_hour, static_cast<double>(kHoursPerYear));
  if (s < 0.0) s += kHoursPerYear;
  const double full_years = std::floor(duration_hours / kHoursPerYear);
  const double d = duration_hours - full_years * kHoursPerYear;
  double acc = full_years * prefix_.back();
  const double e = s + d;
  if (e <= kHoursPerYear) {
    acc += cumulative(e) - cumulative(s);
  } else {
    acc += (prefix_.back() - cumulative(s)) + cumulative(e - kHoursPerYear);
  }
  return acc;
}

CarbonIntensityTrace::CarbonIntensityTrace(std::string region_code,
                                           TimeZone tz,
                                           std::vector<double> values)
    : region_code_(std::move(region_code)), tz_(tz), values_(std::move(values)) {
  HPC_REQUIRE(values_.size() == kHoursPerYear,
              "trace must cover exactly one year (8760 hours)");
  for (double v : values_) {
    HPC_REQUIRE(std::isfinite(v) && v >= 0.0,
                "carbon intensity must be finite and non-negative");
  }
  cumulative_ = HourlyPrefixSum(values_);
}

CarbonIntensity CarbonIntensityTrace::at(HourOfYear local_hour) const {
  return CarbonIntensity::grams_per_kwh(
      values_[static_cast<std::size_t>(local_hour.index())]);
}

CarbonIntensity CarbonIntensityTrace::at(HourOfYear hour,
                                         TimeZone hour_zone) const {
  return at(hour.convert(hour_zone, tz_));
}

CarbonIntensityTrace CarbonIntensityTrace::to_time_zone(TimeZone target) const {
  std::vector<double> rotated(values_.size());
  for (int i = 0; i < kHoursPerYear; ++i) {
    // Local hour i in `target` corresponds to this trace's local hour
    // i shifted by (tz_ - target).
    const HourOfYear src = HourOfYear(i).convert(target, tz_);
    rotated[static_cast<std::size_t>(i)] =
        values_[static_cast<std::size_t>(src.index())];
  }
  return CarbonIntensityTrace(region_code_, target, std::move(rotated));
}

CarbonIntensity CarbonIntensityTrace::mean_over(HourOfYear start,
                                                Hours duration) const {
  const double hours = duration.count();
  HPC_REQUIRE(hours > 0, "duration must be positive");
  return CarbonIntensity::grams_per_kwh(interval_sum(start.index(), hours) /
                                        hours);
}

double CarbonIntensityTrace::interval_sum(double start_hour,
                                          double duration_hours) const {
  return cumulative_.integral(start_hour, duration_hours);
}

std::vector<double> CarbonIntensityTrace::hour_of_day_slice(
    int hour_of_day) const {
  HPC_REQUIRE(hour_of_day >= 0 && hour_of_day < kHoursPerDay,
              "hour of day out of range");
  std::vector<double> slice;
  slice.reserve(kDaysPerYear);
  for (int d = 0; d < kDaysPerYear; ++d) {
    slice.push_back(
        values_[static_cast<std::size_t>(d * kHoursPerDay + hour_of_day)]);
  }
  return slice;
}

std::string CarbonIntensityTrace::to_csv() const {
  std::ostringstream out;
  // Full round-trip precision: analyses on an imported trace must match the
  // original bit-for-bit.
  out << std::setprecision(17);
  out << "hour,intensity_g_per_kwh\n";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out << i << ',' << values_[i] << '\n';
  }
  return out.str();
}

CarbonIntensityTrace CarbonIntensityTrace::from_csv(
    const std::string& region_code, TimeZone tz, const std::string& csv) {
  const CsvData data = parse_csv(csv);
  std::vector<double> values;
  values.reserve(data.rows.size());
  for (const auto& row : data.rows) {
    HPC_REQUIRE(row.size() == 2, "trace CSV must have two columns");
    values.push_back(row[1]);
  }
  return CarbonIntensityTrace(region_code, tz, std::move(values));
}

}  // namespace hpcarbon::grid
