#include "grid/trace.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "core/csv.h"
#include "core/error.h"

namespace hpcarbon::grid {

CarbonIntensityTrace::CarbonIntensityTrace(std::string region_code,
                                           TimeZone tz,
                                           std::vector<double> values)
    : region_code_(std::move(region_code)), tz_(tz), values_(std::move(values)) {
  HPC_REQUIRE(values_.size() == kHoursPerYear,
              "trace must cover exactly one year (8760 hours)");
  for (double v : values_) {
    HPC_REQUIRE(std::isfinite(v) && v >= 0.0,
                "carbon intensity must be finite and non-negative");
  }
}

CarbonIntensity CarbonIntensityTrace::at(HourOfYear local_hour) const {
  return CarbonIntensity::grams_per_kwh(
      values_[static_cast<std::size_t>(local_hour.index())]);
}

CarbonIntensity CarbonIntensityTrace::at(HourOfYear hour,
                                         TimeZone hour_zone) const {
  return at(hour.convert(hour_zone, tz_));
}

CarbonIntensityTrace CarbonIntensityTrace::to_time_zone(TimeZone target) const {
  std::vector<double> rotated(values_.size());
  for (int i = 0; i < kHoursPerYear; ++i) {
    // Local hour i in `target` corresponds to this trace's local hour
    // i shifted by (tz_ - target).
    const HourOfYear src = HourOfYear(i).convert(target, tz_);
    rotated[static_cast<std::size_t>(i)] =
        values_[static_cast<std::size_t>(src.index())];
  }
  return CarbonIntensityTrace(region_code_, target, std::move(rotated));
}

CarbonIntensity CarbonIntensityTrace::mean_over(HourOfYear start,
                                                Hours duration) const {
  const double hours = duration.count();
  HPC_REQUIRE(hours > 0, "duration must be positive");
  // Integrate hour by hour; partial trailing hour weighted by its fraction.
  double acc = 0;
  double remaining = hours;
  int idx = start.index();
  while (remaining > 0) {
    const double w = remaining >= 1.0 ? 1.0 : remaining;
    acc += values_[static_cast<std::size_t>(idx)] * w;
    remaining -= w;
    idx = (idx + 1) % kHoursPerYear;
  }
  return CarbonIntensity::grams_per_kwh(acc / hours);
}

std::vector<double> CarbonIntensityTrace::hour_of_day_slice(
    int hour_of_day) const {
  HPC_REQUIRE(hour_of_day >= 0 && hour_of_day < kHoursPerDay,
              "hour of day out of range");
  std::vector<double> slice;
  slice.reserve(kDaysPerYear);
  for (int d = 0; d < kDaysPerYear; ++d) {
    slice.push_back(
        values_[static_cast<std::size_t>(d * kHoursPerDay + hour_of_day)]);
  }
  return slice;
}

std::string CarbonIntensityTrace::to_csv() const {
  std::ostringstream out;
  // Full round-trip precision: analyses on an imported trace must match the
  // original bit-for-bit.
  out << std::setprecision(17);
  out << "hour,intensity_g_per_kwh\n";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out << i << ',' << values_[i] << '\n';
  }
  return out.str();
}

CarbonIntensityTrace CarbonIntensityTrace::from_csv(
    const std::string& region_code, TimeZone tz, const std::string& csv) {
  const CsvData data = parse_csv(csv);
  std::vector<double> values;
  values.reserve(data.rows.size());
  for (const auto& row : data.rows) {
    HPC_REQUIRE(row.size() == 2, "trace CSV must have two columns");
    values.push_back(row[1]);
  }
  return CarbonIntensityTrace(region_code, tz, std::move(values));
}

}  // namespace hpcarbon::grid
