#include "grid/trace.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "core/csv.h"
#include "core/error.h"

namespace hpcarbon::grid {

namespace {

/// Samples per hour when the step divides one hour evenly, else 0.
std::size_t samples_per_hour(double step_seconds) {
  const double n = kSecondsPerHour / step_seconds;
  const auto rounded = static_cast<std::size_t>(std::llround(n));
  if (rounded >= 1 && std::abs(n - static_cast<double>(rounded)) < 1e-9) {
    return rounded;
  }
  return 0;
}

}  // namespace

CarbonIntensityTrace::CarbonIntensityTrace(std::string region_code,
                                           TimeZone tz,
                                           std::vector<double> values,
                                           double step_seconds)
    : region_code_(std::move(region_code)), tz_(tz) {
  HPC_REQUIRE(std::isfinite(step_seconds) && step_seconds > 0.0,
              "trace step must be positive and finite");
  HPC_REQUIRE(static_cast<double>(values.size()) * step_seconds ==
                  kSecondsPerYear,
              "trace must cover exactly one year (size * step == " +
                  std::to_string(kHoursPerYear) + " hours; hourly traces "
                  "need 8760 samples)");
  for (double v : values) {
    HPC_REQUIRE(std::isfinite(v) && v >= 0.0,
                "carbon intensity must be finite and non-negative");
  }
  series_ = StepSeries(std::move(values), step_seconds);
}

CarbonIntensity CarbonIntensityTrace::at(HourOfYear local_hour) const {
  return at_hours(static_cast<double>(local_hour.index()));
}

CarbonIntensity CarbonIntensityTrace::at(HourOfYear hour,
                                         TimeZone hour_zone) const {
  return at(hour.convert(hour_zone, tz_));
}

CarbonIntensity CarbonIntensityTrace::at_hours(double local_hours) const {
  return CarbonIntensity::grams_per_kwh(series_.at_hours(local_hours));
}

CarbonIntensityTrace CarbonIntensityTrace::to_time_zone(TimeZone target) const {
  // Local time i in `target` corresponds to this trace's local time
  // i shifted by (tz_ - target) hours; shift at sample granularity.
  const double shift_seconds =
      (tz_.utc_offset_hours() - target.utc_offset_hours()) * kSecondsPerHour;
  const double steps = shift_seconds / step_seconds();
  const auto whole = static_cast<long>(std::llround(steps));
  HPC_REQUIRE(std::abs(steps - static_cast<double>(whole)) < 1e-9,
              "time-zone shift is not a whole number of trace samples");
  return CarbonIntensityTrace(region_code_, target,
                              series_.rotated(whole).values(),
                              step_seconds());
}

CarbonIntensity CarbonIntensityTrace::mean_over(HourOfYear start,
                                                Hours duration) const {
  const double hours = duration.count();
  HPC_REQUIRE(hours > 0, "duration must be positive");
  return CarbonIntensity::grams_per_kwh(interval_sum(start.index(), hours) /
                                        hours);
}

double CarbonIntensityTrace::interval_sum(double start_hour,
                                          double duration_hours) const {
  return series_.integral(start_hour, duration_hours);
}

CarbonIntensityTrace CarbonIntensityTrace::resampled(
    double new_step_seconds) const {
  if (new_step_seconds == step_seconds()) return *this;
  return CarbonIntensityTrace(region_code_, tz_,
                              series_.resampled(new_step_seconds).values(),
                              new_step_seconds);
}

std::vector<double> CarbonIntensityTrace::hour_of_day_slice(
    int hour_of_day) const {
  HPC_REQUIRE(hour_of_day >= 0 && hour_of_day < kHoursPerDay,
              "hour of day out of range");
  const std::size_t sph = samples_per_hour(step_seconds());
  std::vector<double> slice;
  slice.reserve(kDaysPerYear * (sph > 0 ? sph : 1));
  for (int d = 0; d < kDaysPerYear; ++d) {
    const int hour_start = d * kHoursPerDay + hour_of_day;
    if (sph > 0) {
      const std::size_t base = static_cast<std::size_t>(hour_start) * sph;
      for (std::size_t s = 0; s < sph; ++s) {
        slice.push_back(values()[base + s]);
      }
    } else {
      // Steps coarser than an hour: the sample containing the hour's start.
      slice.push_back(series_.at_hours(hour_start));
    }
  }
  return slice;
}

std::string CarbonIntensityTrace::to_csv() const {
  std::ostringstream out;
  // Full round-trip precision: analyses on an imported trace must match the
  // original bit-for-bit.
  out << std::setprecision(17);
  out << "hour,intensity_g_per_kwh\n";
  const auto& v = values();
  for (std::size_t i = 0; i < v.size(); ++i) {
    out << static_cast<double>(i) * step_hours() << ',' << v[i] << '\n';
  }
  return out.str();
}

CarbonIntensityTrace CarbonIntensityTrace::from_csv(
    const std::string& region_code, TimeZone tz, const std::string& csv,
    double step_seconds) {
  const CsvData data = parse_csv(csv);
  std::vector<double> values;
  values.reserve(data.rows.size());
  for (const auto& row : data.rows) {
    HPC_REQUIRE(row.size() == 2, "trace CSV must have two columns");
    values.push_back(row[1]);
  }
  return CarbonIntensityTrace(region_code, tz, std::move(values),
                              step_seconds);
}

}  // namespace hpcarbon::grid
