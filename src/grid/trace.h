// Hourly carbon-intensity trace: one value per hour of the modeled year.
//
// This is the interchange type between the grid simulator (or a real data
// import) and every consumer: operational-carbon integration (Eq. 6),
// regional statistics (Fig. 6), the hour-of-day winner analysis (Fig. 7),
// and the carbon-aware scheduler.
#pragma once

#include <string>
#include <vector>

#include "core/time.h"
#include "core/units.h"

namespace hpcarbon::grid {

class CarbonIntensityTrace {
 public:
  CarbonIntensityTrace() = default;
  /// values[i] is the carbon intensity (gCO2/kWh) of local hour i.
  CarbonIntensityTrace(std::string region_code, TimeZone tz,
                       std::vector<double> values);

  const std::string& region_code() const { return region_code_; }
  TimeZone time_zone() const { return tz_; }
  std::size_t size() const { return values_.size(); }
  const std::vector<double>& values() const { return values_; }

  CarbonIntensity at(HourOfYear local_hour) const;
  /// Intensity for an instant given in another zone's local time.
  CarbonIntensity at(HourOfYear hour, TimeZone hour_zone) const;

  /// Rotated copy whose index i is local hour i of `target`: the alignment
  /// step of the paper's Fig. 7 (everything converted to JST).
  CarbonIntensityTrace to_time_zone(TimeZone target) const;

  /// Mean intensity over [start, start+duration) in local hours; duration
  /// may wrap the year boundary. Used for trace-integrated Eq. 6.
  CarbonIntensity mean_over(HourOfYear start, Hours duration) const;

  /// All values observed at a given local hour-of-day (365 samples).
  std::vector<double> hour_of_day_slice(int hour_of_day) const;

  /// CSV with "hour,intensity_g_per_kwh" rows.
  std::string to_csv() const;
  /// Parse a trace back from to_csv() output.
  static CarbonIntensityTrace from_csv(const std::string& region_code,
                                       TimeZone tz, const std::string& csv);

 private:
  std::string region_code_;
  TimeZone tz_;
  std::vector<double> values_;
};

}  // namespace hpcarbon::grid
