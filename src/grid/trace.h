// Carbon-intensity trace: a piecewise-constant year of grid data.
//
// This is the interchange type between the grid simulator (or a real data
// import, grid/import.h) and every consumer: operational-carbon integration
// (Eq. 6), regional statistics (Fig. 6), the hour-of-day winner analysis
// (Fig. 7), and the carbon-aware scheduler.
//
// Resolution: the trace holds one sample per `step_seconds` (default 3600,
// the historical hourly layout) covering exactly the modeled non-leap year.
// Electricity Maps exports ship at 5-minute or 15-minute cadence depending
// on the zone; those import directly at native resolution and every O(1)
// integral below works unchanged (core/series.h carries the prefix sums).
#pragma once

#include <string>
#include <vector>

#include "core/series.h"
#include "core/time.h"
#include "core/units.h"

namespace hpcarbon::grid {

/// Seconds in the modeled (non-leap) year.
inline constexpr double kSecondsPerYear = kHoursPerYear * kSecondsPerHour;

class CarbonIntensityTrace {
 public:
  CarbonIntensityTrace() = default;
  /// values[i] is the carbon intensity (gCO2/kWh) over local seconds
  /// [i*step_seconds, (i+1)*step_seconds). The samples must cover exactly
  /// one year: size * step_seconds == kSecondsPerYear.
  CarbonIntensityTrace(std::string region_code, TimeZone tz,
                       std::vector<double> values,
                       double step_seconds = kSecondsPerHour);

  const std::string& region_code() const { return region_code_; }
  TimeZone time_zone() const { return tz_; }
  std::size_t size() const { return series_.size(); }
  /// Sample cadence in seconds (3600 for hourly, 300 for 5-minute data).
  double step_seconds() const { return series_.step_seconds(); }
  double step_hours() const { return series_.step_hours(); }
  bool hourly() const { return series_.step_seconds() == kSecondsPerHour; }
  const std::vector<double>& values() const { return series_.values(); }

  /// Intensity at the instant the given local hour begins (for hourly
  /// traces: the value of that hour). Use mean_over for hour averages on
  /// sub-hourly data.
  CarbonIntensity at(HourOfYear local_hour) const;
  /// Intensity for an instant given in another zone's local time.
  CarbonIntensity at(HourOfYear hour, TimeZone hour_zone) const;
  /// Intensity at a fractional local hour-of-year (wrapped); resolves to
  /// the native sample containing the instant.
  CarbonIntensity at_hours(double local_hours) const;

  /// Rotated copy whose index i is local time i of `target`: the alignment
  /// step of the paper's Fig. 7 (everything converted to JST). The zone
  /// shift must be a whole number of samples (always true for steps that
  /// divide one hour).
  CarbonIntensityTrace to_time_zone(TimeZone target) const;

  /// Mean intensity over [start, start+duration) in local hours; duration
  /// may wrap the year boundary. Used for trace-integrated Eq. 6.
  /// O(1) via the prefix sums built at construction.
  CarbonIntensity mean_over(HourOfYear start, Hours duration) const;

  /// Integral of intensity over [start_hour, start_hour + duration_hours)
  /// fractional local hours, wrapping the year; units (g/kWh)·h. O(1).
  double interval_sum(double start_hour, double duration_hours) const;

  /// The underlying step series (for consumers that build their own
  /// weighted variants, e.g. the PUE-weighted op::CarbonIntegrator).
  const StepSeries& series() const { return series_; }

  /// Mean-preserving copy at a new cadence (grid/import uses this to move
  /// between 5-minute, 15-minute, and hourly layouts).
  CarbonIntensityTrace resampled(double new_step_seconds) const;

  /// All values observed during a given local hour-of-day, in day order
  /// (365 samples for hourly traces; 365 * samples-per-hour when finer).
  std::vector<double> hour_of_day_slice(int hour_of_day) const;

  /// CSV with "hour,intensity_g_per_kwh" rows (fractional hours when the
  /// trace is sub-hourly).
  std::string to_csv() const;
  /// Parse a trace back from to_csv() output (two columns; the second is
  /// the intensity). The cadence is taken from `step_seconds`.
  static CarbonIntensityTrace from_csv(const std::string& region_code,
                                       TimeZone tz, const std::string& csv,
                                       double step_seconds = kSecondsPerHour);

 private:
  std::string region_code_;
  TimeZone tz_;
  StepSeries series_;  // values + prefix sums, built once at construction
};

}  // namespace hpcarbon::grid
