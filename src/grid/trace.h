// Hourly carbon-intensity trace: one value per hour of the modeled year.
//
// This is the interchange type between the grid simulator (or a real data
// import) and every consumer: operational-carbon integration (Eq. 6),
// regional statistics (Fig. 6), the hour-of-day winner analysis (Fig. 7),
// and the carbon-aware scheduler.
#pragma once

#include <string>
#include <vector>

#include "core/time.h"
#include "core/units.h"

namespace hpcarbon::grid {

/// O(1) interval integrals over an hourly piecewise-constant year series.
///
/// Prefix sums over the 8760 hourly values turn any interval integral —
/// fractional endpoints, year-boundary wrap, multi-year durations — into a
/// constant-time difference of two cumulative values, instead of the
/// hour-stepping loop the scheduler and Eq. 6 integration used to run per
/// query. The hourly values are kept alongside the prefix array so that
/// fractional end-hours weight the *exact* stored value (a prefix
/// difference would reintroduce one ulp of rounding per endpoint).
class HourlyPrefixSum {
 public:
  HourlyPrefixSum() = default;
  /// values[i] applies over local hour [i, i+1); must cover a whole year.
  explicit HourlyPrefixSum(std::vector<double> hourly_values);

  bool empty() const { return hourly_.empty(); }
  /// Integral over one full year.
  double annual_total() const { return prefix_.empty() ? 0.0 : prefix_.back(); }

  /// Integral of the series over [start_hour, start_hour + duration_hours).
  /// `start_hour` may be any finite value (wrapped into the year) and the
  /// duration may span year boundaries or exceed a year. O(1).
  double integral(double start_hour, double duration_hours) const;

 private:
  /// Cumulative integral from hour 0 to fractional `hour` in [0, 8760].
  double cumulative(double hour) const;

  std::vector<double> hourly_;  // size kHoursPerYear
  std::vector<double> prefix_;  // size kHoursPerYear + 1; prefix_[i] = sum < i
};

class CarbonIntensityTrace {
 public:
  CarbonIntensityTrace() = default;
  /// values[i] is the carbon intensity (gCO2/kWh) of local hour i.
  CarbonIntensityTrace(std::string region_code, TimeZone tz,
                       std::vector<double> values);

  const std::string& region_code() const { return region_code_; }
  TimeZone time_zone() const { return tz_; }
  std::size_t size() const { return values_.size(); }
  const std::vector<double>& values() const { return values_; }

  CarbonIntensity at(HourOfYear local_hour) const;
  /// Intensity for an instant given in another zone's local time.
  CarbonIntensity at(HourOfYear hour, TimeZone hour_zone) const;

  /// Rotated copy whose index i is local hour i of `target`: the alignment
  /// step of the paper's Fig. 7 (everything converted to JST).
  CarbonIntensityTrace to_time_zone(TimeZone target) const;

  /// Mean intensity over [start, start+duration) in local hours; duration
  /// may wrap the year boundary. Used for trace-integrated Eq. 6.
  /// O(1) via the prefix sums built at construction.
  CarbonIntensity mean_over(HourOfYear start, Hours duration) const;

  /// Integral of intensity over [start_hour, start_hour + duration_hours)
  /// fractional local hours, wrapping the year; units (g/kWh)·h. O(1).
  double interval_sum(double start_hour, double duration_hours) const;

  /// The underlying prefix-sum structure (for consumers that build their
  /// own weighted variants, e.g. the PUE-weighted op::CarbonIntegrator).
  const HourlyPrefixSum& cumulative() const { return cumulative_; }

  /// All values observed at a given local hour-of-day (365 samples).
  std::vector<double> hour_of_day_slice(int hour_of_day) const;

  /// CSV with "hour,intensity_g_per_kwh" rows.
  std::string to_csv() const;
  /// Parse a trace back from to_csv() output.
  static CarbonIntensityTrace from_csv(const std::string& region_code,
                                       TimeZone tz, const std::string& csv);

 private:
  std::string region_code_;
  TimeZone tz_;
  std::vector<double> values_;
  HourlyPrefixSum cumulative_;  // built once at construction
};

}  // namespace hpcarbon::grid
