#include "grid/presets.h"

namespace hpcarbon::grid {

// Source list order is dispatch order: must-run nuclear and must-take
// renewables first, then the dispatchable merit order (hydro, gas, coal,
// oil). Shortfall becomes imports.

RegionSpec kansai() {
  RegionSpec r;
  r.code = "KN";
  r.name = "Kansai";
  r.country = "Japan";
  r.area = "Kansai Region";
  r.tz = kJst;
  r.demand_diurnal_amp = 0.12;
  r.demand_peak_hour = 14;
  r.demand_seasonal_amp = 0.08;
  r.demand_peak_day = 210;  // summer cooling peak
  r.demand_noise = 0.02;
  r.seed = 101;
  r.sources = {
      {SourceType::kNuclear, 0.20, 0.88, 0, 0.95, 0, 0},
      {SourceType::kSolar, 0.14, 0.9, 0.5, 0.90, 0, 0},
      {SourceType::kWind, 0.02, 0.30, 0.35, 0.96, 0, 0},
      {SourceType::kHydro, 0.09, 0.65, 0, 0.95, 0, 0},
      {SourceType::kGas, 0.75, 0.95, 0, 0.95, 0, 0},
      {SourceType::kCoal, 0.30, 0.90, 0, 0.95, 0, 0},
      {SourceType::kOil, 0.10, 0.85, 0, 0.95, 0, 0},
  };
  return r;
}

RegionSpec tokyo() {
  RegionSpec r;
  r.code = "TK";
  r.name = "Tokyo";
  r.country = "Japan";
  r.area = "Tokyo Region";
  r.tz = kJst;
  r.demand_diurnal_amp = 0.13;
  r.demand_peak_hour = 14;
  r.demand_seasonal_amp = 0.09;
  r.demand_peak_day = 210;
  r.demand_noise = 0.02;
  r.seed = 102;
  // LNG-dominated with a meaningful coal share and no nuclear in 2021:
  // high, steady carbon intensity (lowest CoV of the seven).
  r.sources = {
      {SourceType::kSolar, 0.16, 0.9, 0.5, 0.90, 0, 0},
      {SourceType::kHydro, 0.04, 0.60, 0, 0.95, 0, 0},
      {SourceType::kGas, 0.80, 0.95, 0, 0.95, 0, 0},
      {SourceType::kCoal, 0.30, 0.90, 0, 0.95, 0, 0},
      {SourceType::kOil, 0.12, 0.85, 0, 0.95, 0, 0},
  };
  return r;
}

RegionSpec eso() {
  RegionSpec r;
  r.code = "ESO";
  r.name = "Electricity System Operator";
  r.country = "United Kingdom";
  r.area = "Great Britain";
  r.tz = kGmt;
  r.demand_diurnal_amp = 0.18;
  r.demand_peak_hour = 18;
  r.demand_seasonal_amp = 0.12;
  r.demand_peak_day = 15;  // winter heating peak
  r.demand_noise = 0.02;
  r.seed = 103;
  // Wind-dominated fleet: lowest median CI of the seven but the largest
  // weather-driven swings (highest CoV) — the paper's key ESO finding.
  r.sources = {
      {SourceType::kNuclear, 0.15, 0.85, 0, 0.95, 0, 0},
      {SourceType::kWind, 1.00, 0.40, 0.14, 0.975, 0.15, 2},
      {SourceType::kSolar, 0.22, 0.85, 0.5, 0.90, 0, 0},
      {SourceType::kHydro, 0.02, 0.60, 0, 0.95, 0, 0},
      {SourceType::kBiomass, 0.07, 0.75, 0, 0.95, 0, 0},
      {SourceType::kGas, 0.95, 0.95, 0, 0.95, 0, 0},
      {SourceType::kCoal, 0.03, 0.80, 0, 0.95, 0, 0},
  };
  return r;
}

RegionSpec ciso() {
  RegionSpec r;
  r.code = "CISO";
  r.name = "California Independent System Operator";
  r.country = "United States";
  r.area = "California";
  r.tz = kPst;
  r.demand_diurnal_amp = 0.16;
  r.demand_peak_hour = 18;
  r.demand_seasonal_amp = 0.08;
  r.demand_peak_day = 210;
  r.demand_noise = 0.02;
  r.seed = 104;
  // Solar-dominated: deep midday CI dip (duck curve), gas-heavy evenings.
  // Low median, high CoV — second "greenest" region of Fig. 6.
  r.sources = {
      {SourceType::kNuclear, 0.08, 0.92, 0, 0.95, 0, 0},
      {SourceType::kSolar, 0.60, 0.92, 0.35, 0.90, 0, 0},
      {SourceType::kWind, 0.32, 0.32, 0.30, 0.96, 0.2, 22},
      // Includes firm Pacific-Northwest hydro imports, the big overnight
      // clean block in CAISO's real mix.
      {SourceType::kHydro, 0.36, 0.62, 0, 0.95, 0, 0},
      {SourceType::kGas, 0.95, 0.95, 0, 0.95, 0, 0},
  };
  return r;
}

RegionSpec pjm() {
  RegionSpec r;
  r.code = "PJM";
  r.name = "Pennsylvania-New Jersey-Maryland Interconnection";
  r.country = "United States";
  r.area = "Mid-Atlantic US";
  r.tz = kEst;
  r.demand_diurnal_amp = 0.15;
  r.demand_peak_hour = 17;
  r.demand_seasonal_amp = 0.07;
  r.demand_peak_day = 200;
  r.demand_noise = 0.02;
  r.seed = 105;
  // Large nuclear baseload with gas/coal marginal units: mid-pack median,
  // modest CoV.
  r.sources = {
      {SourceType::kNuclear, 0.34, 0.92, 0, 0.95, 0, 0},
      {SourceType::kWind, 0.04, 0.32, 0.4, 0.96, 0.1, 2},
      {SourceType::kSolar, 0.03, 0.9, 0.5, 0.90, 0, 0},
      {SourceType::kHydro, 0.02, 0.5, 0, 0.95, 0, 0},
      {SourceType::kGas, 0.50, 0.95, 0, 0.95, 0, 0},
      {SourceType::kCoal, 0.48, 0.90, 0, 0.95, 0, 0},
  };
  return r;
}

RegionSpec miso() {
  RegionSpec r;
  r.code = "MISO";
  r.name = "Midcontinent Independent System Operator";
  r.country = "United States, Canada";
  r.area = "Midwest US, Manitoba";
  r.tz = kCst;
  r.demand_diurnal_amp = 0.14;
  r.demand_peak_hour = 17;
  r.demand_seasonal_amp = 0.08;
  r.demand_peak_day = 200;
  r.demand_noise = 0.02;
  r.seed = 106;
  // Coal-heavy: highest-or-close median with small relative variation.
  r.sources = {
      {SourceType::kNuclear, 0.14, 0.92, 0, 0.95, 0, 0},
      {SourceType::kWind, 0.42, 0.34, 0.45, 0.96, 0.15, 2},
      {SourceType::kHydro, 0.02, 0.6, 0, 0.95, 0, 0},
      {SourceType::kCoal, 0.40, 0.92, 0, 0.95, 0, 0},
      {SourceType::kGas, 0.45, 0.95, 0, 0.95, 0, 0},
  };
  return r;
}

RegionSpec ercot() {
  RegionSpec r;
  r.code = "ERCOT";
  r.name = "Electric Reliability Council of Texas";
  r.country = "United States";
  r.area = "Texas";
  r.tz = kCst;
  r.demand_diurnal_amp = 0.18;
  r.demand_peak_hour = 17;
  r.demand_seasonal_amp = 0.10;
  r.demand_peak_day = 210;  // summer cooling
  r.demand_noise = 0.025;
  r.seed = 107;
  // Substantial nocturnal wind over a gas/coal thermal fleet: intermediate
  // median and CoV between the green coastal ISOs and the thermal Midwest.
  r.sources = {
      {SourceType::kNuclear, 0.09, 0.92, 0, 0.95, 0, 0},
      {SourceType::kWind, 0.45, 0.36, 0.50, 0.97, 0.30, 3},
      {SourceType::kSolar, 0.12, 0.9, 0.45, 0.90, 0, 0},
      {SourceType::kGas, 0.85, 0.95, 0, 0.95, 0, 0},
      {SourceType::kCoal, 0.40, 0.90, 0, 0.95, 0, 0},
  };
  return r;
}

std::vector<RegionSpec> all_regions() {
  return {kansai(), tokyo(), eso(), ciso(), pjm(), miso(), ercot()};
}

std::vector<RegionSpec> fig7_regions() { return {eso(), ciso(), ercot()}; }

std::optional<RegionSpec> find_region(const std::string& code) {
  for (const auto& spec : all_regions()) {
    if (spec.code == code) return spec;
  }
  return std::nullopt;
}

std::vector<std::string> codes_of(const std::vector<RegionSpec>& specs) {
  std::vector<std::string> codes;
  codes.reserve(specs.size());
  for (const auto& spec : specs) codes.push_back(spec.code);
  return codes;
}

}  // namespace hpcarbon::grid
