#include "grid/analysis.h"

#include <array>
#include <limits>

#include "core/error.h"

namespace hpcarbon::grid {

RegionSummary summarize(const CarbonIntensityTrace& trace) {
  RegionSummary s;
  s.code = trace.region_code();
  s.box = stats::box_stats(trace.values());
  s.cov_percent = stats::cov_percent(trace.values());
  return s;
}

std::vector<RegionSummary> summarize(
    const std::vector<CarbonIntensityTrace>& traces) {
  std::vector<RegionSummary> out;
  out.reserve(traces.size());
  for (const auto& t : traces) out.push_back(summarize(t));
  return out;
}

namespace {

/// The comparison value of one local hour: the stored sample for hourly
/// traces (unchanged pre-StepSeries behaviour), the hour's mean for finer
/// cadences (a 5-minute import competes on its hour-average intensity).
double hour_value(const CarbonIntensityTrace& trace, int hour) {
  if (trace.hourly()) {
    return trace.values()[static_cast<std::size_t>(hour)];
  }
  return trace.mean_over(HourOfYear(hour), Hours::hours(1.0)).to_g_per_kwh();
}

}  // namespace

HourlyWinners hourly_lowest_ci(const std::vector<CarbonIntensityTrace>& traces,
                               TimeZone reference_tz) {
  HPC_REQUIRE(traces.size() >= 2, "need at least two regions to compare");
  HourlyWinners w;
  std::vector<CarbonIntensityTrace> aligned;
  aligned.reserve(traces.size());
  for (const auto& t : traces) {
    w.region_codes.push_back(t.region_code());
    aligned.push_back(t.to_time_zone(reference_tz));
  }
  w.counts.assign(traces.size(), {});

  for (int d = 0; d < kDaysPerYear; ++d) {
    for (int h = 0; h < kHoursPerDay; ++h) {
      const int hour = d * kHoursPerDay + h;
      double best = std::numeric_limits<double>::infinity();
      std::size_t winner = 0;
      for (std::size_t r = 0; r < aligned.size(); ++r) {
        const double v = hour_value(aligned[r], hour);
        if (v < best) {
          best = v;
          winner = r;
        }
      }
      ++w.counts[winner][static_cast<std::size_t>(h)];
    }
  }
  return w;
}

std::array<double, kHoursPerDay> diurnal_profile(
    const CarbonIntensityTrace& trace) {
  std::array<double, kHoursPerDay> profile{};
  for (int h = 0; h < kHoursPerDay; ++h) {
    const auto slice = trace.hour_of_day_slice(h);
    profile[static_cast<std::size_t>(h)] = stats::mean(slice);
  }
  return profile;
}

double fraction_lower(const CarbonIntensityTrace& a,
                      const CarbonIntensityTrace& b) {
  const auto au = a.to_time_zone(kUtc);
  const auto bu = b.to_time_zone(kUtc);
  int lower = 0;
  for (int i = 0; i < kHoursPerYear; ++i) {
    if (hour_value(au, i) < hour_value(bu, i)) ++lower;
  }
  return static_cast<double>(lower) / kHoursPerYear;
}

}  // namespace hpcarbon::grid
