// Discrete-event multi-site scheduler simulator.
//
// Policies compared by the ablation bench (Sec. 4 implications):
//  * FcfsLocal       — run everything at the home site, first come first
//                      served (the carbon-unaware baseline).
//  * GreedyLowestCi  — at dispatch, choose the free site with the lowest
//                      current carbon intensity (cross-region exploitation
//                      of Fig. 7), paying a data-transfer energy penalty on
//                      remote placement.
//  * ThresholdDelay  — stay local but defer start until the local intensity
//                      drops below a threshold or a maximum delay passes
//                      (temporal exploitation of Fig. 6's variance).
//  * BudgetAware     — GreedyLowestCi ordering, with queue priority for
//                      users who have been economical with their carbon
//                      budget (the paper's incentive-structure proposal).
//  * ForecastDelay   — on arrival, pick the start offset (within the delay
//                      budget) that a causal diurnal-template forecast of
//                      the home grid predicts to be cleanest over the job's
//                      runtime; extends ThresholdDelay with the forecasting
//                      support the paper says production schedulers need.
//  * NetBenefit      — cross-region dispatch only when the intensity gap
//                      times the job's energy exceeds the transfer carbon:
//                      the explicit tradeoff of Insight 7.
#pragma once

#include <string>
#include <vector>

#include "core/time.h"
#include "core/units.h"
#include "op/pue.h"
#include "sched/budget.h"
#include "sched/job.h"

namespace hpcarbon::sched {

enum class Policy {
  kFcfsLocal,
  kGreedyLowestCi,
  kThresholdDelay,
  kBudgetAware,
  kForecastDelay,
  kNetBenefit,
};
const char* to_string(Policy p);

struct PolicyConfig {
  Policy policy = Policy::kFcfsLocal;
  /// ThresholdDelay: run when local CI <= threshold…
  double ci_threshold_g_per_kwh = 150.0;
  /// …or when the job has waited this long (also the ForecastDelay search
  /// window).
  double max_delay_hours = 12.0;
  /// BudgetAware: per-user allocation for the simulated horizon.
  Mass user_budget = Mass::kilograms(200);
  /// ForecastDelay: trailing window of the diurnal template, days.
  int forecast_window_days = 14;
};

struct ScheduleMetrics {
  Mass total_carbon;       // compute + transfer
  Mass transfer_carbon;
  Energy total_energy;     // facility side
  double mean_wait_hours = 0;
  double p95_wait_hours = 0;
  double utilization = 0;  // busy node-hours / available node-hours
  int jobs_completed = 0;
  int remote_dispatches = 0;

  std::string to_string() const;
};

/// Per-job outcome (for tests and detailed reporting).
struct JobOutcome {
  int job_id = 0;
  std::string site;
  double start_hour = 0;
  double wait_hours = 0;
  Mass carbon;
};

class SchedulerSimulator {
 public:
  /// sites[0] is the home site. `epoch` anchors hour 0 of the simulation on
  /// the traces' calendar (UTC).
  SchedulerSimulator(std::vector<Site> sites, HourOfYear epoch,
                     op::PueModel pue = op::PueModel());

  ScheduleMetrics run(const std::vector<Job>& jobs, const PolicyConfig& cfg);
  /// As run(), and also returns per-job outcomes (parallel to completion
  /// order) and the final budget ledger via out-parameters when non-null.
  ScheduleMetrics run(const std::vector<Job>& jobs, const PolicyConfig& cfg,
                      std::vector<JobOutcome>* outcomes,
                      CarbonBudgetLedger* ledger_out);

 private:
  std::vector<Site> sites_;
  HourOfYear epoch_;
  op::PueModel pue_;
};

}  // namespace hpcarbon::sched
