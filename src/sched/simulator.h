// Legacy facade over the engine/policy split.
//
// The scheduler used to be one monolithic class; it is now three layers —
// SchedulingEngine (sched/engine.h) owns the discrete-event mechanism,
// SchedulingPolicy subclasses (sched/policy.h) own the decisions, and a
// string-keyed registry makes the set of policies open. This header keeps
// the original enum-configured surface working: SchedulerSimulator::run
// resolves PolicyConfig::policy through the registry and delegates to the
// engine, reproducing the pre-split behaviour policy for policy.
#pragma once

#include <string>
#include <vector>

#include "core/time.h"
#include "core/units.h"
#include "op/pue.h"
#include "sched/budget.h"
#include "sched/engine.h"
#include "sched/job.h"
#include "sched/policy.h"

namespace hpcarbon::sched {

class SchedulerSimulator {
 public:
  /// sites[0] is the home site. `epoch` anchors hour 0 of the simulation on
  /// the traces' calendar (UTC).
  SchedulerSimulator(std::vector<Site> sites, HourOfYear epoch,
                     op::PueModel pue = op::PueModel());

  /// Run cfg.policy through the engine. An empty workload yields
  /// zero-valued metrics.
  ScheduleMetrics run(const std::vector<Job>& jobs, const PolicyConfig& cfg);
  /// As run(), and also returns per-job outcomes (parallel to completion
  /// order) and the final budget ledger via out-parameters when non-null.
  ScheduleMetrics run(const std::vector<Job>& jobs, const PolicyConfig& cfg,
                      std::vector<JobOutcome>* outcomes,
                      CarbonBudgetLedger* ledger_out);

  /// The underlying engine (per-site O(1) carbon integrators included).
  SchedulingEngine& engine() { return engine_; }

 private:
  SchedulingEngine engine_;
};

}  // namespace hpcarbon::sched
