// Synthetic job-stream generator for scheduler experiments.
//
// Poisson arrivals with lognormal durations reproduce the heavy-tailed job
// mixes reported for production GPU clusters (Helios, MIT Supercloud,
// Philly), which is all the scheduler ablations need.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/job.h"

namespace hpcarbon::sched {

struct WorkloadParams {
  double horizon_hours = 24.0 * 28;  // four weeks
  double arrival_rate_per_hour = 4.0;
  double duration_log_mean = 1.2;    // exp(1.2) ~ 3.3 h median
  double duration_log_sigma = 1.0;
  double max_duration_hours = 96.0;
  double min_power_kw = 0.6;         // 1-2 GPU jobs
  double max_power_kw = 2.4;         // full 4-GPU node jobs
  int user_count = 8;
  std::uint64_t seed = 2024;
};

std::vector<Job> generate_jobs(const WorkloadParams& params);

}  // namespace hpcarbon::sched
