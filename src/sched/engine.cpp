#include "sched/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>

#include "core/error.h"
#include "core/stats.h"

namespace hpcarbon::sched {

std::string ScheduleMetrics::to_string() const {
  std::ostringstream out;
  out << "carbon " << hpcarbon::to_string(total_carbon) << " (transfer "
      << hpcarbon::to_string(transfer_carbon) << "), energy "
      << hpcarbon::to_string(total_energy) << ", mean wait "
      << mean_wait_hours << " h, p95 wait " << p95_wait_hours
      << " h, utilization " << utilization << ", jobs " << jobs_completed
      << ", remote " << remote_dispatches;
  return out.str();
}

namespace {

struct Completion {
  double time;
  std::size_t site;
  bool operator>(const Completion& o) const { return time > o.time; }
};

}  // namespace

SchedulingEngine::SchedulingEngine(std::vector<Site> sites, HourOfYear epoch,
                                   op::PueModel pue)
    : sites_(std::move(sites)), epoch_(epoch), pue_(pue) {
  HPC_REQUIRE(!sites_.empty(), "need at least one site");
  integrators_.reserve(sites_.size());
  for (const auto& s : sites_) {
    HPC_REQUIRE(s.capacity > 0, "site capacity must be positive");
    integrators_.emplace_back(s.trace_utc, pue_);
  }
}

ScheduleMetrics SchedulingEngine::run(const std::vector<Job>& jobs,
                                      SchedulingPolicy& policy,
                                      std::vector<JobOutcome>* outcomes,
                                      CarbonBudgetLedger* ledger_out) {
  if (jobs.empty()) {
    // A quiet horizon is a valid scenario, not a programming error: sweeps
    // over generated workloads must see all-zero metrics, not an abort.
    if (ledger_out != nullptr) *ledger_out = CarbonBudgetLedger{};
    return ScheduleMetrics{};
  }
  std::vector<Job> arrivals(jobs);
  // Stable: jobs submitted at the same instant keep their input order, so
  // FCFS tie-breaking (and therefore the whole event sequence) is a
  // deterministic function of the job list — std::sort may permute equal
  // submit times, which made tie-heavy runs irreproducible across engines.
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Job& a, const Job& b) {
                     return a.submit_hour < b.submit_hour;
                   });

  CarbonBudgetLedger ledger;
  std::vector<int> free_slots;
  for (const auto& s : sites_) free_slots.push_back(s.capacity);

  std::vector<PendingJob> waiting;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;

  ScheduleMetrics metrics;
  std::vector<double> waits;
  double busy_node_hours = 0;
  double makespan = 0;
  double total_grams = 0;
  double transfer_grams = 0;
  double total_kwh = 0;

  std::size_t next_arrival = 0;
  double t = 0;

  ClusterView view;
  view.sites_ = &sites_;
  view.free_slots_ = &free_slots;
  view.integrators_ = &integrators_;
  view.ledger_ = &ledger;
  view.pue_ = &pue_;
  view.now_ = &t;
  view.epoch_ = epoch_;

  policy.begin_run(arrivals, ledger, view);

  auto start_job = [&](const Job& j, std::size_t site, double now) {
    --free_slots[site];
    completions.push(Completion{now + j.duration_hours, site});
    const double grams = view.job_carbon_g(site, j.it_power, now,
                                           j.duration_hours);
    const double kwh =
        j.it_power.to_kilowatts() * j.duration_hours * pue_.base();
    double tgrams = 0;
    if (site != 0) {
      ++metrics.remote_dispatches;
      tgrams = sites_[site].transfer_energy.to_kwh() * view.current_ci(site);
      total_kwh += sites_[site].transfer_energy.to_kwh();
    }
    total_grams += grams + tgrams;
    transfer_grams += tgrams;
    total_kwh += kwh;
    busy_node_hours += j.duration_hours;
    makespan = std::max(makespan, now + j.duration_hours);
    const double wait = now - j.submit_hour;
    waits.push_back(wait);
    ledger.charge(j.user, Mass::grams(grams + tgrams));
    if (outcomes != nullptr) {
      outcomes->push_back(JobOutcome{j.id, sites_[site].code, now, wait,
                                     Mass::grams(grams + tgrams)});
    }
    ++metrics.jobs_completed;
    policy.on_job_started(j, site, grams + tgrams, view);
  };

  auto dispatch = [&] {
    while (!waiting.empty()) {
      const auto decision = policy.select(waiting, view);
      if (!decision.has_value()) return;
      HPC_REQUIRE(decision->queue_index < waiting.size() &&
                      decision->site < sites_.size() &&
                      free_slots[decision->site] > 0,
                  "policy returned an invalid dispatch decision");
      const Job j = waiting[decision->queue_index].job;
      waiting.erase(waiting.begin() +
                    static_cast<std::ptrdiff_t>(decision->queue_index));
      start_job(j, decision->site, t);
    }
  };

  // Event loop: arrivals, completions, hourly ticks (so delay/throttle
  // policies re-evaluate as the grid's intensity moves), and planned start
  // times.
  while (next_arrival < arrivals.size() || !completions.empty() ||
         !waiting.empty()) {
    double next_time = std::numeric_limits<double>::infinity();
    if (next_arrival < arrivals.size()) {
      next_time = std::min(next_time, arrivals[next_arrival].submit_hour);
    }
    if (!completions.empty()) {
      next_time = std::min(next_time, completions.top().time);
    }
    if (!waiting.empty()) {
      next_time = std::min(next_time, std::floor(t) + 1.0);  // next tick
      for (const auto& p : waiting) {
        if (p.earliest_start > t) {
          next_time = std::min(next_time, p.earliest_start);
        }
      }
    }
    HPC_REQUIRE(std::isfinite(next_time), "scheduler deadlock");
    t = std::max(t, next_time);

    // Exact comparisons, not `<= t + 1e-12`: every event time is either an
    // input (submit, submit+duration) or a whole hour, and t only ever
    // takes those values, so equality is well-defined. The old epsilon
    // could fire an event up to 1e-12 h early, which made the engine's
    // event order impossible to reproduce in an integer-tick engine
    // (src/fleetsim asserts bit-identity against this loop).
    while (!completions.empty() && completions.top().time <= t) {
      ++free_slots[completions.top().site];
      completions.pop();
    }
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].submit_hour <= t) {
      const Job& j = arrivals[next_arrival];
      waiting.push_back(PendingJob{j, policy.planned_start(j, view)});
      ++next_arrival;
    }
    dispatch();
  }

  metrics.total_carbon = Mass::grams(total_grams);
  metrics.transfer_carbon = Mass::grams(transfer_grams);
  metrics.total_energy = Energy::kilowatt_hours(total_kwh);
  metrics.mean_wait_hours = stats::mean(waits);
  metrics.p95_wait_hours = stats::quantile(waits, 0.95);
  int capacity_total = 0;
  for (const auto& s : sites_) capacity_total += s.capacity;
  metrics.utilization =
      makespan > 0 ? busy_node_hours / (capacity_total * makespan) : 0.0;
  if (ledger_out != nullptr) *ledger_out = ledger;
  return metrics;
}

}  // namespace hpcarbon::sched
