#include "sched/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <queue>
#include <set>
#include <sstream>

#include "core/error.h"
#include "core/stats.h"
#include "grid/forecast.h"

namespace hpcarbon::sched {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kFcfsLocal: return "fcfs-local";
    case Policy::kGreedyLowestCi: return "greedy-lowest-ci";
    case Policy::kThresholdDelay: return "threshold-delay";
    case Policy::kBudgetAware: return "budget-aware";
    case Policy::kForecastDelay: return "forecast-delay";
    case Policy::kNetBenefit: return "net-benefit";
  }
  return "?";
}

std::string ScheduleMetrics::to_string() const {
  std::ostringstream out;
  out << "carbon " << hpcarbon::to_string(total_carbon) << " (transfer "
      << hpcarbon::to_string(transfer_carbon) << "), energy "
      << hpcarbon::to_string(total_energy) << ", mean wait "
      << mean_wait_hours << " h, p95 wait " << p95_wait_hours
      << " h, utilization " << utilization << ", jobs " << jobs_completed
      << ", remote " << remote_dispatches;
  return out.str();
}

SchedulerSimulator::SchedulerSimulator(std::vector<Site> sites,
                                       HourOfYear epoch, op::PueModel pue)
    : sites_(std::move(sites)), epoch_(epoch), pue_(pue) {
  HPC_REQUIRE(!sites_.empty(), "need at least one site");
  for (const auto& s : sites_) {
    HPC_REQUIRE(s.capacity > 0, "site capacity must be positive");
  }
}

namespace {

// Carbon of a constant-power interval [t, t+d) (global fractional hours),
// priced hour-by-hour on the site's UTC trace.
double interval_carbon_g(const Site& site, HourOfYear epoch, double t,
                         double d, Power power, const op::PueModel& pue) {
  double grams = 0;
  double remaining = d;
  double cursor = t;
  const double kw = power.to_kilowatts();
  while (remaining > 1e-12) {
    const double hour_end = std::floor(cursor) + 1.0;
    const double step = std::min(remaining, hour_end - cursor);
    const HourOfYear h = epoch.shifted(static_cast<int>(std::floor(cursor)));
    grams += site.trace_utc.at(h).to_g_per_kwh() * kw * step * pue.at(h);
    cursor += step;
    remaining -= step;
  }
  return grams;
}

double current_ci(const Site& site, HourOfYear epoch, double t) {
  const HourOfYear h = epoch.shifted(static_cast<int>(std::floor(t)));
  return site.trace_utc.at(h).to_g_per_kwh();
}

struct Completion {
  double time;
  std::size_t site;
  bool operator>(const Completion& o) const { return time > o.time; }
};

}  // namespace

ScheduleMetrics SchedulerSimulator::run(const std::vector<Job>& jobs,
                                        const PolicyConfig& cfg) {
  return run(jobs, cfg, nullptr, nullptr);
}

ScheduleMetrics SchedulerSimulator::run(const std::vector<Job>& jobs,
                                        const PolicyConfig& cfg,
                                        std::vector<JobOutcome>* outcomes,
                                        CarbonBudgetLedger* ledger_out) {
  HPC_REQUIRE(!jobs.empty(), "no jobs to schedule");
  std::vector<Job> arrivals(jobs);
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Job& a, const Job& b) { return a.submit_hour < b.submit_hour; });

  CarbonBudgetLedger ledger;
  if (cfg.policy == Policy::kBudgetAware) {
    std::set<std::string> users;
    for (const auto& j : arrivals) users.insert(j.user);
    for (const auto& u : users) ledger.set_allocation(u, cfg.user_budget);
  }

  // Causal forecast of the home grid, used by ForecastDelay to plan starts.
  std::unique_ptr<grid::DiurnalTemplateForecast> forecast;
  if (cfg.policy == Policy::kForecastDelay) {
    forecast = std::make_unique<grid::DiurnalTemplateForecast>(
        sites_[0].trace_utc, cfg.forecast_window_days);
  }

  std::vector<int> free_slots;
  for (const auto& s : sites_) free_slots.push_back(s.capacity);

  struct Pending {
    Job job;
    double earliest_start;
  };
  std::deque<Pending> waiting;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;

  ScheduleMetrics metrics;
  std::vector<double> waits;
  double busy_node_hours = 0;
  double makespan = 0;
  double total_grams = 0;
  double transfer_grams = 0;
  double total_kwh = 0;

  std::size_t next_arrival = 0;
  double t = 0;

  auto pick_lowest_ci_site = [&](double now) -> long {
    long best = -1;
    double best_ci = 0;
    for (std::size_t s = 0; s < sites_.size(); ++s) {
      if (free_slots[s] <= 0) continue;
      const double ci = current_ci(sites_[s], epoch_, now);
      if (best < 0 || ci < best_ci) {
        best = static_cast<long>(s);
        best_ci = ci;
      }
    }
    return best;
  };

  auto start_job = [&](const Job& j, std::size_t site, double now) {
    --free_slots[site];
    completions.push(Completion{now + j.duration_hours, site});
    double grams = interval_carbon_g(sites_[site], epoch_, now,
                                     j.duration_hours, j.it_power, pue_);
    const double kwh =
        j.it_power.to_kilowatts() * j.duration_hours * pue_.base();
    double tgrams = 0;
    if (site != 0) {
      ++metrics.remote_dispatches;
      tgrams = sites_[site].transfer_energy.to_kwh() *
               current_ci(sites_[site], epoch_, now);
      total_kwh += sites_[site].transfer_energy.to_kwh();
    }
    total_grams += grams + tgrams;
    transfer_grams += tgrams;
    total_kwh += kwh;
    busy_node_hours += j.duration_hours;
    makespan = std::max(makespan, now + j.duration_hours);
    const double wait = now - j.submit_hour;
    waits.push_back(wait);
    ledger.charge(j.user, Mass::grams(grams + tgrams));
    if (outcomes != nullptr) {
      outcomes->push_back(JobOutcome{j.id, sites_[site].code, now, wait,
                                     Mass::grams(grams + tgrams)});
    }
    ++metrics.jobs_completed;
  };

  // ForecastDelay: choose the start offset (whole hours within the delay
  // budget) whose predicted window-average intensity is lowest.
  auto planned_start = [&](const Job& j) {
    if (cfg.policy != Policy::kForecastDelay) return j.submit_hour;
    const HourOfYear origin =
        epoch_.shifted(static_cast<int>(std::floor(j.submit_hour)));
    int best_offset = 0;
    double best_ci = std::numeric_limits<double>::infinity();
    const int max_w = static_cast<int>(cfg.max_delay_hours);
    for (int w = 0; w <= max_w; ++w) {
      const double ci =
          forecast->predict_window(origin, w, j.duration_hours);
      if (ci < best_ci) {
        best_ci = ci;
        best_offset = w;
      }
    }
    return j.submit_hour + best_offset;
  };

  auto dispatch = [&](double now) {
    while (!waiting.empty()) {
      switch (cfg.policy) {
        case Policy::kFcfsLocal: {
          if (free_slots[0] <= 0) return;
          Job j = waiting.front().job;
          waiting.pop_front();
          start_job(j, 0, now);
          break;
        }
        case Policy::kGreedyLowestCi: {
          const long site = pick_lowest_ci_site(now);
          if (site < 0) return;
          Job j = waiting.front().job;
          waiting.pop_front();
          start_job(j, static_cast<std::size_t>(site), now);
          break;
        }
        case Policy::kNetBenefit: {
          // Prefer home; move only when the intensity gap pays for the
          // transfer. If home is full, take the best remote anyway (work
          // conservation); if nothing is free, wait.
          const long best = pick_lowest_ci_site(now);
          if (best < 0) return;
          long site = best;
          if (free_slots[0] > 0 && best != 0) {
            const Job& j = waiting.front().job;
            const double ci_home = current_ci(sites_[0], epoch_, now);
            const double ci_away =
                current_ci(sites_[static_cast<std::size_t>(best)], epoch_, now);
            const double job_kwh =
                j.it_power.to_kilowatts() * j.duration_hours * pue_.base();
            const double saved = (ci_home - ci_away) * job_kwh;
            const double transfer_cost =
                sites_[static_cast<std::size_t>(best)].transfer_energy.to_kwh() *
                ci_away;
            if (saved <= transfer_cost) site = 0;
          }
          Job j = waiting.front().job;
          waiting.pop_front();
          start_job(j, static_cast<std::size_t>(site), now);
          break;
        }
        case Policy::kBudgetAware: {
          const long site = pick_lowest_ci_site(now);
          if (site < 0) return;
          // Serve the waiting job whose user has been most economical.
          auto best = waiting.begin();
          for (auto it = waiting.begin(); it != waiting.end(); ++it) {
            if (ledger.priority(it->job.user) >
                ledger.priority(best->job.user)) {
              best = it;
            }
          }
          Job j = best->job;
          waiting.erase(best);
          start_job(j, static_cast<std::size_t>(site), now);
          break;
        }
        case Policy::kThresholdDelay: {
          if (free_slots[0] <= 0) return;
          const double ci = current_ci(sites_[0], epoch_, now);
          auto eligible = waiting.end();
          for (auto it = waiting.begin(); it != waiting.end(); ++it) {
            if (ci <= cfg.ci_threshold_g_per_kwh ||
                now - it->job.submit_hour >= cfg.max_delay_hours) {
              eligible = it;
              break;
            }
          }
          if (eligible == waiting.end()) return;
          Job j = eligible->job;
          waiting.erase(eligible);
          start_job(j, 0, now);
          break;
        }
        case Policy::kForecastDelay: {
          if (free_slots[0] <= 0) return;
          auto eligible = waiting.end();
          for (auto it = waiting.begin(); it != waiting.end(); ++it) {
            if (now + 1e-12 >= it->earliest_start) {
              eligible = it;
              break;
            }
          }
          if (eligible == waiting.end()) return;
          Job j = eligible->job;
          waiting.erase(eligible);
          start_job(j, 0, now);
          break;
        }
      }
    }
  };

  // Event loop: arrivals, completions, hourly ticks (so the delay policies
  // re-evaluate as the grid's intensity moves), and planned start times.
  while (next_arrival < arrivals.size() || !completions.empty() ||
         !waiting.empty()) {
    double next_time = std::numeric_limits<double>::infinity();
    if (next_arrival < arrivals.size()) {
      next_time = std::min(next_time, arrivals[next_arrival].submit_hour);
    }
    if (!completions.empty()) {
      next_time = std::min(next_time, completions.top().time);
    }
    if (!waiting.empty()) {
      next_time = std::min(next_time, std::floor(t) + 1.0);  // next tick
      for (const auto& p : waiting) {
        if (p.earliest_start > t) {
          next_time = std::min(next_time, p.earliest_start);
        }
      }
    }
    HPC_REQUIRE(std::isfinite(next_time), "scheduler deadlock");
    t = std::max(t, next_time);

    while (!completions.empty() && completions.top().time <= t + 1e-12) {
      ++free_slots[completions.top().site];
      completions.pop();
    }
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].submit_hour <= t + 1e-12) {
      const Job& j = arrivals[next_arrival];
      waiting.push_back(Pending{j, planned_start(j)});
      ++next_arrival;
    }
    dispatch(t);
  }

  metrics.total_carbon = Mass::grams(total_grams);
  metrics.transfer_carbon = Mass::grams(transfer_grams);
  metrics.total_energy = Energy::kilowatt_hours(total_kwh);
  metrics.mean_wait_hours = stats::mean(waits);
  metrics.p95_wait_hours = stats::quantile(waits, 0.95);
  int capacity_total = 0;
  for (const auto& s : sites_) capacity_total += s.capacity;
  metrics.utilization =
      makespan > 0 ? busy_node_hours / (capacity_total * makespan) : 0.0;
  if (ledger_out != nullptr) *ledger_out = ledger;
  return metrics;
}

}  // namespace hpcarbon::sched
