#include "sched/simulator.h"

namespace hpcarbon::sched {

SchedulerSimulator::SchedulerSimulator(std::vector<Site> sites,
                                       HourOfYear epoch, op::PueModel pue)
    : engine_(std::move(sites), epoch, pue) {}

ScheduleMetrics SchedulerSimulator::run(const std::vector<Job>& jobs,
                                        const PolicyConfig& cfg) {
  return run(jobs, cfg, nullptr, nullptr);
}

ScheduleMetrics SchedulerSimulator::run(const std::vector<Job>& jobs,
                                        const PolicyConfig& cfg,
                                        std::vector<JobOutcome>* outcomes,
                                        CarbonBudgetLedger* ledger_out) {
  const auto policy = make_policy(cfg);
  return engine_.run(jobs, *policy, outcomes, ledger_out);
}

}  // namespace hpcarbon::sched
