#include "sched/budget.h"

#include "core/error.h"

namespace hpcarbon::sched {

void CarbonBudgetLedger::set_allocation(const std::string& user, Mass budget) {
  HPC_REQUIRE(budget.to_grams() >= 0, "budget must be non-negative");
  accounts_[user].allocation_g = budget.to_grams();
}

void CarbonBudgetLedger::charge(const std::string& user, Mass amount) {
  HPC_REQUIRE(amount.to_grams() >= 0, "charge must be non-negative");
  accounts_[user].spent_g += amount.to_grams();
}

Mass CarbonBudgetLedger::allocation(const std::string& user) const {
  auto it = accounts_.find(user);
  return Mass::grams(it == accounts_.end() ? 0.0 : it->second.allocation_g);
}

Mass CarbonBudgetLedger::spent(const std::string& user) const {
  auto it = accounts_.find(user);
  return Mass::grams(it == accounts_.end() ? 0.0 : it->second.spent_g);
}

double CarbonBudgetLedger::remaining_fraction(const std::string& user) const {
  auto it = accounts_.find(user);
  if (it == accounts_.end() || it->second.allocation_g <= 0) return 0.0;
  return 1.0 - it->second.spent_g / it->second.allocation_g;
}

}  // namespace hpcarbon::sched
