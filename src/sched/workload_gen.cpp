#include "sched/workload_gen.h"

#include <algorithm>

#include "core/error.h"
#include "core/rng.h"

namespace hpcarbon::sched {

std::vector<Job> generate_jobs(const WorkloadParams& p) {
  HPC_REQUIRE(p.horizon_hours > 0, "horizon must be positive");
  HPC_REQUIRE(p.arrival_rate_per_hour > 0, "arrival rate must be positive");
  HPC_REQUIRE(p.user_count > 0, "need at least one user");
  Rng rng(p.seed);
  std::vector<Job> jobs;
  double t = 0;
  int id = 0;
  while (true) {
    t += rng.exponential(p.arrival_rate_per_hour);
    if (t >= p.horizon_hours) break;
    Job j;
    j.id = id++;
    j.user = "user" + std::to_string(rng.uniform_int(0, p.user_count - 1));
    j.submit_hour = t;
    j.duration_hours = std::min(
        p.max_duration_hours, rng.lognormal(p.duration_log_mean,
                                            p.duration_log_sigma));
    j.it_power = Power::kilowatts(rng.uniform(p.min_power_kw, p.max_power_kw));
    jobs.push_back(std::move(j));
  }
  return jobs;
}

}  // namespace hpcarbon::sched
