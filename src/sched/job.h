// Jobs and sites for the carbon-intensity-aware scheduler.
//
// Sec. 4 of the paper identifies "a strong opportunity for systems
// researchers to design, develop, and deploy carbon-intensity-aware job
// schedulers" exploiting the temporal and cross-region variations of
// Figs. 6-7, plus a per-user carbon-budget incentive structure. This module
// is that actionable artifact: a discrete-event scheduler over multiple
// regional HPC sites fed by the grid traces.
#pragma once

#include <string>

#include "core/units.h"
#include "grid/trace.h"

namespace hpcarbon::sched {

struct Job {
  int id = 0;
  std::string user;
  double submit_hour = 0;    // global (UTC) hours since simulation start
  double duration_hours = 0;
  Power it_power;            // average IT draw while running
};

/// One regional HPC site. Traces are stored in UTC internally so that all
/// sites share the simulator's global clock.
struct Site {
  std::string code;          // "ESO"
  grid::CarbonIntensityTrace trace_utc;
  int capacity = 16;         // concurrently running jobs
  /// WAN transfer energy for shipping a remote job's data (charged at the
  /// destination's carbon intensity at dispatch time) — the cost Fig. 7's
  /// implication says distribution policies must weigh. Default sized for
  /// a ~100 GB dataset at published WAN transport intensities.
  Energy transfer_energy = Energy::kilowatt_hours(0.5);
};

Site make_site(const std::string& code, const grid::CarbonIntensityTrace& local,
               int capacity, Energy transfer_energy = Energy::kilowatt_hours(0.5));

}  // namespace hpcarbon::sched
