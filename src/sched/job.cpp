#include "sched/job.h"

namespace hpcarbon::sched {

Site make_site(const std::string& code,
               const grid::CarbonIntensityTrace& local, int capacity,
               Energy transfer_energy) {
  Site s;
  s.code = code;
  s.trace_utc = local.to_time_zone(kUtc);
  s.capacity = capacity;
  s.transfer_energy = transfer_energy;
  return s;
}

}  // namespace hpcarbon::sched
