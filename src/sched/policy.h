// Pluggable scheduling policies: the strategy layer of the scheduler.
//
// Sec. 4 of the paper sketches a family of carbon-aware scheduling ideas
// (temporal shifting, cross-region dispatch, budget incentives); this module
// turns each into one small class behind a common interface so new policies
// are additions, not edits to a monolithic switch. The pieces:
//
//  * ClusterView        — the read-only window a policy gets on the cluster:
//                         free slots, O(1) carbon pricing, current CI, the
//                         budget ledger, and the simulation clock.
//  * SchedulingPolicy   — the strategy interface: plan a start on arrival,
//                         pick (job, site) pairs at dispatch time, observe
//                         started jobs.
//  * Policy registry    — string-keyed factory; the CLI and benches
//                         enumerate it instead of hard-coding an enum, so a
//                         policy registered here appears in `hpcarbon run`,
//                         `hpcarbon policies`, and the ablation bench with
//                         no further wiring.
//
// The engine that drives these lives in sched/engine.h; the legacy
// enum-based SchedulerSimulator facade in sched/simulator.h delegates here.
#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/units.h"
#include "op/operational.h"
#include "op/pue.h"
#include "sched/budget.h"
#include "sched/job.h"

namespace hpcarbon::fleetsim {
class FleetEngine;  // binds ClusterView for integer-tick runs (src/fleetsim)
}

namespace hpcarbon::sched {

/// Legacy programmatic identifiers. The registry below is the open,
/// string-keyed surface; this enum is retained so existing code and tests
/// can configure the built-in policies without string lookups.
enum class Policy {
  kFcfsLocal,
  kGreedyLowestCi,
  kThresholdDelay,
  kBudgetAware,
  kForecastDelay,
  kNetBenefit,
  kForecastNetBenefit,
  kRenewableCap,
};
const char* to_string(Policy p);

/// Knob bag shared by every built-in policy; each class reads only the
/// fields it documents. Registry `make` functions receive one of these.
struct PolicyConfig {
  Policy policy = Policy::kFcfsLocal;
  /// ThresholdDelay: run when local CI <= threshold…
  double ci_threshold_g_per_kwh = 150.0;
  /// …or when the job has waited this long (also the ForecastDelay search
  /// window and the RenewableCap fairness guard).
  double max_delay_hours = 12.0;
  /// BudgetAware: per-user allocation for the simulated horizon.
  Mass user_budget = Mass::kilograms(200);
  /// ForecastDelay / ForecastNetBenefit: trailing window of the diurnal
  /// template, days.
  int forecast_window_days = 14;
  /// RenewableCap: throttle dispatch while the rolling emission rate over
  /// `burn_window_hours` exceeds this cap.
  double burn_cap_g_per_hour = 8000.0;
  double burn_window_hours = 24.0;
};

/// A queued job plus the policy-planned earliest start (ForecastDelay).
struct PendingJob {
  Job job;
  double earliest_start = 0;
};

/// What a policy hands back from select(): start `queue_index` on `site`.
struct DispatchDecision {
  std::size_t queue_index = 0;
  std::size_t site = 0;
};

/// Read-only window on the engine's cluster state, bound for the duration
/// of one run. All carbon queries are O(1) via per-site prefix sums.
class ClusterView {
 public:
  /// Current simulation time, global fractional hours since the epoch.
  double now() const { return *now_; }
  HourOfYear epoch() const { return epoch_; }
  /// Hour-of-year (UTC) containing simulation time `t`.
  HourOfYear hour_at(double t) const {
    return epoch_.shifted(static_cast<int>(std::floor(t)));
  }

  std::size_t site_count() const { return sites_->size(); }
  const Site& site(std::size_t i) const { return (*sites_)[i]; }
  int free_slots(std::size_t i) const { return (*free_slots_)[i]; }

  /// Carbon intensity (g/kWh) at site i at time `now()`.
  double current_ci(std::size_t i) const;
  /// PUE-weighted grams of CO2 if `it_power` ran at site i over
  /// [start, start + duration) simulation hours. O(1).
  double job_carbon_g(std::size_t i, Power it_power, double start,
                      double duration) const;
  double pue_base() const { return pue_->base(); }

  const CarbonBudgetLedger& ledger() const { return *ledger_; }

  /// Free site with the lowest current carbon intensity, or -1 when every
  /// site is full. Ties resolve deterministically to the LOWEST site index
  /// (so equal-CI sites prefer home, and ablation CSVs are reproducible
  /// run-to-run regardless of policy).
  long lowest_ci_free_site() const;

 private:
  friend class SchedulingEngine;
  friend class ::hpcarbon::fleetsim::FleetEngine;
  const std::vector<Site>* sites_ = nullptr;
  const std::vector<int>* free_slots_ = nullptr;
  const std::vector<op::CarbonIntegrator>* integrators_ = nullptr;
  const CarbonBudgetLedger* ledger_ = nullptr;
  const op::PueModel* pue_ = nullptr;
  const double* now_ = nullptr;
  HourOfYear epoch_;
};

/// Strategy interface. One instance drives one engine run; policies may
/// keep per-run state (forecasts, rolling windows) between callbacks.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Canonical registry name ("greedy-lowest-ci").
  virtual std::string name() const = 0;

  /// Called once before the event loop with the sorted arrivals. The
  /// ledger is the engine's mutable budget ledger (BudgetAware seeds
  /// allocations here); `view` is already bound, with now() == 0.
  virtual void begin_run(const std::vector<Job>& arrivals,
                         CarbonBudgetLedger& ledger, const ClusterView& view) {
    (void)arrivals;
    (void)ledger;
    (void)view;
  }

  /// Called on arrival: the earliest time the job may start (>= submit).
  /// Default: start as soon as possible.
  virtual double planned_start(const Job& job, const ClusterView& view) {
    (void)view;
    return job.submit_hour;
  }

  /// Called whenever cluster state changes (arrival, completion, hourly
  /// tick, or a preceding dispatch) while the queue is non-empty. Return
  /// the (job, site) to start now, or nullopt to wait.
  virtual std::optional<DispatchDecision> select(
      const std::vector<PendingJob>& queue, const ClusterView& view) = 0;

  /// Observer: `job` just started on `site` emitting `carbon_g` grams
  /// (compute + transfer). RenewableCap tracks its burn rate here.
  virtual void on_job_started(const Job& job, std::size_t site,
                              double carbon_g, const ClusterView& view) {
    (void)job;
    (void)site;
    (void)carbon_g;
    (void)view;
  }
};

/// One tunable of a policy, surfaced by `hpcarbon policies`.
struct PolicyKnob {
  std::string name;         // PolicyConfig field, e.g. "ci_threshold_g_per_kwh"
  std::string description;  // one line
  double default_value = 0;
};

/// Registry entry: names, documentation, and the factory.
struct PolicyDescriptor {
  std::string name;        // canonical, e.g. "greedy-lowest-ci"
  std::string short_name;  // CLI shorthand, e.g. "greedy"
  std::string description;
  std::vector<PolicyKnob> knobs;
  std::function<std::unique_ptr<SchedulingPolicy>(const PolicyConfig&)> make;
};

/// Register a policy; idempotent per canonical name (re-registering
/// replaces). Built-ins self-register via HPCARBON_REGISTER_POLICY.
void register_policy(PolicyDescriptor descriptor);

/// All registered policies, in registration order (built-ins first, in
/// Policy-enum order).
std::vector<PolicyDescriptor> registered_policies();

/// Lookup by canonical or short name; nullopt when unknown. Returns a
/// copy (taken under the registry lock) so callers are safe against
/// concurrent register_policy calls.
std::optional<PolicyDescriptor> find_policy(const std::string& name_or_short);

/// Factory. Throws hpcarbon::Error for unknown names.
std::unique_ptr<SchedulingPolicy> make_policy(const std::string& name,
                                              const PolicyConfig& cfg = {});
/// Legacy enum-keyed factory (routes through the registry).
std::unique_ptr<SchedulingPolicy> make_policy(const PolicyConfig& cfg);

}  // namespace hpcarbon::sched

/// Registers `maker` (a callable returning std::unique_ptr<SchedulingPolicy>
/// from a const PolicyConfig&) under the given names at static-init time.
/// Knobs is a braced list of PolicyKnob.
#define HPCARBON_REGISTER_POLICY(ident, name_, short_name_, desc_, knobs_, \
                                 maker_)                                   \
  namespace {                                                              \
  [[maybe_unused]] const bool hpcarbon_policy_##ident##_registered = [] {  \
    ::hpcarbon::sched::register_policy(                                    \
        {name_, short_name_, desc_,                                        \
         std::vector<::hpcarbon::sched::PolicyKnob> knobs_, maker_});      \
    return true;                                                           \
  }();                                                                     \
  }
