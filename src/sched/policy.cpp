#include "sched/policy.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <utility>

#include "core/error.h"
#include "core/thread_annotations.h"
#include "grid/forecast.h"

namespace hpcarbon::sched {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kFcfsLocal: return "fcfs-local";
    case Policy::kGreedyLowestCi: return "greedy-lowest-ci";
    case Policy::kThresholdDelay: return "threshold-delay";
    case Policy::kBudgetAware: return "budget-aware";
    case Policy::kForecastDelay: return "forecast-delay";
    case Policy::kNetBenefit: return "net-benefit";
    case Policy::kForecastNetBenefit: return "forecast-net-benefit";
    case Policy::kRenewableCap: return "renewable-cap";
  }
  return "?";
}

double ClusterView::current_ci(std::size_t i) const {
  // Native-resolution lookup: hourly traces resolve to the same sample the
  // old at(hour_at(now())) read; 5-/15-minute imports expose the live
  // sub-hourly sample instead of the start-of-hour one.
  return (*sites_)[i]
      .trace_utc
      .at_hours(static_cast<double>(epoch_.index()) + now())
      .to_g_per_kwh();
}

double ClusterView::job_carbon_g(std::size_t i, Power it_power, double start,
                                 double duration) const {
  return (*integrators_)[i].carbon_g(it_power.to_kilowatts(),
                                     epoch_.index() + start, duration);
}

long ClusterView::lowest_ci_free_site() const {
  long best = -1;
  double best_ci = 0;
  for (std::size_t s = 0; s < sites_->size(); ++s) {
    if ((*free_slots_)[s] <= 0) continue;
    const double ci = current_ci(s);
    // Strict '<': on equal CI the first (lowest-index) free site wins, so
    // ties are deterministic and home (index 0) is preferred.
    if (best < 0 || ci < best_ci) {
      best = static_cast<long>(s);
      best_ci = ci;
    }
  }
  return best;
}

namespace {

// ---------------------------------------------------------------------------
// Built-in policies. Each is one small class; the registry entries at the
// bottom of this file are the only other place a policy appears.
// ---------------------------------------------------------------------------

/// Everything runs at home, first come first served (carbon-unaware
/// baseline and the savings denominator of every ablation).
class FcfsLocalPolicy : public SchedulingPolicy {
 public:
  explicit FcfsLocalPolicy(const PolicyConfig&) {}
  std::string name() const override { return "fcfs-local"; }
  std::optional<DispatchDecision> select(const std::vector<PendingJob>& queue,
                                         const ClusterView& view) override {
    if (queue.empty() || view.free_slots(0) <= 0) return std::nullopt;
    return DispatchDecision{0, 0};
  }
};

/// At dispatch, take the free site with the lowest current intensity
/// (cross-region exploitation of Fig. 7), paying the transfer penalty on
/// remote placement.
class GreedyLowestCiPolicy : public SchedulingPolicy {
 public:
  explicit GreedyLowestCiPolicy(const PolicyConfig&) {}
  std::string name() const override { return "greedy-lowest-ci"; }
  std::optional<DispatchDecision> select(const std::vector<PendingJob>& queue,
                                         const ClusterView& view) override {
    if (queue.empty()) return std::nullopt;
    const long site = view.lowest_ci_free_site();
    if (site < 0) return std::nullopt;
    return DispatchDecision{0, static_cast<std::size_t>(site)};
  }
};

/// Stay local but defer until the local intensity drops below a threshold
/// or a maximum delay passes (temporal exploitation of Fig. 6's variance).
class ThresholdDelayPolicy : public SchedulingPolicy {
 public:
  explicit ThresholdDelayPolicy(const PolicyConfig& cfg)
      : threshold_(cfg.ci_threshold_g_per_kwh),
        max_delay_(cfg.max_delay_hours) {}
  std::string name() const override { return "threshold-delay"; }
  std::optional<DispatchDecision> select(const std::vector<PendingJob>& queue,
                                         const ClusterView& view) override {
    if (view.free_slots(0) <= 0) return std::nullopt;
    const double ci = view.current_ci(0);
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (ci <= threshold_ ||
          view.now() - queue[i].job.submit_hour >= max_delay_) {
        return DispatchDecision{i, 0};
      }
    }
    return std::nullopt;
  }

 private:
  double threshold_;
  double max_delay_;
};

/// GreedyLowestCi placement with queue priority for users who have been
/// economical with their carbon budget (the paper's incentive proposal).
class BudgetAwarePolicy : public SchedulingPolicy {
 public:
  explicit BudgetAwarePolicy(const PolicyConfig& cfg)
      : user_budget_(cfg.user_budget) {}
  std::string name() const override { return "budget-aware"; }
  void begin_run(const std::vector<Job>& arrivals, CarbonBudgetLedger& ledger,
                 const ClusterView&) override {
    std::set<std::string> users;
    for (const auto& j : arrivals) users.insert(j.user);
    for (const auto& u : users) ledger.set_allocation(u, user_budget_);
  }
  std::optional<DispatchDecision> select(const std::vector<PendingJob>& queue,
                                         const ClusterView& view) override {
    if (queue.empty()) return std::nullopt;
    const long site = view.lowest_ci_free_site();
    if (site < 0) return std::nullopt;
    // Serve the waiting job whose user has been most economical; strict
    // '>' keeps the earliest submission ahead on equal priority.
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (view.ledger().priority(queue[i].job.user) >
          view.ledger().priority(queue[best].job.user)) {
        best = i;
      }
    }
    return DispatchDecision{best, static_cast<std::size_t>(site)};
  }

 private:
  Mass user_budget_;
};

/// On arrival, pick the start offset (within the delay budget) that a
/// causal diurnal-template forecast of the home grid predicts to be
/// cleanest over the job's runtime.
class ForecastDelayPolicy : public SchedulingPolicy {
 public:
  explicit ForecastDelayPolicy(const PolicyConfig& cfg)
      : max_delay_(cfg.max_delay_hours),
        window_days_(cfg.forecast_window_days) {}
  std::string name() const override { return "forecast-delay"; }
  void begin_run(const std::vector<Job>&, CarbonBudgetLedger&,
                 const ClusterView& view) override {
    forecast_ = std::make_unique<grid::DiurnalTemplateForecast>(
        view.site(0).trace_utc, window_days_);
  }
  double planned_start(const Job& job, const ClusterView& view) override {
    const HourOfYear origin = view.hour_at(job.submit_hour);
    int best_offset = 0;
    double best_ci = std::numeric_limits<double>::infinity();
    const int max_w = static_cast<int>(max_delay_);
    for (int w = 0; w <= max_w; ++w) {
      const double ci = forecast_->predict_window(origin, w,
                                                  job.duration_hours);
      if (ci < best_ci) {
        best_ci = ci;
        best_offset = w;
      }
    }
    return job.submit_hour + best_offset;
  }
  std::optional<DispatchDecision> select(const std::vector<PendingJob>& queue,
                                         const ClusterView& view) override {
    if (view.free_slots(0) <= 0) return std::nullopt;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (view.now() + 1e-12 >= queue[i].earliest_start) {
        return DispatchDecision{i, 0};
      }
    }
    return std::nullopt;
  }

 private:
  double max_delay_;
  int window_days_;
  std::unique_ptr<grid::DiurnalTemplateForecast> forecast_;
};

/// Cross-region dispatch only when the current intensity gap times the
/// job's energy exceeds the transfer carbon (Insight 7's tradeoff). If
/// home is full, take the best remote anyway (work conservation).
class NetBenefitPolicy : public SchedulingPolicy {
 public:
  explicit NetBenefitPolicy(const PolicyConfig&) {}
  std::string name() const override { return "net-benefit"; }
  std::optional<DispatchDecision> select(const std::vector<PendingJob>& queue,
                                         const ClusterView& view) override {
    if (queue.empty()) return std::nullopt;
    const long best = view.lowest_ci_free_site();
    if (best < 0) return std::nullopt;
    std::size_t site = static_cast<std::size_t>(best);
    if (view.free_slots(0) > 0 && site != 0) {
      const Job& j = queue.front().job;
      const double ci_home = view.current_ci(0);
      const double ci_away = view.current_ci(site);
      const double job_kwh =
          j.it_power.to_kilowatts() * j.duration_hours * view.pue_base();
      const double saved = (ci_home - ci_away) * job_kwh;
      const double transfer_cost =
          view.site(site).transfer_energy.to_kwh() * ci_away;
      if (saved <= transfer_cost) site = 0;
    }
    return DispatchDecision{0, site};
  }
};

/// NetBenefit with foresight: each candidate site is priced on a causal
/// diurnal forecast of its intensity over the job's whole runtime, not the
/// instantaneous value, so a site that is briefly clean now but trending
/// dirty loses to one trending clean. Only expressible with per-site
/// forecasts — the capability the engine/policy split adds.
class ForecastNetBenefitPolicy : public SchedulingPolicy {
 public:
  explicit ForecastNetBenefitPolicy(const PolicyConfig& cfg)
      : window_days_(cfg.forecast_window_days) {}
  std::string name() const override { return "forecast-net-benefit"; }
  void begin_run(const std::vector<Job>&, CarbonBudgetLedger&,
                 const ClusterView& view) override {
    forecasts_.clear();
    for (std::size_t s = 0; s < view.site_count(); ++s) {
      forecasts_.push_back(std::make_unique<grid::DiurnalTemplateForecast>(
          view.site(s).trace_utc, window_days_));
    }
  }
  std::optional<DispatchDecision> select(const std::vector<PendingJob>& queue,
                                         const ClusterView& view) override {
    if (queue.empty()) return std::nullopt;
    const Job& j = queue.front().job;
    const double job_kwh =
        j.it_power.to_kilowatts() * j.duration_hours * view.pue_base();
    const HourOfYear origin = view.hour_at(view.now());
    long best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < view.site_count(); ++s) {
      if (view.free_slots(s) <= 0) continue;
      const double predicted_ci =
          forecasts_[s]->predict_window(origin, 0, j.duration_hours);
      const double transfer_g =
          s == 0 ? 0.0
                 : view.site(s).transfer_energy.to_kwh() * view.current_ci(s);
      const double cost = predicted_ci * job_kwh + transfer_g;
      // Strict '<': equal forecast cost resolves to the lowest site index.
      if (cost < best_cost) {
        best = static_cast<long>(s);
        best_cost = cost;
      }
    }
    if (best < 0) return std::nullopt;
    return DispatchDecision{0, static_cast<std::size_t>(best)};
  }

 private:
  int window_days_;
  std::vector<std::unique_ptr<grid::DiurnalTemplateForecast>> forecasts_;
};

/// Throttle dispatch while the rolling emission rate exceeds a cap: a
/// facility-level carbon budget burned per hour. Jobs still start once
/// they have waited out `max_delay_hours` (work conservation / fairness),
/// so the cap shapes *when* carbon is emitted rather than whether work
/// runs. Needs the on_job_started observer the policy interface adds.
class RenewableCapPolicy : public SchedulingPolicy {
 public:
  explicit RenewableCapPolicy(const PolicyConfig& cfg)
      : cap_g_per_hour_(cfg.burn_cap_g_per_hour),
        window_hours_(cfg.burn_window_hours),
        max_delay_(cfg.max_delay_hours) {
    HPC_REQUIRE(cap_g_per_hour_ > 0, "burn cap must be positive");
    HPC_REQUIRE(window_hours_ > 0, "burn window must be positive");
  }
  std::string name() const override { return "renewable-cap"; }
  void begin_run(const std::vector<Job>&, CarbonBudgetLedger&,
                 const ClusterView&) override {
    recent_.clear();
  }
  void on_job_started(const Job&, std::size_t, double carbon_g,
                      const ClusterView& view) override {
    recent_.emplace_back(view.now(), carbon_g);
  }
  std::optional<DispatchDecision> select(const std::vector<PendingJob>& queue,
                                         const ClusterView& view) override {
    if (view.free_slots(0) <= 0) return std::nullopt;
    while (!recent_.empty() &&
           recent_.front().first < view.now() - window_hours_) {
      recent_.pop_front();
    }
    double window_g = 0;
    for (const auto& [when, grams] : recent_) {
      (void)when;
      window_g += grams;
    }
    const bool over_cap = window_g / window_hours_ > cap_g_per_hour_;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const bool overdue =
          view.now() - queue[i].job.submit_hour >= max_delay_;
      if (!over_cap || overdue) return DispatchDecision{i, 0};
    }
    return std::nullopt;
  }

 private:
  double cap_g_per_hour_;
  double window_hours_;
  double max_delay_;
  std::deque<std::pair<double, double>> recent_;  // (start time, grams)
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

struct Registry {
  AnnotatedMutex mu;
  /// Registration order; mutated by static registrars and (rarely) by
  /// late register_policy calls, read by every make_policy — a long-lived
  /// daemon may do both concurrently.
  std::vector<PolicyDescriptor> entries HPCARBON_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry r;  // constructed on first use; safe from static registrars
  return r;
}

}  // namespace

void register_policy(PolicyDescriptor descriptor) {
  HPC_REQUIRE(!descriptor.name.empty() && descriptor.make != nullptr,
              "policy descriptor needs a name and a factory");
  Registry& r = registry();
  MutexLock lock(r.mu);
  for (auto& e : r.entries) {
    if (e.name == descriptor.name) {
      e = std::move(descriptor);
      return;
    }
  }
  r.entries.push_back(std::move(descriptor));
}

std::vector<PolicyDescriptor> registered_policies() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  return r.entries;
}

std::optional<PolicyDescriptor> find_policy(const std::string& name_or_short) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  for (const auto& e : r.entries) {
    if (e.name == name_or_short || e.short_name == name_or_short) return e;
  }
  return std::nullopt;
}

std::unique_ptr<SchedulingPolicy> make_policy(const std::string& name,
                                              const PolicyConfig& cfg) {
  const std::optional<PolicyDescriptor> desc = find_policy(name);
  if (!desc.has_value()) {
    std::string known;
    for (const auto& e : registered_policies()) {
      known += (known.empty() ? "" : ", ") + e.name;
    }
    throw Error("unknown policy '" + name + "' (known: " + known + ")");
  }
  return desc->make(cfg);
}

std::unique_ptr<SchedulingPolicy> make_policy(const PolicyConfig& cfg) {
  return make_policy(to_string(cfg.policy), cfg);
}

// Built-in registrations, in Policy-enum order (this order is what
// `hpcarbon policies`, policy_names(), and the ablation matrix report).
HPCARBON_REGISTER_POLICY(
    fcfs_local, "fcfs-local", "fcfs",
    "Run everything at the home site, first come first served "
    "(carbon-unaware baseline)",
    {}, [](const PolicyConfig& cfg) {
      return std::make_unique<FcfsLocalPolicy>(cfg);
    })

HPCARBON_REGISTER_POLICY(
    greedy_lowest_ci, "greedy-lowest-ci", "greedy",
    "Dispatch to the free site with the lowest current carbon intensity",
    {}, [](const PolicyConfig& cfg) {
      return std::make_unique<GreedyLowestCiPolicy>(cfg);
    })

HPCARBON_REGISTER_POLICY(
    threshold_delay, "threshold-delay", "threshold",
    "Defer locally until CI drops below a threshold or the delay budget "
    "expires",
    ({{"ci_threshold_g_per_kwh", "run when local CI is at or below this",
       PolicyConfig{}.ci_threshold_g_per_kwh},
      {"max_delay_hours", "hard cap on added queue delay",
       PolicyConfig{}.max_delay_hours}}),
    [](const PolicyConfig& cfg) {
      return std::make_unique<ThresholdDelayPolicy>(cfg);
    })

HPCARBON_REGISTER_POLICY(
    budget_aware, "budget-aware", "budget",
    "Greedy placement; queue priority for users economical with their "
    "carbon budget",
    ({{"user_budget (kg)", "per-user allocation for the horizon",
       PolicyConfig{}.user_budget.to_kilograms()}}),
    [](const PolicyConfig& cfg) {
      return std::make_unique<BudgetAwarePolicy>(cfg);
    })

HPCARBON_REGISTER_POLICY(
    forecast_delay, "forecast-delay", "forecast",
    "Plan each start at the offset a causal diurnal forecast predicts "
    "cleanest",
    ({{"max_delay_hours", "start-offset search window",
       PolicyConfig{}.max_delay_hours},
      {"forecast_window_days", "trailing days feeding the diurnal template",
       static_cast<double>(PolicyConfig{}.forecast_window_days)}}),
    [](const PolicyConfig& cfg) {
      return std::make_unique<ForecastDelayPolicy>(cfg);
    })

HPCARBON_REGISTER_POLICY(
    net_benefit, "net-benefit", "net-benefit",
    "Go remote only when the CI gap times job energy beats the transfer "
    "carbon",
    {}, [](const PolicyConfig& cfg) {
      return std::make_unique<NetBenefitPolicy>(cfg);
    })

HPCARBON_REGISTER_POLICY(
    forecast_net_benefit, "forecast-net-benefit", "forecast-nb",
    "Net-benefit dispatch priced on per-site forecasts over the job's "
    "runtime",
    ({{"forecast_window_days", "trailing days feeding the diurnal template",
       static_cast<double>(PolicyConfig{}.forecast_window_days)}}),
    [](const PolicyConfig& cfg) {
      return std::make_unique<ForecastNetBenefitPolicy>(cfg);
    })

HPCARBON_REGISTER_POLICY(
    renewable_cap, "renewable-cap", "cap",
    "Throttle dispatch while the rolling emission rate exceeds a burn cap",
    ({{"burn_cap_g_per_hour", "rolling emission-rate ceiling",
       PolicyConfig{}.burn_cap_g_per_hour},
      {"burn_window_hours", "window the burn rate is averaged over",
       PolicyConfig{}.burn_window_hours},
      {"max_delay_hours", "fairness guard: start anyway after this wait",
       PolicyConfig{}.max_delay_hours}}),
    [](const PolicyConfig& cfg) {
      return std::make_unique<RenewableCapPolicy>(cfg);
    })

}  // namespace hpcarbon::sched
