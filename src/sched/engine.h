// Discrete-event scheduling engine: the mechanism layer of the scheduler.
//
// The engine owns everything policy-independent — arrival ordering, the
// completion queue, hourly re-evaluation ticks, per-site free slots, carbon
// and energy accounting, and the budget ledger — and delegates every
// decision (which queued job, which site, when) to a SchedulingPolicy
// (sched/policy.h). Per-job carbon is priced in O(1) through PUE-weighted
// prefix sums (op::CarbonIntegrator) built once per site at construction,
// so run() cost scales with job count, not job-hours.
#pragma once

#include <string>
#include <vector>

#include "core/time.h"
#include "core/units.h"
#include "op/operational.h"
#include "op/pue.h"
#include "sched/budget.h"
#include "sched/job.h"
#include "sched/policy.h"

namespace hpcarbon::sched {

struct ScheduleMetrics {
  Mass total_carbon;       // compute + transfer
  Mass transfer_carbon;
  Energy total_energy;     // facility side
  double mean_wait_hours = 0;
  double p95_wait_hours = 0;
  double utilization = 0;  // busy node-hours / available node-hours
  int jobs_completed = 0;
  int remote_dispatches = 0;

  std::string to_string() const;
};

/// Per-job outcome (for tests and detailed reporting).
struct JobOutcome {
  int job_id = 0;
  std::string site;
  double start_hour = 0;
  double wait_hours = 0;
  Mass carbon;
};

class SchedulingEngine {
 public:
  /// sites[0] is the home site. `epoch` anchors hour 0 of the simulation on
  /// the traces' calendar (UTC). Builds one CarbonIntegrator per site.
  SchedulingEngine(std::vector<Site> sites, HourOfYear epoch,
                   op::PueModel pue = op::PueModel());

  /// Run the event loop under `policy`. An empty workload yields
  /// zero-valued metrics (registry-driven sweeps over generated workloads
  /// must not crash on a quiet horizon). Optionally returns per-job
  /// outcomes (in completion order) and the final budget ledger.
  ScheduleMetrics run(const std::vector<Job>& jobs, SchedulingPolicy& policy,
                      std::vector<JobOutcome>* outcomes = nullptr,
                      CarbonBudgetLedger* ledger_out = nullptr);

  const std::vector<Site>& sites() const { return sites_; }
  HourOfYear epoch() const { return epoch_; }
  const op::PueModel& pue() const { return pue_; }

 private:
  std::vector<Site> sites_;
  HourOfYear epoch_;
  op::PueModel pue_;
  std::vector<op::CarbonIntegrator> integrators_;  // one per site
};

}  // namespace hpcarbon::sched
