// Per-user carbon budget ledger.
//
// Implements the paper's incentive-structure implication: "similar to
// core-hour accounting and budgeting, HPC users should also be provided a
// carbon budget as part of their allocation, and they could be prioritized
// to reduce their queue wait time if the carbon footprint of their jobs has
// been economical."
#pragma once

#include <map>
#include <string>

#include "core/units.h"

namespace hpcarbon::sched {

class CarbonBudgetLedger {
 public:
  CarbonBudgetLedger() = default;

  /// Grant a user an allocation-period budget.
  void set_allocation(const std::string& user, Mass budget);

  /// Charge emitted carbon against a user's budget.
  void charge(const std::string& user, Mass amount);

  Mass allocation(const std::string& user) const;
  Mass spent(const std::string& user) const;

  /// Fraction of budget remaining, in (-inf, 1]; negative when overdrawn.
  /// Users without an allocation are treated as fully spent (0.0).
  double remaining_fraction(const std::string& user) const;

  bool is_overdrawn(const std::string& user) const {
    return remaining_fraction(user) < 0.0;
  }

  /// Priority key: higher = served sooner. Economical users (large
  /// remaining fraction) jump the queue.
  double priority(const std::string& user) const {
    return remaining_fraction(user);
  }

 private:
  struct Account {
    double allocation_g = 0;
    double spent_g = 0;
  };
  std::map<std::string, Account> accounts_;
};

}  // namespace hpcarbon::sched
