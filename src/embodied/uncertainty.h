// Monte-Carlo uncertainty propagation for embodied-carbon estimates.
//
// The paper's Threats-to-Validity section stresses that yield, per-area
// emission factors, and EPC values are uncertain and vendor-dependent. This
// module quantifies that: each input is perturbed within a relative band
// and the induced distribution of C_em is summarized. Used by
// bench_sensitivity and the property tests.
#pragma once

#include <cstdint>

#include "core/units.h"
#include "embodied/part.h"

namespace hpcarbon::embodied {

/// Relative half-widths of the uniform input perturbations.
struct UncertaintyBands {
  double fab_per_area = 0.20;   // FPA+GPA+MPA: +/-20%
  double yield = 0.05;          // yield: +/-5% (absolute band around 0.875)
  double epc = 0.15;            // EPC: +/-15%
  double packaging = 0.25;      // per-IC packaging: +/-25%
};

struct UncertaintyResult {
  Mass mean;
  Mass stddev;
  Mass p05;
  Mass p50;
  Mass p95;
  int samples = 0;
};

/// Propagate input uncertainty through Eq. 2/3/5 for a processor.
/// Deterministic for a fixed seed; sampling is parallelized across the
/// global thread pool.
UncertaintyResult propagate(const ProcessorPart& part,
                            const UncertaintyBands& bands, int samples = 4096,
                            std::uint64_t seed = 42);

/// Propagate input uncertainty through Eq. 2/4/5 for memory/storage.
UncertaintyResult propagate(const MemoryPart& part,
                            const UncertaintyBands& bands, int samples = 4096,
                            std::uint64_t seed = 42);

}  // namespace hpcarbon::embodied
