// Monte-Carlo uncertainty propagation for embodied-carbon estimates.
//
// The paper's Threats-to-Validity section stresses that yield, per-area
// emission factors, and EPC values are uncertain and vendor-dependent. This
// module quantifies that: each input is perturbed within a relative band
// and the induced distribution of C_em is summarized. The sampling itself
// runs on the shared mc::Engine (src/mc/engine.h) — this file contributes
// only the per-sample model evaluations (one draw of Eq. 2/3/5 or
// Eq. 2/4/5) and thin wrappers for callers that want the legacy
// five-number summary. Used by bench_sensitivity, `hpcarbon sweep`, the
// lifecycle uncertainty layer, and the property tests.
#pragma once

#include <cstdint>

#include "core/units.h"
#include "embodied/part.h"
#include "mc/engine.h"

namespace hpcarbon::embodied {

/// Relative half-widths of the uniform input perturbations. Validated on
/// entry by every propagate call: bands must be in [0, 1] (a
/// multiplicative half-width above 1 would draw negative carbon), and the
/// yield band must keep `part.yield ± yield` inside [0.5, 1.0] — values
/// outside would be silently clamped by the sampler, skewing the
/// distribution without notice, so they are rejected instead.
struct UncertaintyBands {
  double fab_per_area = 0.20;   // FPA+GPA+MPA: +/-20%
  double yield = 0.05;          // yield: +/-5% (absolute band around 0.875)
  double epc = 0.15;            // EPC: +/-15%
  double packaging = 0.25;      // per-IC packaging: +/-25%
};

/// Throws hpcarbon::Error when any band is negative.
void validate(const UncertaintyBands& bands);
/// Also rejects a yield band that escapes the sampler's [0.5, 1.0] clamp.
void validate(const ProcessorPart& part, const UncertaintyBands& bands);

/// One Monte-Carlo draw of Eq. 2/3/5 for a processor, in grams. Pure in
/// (part, bands, rng state) — the seam the mc::Engine and the node-level
/// samplers (hw::sample_node_embodied) evaluate.
double sample_embodied_grams(const ProcessorPart& part,
                             const UncertaintyBands& bands, Rng& rng);
/// One draw of Eq. 2/4/5 for memory/storage, in grams.
double sample_embodied_grams(const MemoryPart& part,
                             const UncertaintyBands& bands, Rng& rng);

/// Full distribution of C_em under the input bands. Deterministic for a
/// fixed plan, bit-identical regardless of the executing pool's thread
/// count (see mc::Engine).
mc::Distribution propagate_distribution(const ProcessorPart& part,
                                        const UncertaintyBands& bands,
                                        const mc::SamplePlan& plan = {});
mc::Distribution propagate_distribution(const MemoryPart& part,
                                        const UncertaintyBands& bands,
                                        const mc::SamplePlan& plan = {});

/// Legacy five-number summary of propagate_distribution.
struct UncertaintyResult {
  Mass mean;
  Mass stddev;
  Mass p05;
  Mass p50;
  Mass p95;
  int samples = 0;

  static UncertaintyResult from(const mc::Distribution& d);
};

/// Propagate input uncertainty through Eq. 2/3/5 for a processor. Thin
/// wrapper over propagate_distribution.
UncertaintyResult propagate(const ProcessorPart& part,
                            const UncertaintyBands& bands, int samples = 4096,
                            std::uint64_t seed = 42);

/// Propagate input uncertainty through Eq. 2/4/5 for memory/storage.
UncertaintyResult propagate(const MemoryPart& part,
                            const UncertaintyBands& bands, int samples = 4096,
                            std::uint64_t seed = 42);

}  // namespace hpcarbon::embodied
