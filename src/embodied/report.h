// Procurement (RFP) carbon report generator.
//
// Observation 2's implication: "carbon-conscious HPC facilities should
// explicitly request the embodied carbon specifications for all components
// from the chip vendor as part of their request for proposal". This module
// renders the library's answer to that request for any bill of materials:
// per-part Eq. 2-5 breakdowns, normalized efficiency metrics, Monte-Carlo
// confidence bounds, and class rollups, as a plain-text document.
#pragma once

#include <string>
#include <vector>

#include "embodied/catalog.h"
#include "embodied/uncertainty.h"

namespace hpcarbon::embodied {

struct BomLine {
  PartId part;
  double count = 1;
};

struct RfpReportOptions {
  bool include_uncertainty = true;
  UncertaintyBands bands;
  int monte_carlo_samples = 4096;
  std::string title = "Embodied-carbon disclosure (RFP annex)";
};

/// Render the report. Deterministic for fixed options.
std::string rfp_report(const std::vector<BomLine>& bom,
                       const RfpReportOptions& opts = {});

}  // namespace hpcarbon::embodied
