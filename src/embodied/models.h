// Embodied-carbon models: Eq. 2 through Eq. 5 of the paper.
//
//   C_em = Manufacturing + Packaging                               (Eq. 2)
//   M_proc = (FPA + GPA + MPA) * A_die / Yield                     (Eq. 3)
//   M_m/s  = EPC * Capacity                                        (Eq. 4)
//   Packaging = 150 gCO2 * Number_of_ICs                           (Eq. 5)
//   (storage: Packaging = ratio * Manufacturing, vendor-reported)
#pragma once

#include "core/units.h"
#include "embodied/part.h"

namespace hpcarbon::embodied {

/// Industry-average packaging overhead per IC package (SPIL CSR report,
/// used verbatim by the paper).
inline constexpr double kPackagingGramsPerIc = 150.0;

/// Default packaging-to-manufacturing ratio for storage devices when the
/// vendor does not break it out; Seagate product LCAs put packaging at
/// roughly 2% of the embodied total.
inline constexpr double kStoragePackagingRatio = 0.0204;

struct EmbodiedBreakdown {
  Mass manufacturing;
  Mass packaging;

  Mass total() const { return manufacturing + packaging; }
  /// Fraction of the embodied carbon due to packaging, in [0,1].
  double packaging_share() const {
    const double t = total().to_grams();
    return t > 0 ? packaging.to_grams() / t : 0.0;
  }
};

/// Eq. 3 summed over all dies of a processor package.
Mass processor_manufacturing(const ProcessorPart& part);
/// Eq. 4.
Mass capacity_manufacturing(const MemoryPart& part);
/// Eq. 5.
Mass ic_packaging(int ic_count);

/// Full Eq. 2 for a processor.
EmbodiedBreakdown embodied(const ProcessorPart& part);
/// Full Eq. 2 for a memory/storage device.
EmbodiedBreakdown embodied(const MemoryPart& part);

/// Embodied carbon normalized to theoretical FP64 performance (Fig. 1b):
/// kgCO2 per TFLOPS.
double kg_per_tflop_fp64(const ProcessorPart& part);
/// Embodied carbon normalized to device bandwidth (Fig. 2b): kgCO2 per GB/s.
double kg_per_gbps(const MemoryPart& part);

}  // namespace hpcarbon::embodied
