#include "embodied/catalog.h"

#include <unordered_map>

#include "core/error.h"

namespace hpcarbon::embodied {

namespace {

// --- GPUs -------------------------------------------------------------------

ProcessorPart make_mi250x() {
  ProcessorPart p;
  p.name = "AMD MI250X";
  p.part_name = "AMD INSTINCT MI250X";
  p.vendor = "AMD";
  p.release = "November 2021";
  p.cls = PartClass::kGpu;
  // Two Aldebaran graphics compute dies on TSMC N6.
  p.dies = {{724.0, ProcessNode::nm6, 2}};
  // OAM module: 2 GCDs + 8 HBM2e stacks + power stages / support ICs.
  p.ic_count = 28;
  p.fp64_tflops = 47.9;  // vector FP64 (AMD MI200 datasheet)
  p.fp32_tflops = 47.9;
  p.tdp_watts = 560;
  p.idle_watts = 90;
  return p;
}

ProcessorPart make_a100_pcie40() {
  ProcessorPart p;
  p.name = "NVIDIA A100";
  p.part_name = "NVIDIA A100 PCIe 40GB";
  p.vendor = "NVIDIA";
  p.release = "May 2020";
  p.cls = PartClass::kGpu;
  p.dies = {{826.0, ProcessNode::nm7, 1}};  // GA100
  p.ic_count = 20;  // die + 5 HBM2e stacks + VRM/support
  p.fp64_tflops = 9.7;
  p.fp32_tflops = 19.5;
  p.tdp_watts = 250;
  p.idle_watts = 35;
  return p;
}

ProcessorPart make_a100_sxm4() {
  ProcessorPart p = make_a100_pcie40();
  p.part_name = "NVIDIA A100 SXM4 40GB";
  p.release = "May 2020";
  p.tdp_watts = 400;
  p.idle_watts = 45;
  return p;
}

ProcessorPart make_v100_sxm2() {
  ProcessorPart p;
  p.name = "NVIDIA V100";
  p.part_name = "NVIDIA V100 SXM2 32GB";
  p.vendor = "NVIDIA";
  p.release = "March 2018";
  p.cls = PartClass::kGpu;
  p.dies = {{815.0, ProcessNode::nm12, 1}};  // GV100
  p.ic_count = 15;  // die + 4 HBM2 stacks + VRM/support
  p.fp64_tflops = 7.8;
  p.fp32_tflops = 15.7;
  p.tdp_watts = 300;
  p.idle_watts = 30;
  return p;
}

ProcessorPart make_p100_pcie() {
  ProcessorPart p;
  p.name = "NVIDIA P100";
  p.part_name = "NVIDIA Tesla P100 PCIe 16GB";
  p.vendor = "NVIDIA";
  p.release = "April 2016";
  p.cls = PartClass::kGpu;
  p.dies = {{610.0, ProcessNode::nm16, 1}};  // GP100
  p.ic_count = 12;
  p.fp64_tflops = 4.7;
  p.fp32_tflops = 9.3;
  p.tdp_watts = 250;
  p.idle_watts = 26;
  return p;
}

// --- CPUs -------------------------------------------------------------------

ProcessorPart make_epyc7763() {
  ProcessorPart p;
  p.name = "AMD EPYC 7763";
  p.part_name = "AMD EPYC 7763 CPU";
  p.vendor = "AMD";
  p.release = "March 2021";
  p.cls = PartClass::kCpu;
  p.dies = {{81.0, ProcessNode::nm7, 8}};  // 8x Zen3 CCD (IO die excluded)
  p.ic_count = 6;
  // 64 cores x 2.45 GHz x 16 DP FLOP/cycle (2x FMA256).
  p.fp64_tflops = 2.51;
  p.fp32_tflops = 5.02;
  p.tdp_watts = 280;
  p.idle_watts = 65;
  return p;
}

ProcessorPart make_epyc7742() {
  ProcessorPart p;
  p.name = "AMD EPYC 7742";
  p.part_name = "AMD EPYC 7742 CPU";
  p.vendor = "AMD";
  p.release = "August 2019";
  p.cls = PartClass::kCpu;
  p.dies = {{74.0, ProcessNode::nm7, 8}};  // 8x Zen2 CCD
  p.ic_count = 6;
  p.fp64_tflops = 2.30;  // 64c x 2.25 GHz x 16
  p.fp32_tflops = 4.61;
  p.tdp_watts = 225;
  p.idle_watts = 60;
  return p;
}

ProcessorPart make_epyc7542() {
  ProcessorPart p;
  p.name = "AMD EPYC 7542";
  p.part_name = "AMD EPYC 7542 CPU";
  p.vendor = "AMD";
  p.release = "August 2019";
  p.cls = PartClass::kCpu;
  p.dies = {{74.0, ProcessNode::nm7, 4}};  // 4x Zen2 CCD
  p.ic_count = 4;
  p.fp64_tflops = 1.49;  // 32c x 2.9 GHz x 16
  p.fp32_tflops = 2.97;
  p.tdp_watts = 225;
  p.idle_watts = 55;
  return p;
}

ProcessorPart make_xeon6240r() {
  ProcessorPart p;
  p.name = "Intel Xeon Gold 6240R";
  p.part_name = "Intel Xeon Gold 6240R CPU";
  p.vendor = "Intel";
  p.release = "February 2020";
  p.cls = PartClass::kCpu;
  p.dies = {{694.0, ProcessNode::nm14, 1}};  // Cascade Lake XCC
  p.ic_count = 4;
  p.fp64_tflops = 1.84;  // 24c x 2.4 GHz x 32 (AVX-512)
  p.fp32_tflops = 3.69;
  p.tdp_watts = 165;
  p.idle_watts = 45;
  return p;
}

ProcessorPart make_xeon_e5_2680() {
  ProcessorPart p;
  p.name = "Intel Xeon E5-2680";
  p.part_name = "Intel Xeon CPU E5-2680";
  p.vendor = "Intel";
  p.release = "March 2012";
  p.cls = PartClass::kCpu;
  p.dies = {{416.0, ProcessNode::nm32, 1}};  // Sandy Bridge EP
  p.ic_count = 4;
  p.fp64_tflops = 0.173;  // 8c x 2.7 GHz x 8 (AVX)
  p.fp32_tflops = 0.346;
  p.tdp_watts = 130;
  p.idle_watts = 30;
  return p;
}

// --- Memory / storage ------------------------------------------------------

MemoryPart make_dram64() {
  MemoryPart m;
  m.name = "DRAM 64GB";
  m.part_name = "SK Hynix 64GB DDR4";
  m.vendor = "SK Hynix";
  m.release = "October 2020";
  m.cls = PartClass::kDram;
  m.capacity_gb = 64;
  m.epc_g_per_gb = 65.0;  // paper Sec. 2.1
  m.bandwidth_gb_per_s = 25.6;  // DDR4-3200, one channel
  m.ic_count = 20;  // 18 DRAM packages (ECC RDIMM) + register/PMIC
  m.active_watts = 5.0;
  m.idle_watts = 1.5;
  return m;
}

MemoryPart make_nytro3530() {
  MemoryPart m;
  m.name = "SSD 3.2TB";
  m.part_name = "Seagate Nytro 3530 3.2TB";
  m.vendor = "Seagate";
  m.release = "October 2018";
  m.cls = PartClass::kSsd;
  m.capacity_gb = 3200;
  m.epc_g_per_gb = 6.21;  // paper Sec. 2.1
  m.bandwidth_gb_per_s = 2.1;  // sequential read, SAS 12Gb/s
  m.packaging_to_manufacturing = kStoragePackagingRatio;
  m.active_watts = 11.0;
  m.idle_watts = 4.5;
  return m;
}

MemoryPart make_exos_x16() {
  MemoryPart m;
  m.name = "HDD 16TB";
  m.part_name = "Seagate Exos X16 16TB";
  m.vendor = "Seagate";
  m.release = "June 2019";
  m.cls = PartClass::kHdd;
  m.capacity_gb = 16000;
  m.epc_g_per_gb = 1.33;  // paper Sec. 2.1
  m.bandwidth_gb_per_s = 0.261;  // max sustained transfer rate
  m.packaging_to_manufacturing = kStoragePackagingRatio;
  m.active_watts = 10.0;
  m.idle_watts = 5.0;
  return m;
}

const std::unordered_map<PartId, ProcessorPart>& processor_map() {
  static const auto* map = new std::unordered_map<PartId, ProcessorPart>{
      {PartId::kMi250x, make_mi250x()},
      {PartId::kA100Pcie40, make_a100_pcie40()},
      {PartId::kA100Sxm4_40, make_a100_sxm4()},
      {PartId::kV100Sxm2_32, make_v100_sxm2()},
      {PartId::kP100Pcie16, make_p100_pcie()},
      {PartId::kEpyc7763, make_epyc7763()},
      {PartId::kEpyc7742, make_epyc7742()},
      {PartId::kEpyc7542, make_epyc7542()},
      {PartId::kXeonGold6240R, make_xeon6240r()},
      {PartId::kXeonE5_2680, make_xeon_e5_2680()},
  };
  return *map;
}

const std::unordered_map<PartId, MemoryPart>& memory_map() {
  static const auto* map = new std::unordered_map<PartId, MemoryPart>{
      {PartId::kDram64GbDdr4, make_dram64()},
      {PartId::kSsdNytro3530_3_2Tb, make_nytro3530()},
      {PartId::kHddExosX16_16Tb, make_exos_x16()},
  };
  return *map;
}

}  // namespace

std::vector<PartId> table1_parts() {
  return {PartId::kMi250x,         PartId::kA100Pcie40,
          PartId::kV100Sxm2_32,    PartId::kEpyc7763,
          PartId::kEpyc7742,       PartId::kXeonGold6240R,
          PartId::kDram64GbDdr4,   PartId::kSsdNytro3530_3_2Tb,
          PartId::kHddExosX16_16Tb};
}

std::vector<PartId> table1_processors() {
  return {PartId::kMi250x,   PartId::kA100Pcie40, PartId::kV100Sxm2_32,
          PartId::kEpyc7763, PartId::kEpyc7742,   PartId::kXeonGold6240R};
}

std::vector<PartId> table1_memory_storage() {
  return {PartId::kDram64GbDdr4, PartId::kSsdNytro3530_3_2Tb,
          PartId::kHddExosX16_16Tb};
}

bool is_processor(PartId id) {
  return processor_map().count(id) > 0;
}

const ProcessorPart& processor(PartId id) {
  auto it = processor_map().find(id);
  HPC_REQUIRE(it != processor_map().end(), "not a processor part");
  return it->second;
}

const MemoryPart& memory(PartId id) {
  auto it = memory_map().find(id);
  HPC_REQUIRE(it != memory_map().end(), "not a memory/storage part");
  return it->second;
}

EmbodiedBreakdown embodied_of(PartId id) {
  if (is_processor(id)) return embodied(processor(id));
  return embodied(memory(id));
}

const char* display_name(PartId id) {
  if (is_processor(id)) return processor(id).name.c_str();
  return memory(id).name.c_str();
}

}  // namespace hpcarbon::embodied
