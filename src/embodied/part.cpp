#include "embodied/part.h"

namespace hpcarbon::embodied {

const char* to_string(PartClass c) {
  switch (c) {
    case PartClass::kGpu: return "GPU";
    case PartClass::kCpu: return "CPU";
    case PartClass::kDram: return "DRAM";
    case PartClass::kSsd: return "SSD";
    case PartClass::kHdd: return "HDD";
  }
  return "?";
}

double ProcessorPart::total_die_area_mm2() const {
  double area = 0;
  for (const auto& d : dies) area += d.area_mm2 * d.count;
  return area;
}

}  // namespace hpcarbon::embodied
