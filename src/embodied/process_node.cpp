#include "embodied/process_node.h"

#include "core/error.h"

namespace hpcarbon::embodied {

const char* to_string(ProcessNode node) {
  switch (node) {
    case ProcessNode::nm32: return "32nm";
    case ProcessNode::nm28: return "28nm";
    case ProcessNode::nm16: return "16nm";
    case ProcessNode::nm14: return "14nm";
    case ProcessNode::nm12: return "12nm";
    case ProcessNode::nm7: return "7nm";
    case ProcessNode::nm6: return "6nm";
    case ProcessNode::nm5: return "5nm";
  }
  return "?";
}

FabFootprint fab_footprint(ProcessNode node) {
  // Split ~50/28/22 between fab energy, gases, and materials; totals track
  // the ACT carbon-per-area trend across nodes.
  switch (node) {
    case ProcessNode::nm32: return {400.0, 225.0, 175.0};   // 0.80 kg/cm^2
    case ProcessNode::nm28: return {450.0, 250.0, 200.0};   // 0.90
    case ProcessNode::nm16: return {550.0, 300.0, 250.0};   // 1.10
    case ProcessNode::nm14: return {565.0, 310.0, 255.0};   // 1.13
    case ProcessNode::nm12: return {600.0, 330.0, 270.0};   // 1.20
    case ProcessNode::nm7: return {800.0, 450.0, 350.0};    // 1.60
    case ProcessNode::nm6: return {850.0, 480.0, 370.0};    // 1.70
    case ProcessNode::nm5: return {950.0, 520.0, 400.0};    // 1.87
  }
  return {};
}

Mass die_manufacturing_carbon(double die_area_mm2, ProcessNode node,
                              double yield) {
  HPC_REQUIRE(die_area_mm2 > 0, "die area must be positive");
  HPC_REQUIRE(yield > 0 && yield <= 1.0, "yield must be in (0,1]");
  const double area_cm2 = die_area_mm2 / 100.0;
  const double g = fab_footprint(node).total_g_per_cm2() * area_cm2 / yield;
  return Mass::grams(g);
}

}  // namespace hpcarbon::embodied
