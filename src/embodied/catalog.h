// Hardware catalog: every component modeled in the paper.
//
// Table 1 parts (three GPUs, three CPUs, DRAM/SSD/HDD) plus the additional
// node-generation parts of Table 5 (P100 GPU, Xeon E5-2680, EPYC 7542,
// A100 SXM4). Carbon-relevant constants use the values the paper states
// explicitly (EPC = 65 / 6.21 / 1.33 gCO2/GB, 150 g per IC, yield 0.875);
// die areas, FLOPS, bandwidths, and power figures come from public
// datasheets.
//
// Modeling note (documented in DESIGN.md): chiplet CPUs are modeled by
// their compute-die area; the mature-node IO die is excluded, matching the
// paper's vendor-generic treatment (its inclusion is explored as a
// sensitivity in bench_sensitivity). GPU HBM is not folded into the GPU —
// the paper applies Eq. 3 to processors and Eq. 4 only to standalone
// memory/storage devices.
#pragma once

#include <vector>

#include "embodied/models.h"
#include "embodied/part.h"

namespace hpcarbon::embodied {

enum class PartId {
  // Table 1 GPUs
  kMi250x,
  kA100Pcie40,
  kV100Sxm2_32,
  // Table 1 CPUs
  kEpyc7763,
  kEpyc7742,
  kXeonGold6240R,
  // Table 1 memory/storage
  kDram64GbDdr4,
  kSsdNytro3530_3_2Tb,
  kHddExosX16_16Tb,
  // Table 5 extras
  kP100Pcie16,
  kA100Sxm4_40,
  kXeonE5_2680,
  kEpyc7542,
};

/// All parts of the paper's Table 1, in figure order.
std::vector<PartId> table1_parts();
/// GPU/CPU subset of Table 1 (Fig. 1 order: GPUs then CPUs).
std::vector<PartId> table1_processors();
/// DRAM/SSD/HDD subset of Table 1 (Fig. 2 order).
std::vector<PartId> table1_memory_storage();

bool is_processor(PartId id);

/// Lookup; throws hpcarbon::Error if the id is not of the requested family.
const ProcessorPart& processor(PartId id);
const MemoryPart& memory(PartId id);

/// Eq. 2 for any catalog part.
EmbodiedBreakdown embodied_of(PartId id);

const char* display_name(PartId id);

}  // namespace hpcarbon::embodied
