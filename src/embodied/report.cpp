#include "embodied/report.h"

#include <array>
#include <sstream>

#include "core/error.h"
#include "core/table.h"

namespace hpcarbon::embodied {

namespace {

PartClass class_of(PartId id) {
  return is_processor(id) ? processor(id).cls : memory(id).cls;
}

UncertaintyResult propagate_any(PartId id, const UncertaintyBands& bands,
                                int samples) {
  if (is_processor(id)) return propagate(processor(id), bands, samples);
  return propagate(memory(id), bands, samples);
}

std::string part_detail(PartId id) {
  std::ostringstream out;
  if (is_processor(id)) {
    const auto& p = processor(id);
    out << p.part_name << " [";
    for (std::size_t d = 0; d < p.dies.size(); ++d) {
      if (d) out << " + ";
      if (p.dies[d].count > 1) out << p.dies[d].count << "x ";
      out << p.dies[d].area_mm2 << " mm^2 @ " << to_string(p.dies[d].node);
    }
    out << ", " << p.ic_count << " ICs]";
  } else {
    const auto& m = memory(id);
    out << m.part_name << " [" << m.capacity_gb << " GB @ " << m.epc_g_per_gb
        << " g/GB]";
  }
  return out.str();
}

}  // namespace

std::string rfp_report(const std::vector<BomLine>& bom,
                       const RfpReportOptions& opts) {
  HPC_REQUIRE(!bom.empty(), "bill of materials is empty");
  for (const auto& line : bom) {
    HPC_REQUIRE(line.count > 0, "BOM line count must be positive");
  }

  std::ostringstream out;
  out << banner(opts.title);
  out << "Model: Eq. 2-5 of Li et al. (SC'23); yield "
      << kDefaultYield << ", packaging " << kPackagingGramsPerIc
      << " gCO2/IC.\n\n";

  TextTable t(opts.include_uncertainty
                  ? std::vector<std::string>{"Component", "Count",
                                             "Mfg (kg)", "Pkg (kg)",
                                             "Unit total (kg)",
                                             "p05-p95 (kg)",
                                             "Line total (t)"}
                  : std::vector<std::string>{"Component", "Count",
                                             "Mfg (kg)", "Pkg (kg)",
                                             "Unit total (kg)",
                                             "Line total (t)"});
  std::array<double, 5> class_totals{};
  double grand_total_g = 0;
  for (const auto& line : bom) {
    const auto b = embodied_of(line.part);
    const double unit_kg = b.total().to_kilograms();
    const double line_g = b.total().to_grams() * line.count;
    class_totals[static_cast<std::size_t>(class_of(line.part))] += line_g;
    grand_total_g += line_g;
    std::vector<std::string> row = {
        display_name(line.part), TextTable::num(line.count, 0),
        TextTable::num(b.manufacturing.to_kilograms(), 2),
        TextTable::num(b.packaging.to_kilograms(), 2),
        TextTable::num(unit_kg, 2)};
    if (opts.include_uncertainty) {
      const auto u =
          propagate_any(line.part, opts.bands, opts.monte_carlo_samples);
      row.push_back(TextTable::num(u.p05.to_kilograms(), 1) + "-" +
                    TextTable::num(u.p95.to_kilograms(), 1));
    }
    row.push_back(TextTable::num(line_g / 1e6, 2));
    t.add_row(row);
  }
  out << t.to_string() << "\n";

  out << "Component detail:\n";
  for (const auto& line : bom) {
    out << "  - " << part_detail(line.part) << "\n";
  }

  out << "\nClass rollup:\n";
  TextTable roll({"Class", "tCO2e", "share %"});
  const char* names[5] = {"GPU", "CPU", "DRAM", "SSD", "HDD"};
  for (std::size_t c = 0; c < class_totals.size(); ++c) {
    if (class_totals[c] == 0) continue;
    roll.add_row({names[c], TextTable::num(class_totals[c] / 1e6, 2),
                  TextTable::num(100.0 * class_totals[c] / grand_total_g, 1)});
  }
  roll.add_row({"TOTAL", TextTable::num(grand_total_g / 1e6, 2), "100.0"});
  out << roll.to_string();
  return out.str();
}

}  // namespace hpcarbon::embodied
