// Semiconductor process (lithography) carbon-footprint parameters.
//
// Eq. 3 of the paper: M_proc = (FPA + GPA + MPA) * A_die / Yield, where
//   FPA — fab carbon emission per unit area (electricity of the fab,
//         depends on fab location and lithography),
//   GPA — emissions from chemicals and gases per unit area (lithography),
//   MPA — emissions from raw materials per unit area (lithography),
//   Yield — fab yield, fixed to 0.875 following ACT and the paper.
//
// Per-node intensities follow the ACT-family literature (Gupta et al. ISCA
// '22; Greenchip): total carbon per cm^2 rises steeply with EUV-era nodes
// (~0.9 kgCO2/cm^2 at 28 nm up to ~1.9 kgCO2/cm^2 at 5 nm).
#pragma once

#include <string>

#include "core/units.h"

namespace hpcarbon::embodied {

enum class ProcessNode {
  nm32,
  nm28,
  nm16,
  nm14,
  nm12,
  nm7,
  nm6,
  nm5,
};

const char* to_string(ProcessNode node);

/// Per-area emission factors, all in gCO2 per cm^2 of wafer area.
struct FabFootprint {
  double fpa_g_per_cm2 = 0;  // fab energy
  double gpa_g_per_cm2 = 0;  // process gases & chemicals
  double mpa_g_per_cm2 = 0;  // raw materials

  constexpr double total_g_per_cm2() const {
    return fpa_g_per_cm2 + gpa_g_per_cm2 + mpa_g_per_cm2;
  }
};

/// Emission factors for a given lithography node (grid-average fab energy).
FabFootprint fab_footprint(ProcessNode node);

/// Fab yield used throughout the paper (constant, consistent with ACT).
inline constexpr double kDefaultYield = 0.875;

/// Eq. 3 for a single die.
Mass die_manufacturing_carbon(double die_area_mm2, ProcessNode node,
                              double yield = kDefaultYield);

}  // namespace hpcarbon::embodied
