#include "embodied/models.h"

#include "core/error.h"

namespace hpcarbon::embodied {

Mass processor_manufacturing(const ProcessorPart& part) {
  HPC_REQUIRE(!part.dies.empty(), "processor has no dies: " + part.name);
  Mass total;
  for (const auto& die : part.dies) {
    total += die_manufacturing_carbon(die.area_mm2, die.node, part.yield) *
             static_cast<double>(die.count);
  }
  return total;
}

Mass capacity_manufacturing(const MemoryPart& part) {
  HPC_REQUIRE(part.capacity_gb > 0, "capacity must be positive: " + part.name);
  HPC_REQUIRE(part.epc_g_per_gb > 0, "EPC must be positive: " + part.name);
  return Mass::grams(part.epc_g_per_gb * part.capacity_gb);
}

Mass ic_packaging(int ic_count) {
  HPC_REQUIRE(ic_count >= 0, "negative IC count");
  return Mass::grams(kPackagingGramsPerIc * ic_count);
}

EmbodiedBreakdown embodied(const ProcessorPart& part) {
  EmbodiedBreakdown b;
  b.manufacturing = processor_manufacturing(part);
  b.packaging = ic_packaging(part.ic_count);
  return b;
}

EmbodiedBreakdown embodied(const MemoryPart& part) {
  EmbodiedBreakdown b;
  b.manufacturing = capacity_manufacturing(part);
  if (part.cls == PartClass::kDram) {
    b.packaging = ic_packaging(part.ic_count);
  } else {
    const double ratio =
        part.packaging_to_manufacturing.value_or(kStoragePackagingRatio);
    HPC_REQUIRE(ratio >= 0, "packaging ratio must be non-negative");
    b.packaging = b.manufacturing * ratio;
  }
  return b;
}

double kg_per_tflop_fp64(const ProcessorPart& part) {
  HPC_REQUIRE(part.fp64_tflops > 0,
              "FP64 TFLOPS must be positive: " + part.name);
  return embodied(part).total().to_kilograms() / part.fp64_tflops;
}

double kg_per_gbps(const MemoryPart& part) {
  HPC_REQUIRE(part.bandwidth_gb_per_s > 0,
              "bandwidth must be positive: " + part.name);
  return embodied(part).total().to_kilograms() / part.bandwidth_gb_per_s;
}

}  // namespace hpcarbon::embodied
