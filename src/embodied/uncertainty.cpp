#include "embodied/uncertainty.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/thread_pool.h"
#include "embodied/models.h"

namespace hpcarbon::embodied {

namespace {

UncertaintyResult summarize(std::vector<double>& grams) {
  UncertaintyResult r;
  r.samples = static_cast<int>(grams.size());
  r.mean = Mass::grams(stats::mean(grams));
  r.stddev = Mass::grams(stats::stddev(grams));
  r.p05 = Mass::grams(stats::quantile(grams, 0.05));
  r.p50 = Mass::grams(stats::quantile(grams, 0.50));
  r.p95 = Mass::grams(stats::quantile(grams, 0.95));
  return r;
}

// Draws one multiplicative perturbation in [1-band, 1+band].
double jitter(Rng& rng, double band) { return rng.uniform(1.0 - band, 1.0 + band); }

}  // namespace

UncertaintyResult propagate(const ProcessorPart& part,
                            const UncertaintyBands& bands, int samples,
                            std::uint64_t seed) {
  HPC_REQUIRE(samples > 0, "need at least one sample");
  std::vector<double> grams(static_cast<std::size_t>(samples), 0.0);
  auto& pool = ThreadPool::global();
  // One RNG stream per sample index derived from (seed, i): deterministic
  // regardless of thread count.
  pool.parallel_for(0, grams.size(), [&](std::size_t i) {
    Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
    double total = 0;
    for (const auto& die : part.dies) {
      const double per_area =
          fab_footprint(die.node).total_g_per_cm2() *
          jitter(rng, bands.fab_per_area);
      double y = part.yield + rng.uniform(-bands.yield, bands.yield);
      y = std::clamp(y, 0.5, 1.0);
      total += per_area * (die.area_mm2 / 100.0) * die.count / y;
    }
    total += kPackagingGramsPerIc * part.ic_count * jitter(rng, bands.packaging);
    grams[i] = total;
  });
  return summarize(grams);
}

UncertaintyResult propagate(const MemoryPart& part,
                            const UncertaintyBands& bands, int samples,
                            std::uint64_t seed) {
  HPC_REQUIRE(samples > 0, "need at least one sample");
  std::vector<double> grams(static_cast<std::size_t>(samples), 0.0);
  auto& pool = ThreadPool::global();
  pool.parallel_for(0, grams.size(), [&](std::size_t i) {
    Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
    const double mfg =
        part.epc_g_per_gb * part.capacity_gb * jitter(rng, bands.epc);
    double pkg;
    if (part.cls == PartClass::kDram) {
      pkg = kPackagingGramsPerIc * part.ic_count * jitter(rng, bands.packaging);
    } else {
      pkg = mfg *
            part.packaging_to_manufacturing.value_or(kStoragePackagingRatio) *
            jitter(rng, bands.packaging);
    }
    grams[i] = mfg + pkg;
  });
  return summarize(grams);
}

}  // namespace hpcarbon::embodied
