#include "embodied/uncertainty.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "embodied/models.h"

namespace hpcarbon::embodied {

namespace {

// Draws one multiplicative perturbation in [1-band, 1+band].
double jitter(Rng& rng, double band) {
  return rng.uniform(1.0 - band, 1.0 + band);
}

}  // namespace

void validate(const UncertaintyBands& bands) {
  HPC_REQUIRE(bands.fab_per_area >= 0 && bands.yield >= 0 && bands.epc >= 0 &&
                  bands.packaging >= 0,
              "uncertainty bands must be non-negative");
  // The fab/EPC/packaging bands are multiplicative half-widths: anything
  // above 1 draws negative multipliers, i.e. negative embodied carbon —
  // silently corrupting every downstream distribution.
  HPC_REQUIRE(bands.fab_per_area <= 1.0 && bands.epc <= 1.0 &&
                  bands.packaging <= 1.0,
              "multiplicative uncertainty bands must be at most 1");
}

void validate(const ProcessorPart& part, const UncertaintyBands& bands) {
  validate(bands);
  // The sampler clamps perturbed yield into [0.5, 1.0]; a band wide enough
  // to hit the clamp would pile probability mass on the edges and silently
  // skew the distribution, so reject it up front.
  constexpr double kEps = 1e-12;
  HPC_REQUIRE(part.yield - bands.yield >= 0.5 - kEps &&
                  part.yield + bands.yield <= 1.0 + kEps,
              "yield band escapes [0.5, 1.0]: narrow bands.yield or adjust "
              "part.yield");
}

double sample_embodied_grams(const ProcessorPart& part,
                             const UncertaintyBands& bands, Rng& rng) {
  double total = 0;
  for (const auto& die : part.dies) {
    const double per_area = fab_footprint(die.node).total_g_per_cm2() *
                            jitter(rng, bands.fab_per_area);
    double y = part.yield + rng.uniform(-bands.yield, bands.yield);
    y = std::clamp(y, 0.5, 1.0);  // cannot bind once validate() passed
    total += per_area * (die.area_mm2 / 100.0) * die.count / y;
  }
  total += kPackagingGramsPerIc * part.ic_count * jitter(rng, bands.packaging);
  return total;
}

double sample_embodied_grams(const MemoryPart& part,
                             const UncertaintyBands& bands, Rng& rng) {
  const double mfg =
      part.epc_g_per_gb * part.capacity_gb * jitter(rng, bands.epc);
  double pkg;
  if (part.cls == PartClass::kDram) {
    pkg = kPackagingGramsPerIc * part.ic_count * jitter(rng, bands.packaging);
  } else {
    pkg = mfg *
          part.packaging_to_manufacturing.value_or(kStoragePackagingRatio) *
          jitter(rng, bands.packaging);
  }
  return mfg + pkg;
}

mc::Distribution propagate_distribution(const ProcessorPart& part,
                                        const UncertaintyBands& bands,
                                        const mc::SamplePlan& plan) {
  validate(part, bands);
  return mc::Engine(plan).run([&](std::size_t, Rng& rng) {
    return sample_embodied_grams(part, bands, rng);
  });
}

mc::Distribution propagate_distribution(const MemoryPart& part,
                                        const UncertaintyBands& bands,
                                        const mc::SamplePlan& plan) {
  validate(bands);
  return mc::Engine(plan).run([&](std::size_t, Rng& rng) {
    return sample_embodied_grams(part, bands, rng);
  });
}

UncertaintyResult UncertaintyResult::from(const mc::Distribution& d) {
  UncertaintyResult r;
  r.samples = d.samples();
  r.mean = Mass::grams(d.mean());
  r.stddev = Mass::grams(d.stddev());
  r.p05 = Mass::grams(d.p05());
  r.p50 = Mass::grams(d.p50());
  r.p95 = Mass::grams(d.p95());
  return r;
}

UncertaintyResult propagate(const ProcessorPart& part,
                            const UncertaintyBands& bands, int samples,
                            std::uint64_t seed) {
  return UncertaintyResult::from(
      propagate_distribution(part, bands, {samples, seed, nullptr}));
}

UncertaintyResult propagate(const MemoryPart& part,
                            const UncertaintyBands& bands, int samples,
                            std::uint64_t seed) {
  return UncertaintyResult::from(
      propagate_distribution(part, bands, {samples, seed, nullptr}));
}

}  // namespace hpcarbon::embodied
