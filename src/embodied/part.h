// Hardware part descriptions: the inputs of the embodied-carbon models.
//
// The paper models three families (Sec. 2.1):
//  * processors (CPU/GPU) — vendor-generic: per-die lithography area (Eq. 3)
//    plus per-IC packaging (Eq. 5);
//  * memory (DRAM) — vendor-specific: gCO2 per GB (Eq. 4) plus per-IC
//    packaging;
//  * storage (SSD/HDD) — gCO2 per GB (Eq. 4); packaging estimated via a
//    vendor-reported packaging-to-manufacturing ratio because counting ICs
//    is "non-trivial for storage components".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/units.h"
#include "embodied/process_node.h"

namespace hpcarbon::embodied {

enum class PartClass { kGpu, kCpu, kDram, kSsd, kHdd };
const char* to_string(PartClass c);

/// One silicon die inside a processor package (chiplet designs list several).
struct Die {
  double area_mm2 = 0;
  ProcessNode node = ProcessNode::nm7;
  int count = 1;  // identical dies (e.g. 8x Zen3 CCD)
};

/// CPU or GPU. Performance/power fields feed the normalized plots (Fig. 1b)
/// and the operational models; carbon fields feed Eq. 3/5.
struct ProcessorPart {
  std::string name;        // e.g. "NVIDIA A100"
  std::string part_name;   // e.g. "NVIDIA A100 PCIe 40GB"
  std::string vendor;
  std::string release;     // "May 2020"
  PartClass cls = PartClass::kGpu;

  std::vector<Die> dies;
  int ic_count = 1;        // packaged ICs on the board/module (Eq. 5)
  double yield = kDefaultYield;

  double fp64_tflops = 0;  // theoretical peak, the paper's normalizer
  double fp32_tflops = 0;
  double tdp_watts = 0;
  double idle_watts = 0;

  double total_die_area_mm2() const;
};

/// DRAM module / SSD / HDD. EPC is the vendor-sustainability-report-derived
/// "emission per capacity" in gCO2/GB; bandwidth feeds Fig. 2(b).
struct MemoryPart {
  std::string name;
  std::string part_name;
  std::string vendor;
  std::string release;
  PartClass cls = PartClass::kDram;

  double capacity_gb = 0;
  double epc_g_per_gb = 0;
  double bandwidth_gb_per_s = 0;

  // Packaging: DRAM counts ICs (Eq. 5); storage uses the ratio.
  int ic_count = 0;                                  // used when cls==kDram
  std::optional<double> packaging_to_manufacturing;  // used for SSD/HDD

  double active_watts = 0;
  double idle_watts = 0;
};

}  // namespace hpcarbon::embodied
