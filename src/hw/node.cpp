#include "hw/node.h"

#include <cmath>

#include "core/error.h"

namespace hpcarbon::hw {

const char* to_string(GpuArch a) {
  switch (a) {
    case GpuArch::kPascal: return "Pascal (P100)";
    case GpuArch::kVolta: return "Volta (V100)";
    case GpuArch::kAmpere: return "Ampere (A100)";
  }
  return "?";
}

int NodeConfig::dram_module_count() const {
  const auto& dimm = embodied::memory(embodied::PartId::kDram64GbDdr4);
  return static_cast<int>(std::ceil(dram_gb / dimm.capacity_gb));
}

Mass node_embodied(const NodeConfig& node, EmbodiedScope scope) {
  HPC_REQUIRE(node.gpu_count >= 0 && node.cpu_count > 0,
              "node must have CPUs and a non-negative GPU count");
  Mass total = embodied::embodied_of(node.gpu).total() * node.gpu_count +
               embodied::embodied_of(node.cpu).total() * node.cpu_count;
  if (scope == EmbodiedScope::kFullNode) {
    total += embodied::embodied_of(embodied::PartId::kDram64GbDdr4).total() *
             node.dram_module_count();
    total +=
        embodied::embodied_of(embodied::PartId::kSsdNytro3530_3_2Tb).total() *
        node.ssd_count;
  }
  return total;
}

Mass sample_node_embodied(const NodeConfig& node, EmbodiedScope scope,
                          const embodied::UncertaintyBands& bands, Rng& rng) {
  HPC_REQUIRE(node.gpu_count >= 0 && node.cpu_count > 0,
              "node must have CPUs and a non-negative GPU count");
  const auto& gpu = embodied::processor(node.gpu);
  const auto& cpu = embodied::processor(node.cpu);
  // Part-aware band validation (yield band vs the sampler's clamp) must
  // run here, not just in embodied::propagate: the lifecycle distribution
  // APIs reach the processor samplers only through this seam.
  embodied::validate(gpu, bands);
  embodied::validate(cpu, bands);
  // Mirrors node_embodied term by term, with each part's point value
  // replaced by one sampled draw. Draw order is fixed (GPU, CPU, then
  // DRAM/SSD in full scope) so a given (seed, sample) pair is reproducible.
  double grams =
      embodied::sample_embodied_grams(gpu, bands, rng) * node.gpu_count +
      embodied::sample_embodied_grams(cpu, bands, rng) * node.cpu_count;
  if (scope == EmbodiedScope::kFullNode) {
    grams += embodied::sample_embodied_grams(
                 embodied::memory(embodied::PartId::kDram64GbDdr4), bands,
                 rng) *
             node.dram_module_count();
    grams += embodied::sample_embodied_grams(
                 embodied::memory(embodied::PartId::kSsdNytro3530_3_2Tb),
                 bands, rng) *
             node.ssd_count;
  }
  return Mass::grams(grams);
}

NodeConfig p100_node() {
  NodeConfig n;
  n.name = "P100";
  n.gpu = embodied::PartId::kP100Pcie16;
  n.gpu_count = 4;
  n.arch = GpuArch::kPascal;
  n.cpu = embodied::PartId::kXeonE5_2680;
  n.cpu_count = 2;
  n.dram_gb = 256;
  return n;
}

NodeConfig v100_node() {
  NodeConfig n;
  n.name = "V100";
  n.gpu = embodied::PartId::kV100Sxm2_32;
  n.gpu_count = 4;
  n.arch = GpuArch::kVolta;
  n.cpu = embodied::PartId::kXeonGold6240R;
  n.cpu_count = 2;
  n.dram_gb = 384;
  return n;
}

NodeConfig a100_node() {
  NodeConfig n;
  n.name = "A100";
  n.gpu = embodied::PartId::kA100Pcie40;
  n.gpu_count = 4;
  n.arch = GpuArch::kAmpere;
  n.cpu = embodied::PartId::kEpyc7542;
  n.cpu_count = 4;
  n.dram_gb = 512;
  return n;
}

NodeConfig node_for(GpuArch arch) {
  switch (arch) {
    case GpuArch::kPascal: return p100_node();
    case GpuArch::kVolta: return v100_node();
    case GpuArch::kAmpere: return a100_node();
  }
  return v100_node();
}

NodeConfig fig4_node(int gpu_count) {
  HPC_REQUIRE(gpu_count >= 1 && gpu_count <= 8, "GPU count out of range");
  NodeConfig n = v100_node();
  n.name = "2x Xeon 6240R + " + std::to_string(gpu_count) + "x V100";
  n.gpu_count = gpu_count;
  return n;
}

}  // namespace hpcarbon::hw
