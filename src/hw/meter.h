// Sampling energy meter: the measurement layer of the operational pipeline.
//
// Real deployments read NVML/RAPL counters at a fixed cadence and integrate;
// carbontracker (which the paper uses) does exactly this at ~1 Hz. The
// EnergyMeter reproduces that pipeline against a simulated power signal,
// including optional multiplicative sensor noise, trapezoidal integration,
// and the sampling error it implies.
#pragma once

#include <cstdint>
#include <functional>

#include "core/units.h"

namespace hpcarbon::hw {

/// Power as a function of elapsed time.
using PowerSignal = std::function<Power(Hours elapsed)>;

struct MeterOptions {
  Hours sample_interval = Hours::seconds(1.0);
  /// Relative 1-sigma multiplicative sensor noise (NVML is ~±5 W on a
  /// 300 W part; 0 disables).
  double noise_sigma = 0.0;
  std::uint64_t seed = 7;
};

class EnergyMeter {
 public:
  explicit EnergyMeter(MeterOptions opts = {});

  /// Push one sample (the live-streaming interface used by the Tracker).
  void record(Power p, Hours dt);

  /// Integrate a power signal over a duration by sampling it.
  Energy integrate(const PowerSignal& signal, Hours duration);

  Energy total() const { return total_; }
  Hours elapsed() const { return elapsed_; }
  Power average_power() const;
  std::size_t samples() const { return samples_; }

  void reset();

 private:
  MeterOptions opts_;
  Energy total_;
  Hours elapsed_;
  std::size_t samples_ = 0;
  double last_watts_ = 0;
  bool has_last_ = false;
  std::uint64_t noise_state_;

  double noisy(double watts);
};

}  // namespace hpcarbon::hw
