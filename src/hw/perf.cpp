#include "hw/perf.h"

#include <cmath>

#include "core/error.h"

namespace hpcarbon::hw {

double arch_factor(const workload::BenchmarkModel& m, GpuArch arch) {
  switch (arch) {
    case GpuArch::kPascal: return 1.0;
    case GpuArch::kVolta: return m.volta_factor;
    case GpuArch::kAmpere: return m.ampere_factor;
  }
  return 1.0;
}

double throughput(const workload::BenchmarkModel& m, const NodeConfig& node,
                  int gpus_used) {
  const int k = gpus_used == 0 ? node.gpu_count : gpus_used;
  HPC_REQUIRE(k >= 1 && k <= node.gpu_count,
              "requested more GPUs than the node has");
  const double single = m.base_p100_samples_per_s * arch_factor(m, node.arch);
  if (k == 1) return single;
  const double kd = k;
  const double inflate =
      1.0 + m.ring_overhead * (2.0 * (kd - 1.0) / kd) +
      m.sync_overhead * (kd - 1.0);
  return single * kd / inflate;
}

double suite_score(workload::Suite suite, const NodeConfig& node,
                   int gpus_used) {
  const auto& ms = workload::models(suite);
  double log_acc = 0;
  for (const auto& m : ms) {
    const double ratio =
        throughput(m, node, gpus_used) / m.base_p100_samples_per_s;
    log_acc += std::log(ratio);
  }
  return std::exp(log_acc / static_cast<double>(ms.size()));
}

double suite_speedup(workload::Suite suite, const NodeConfig& from,
                     const NodeConfig& to) {
  const auto& ms = workload::models(suite);
  double acc = 0;
  for (const auto& m : ms) {
    acc += throughput(m, to) / throughput(m, from);
  }
  return acc / static_cast<double>(ms.size());
}

double suite_time_ratio(workload::Suite suite, const NodeConfig& from,
                        const NodeConfig& to) {
  const auto& ms = workload::models(suite);
  double acc = 0;
  for (const auto& m : ms) {
    acc += throughput(m, from) / throughput(m, to);
  }
  return acc / static_cast<double>(ms.size());
}

double upgrade_improvement_percent(workload::Suite suite,
                                   const NodeConfig& from,
                                   const NodeConfig& to) {
  return 100.0 * (1.0 - suite_time_ratio(suite, from, to));
}

}  // namespace hpcarbon::hw
