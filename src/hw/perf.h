// Training performance model for GPU nodes.
//
// Single-GPU throughput is the benchmark's P100-reference throughput times
// its architecture factor. Multi-GPU (data parallel, constant per-GPU batch,
// matching RQ 3's setup) divides the aggregate by the communication
// inflation
//
//   step(k) = t_comp * (1 + r * 2(k-1)/k + l * (k-1))
//
// with the benchmark's ring/sync overheads r, l (see workload/model.h).
#pragma once

#include "workload/model.h"
#include "hw/node.h"

namespace hpcarbon::hw {

/// Per-model throughput multiplier versus the P100 baseline.
double arch_factor(const workload::BenchmarkModel& m, GpuArch arch);

/// Training throughput (samples/s) of `m` on `k` GPUs of `node`.
/// k defaults to every GPU in the node.
double throughput(const workload::BenchmarkModel& m, const NodeConfig& node,
                  int gpus_used = 0);

/// Aggregate suite throughput score: geometric mean of per-model speedups
/// relative to one P100 GPU. Used to compare node generations on a whole
/// suite.
double suite_score(workload::Suite suite, const NodeConfig& node,
                   int gpus_used = 0);

/// Mean per-model speedup of `suite` going from `from` to `to` nodes
/// (arithmetic mean of per-model throughput ratios).
double suite_speedup(workload::Suite suite, const NodeConfig& from,
                     const NodeConfig& to);

/// Mean per-model *time-to-solution ratio* T_new/T_old for a suite; the
/// quantity that scales busy energy in the upgrade model. Equals
/// mean_i(1/speedup_i), i.e. 1 - (Table 6 improvement).
double suite_time_ratio(workload::Suite suite, const NodeConfig& from,
                        const NodeConfig& to);

/// Table 6: percentage improvement = 100 * (1 - mean time ratio).
double upgrade_improvement_percent(workload::Suite suite,
                                   const NodeConfig& from,
                                   const NodeConfig& to);

}  // namespace hpcarbon::hw
