// Node power model.
//
// During training the GPUs draw a benchmark-dependent fraction of TDP
// (~0.92 for the dense DL workloads modeled here) while the host CPUs run
// the input pipeline at a partial load. Idle power is the sum of component
// idle floors plus the platform overhead. This mirrors what NVML/RAPL-based
// measurement (the paper uses carbontracker) reports on real nodes.
#pragma once

#include "core/units.h"
#include "hw/node.h"
#include "workload/model.h"

namespace hpcarbon::hw {

/// Host-CPU load fraction (of TDP) while feeding GPU training.
inline constexpr double kCpuActiveFraction = 0.45;

/// Node power with no work allocated (component idle floors + platform).
Power node_idle_power(const NodeConfig& node);

/// Node power while training `m` on `gpus_used` GPUs (0 = all). GPUs not
/// participating idle.
Power node_training_power(const NodeConfig& node,
                          const workload::BenchmarkModel& m,
                          int gpus_used = 0);

/// Suite-average training power (all GPUs busy).
Power node_training_power(const NodeConfig& node, workload::Suite suite);

/// Average power at a given GPU-usage duty cycle u in [0,1]:
/// idle + u * (training - idle). The paper's RQ 8 usage model (nodes are
/// allocated 100% of the time; the GPU usage rate varies).
Power node_average_power(const NodeConfig& node, workload::Suite suite,
                         double gpu_usage);

/// Energy to process `samples` samples of `m` on the node (busy power x
/// time at model throughput). IT energy only; PUE applied downstream.
Energy training_energy(const NodeConfig& node,
                       const workload::BenchmarkModel& m, double samples,
                       int gpus_used = 0);

}  // namespace hpcarbon::hw
