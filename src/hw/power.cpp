#include "hw/power.h"

#include "core/error.h"
#include "hw/perf.h"

namespace hpcarbon::hw {

namespace {

struct NodeParts {
  const embodied::ProcessorPart* gpu;
  const embodied::ProcessorPart* cpu;
  const embodied::MemoryPart* dimm;
  const embodied::MemoryPart* ssd;
};

NodeParts parts(const NodeConfig& node) {
  return {&embodied::processor(node.gpu), &embodied::processor(node.cpu),
          &embodied::memory(embodied::PartId::kDram64GbDdr4),
          &embodied::memory(embodied::PartId::kSsdNytro3530_3_2Tb)};
}

}  // namespace

Power node_idle_power(const NodeConfig& node) {
  const NodeParts p = parts(node);
  double w = node.platform_watts;
  w += p.gpu->idle_watts * node.gpu_count;
  w += p.cpu->idle_watts * node.cpu_count;
  w += p.dimm->idle_watts * node.dram_module_count();
  w += p.ssd->idle_watts * node.ssd_count;
  return Power::watts(w);
}

Power node_training_power(const NodeConfig& node,
                          const workload::BenchmarkModel& m, int gpus_used) {
  const int k = gpus_used == 0 ? node.gpu_count : gpus_used;
  HPC_REQUIRE(k >= 1 && k <= node.gpu_count,
              "requested more GPUs than the node has");
  const NodeParts p = parts(node);
  double w = node.platform_watts;
  w += p.gpu->tdp_watts * m.gpu_power_utilization * k;
  w += p.gpu->idle_watts * (node.gpu_count - k);
  w += p.cpu->tdp_watts * kCpuActiveFraction * node.cpu_count;
  w += p.dimm->active_watts * node.dram_module_count();
  w += p.ssd->active_watts * node.ssd_count;
  return Power::watts(w);
}

Power node_training_power(const NodeConfig& node, workload::Suite suite) {
  const auto& ms = workload::models(suite);
  Power acc;
  for (const auto& m : ms) acc += node_training_power(node, m);
  return acc / static_cast<double>(ms.size());
}

Power node_average_power(const NodeConfig& node, workload::Suite suite,
                         double gpu_usage) {
  HPC_REQUIRE(gpu_usage >= 0.0 && gpu_usage <= 1.0,
              "GPU usage must be in [0,1]");
  const Power idle = node_idle_power(node);
  const Power busy = node_training_power(node, suite);
  return idle + (busy - idle) * gpu_usage;
}

Energy training_energy(const NodeConfig& node,
                       const workload::BenchmarkModel& m, double samples,
                       int gpus_used) {
  HPC_REQUIRE(samples > 0, "sample count must be positive");
  const double tput = throughput(m, node, gpus_used);
  const Hours duration = Hours::seconds(samples / tput);
  return node_training_power(node, m, gpus_used) * duration;
}

}  // namespace hpcarbon::hw
