// Compute-node configurations: the three node generations of Table 5 plus
// the variable-GPU-count node of Fig. 4 (RQ 3).
//
//   P100 node — 4x Tesla P100 PCIe,   2x Xeon E5-2680
//   V100 node — 4x Tesla V100 SXM2,   2x Xeon Gold 6240R
//   A100 node — 4x A100 PCIe 40GB,    4x EPYC 7542
//
// Node embodied carbon can be rolled up at two scopes:
//  * compute scope (CPUs + GPUs) — the basis of Fig. 4's normalized node
//    embodied carbon;
//  * full scope (adds DRAM modules and the local SSD) — the basis of the
//    upgrade analysis (Figs. 8-9), where an upgrade procures a whole node.
#pragma once

#include <string>

#include "core/rng.h"
#include "core/units.h"
#include "embodied/catalog.h"
#include "embodied/uncertainty.h"

namespace hpcarbon::hw {

/// NVIDIA datacenter GPU generations studied in RQ 7/8.
enum class GpuArch { kPascal, kVolta, kAmpere };
const char* to_string(GpuArch a);

struct NodeConfig {
  std::string name;
  embodied::PartId gpu = embodied::PartId::kV100Sxm2_32;
  int gpu_count = 4;
  GpuArch arch = GpuArch::kVolta;
  embodied::PartId cpu = embodied::PartId::kXeonGold6240R;
  int cpu_count = 2;
  double dram_gb = 384;  // node memory, in catalog 64GB modules
  int ssd_count = 1;     // local scratch (catalog 3.2TB SSD)
  /// Chassis/fans/NIC/VRM electrical overhead, always on.
  double platform_watts = 150;

  int dram_module_count() const;
};

enum class EmbodiedScope { kComputeOnly, kFullNode };

/// Node embodied carbon (Eq. 2 summed over components in scope).
Mass node_embodied(const NodeConfig& node,
                   EmbodiedScope scope = EmbodiedScope::kFullNode);

/// One Monte-Carlo draw of node_embodied under part-level input bands
/// (the per-sample seam of the lifecycle uncertainty layer). Perturbations
/// are drawn once per part *model* and scaled by count: the bands describe
/// model/vendor uncertainty (is the A100's per-area factor right?), which
/// is fully correlated across identical parts in one node, not
/// unit-to-unit manufacturing variation.
Mass sample_node_embodied(const NodeConfig& node, EmbodiedScope scope,
                          const embodied::UncertaintyBands& bands, Rng& rng);

// Table 5 presets.
NodeConfig p100_node();
NodeConfig v100_node();
NodeConfig a100_node();
NodeConfig node_for(GpuArch arch);

/// Fig. 4 node: 2x Xeon Gold 6240R with a configurable V100 count.
NodeConfig fig4_node(int gpu_count);

}  // namespace hpcarbon::hw
