#include "hw/meter.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/rng.h"

namespace hpcarbon::hw {

EnergyMeter::EnergyMeter(MeterOptions opts)
    : opts_(opts), noise_state_(opts.seed) {
  HPC_REQUIRE(opts_.sample_interval.count() > 0,
              "sample interval must be positive");
  HPC_REQUIRE(opts_.noise_sigma >= 0, "noise sigma must be non-negative");
}

double EnergyMeter::noisy(double watts) {
  if (opts_.noise_sigma == 0.0) return watts;
  // Cheap inline RNG: one Gaussian via a dedicated stream so record() stays
  // deterministic regardless of interleaving with other components.
  Rng rng(noise_state_);
  noise_state_ = rng.next_u64();
  return std::max(0.0, watts * (1.0 + opts_.noise_sigma * rng.normal()));
}

void EnergyMeter::record(Power p, Hours dt) {
  HPC_REQUIRE(dt.count() >= 0, "negative time step");
  const double w = noisy(p.to_watts());
  if (has_last_) {
    // Trapezoid between the previous and current sample.
    const double avg_kw = 0.5 * (last_watts_ + w) / 1000.0;
    total_ += Energy::kilowatt_hours(avg_kw * dt.count());
  } else {
    total_ += Energy::kilowatt_hours(w / 1000.0 * dt.count());
  }
  last_watts_ = w;
  has_last_ = true;
  elapsed_ += dt;
  ++samples_;
}

Energy EnergyMeter::integrate(const PowerSignal& signal, Hours duration) {
  HPC_REQUIRE(duration.count() > 0, "duration must be positive");
  const double step = opts_.sample_interval.count();
  double t = 0;
  // Prime with the t=0 sample so the first trapezoid is well-formed.
  record(signal(Hours::hours(0)), Hours::hours(0));
  while (t < duration.count()) {
    const double dt = std::min(step, duration.count() - t);
    t += dt;
    record(signal(Hours::hours(t)), Hours::hours(dt));
  }
  return total_;
}

Power EnergyMeter::average_power() const {
  if (elapsed_.count() <= 0) return Power::watts(0);
  return total_ / elapsed_;
}

void EnergyMeter::reset() {
  total_ = Energy();
  elapsed_ = Hours();
  samples_ = 0;
  last_watts_ = 0;
  has_last_ = false;
}

}  // namespace hpcarbon::hw
