// Generic Monte-Carlo engine: one sampling mechanism for every layer.
//
// Before this subsystem existed, embodied::propagate hand-rolled its own
// parallel sampling loop (twice, once per overload) and every higher layer
// — lifetime footprints, break-even analysis, fleet plans, the scheduler
// ablation — simply emitted point estimates because re-rolling that loop
// per API was too much friction. The engine factors the mechanism out:
//
//  * SamplePlan        — how many samples, the root seed, and (optionally)
//                        which thread pool executes them;
//  * substream()       — a deterministic per-sample RNG derived from
//                        (seed, index) through two SplitMix64 finalizations,
//                        replacing the ad-hoc `seed ^ (golden * (i+1))` xor
//                        whose low bits correlate across indices;
//  * Engine            — batched execution over ThreadPool::global() (or
//                        the plan's pool) that is bit-identical regardless
//                        of thread count: sample i always draws from
//                        substream(seed, i) and writes slot i.
//
// Model layers provide a pure per-sample function; the engine returns the
// raw sample vector or a Distribution (mean/stddev/quantiles/histogram,
// one sort). See README "Adding an uncertain quantity".
//
// Execution is blocked: samples are fanned out to the pool in contiguous
// blocks of kBlock indices, so the per-task dispatch (queue hop, future,
// std::function call) amortizes over hundreds of draws instead of hitting
// every one. The run_* entry points are templates over the sample functor
// for the same reason — a lambda is invoked directly in the inner loop,
// never through a std::function hop. Blocking changes which thread runs
// which sample but not the draw itself: sample i still seeds from
// substream(seed, i) and writes slot i, so results stay bit-identical
// across thread counts AND against the pre-blocking engine (pinned by
// test_mc_determinism and the mc bench's thread_bit_identical metric).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "mc/distribution.h"
#include "obs/metrics.h"

namespace hpcarbon::mc {

/// Register the mc instrument names (hpcarbon_mc_samples_total) in
/// `registry` so private-registry consumers (tests, isolated engines)
/// expose the same metric set as the process-global one. Draws always
/// record into MetricsRegistry::global(); a private registry reports 0.
void register_metrics(obs::MetricsRegistry& registry);

namespace detail {
/// Process-global draw tally, bound to MetricsRegistry::global() on
/// first use (one counter inc per run_* call, never per sample).
obs::Counter& samples_counter();
}  // namespace detail

struct SamplePlan {
  int samples = 4096;
  std::uint64_t seed = 42;
  /// Pool override for the batched execution; nullptr selects
  /// ThreadPool::global(). The result is bit-identical either way — this
  /// only chooses who runs the loop (tests use it to prove exactly that).
  ThreadPool* pool = nullptr;
};

/// The seed-decorrelation half of substream(): identical for every sample
/// of a run, so batched execution hoists it out of the per-sample loop.
std::uint64_t stream_base(std::uint64_t seed);

/// substream() with the seed half pre-computed: one SplitMix64
/// finalization per sample instead of two. Bit-identical to
/// substream(seed, index) when base == stream_base(seed).
inline Rng substream_from_base(std::uint64_t base, std::uint64_t index) {
  SplitMix64 inner(base + index);
  return Rng(inner.next());
}

/// Independent RNG stream for sample `index` of root `seed`. Deterministic
/// and order-free: any thread may evaluate any sample.
Rng substream(std::uint64_t seed, std::uint64_t index);

/// fn(sample_index, rng) -> one draw of the quantity under study.
/// (The run_* entry points are templates — these aliases document the
/// expected signatures and keep a nameable type for storage.)
using SampleFn = std::function<double(std::size_t, Rng&)>;
/// fn(sample_index, rng, out) fills `out` (size = outputs) with one joint
/// draw of several quantities sharing the same perturbed inputs. `out` is
/// a stripe of the engine's result buffer — no per-sample allocation.
using MultiSampleFn = std::function<void(std::size_t, Rng&, std::span<double>)>;

class Engine {
 public:
  /// Contiguous samples dispatched per pool task. Large enough to amortize
  /// the queue hop over cheap sample functions, small enough that a
  /// typical plan (4096 draws) still spreads across every worker.
  static constexpr std::size_t kBlock = 256;

  /// Validates the plan (samples >= 1).
  explicit Engine(SamplePlan plan);

  const SamplePlan& plan() const { return plan_; }

  /// All draws, in sample-index order (bit-identical across thread counts).
  template <class Fn>
  std::vector<double> run_samples(const Fn& fn) const {
    const auto n = static_cast<std::size_t>(plan_.samples);
    std::vector<double> out(n, 0.0);
    const std::uint64_t base = stream_base(plan_.seed);
    pool().parallel_for(0, num_blocks(n), [&](std::size_t b) {
      const std::size_t lo = b * kBlock;
      const std::size_t hi = std::min(n, lo + kBlock);
      for (std::size_t i = lo; i < hi; ++i) {
        Rng rng = substream_from_base(base, i);
        out[i] = fn(i, rng);
      }
    });
    detail::samples_counter().inc(n);
    return out;
  }

  /// run_samples + one-sort summarization.
  template <class Fn>
  Distribution run(const Fn& fn) const {
    return Distribution(run_samples(fn));
  }

  /// Joint sampling: `outputs` correlated quantities per draw (e.g. a
  /// footprint's embodied, operational, and total share one perturbed
  /// input vector). Returns one Distribution per output.
  template <class Fn>
  std::vector<Distribution> run_multi(std::size_t outputs,
                                      const Fn& fn) const {
    HPC_REQUIRE(outputs > 0, "run_multi needs at least one output");
    const auto n = static_cast<std::size_t>(plan_.samples);
    // Row-major per sample so each iteration touches one contiguous stripe.
    std::vector<double> buffer(n * outputs, 0.0);
    const std::uint64_t base = stream_base(plan_.seed);
    pool().parallel_for(0, num_blocks(n), [&](std::size_t b) {
      const std::size_t lo = b * kBlock;
      const std::size_t hi = std::min(n, lo + kBlock);
      for (std::size_t i = lo; i < hi; ++i) {
        Rng rng = substream_from_base(base, i);
        fn(i, rng, std::span<double>(buffer.data() + i * outputs, outputs));
      }
    });
    detail::samples_counter().inc(n);
    std::vector<Distribution> dists;
    dists.reserve(outputs);
    for (std::size_t k = 0; k < outputs; ++k) {
      std::vector<double> column(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) column[i] = buffer[i * outputs + k];
      dists.emplace_back(std::move(column));
    }
    return dists;
  }

 private:
  ThreadPool& pool() const {
    return plan_.pool != nullptr ? *plan_.pool : ThreadPool::global();
  }
  static std::size_t num_blocks(std::size_t n) {
    return (n + kBlock - 1) / kBlock;
  }

  SamplePlan plan_;
};

}  // namespace hpcarbon::mc
