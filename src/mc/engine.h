// Generic Monte-Carlo engine: one sampling mechanism for every layer.
//
// Before this subsystem existed, embodied::propagate hand-rolled its own
// parallel sampling loop (twice, once per overload) and every higher layer
// — lifetime footprints, break-even analysis, fleet plans, the scheduler
// ablation — simply emitted point estimates because re-rolling that loop
// per API was too much friction. The engine factors the mechanism out:
//
//  * SamplePlan        — how many samples, the root seed, and (optionally)
//                        which thread pool executes them;
//  * substream()       — a deterministic per-sample RNG derived from
//                        (seed, index) through two SplitMix64 finalizations,
//                        replacing the ad-hoc `seed ^ (golden * (i+1))` xor
//                        whose low bits correlate across indices;
//  * Engine            — batched execution over ThreadPool::global() (or
//                        the plan's pool) that is bit-identical regardless
//                        of thread count: sample i always draws from
//                        substream(seed, i) and writes slot i.
//
// Model layers provide a pure per-sample function; the engine returns the
// raw sample vector or a Distribution (mean/stddev/quantiles/histogram,
// one sort). See README "Adding an uncertain quantity".
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/rng.h"
#include "mc/distribution.h"

namespace hpcarbon {
class ThreadPool;
}

namespace hpcarbon::mc {

struct SamplePlan {
  int samples = 4096;
  std::uint64_t seed = 42;
  /// Pool override for the batched execution; nullptr selects
  /// ThreadPool::global(). The result is bit-identical either way — this
  /// only chooses who runs the loop (tests use it to prove exactly that).
  ThreadPool* pool = nullptr;
};

/// Independent RNG stream for sample `index` of root `seed`. Deterministic
/// and order-free: any thread may evaluate any sample.
Rng substream(std::uint64_t seed, std::uint64_t index);

/// fn(sample_index, rng) -> one draw of the quantity under study.
using SampleFn = std::function<double(std::size_t, Rng&)>;
/// fn(sample_index, rng, out) fills `out` (size = outputs) with one joint
/// draw of several quantities sharing the same perturbed inputs. `out` is
/// a stripe of the engine's result buffer — no per-sample allocation.
using MultiSampleFn = std::function<void(std::size_t, Rng&, std::span<double>)>;

class Engine {
 public:
  /// Validates the plan (samples >= 1).
  explicit Engine(SamplePlan plan);

  const SamplePlan& plan() const { return plan_; }

  /// All draws, in sample-index order (bit-identical across thread counts).
  std::vector<double> run_samples(const SampleFn& fn) const;

  /// run_samples + one-sort summarization.
  Distribution run(const SampleFn& fn) const;

  /// Joint sampling: `outputs` correlated quantities per draw (e.g. a
  /// footprint's embodied, operational, and total share one perturbed
  /// input vector). Returns one Distribution per output.
  std::vector<Distribution> run_multi(std::size_t outputs,
                                      const MultiSampleFn& fn) const;

 private:
  SamplePlan plan_;
};

}  // namespace hpcarbon::mc
