#include "mc/engine.h"

namespace hpcarbon::mc {

namespace {

obs::Counter& bind_samples_counter(obs::MetricsRegistry& registry) {
  return registry.counter("hpcarbon_mc_samples_total", "",
                          "Monte-Carlo draws executed.");
}

}  // namespace

void register_metrics(obs::MetricsRegistry& registry) {
  bind_samples_counter(registry);
}

namespace detail {

obs::Counter& samples_counter() {
  static obs::Counter& counter =
      bind_samples_counter(obs::MetricsRegistry::global());
  return counter;
}

}  // namespace detail

std::uint64_t stream_base(std::uint64_t seed) {
  // The first of substream's two chained SplitMix64 finalizations: it
  // decorrelates the user seed (so seeds 1, 2, 3… do not yield adjacent
  // stream bases) and depends only on the seed — batched runs compute it
  // once for the whole sample set.
  SplitMix64 outer(seed);
  return outer.next();
}

Rng substream(std::uint64_t seed, std::uint64_t index) {
  // Second finalization: mixes the sample index into a full-avalanche
  // 64-bit state. The Rng constructor then expands that state through its
  // own SplitMix64, giving xoshiro256** a well-spread initial state per
  // sample.
  return substream_from_base(stream_base(seed), index);
}

Engine::Engine(SamplePlan plan) : plan_(plan) {
  HPC_REQUIRE(plan_.samples > 0, "sample plan needs at least one sample");
}

}  // namespace hpcarbon::mc
