#include "mc/engine.h"

#include "core/error.h"
#include "core/thread_pool.h"

namespace hpcarbon::mc {

Rng substream(std::uint64_t seed, std::uint64_t index) {
  // Two chained SplitMix64 finalizations: the first decorrelates the user
  // seed (so seeds 1, 2, 3… do not yield adjacent stream bases), the
  // second mixes the sample index into a full-avalanche 64-bit state. The
  // Rng constructor then expands that state through its own SplitMix64,
  // giving xoshiro256** a well-spread initial state per sample.
  SplitMix64 outer(seed);
  SplitMix64 inner(outer.next() + index);
  return Rng(inner.next());
}

Engine::Engine(SamplePlan plan) : plan_(plan) {
  HPC_REQUIRE(plan_.samples > 0, "sample plan needs at least one sample");
}

std::vector<double> Engine::run_samples(const SampleFn& fn) const {
  std::vector<double> out(static_cast<std::size_t>(plan_.samples), 0.0);
  ThreadPool& pool = plan_.pool != nullptr ? *plan_.pool : ThreadPool::global();
  pool.parallel_for(0, out.size(), [&](std::size_t i) {
    Rng rng = substream(plan_.seed, i);
    out[i] = fn(i, rng);
  });
  return out;
}

Distribution Engine::run(const SampleFn& fn) const {
  return Distribution(run_samples(fn));
}

std::vector<Distribution> Engine::run_multi(std::size_t outputs,
                                            const MultiSampleFn& fn) const {
  HPC_REQUIRE(outputs > 0, "run_multi needs at least one output");
  const auto n = static_cast<std::size_t>(plan_.samples);
  // Row-major per sample so each iteration touches one contiguous stripe.
  std::vector<double> buffer(n * outputs, 0.0);
  ThreadPool& pool = plan_.pool != nullptr ? *plan_.pool : ThreadPool::global();
  pool.parallel_for(0, n, [&](std::size_t i) {
    Rng rng = substream(plan_.seed, i);
    fn(i, rng, std::span<double>(buffer.data() + i * outputs, outputs));
  });
  std::vector<Distribution> dists;
  dists.reserve(outputs);
  for (std::size_t k = 0; k < outputs; ++k) {
    std::vector<double> column(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) column[i] = buffer[i * outputs + k];
    dists.emplace_back(std::move(column));
  }
  return dists;
}

}  // namespace hpcarbon::mc
