// Distribution: the summary type every Monte-Carlo API returns.
//
// The paper's Threats-to-Validity section argues that yield, per-area
// emission factors, EPC, and grid carbon intensity are all uncertain, so a
// single number is the wrong shape for any derived answer. A Distribution
// wraps the empirical sample set produced by mc::Engine and answers the
// questions reports need — mean, stddev, arbitrary quantiles, empirical
// CDF, histogram — with one sort paid at construction (stats::Summary)
// instead of a sort per query.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/stats.h"

namespace hpcarbon::mc {

class Distribution {
 public:
  Distribution() = default;
  /// Takes ownership of the samples; one sort, no copy.
  explicit Distribution(std::vector<double> samples)
      : summary_(std::move(samples)) {}

  int samples() const { return static_cast<int>(summary_.count()); }
  bool empty() const { return summary_.empty(); }

  double mean() const { return summary_.mean(); }
  double stddev() const { return summary_.stddev(); }
  double min() const { return summary_.min(); }
  double max() const { return summary_.max(); }

  /// R type-7 interpolated quantile; p in [0,1]. O(1) after construction.
  double quantile(double p) const { return summary_.quantile(p); }
  double p05() const { return quantile(0.05); }
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }

  /// Empirical CDF: fraction of samples <= x. Drives probability-of-payback
  /// style questions ("P(break-even within 3 years)").
  double cdf(double x) const;

  /// Fixed-width histogram over [min, max]; degenerate (constant) samples
  /// collapse into a single bin.
  std::vector<std::size_t> histogram(std::size_t bins) const;

  /// The samples in ascending order.
  const std::vector<double>& sorted() const { return summary_.sorted(); }

  /// "mean 12.3 sd 1.2 [p05 10.4, p95 14.1] (4096 samples)".
  std::string to_string(int precision = 3) const;

 private:
  stats::Summary summary_;
};

}  // namespace hpcarbon::mc
