#include "mc/distribution.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/error.h"

namespace hpcarbon::mc {

double Distribution::cdf(double x) const {
  HPC_REQUIRE(!empty(), "cdf of empty distribution");
  const auto& s = summary_.sorted();
  const auto it = std::upper_bound(s.begin(), s.end(), x);
  return static_cast<double>(it - s.begin()) / static_cast<double>(s.size());
}

std::vector<std::size_t> Distribution::histogram(std::size_t bins) const {
  HPC_REQUIRE(bins > 0, "histogram needs at least one bin");
  HPC_REQUIRE(!empty(), "histogram of empty distribution");
  if (min() == max()) {
    std::vector<std::size_t> counts(bins, 0);
    counts[0] = summary_.count();
    return counts;
  }
  return stats::histogram(summary_.sorted(), min(),
                          // Nudge the top edge so max lands in the last bin
                          // rather than being clamped from outside [lo, hi).
                          std::nextafter(max(), max() + 1.0), bins);
}

std::string Distribution::to_string(int precision) const {
  if (empty()) return "(empty distribution)";
  std::ostringstream out;
  out.precision(precision);
  out << "mean " << mean() << " sd " << stddev() << " [p05 " << p05()
      << ", p95 " << p95() << "] (" << samples() << " samples)";
  return out.str();
}

}  // namespace hpcarbon::mc
