// Process-wide observability core: counters, gauges, and mergeable
// latency histograms behind one named registry.
//
// The serving stack (src/serve engine, src/net front-end, the ThreadPool,
// the mc/fleetsim compute kernels) needs daemon-grade visibility —
// per-family latency distributions, cache behavior, overload shedding —
// without perturbing the two contracts the stack is built on:
//
//  * Determinism: responses stay pure functions of the canonical request.
//    Metrics are observed *around* the hot path and surfaced only through
//    the {"op":"stats"} / {"op":"metrics"} control requests and the
//    Prometheus exposition (obs/export.h), which are sequence points
//    excluded from the batch==pipe==socket byte-identity contract.
//  * Speed: the warm serve path answers in under 2 us, so instrumentation
//    must cost nanoseconds. Every recording operation is a handful of
//    relaxed atomic adds on a per-thread stripe — no locks, no
//    allocation; cross-stripe totals are summed only at scrape time. The
//    registry's own mutex is touched at registration and scrape only,
//    never per request.
//
// Registration is idempotent by (name, labels) and insertion-ordered, so
// every front-end that registers the same instruments in the same
// construction order exposes the same metric set — the property behind
// the byte-stable idle {"op":"metrics"} snapshot across transports.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.h"

namespace hpcarbon::obs {

// --------------------------------------------------------------------------
// Fast timestamps.
//
// The warm serve path budget for instrumentation is tens of nanoseconds,
// which a steady_clock::now() pair alone would exhaust on some libstdc++
// builds. On x86-64, ticks() reads the TSC directly (constant-rate and
// monotonic on every production core this targets) and elapsed_ns
// converts through a once-calibrated tick period; elsewhere ticks() falls
// back to steady_clock nanoseconds with a period of 1.

namespace detail {
/// Nanoseconds per ticks() unit, calibrated against steady_clock before
/// main() (1 on the steady_clock fallback).
extern const double g_ns_per_tick;
/// Small dense per-thread stripe ids (0,1,2,...), assigned on first use.
unsigned alloc_stripe_index();
inline unsigned stripe_index() {
  thread_local const unsigned idx = alloc_stripe_index();
  return idx;
}
}  // namespace detail

#if defined(__x86_64__) || defined(_M_X64)
inline std::uint64_t ticks() { return __builtin_ia32_rdtsc(); }
#else
std::uint64_t ticks();  // steady_clock::now() in nanoseconds
#endif

/// Nanoseconds between two ticks() readings (0 if the clock stepped
/// backwards across cores — recorded as the smallest bucket, never UB).
inline std::uint64_t elapsed_ns(std::uint64_t t0, std::uint64_t t1) {
  if (t1 <= t0) return 0;
  return static_cast<std::uint64_t>(static_cast<double>(t1 - t0) *
                                    detail::g_ns_per_tick);
}

/// "<compiler> <version> <build-type>" (e.g. "gcc 12.2.0 release"): the
/// build fingerprint the stats op and the bench trajectory both report.
const std::string& build_fingerprint();

// --------------------------------------------------------------------------
// Instruments. All operations are thread-safe; recording is lock-free
// (relaxed atomics on a per-thread stripe) and scraping sums the stripes.

/// Monotonic event count. Striped so concurrent writers on different
/// threads do not bounce one cache line.
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) {
    stripes_[detail::stripe_index() % kStripes].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over stripes (one relaxed pass; exact once writers quiesce).
  std::uint64_t value() const;

  /// Raise the counter to `target` (no-op when already past it): the
  /// scrape-time bridge for subsystems that keep their own authoritative
  /// counters (the cache shards, the trace store) — their totals are
  /// mirrored into obs with zero hot-path cost. Concurrent advance_to
  /// calls must be serialized by the caller (the engine's scrape mutex).
  void advance_to(std::uint64_t target);

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Stripe, kStripes> stripes_;
};

/// Instantaneous level (queue depth, active connections, occupancy) or
/// high-water mark (observe_max).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  /// Monotonic max (lock-free CAS loop); for high-water marks.
  void observe_max(std::int64_t v);
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket log-scale latency histogram: a 1-2-5 ladder from 1 us to
/// 1e8 us (100 s) — 25 finite bounds plus an overflow bucket. Bucket
/// counts and the exact nanosecond sum are unsigned integers, so merging
/// snapshots (across stripes, threads, or processes) is associative and
/// bit-exact: any merge order yields the same totals.
class Histogram {
 public:
  /// 25 finite upper bounds + 1 overflow.
  static constexpr std::size_t kBuckets = 26;
  /// Inclusive upper bounds of the finite buckets, in nanoseconds:
  /// {1,2,5} x 10^k us for k = 0..7, then 1e8 us.
  static constexpr std::array<std::uint64_t, kBuckets - 1> kBoundNs = {
      1000ull,        2000ull,        5000ull,         // 1, 2, 5 us
      10000ull,       20000ull,       50000ull,        // 10, 20, 50 us
      100000ull,      200000ull,      500000ull,       // 100, 200, 500 us
      1000000ull,     2000000ull,     5000000ull,      // 1, 2, 5 ms
      10000000ull,    20000000ull,    50000000ull,     // 10, 20, 50 ms
      100000000ull,   200000000ull,   500000000ull,    // 100, 200, 500 ms
      1000000000ull,  2000000000ull,  5000000000ull,   // 1, 2, 5 s
      10000000000ull, 20000000000ull, 50000000000ull,  // 10, 20, 50 s
      100000000000ull,                                 // 100 s
  };

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Index of the bucket recording `ns` (kBuckets - 1 = overflow). Warm
  /// serve latencies sit in the first few buckets, so the linear scan
  /// exits after 2-3 comparisons on the hot path.
  static std::size_t bucket_of(std::uint64_t ns) {
    std::size_t i = 0;
    while (i < kBoundNs.size() && ns > kBoundNs[i]) ++i;
    return i;
  }

  /// Record one observation: two relaxed adds on this thread's stripe.
  /// The total count is derived from the bucket counts at snapshot time,
  /// so the hot path pays for exactly bucket + sum.
  void record_ns(std::uint64_t ns) {
    Stripe& s = stripes_[detail::stripe_index() % kStripes];
    s.buckets[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    s.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  /// Merged view of all stripes. Integer fields only — merge() and the
  /// stripe sum are associative and exact.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};  // per-bucket counts
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;

    Snapshot& merge(const Snapshot& other);
    /// Deterministic quantile estimate in microseconds (linear
    /// interpolation inside the owning bucket; 0 when empty; the last
    /// finite bound for the overflow bucket).
    double quantile_us(double q) const;
    /// Exact mean in microseconds (0 when empty).
    double mean_us() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum_ns) /
                              (1000.0 * static_cast<double>(count));
    }
  };

  Snapshot snapshot() const;

 private:
  static constexpr std::size_t kStripes = 4;
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum_ns{0};
  };
  std::array<Stripe, kStripes> stripes_;
};

// --------------------------------------------------------------------------
// Registry.

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

/// One metric's scrape-time value, in registration order (obs/export.h
/// renders vectors of these as Prometheus text or a JSON object).
struct MetricSample {
  std::string name;    // Prometheus-style base name, e.g. hpcarbon_..._total
  std::string labels;  // the text inside {...}, e.g. family="sched"; may be ""
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;       // kCounter / kGauge
  Histogram::Snapshot hist;     // kHistogram

  /// The full series id: `name` or `name{labels}`.
  std::string id() const;
};

/// Named instrument store. Registration is idempotent per (name, labels)
/// — re-registering returns the existing instrument (a kind mismatch
/// throws hpcarbon::Error) — and snapshot() reports instruments in
/// registration order. Instruments live as long as the registry and are
/// handed out by reference: callers resolve them once (at construction)
/// and record lock-free ever after.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry: the default sink of every subsystem. Tests
  /// that need isolated counts construct their own instance and pass it
  /// through ServeOptions / ServerOptions.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name, std::string_view labels,
                   std::string_view help) HPCARBON_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name, std::string_view labels,
               std::string_view help) HPCARBON_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name, std::string_view labels,
                       std::string_view help) HPCARBON_EXCLUDES(mu_);

  /// Scrape: every instrument's current value, registration-ordered.
  std::vector<MetricSample> snapshot() const HPCARBON_EXCLUDES(mu_);

  /// Registered instrument count.
  std::size_t size() const HPCARBON_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string name, labels, help;
    MetricKind kind = MetricKind::kCounter;
    std::size_t index = 0;  // into the kind's deque
  };

  mutable AnnotatedMutex mu_;
  std::vector<Entry> order_ HPCARBON_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::size_t> by_id_ HPCARBON_GUARDED_BY(mu_);
  // Deques: growth never moves existing elements, so handed-out
  // references stay valid for the registry's lifetime.
  std::deque<Counter> counters_ HPCARBON_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ HPCARBON_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ HPCARBON_GUARDED_BY(mu_);
};

}  // namespace hpcarbon::obs
