#include "obs/export.h"

#include <set>

namespace hpcarbon::obs {

namespace {

/// HELP text with Prometheus escaping (backslash and newline).
void append_help_escaped(std::string& out, std::string_view help) {
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

/// Nanoseconds as microseconds with exactly three decimals — integer
/// arithmetic, so the text is bit-deterministic.
void append_us_from_ns(std::string& out, std::uint64_t ns) {
  append_u64(out, ns / 1000);
  const std::uint64_t frac = ns % 1000;
  out.push_back('.');
  out.push_back(static_cast<char>('0' + frac / 100));
  out.push_back(static_cast<char>('0' + frac / 10 % 10));
  out.push_back(static_cast<char>('0' + frac % 10));
}

void append_series(std::string& out, const std::string& name,
                   std::string_view labels) {
  out += name;
  if (!labels.empty()) {
    out.push_back('{');
    out += labels;
    out.push_back('}');
  }
}

/// `labels` extended with an le="..." pair (histogram bucket series).
std::string labels_with_le(std::string_view labels, std::string_view le) {
  std::string merged(labels);
  if (!merged.empty()) merged.push_back(',');
  merged += "le=\"";
  merged += le;
  merged.push_back('"');
  return merged;
}

}  // namespace

void to_prometheus_to(std::string& out,
                      const std::vector<MetricSample>& samples) {
  std::set<std::string> described;
  for (const MetricSample& s : samples) {
    if (described.insert(s.name).second) {
      out += "# HELP ";
      out += s.name;
      out.push_back(' ');
      append_help_escaped(out, s.help);
      out += "\n# TYPE ";
      out += s.name;
      out.push_back(' ');
      out += to_string(s.kind);
      out.push_back('\n');
    }
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        append_series(out, s.name, s.labels);
        out.push_back(' ');
        out += std::to_string(s.value);
        out.push_back('\n');
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < Histogram::kBuckets - 1; ++b) {
          cum += s.hist.buckets[b];
          out += s.name;
          out += "_bucket{";
          out += labels_with_le(
              s.labels, std::to_string(Histogram::kBoundNs[b] / 1000));
          out += "} ";
          append_u64(out, cum);
          out.push_back('\n');
        }
        out += s.name;
        out += "_bucket{";
        out += labels_with_le(s.labels, "+Inf");
        out += "} ";
        append_u64(out, s.hist.count);
        out.push_back('\n');
        append_series(out, s.name + "_sum", s.labels);
        out.push_back(' ');
        append_us_from_ns(out, s.hist.sum_ns);
        out.push_back('\n');
        append_series(out, s.name + "_count", s.labels);
        out.push_back(' ');
        append_u64(out, s.hist.count);
        out.push_back('\n');
        break;
      }
    }
  }
}

std::string to_prometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  to_prometheus_to(out, samples);
  return out;
}

json::Value to_json(const std::vector<MetricSample>& samples,
                    const std::vector<std::string_view>& exclude_prefixes) {
  json::Value out = json::Value::object();
  for (const MetricSample& s : samples) {
    bool excluded = false;
    for (const std::string_view prefix : exclude_prefixes) {
      if (s.name.size() >= prefix.size() &&
          std::string_view(s.name).substr(0, prefix.size()) == prefix) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out.set(s.id(), json::Value::number(static_cast<double>(s.value)));
        break;
      case MetricKind::kHistogram: {
        json::Value h = json::Value::object();
        h.set("count",
              json::Value::number(static_cast<double>(s.hist.count)));
        h.set("mean_us", json::Value::number(s.hist.mean_us()));
        h.set("p50_us", json::Value::number(s.hist.quantile_us(0.5)));
        h.set("p99_us", json::Value::number(s.hist.quantile_us(0.99)));
        h.set("p999_us", json::Value::number(s.hist.quantile_us(0.999)));
        h.set("sum_us", json::Value::number(
                            static_cast<double>(s.hist.sum_ns) / 1000.0));
        out.set(s.id(), std::move(h));
        break;
      }
    }
  }
  return out;
}

}  // namespace hpcarbon::obs
