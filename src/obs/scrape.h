// Unix-domain metrics scrape endpoint (`hpcarbon serve --metrics-unix`).
//
// The daemon's data plane speaks line-delimited JSON; operators' scrape
// tooling wants Prometheus text. Rather than multiplexing the two on one
// socket, the daemon exposes a second, trivially simple endpoint: each
// connection receives one full Prometheus exposition of the registry
// (after an optional pre-scrape sync hook — the engine mirrors its cache
// and trace counters into obs there) and is closed. `hpcarbon metrics
// --unix PATH` and any netcat-style scraper read it without speaking a
// protocol; the CI loopback smoke validates the format with
// tools/check_prometheus.py.
//
// One blocking accept-loop thread; stop() closes the listener, which
// unblocks accept and joins the thread. No epoll, no pipelining — a
// scrape every few seconds is not a data plane.
#pragma once

#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace hpcarbon::obs {

class ScrapeServer {
 public:
  /// `registry` nullptr selects MetricsRegistry::global(). `pre_scrape`
  /// (may be empty) runs before every snapshot, on the scrape thread.
  explicit ScrapeServer(std::string unix_path,
                        MetricsRegistry* registry = nullptr,
                        std::function<void()> pre_scrape = {});
  ~ScrapeServer();  // stop() + join + unlink

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Bind + listen + spawn the accept thread. Throws hpcarbon::Error on
  /// any socket failure (stale socket files are unlinked first).
  void start();
  /// Close the listener and join the accept thread; idempotent.
  void stop();

  const std::string& path() const { return path_; }

 private:
  void accept_loop();

  std::string path_;
  MetricsRegistry* registry_;
  std::function<void()> pre_scrape_;
  int listen_fd_ = -1;
  std::thread thread_;
};

}  // namespace hpcarbon::obs
