// Rendering a registry snapshot: Prometheus text exposition and the JSON
// object behind the {"op":"metrics"} serve family.
//
// Both renderings are deterministic functions of the sample vector:
// integer values print as integers, microsecond sums print with exactly
// three decimals from integer nanosecond arithmetic, and the JSON form
// sorts keys — so two snapshots with equal instrument values render to
// identical bytes regardless of registration interleaving or transport.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/json.h"
#include "obs/metrics.h"

namespace hpcarbon::obs {

/// Prometheus text exposition (version 0.0.4) of the samples, in order:
/// one # HELP / # TYPE pair per metric name (emitted at its first
/// sample), counters and gauges as plain series, histograms as
/// cumulative `_bucket{le="..."}` series (bounds in whole microseconds)
/// plus `_sum` (microseconds, three decimals) and `_count`.
std::string to_prometheus(const std::vector<MetricSample>& samples);
void to_prometheus_to(std::string& out,
                      const std::vector<MetricSample>& samples);

/// JSON object keyed by series id (sorted on dump): counters and gauges
/// as numbers; histograms as {"count","mean_us","p50_us","p99_us",
/// "p999_us","sum_us"} summary objects. Samples whose *name* starts with
/// any of `exclude_prefixes` are dropped — the serve layer excludes the
/// transport-dependent hpcarbon_net_* / hpcarbon_process_* domains so an
/// idle {"op":"metrics"} snapshot is byte-identical across
/// pipe/batch/socket.
json::Value to_json(const std::vector<MetricSample>& samples,
                    const std::vector<std::string_view>& exclude_prefixes = {});

}  // namespace hpcarbon::obs
