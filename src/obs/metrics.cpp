#include "obs/metrics.h"

#include <chrono>
#include <cmath>
#include <string>

#include "core/error.h"

namespace hpcarbon::obs {

namespace detail {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(__x86_64__) || defined(_M_X64)
/// Calibrate the TSC period against steady_clock over a ~1 ms window.
/// Runs once before main(); constant-rate ("invariant") TSC is assumed,
/// which holds on every post-2008 x86-64 part. Drift against the OS
/// clock over a scrape interval is irrelevant here — the TSC only ever
/// measures sub-second durations that land in log-scale buckets.
double calibrate_ns_per_tick() {
  const std::uint64_t w0 = steady_ns();
  const std::uint64_t t0 = ticks();
  while (steady_ns() - w0 < 1000000) {  // 1 ms spin
  }
  const std::uint64_t t1 = ticks();
  const std::uint64_t w1 = steady_ns();
  if (t1 <= t0) return 1.0;  // non-monotonic TSC: degrade to 1 ns/tick
  return static_cast<double>(w1 - w0) / static_cast<double>(t1 - t0);
}
#endif

}  // namespace

#if defined(__x86_64__) || defined(_M_X64)
const double g_ns_per_tick = calibrate_ns_per_tick();
#else
const double g_ns_per_tick = 1.0;
#endif

unsigned alloc_stripe_index() {
  static std::atomic<unsigned> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

#if !(defined(__x86_64__) || defined(_M_X64))
std::uint64_t ticks() { return detail::steady_ns(); }
#endif

const std::string& build_fingerprint() {
  static const std::string fp = [] {
#if defined(__clang__)
    std::string compiler = std::string("clang ") + __clang_version__;
    const std::size_t paren = compiler.find(" (");
    if (paren != std::string::npos) compiler.resize(paren);
#elif defined(__GNUC__)
    const std::string compiler = std::string("gcc ") + __VERSION__;
#else
    const std::string compiler = "unknown-compiler";
#endif
#ifdef NDEBUG
    return compiler + " release";
#else
    return compiler + " debug";
#endif
  }();
  return fp;
}

// --------------------------------------------------------------------------
// Counter

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::advance_to(std::uint64_t target) {
  const std::uint64_t current = value();
  if (target > current) {
    stripes_[0].v.fetch_add(target - current, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------------------
// Gauge

void Gauge::observe_max(std::int64_t v) {
  std::int64_t seen = v_.load(std::memory_order_relaxed);
  while (v > seen &&
         !v_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

// --------------------------------------------------------------------------
// Histogram

Histogram::Snapshot& Histogram::Snapshot::merge(const Snapshot& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum_ns += other.sum_ns;
  return *this;
}

double Histogram::Snapshot::quantile_us(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The smallest rank r (1-based) with cumulative count >= q * count,
  // then linear interpolation across the owning bucket's bounds.
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    const double cum_before = static_cast<double>(cum);
    cum += in_bucket;
    if (static_cast<double>(cum) < rank) continue;
    if (b == kBuckets - 1) {  // overflow: no finite upper bound
      return static_cast<double>(kBoundNs.back()) / 1000.0;
    }
    const double lo =
        b == 0 ? 0.0 : static_cast<double>(kBoundNs[b - 1]) / 1000.0;
    const double hi = static_cast<double>(kBoundNs[b]) / 1000.0;
    const double fraction =
        (rank - cum_before) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * (fraction < 0.0 ? 0.0 : fraction);
  }
  return static_cast<double>(kBoundNs.back()) / 1000.0;  // unreachable
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  for (const Stripe& s : stripes_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = s.buckets[b].load(std::memory_order_relaxed);
      out.buckets[b] += n;
      out.count += n;
    }
    out.sum_ns += s.sum_ns.load(std::memory_order_relaxed);
  }
  return out;
}

// --------------------------------------------------------------------------
// Registry

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string MetricSample::id() const {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

std::string series_id(std::string_view name, std::string_view labels) {
  std::string id(name);
  if (!labels.empty()) {
    id.push_back('{');
    id.append(labels);
    id.push_back('}');
  }
  return id;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels,
                                  std::string_view help) {
  MutexLock lock(mu_);
  const std::string id = series_id(name, labels);
  if (const auto it = by_id_.find(id); it != by_id_.end()) {
    const Entry& e = order_[it->second];
    if (e.kind != MetricKind::kCounter) {
      throw Error("metric '" + id + "' already registered as " +
                  to_string(e.kind));
    }
    return counters_[e.index];
  }
  by_id_.emplace(id, order_.size());
  order_.push_back({std::string(name), std::string(labels), std::string(help),
                    MetricKind::kCounter, counters_.size()});
  counters_.emplace_back();
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view labels,
                              std::string_view help) {
  MutexLock lock(mu_);
  const std::string id = series_id(name, labels);
  if (const auto it = by_id_.find(id); it != by_id_.end()) {
    const Entry& e = order_[it->second];
    if (e.kind != MetricKind::kGauge) {
      throw Error("metric '" + id + "' already registered as " +
                  to_string(e.kind));
    }
    return gauges_[e.index];
  }
  by_id_.emplace(id, order_.size());
  order_.push_back({std::string(name), std::string(labels), std::string(help),
                    MetricKind::kGauge, gauges_.size()});
  gauges_.emplace_back();
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view labels,
                                      std::string_view help) {
  MutexLock lock(mu_);
  const std::string id = series_id(name, labels);
  if (const auto it = by_id_.find(id); it != by_id_.end()) {
    const Entry& e = order_[it->second];
    if (e.kind != MetricKind::kHistogram) {
      throw Error("metric '" + id + "' already registered as " +
                  to_string(e.kind));
    }
    return histograms_[e.index];
  }
  by_id_.emplace(id, order_.size());
  order_.push_back({std::string(name), std::string(labels), std::string(help),
                    MetricKind::kHistogram, histograms_.size()});
  histograms_.emplace_back();
  return histograms_.back();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(order_.size());
  for (const Entry& e : order_) {
    MetricSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.help = e.help;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<std::int64_t>(counters_[e.index].value());
        break;
      case MetricKind::kGauge:
        s.value = gauges_[e.index].value();
        break;
      case MetricKind::kHistogram:
        s.hist = histograms_[e.index].snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mu_);
  return order_.size();
}

}  // namespace hpcarbon::obs
