#include "obs/scrape.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/error.h"
#include "obs/export.h"

namespace hpcarbon::obs {

ScrapeServer::ScrapeServer(std::string unix_path, MetricsRegistry* registry,
                           std::function<void()> pre_scrape)
    : path_(std::move(unix_path)),
      registry_(registry != nullptr ? registry : &MetricsRegistry::global()),
      pre_scrape_(std::move(pre_scrape)) {}

ScrapeServer::~ScrapeServer() { stop(); }

void ScrapeServer::start() {
  HPC_REQUIRE(listen_fd_ == -1, "ScrapeServer already started");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  HPC_REQUIRE(path_.size() < sizeof(addr.sun_path),
              "--metrics-unix path too long: " + path_);
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  HPC_REQUIRE(fd >= 0, std::string("metrics socket: ") + std::strerror(errno));
  ::unlink(path_.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw Error("metrics socket bind/listen on '" + path_ + "': " + what);
  }
  listen_fd_ = fd;
  thread_ = std::thread([this] { accept_loop(); });
}

void ScrapeServer::stop() {
  if (listen_fd_ >= 0) {
    // shutdown() unblocks a blocked accept() on Linux; close() finishes it.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
  if (!path_.empty()) ::unlink(path_.c_str());
}

void ScrapeServer::accept_loop() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop(): drain and exit
    }
    if (pre_scrape_) pre_scrape_();
    const std::string body = to_prometheus(registry_->snapshot());
    std::size_t off = 0;
    while (off < body.size()) {
      const ssize_t n =
          ::send(client, body.data() + off, body.size() - off, MSG_NOSIGNAL);
      if (n <= 0) break;  // scraper went away mid-write
      off += static_cast<std::size_t>(n);
    }
    ::shutdown(client, SHUT_WR);
    ::close(client);
  }
}

}  // namespace hpcarbon::obs
