// Plain-text table rendering for the bench harnesses.
//
// Every figure/table bench prints its reproduced data as an aligned ASCII
// table (and optionally CSV) so the output can be diffed, plotted, or pasted
// into EXPERIMENTS.md directly.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace hpcarbon {

class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::vector<std::string> header);

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Percentage with sign, e.g. "+12.3%" / "-4.0%".
  static std::string pct(double v, int precision = 1);

  std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment; numeric-looking cells right-aligned.
  std::string to_string() const;
  /// Render as CSV (no quoting of commas — callers use plain cells).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner used by benches: "== Figure 1 (a): ... ==".
std::string banner(const std::string& title);

/// A crude horizontal bar for terminal "plots": value scaled to width.
std::string bar(double value, double max_value, int width = 40);

}  // namespace hpcarbon
