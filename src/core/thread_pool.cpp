#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace hpcarbon {

namespace {
// Which pool (if any) owns the current thread. Lets parallel_for detect
// re-entry from one of its own workers: submitting chunks back to the pool
// and blocking on them from a worker can deadlock once all workers are
// blocked waiting on queued chunks no thread is free to run.
thread_local const ThreadPool* t_current_pool = nullptr;

std::atomic<std::size_t> g_global_threads{0};

/// Pool instruments, bound once to the global registry (pools are process
/// infrastructure; private-registry front-ends get the same *names* via
/// ThreadPool::register_metrics and report zeros).
struct PoolMetrics {
  obs::Histogram& queue_wait_us;
  obs::Histogram& task_run_us;
  obs::Counter& tasks;
};

PoolMetrics bind_pool_metrics(obs::MetricsRegistry& reg) {
  return PoolMetrics{
      reg.histogram("hpcarbon_pool_queue_wait_us", {},
                    "Time submitted tasks wait in the ThreadPool queue "
                    "before a worker dequeues them"),
      reg.histogram("hpcarbon_pool_task_run_us", {},
                    "ThreadPool task execution time"),
      reg.counter("hpcarbon_pool_tasks_total", {},
                  "Tasks executed by ThreadPool workers"),
  };
}

PoolMetrics& pool_metrics() {
  static PoolMetrics m = bind_pool_metrics(obs::MetricsRegistry::global());
  return m;
}

std::size_t global_thread_count() {
  const std::size_t hint = g_global_threads.load();
  if (hint > 0) return hint;
  return ThreadPool::env_thread_hint();  // 0: hardware_concurrency default
}
}  // namespace

std::size_t ThreadPool::env_thread_hint() {
  if (const char* env = std::getenv("HPCARBON_THREADS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 0;
}

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  PoolMetrics& m = pool_metrics();
  for (;;) {
    Queued task;
    {
      MutexLock lock(mu_);
      // Explicit predicate loop (not the lambda overload): the analysis
      // sees stop_/queue_ read with mu_ held; cv_.wait's internal
      // unlock/relock of the same mutex preserves that on both sides.
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    const std::uint64_t start = obs::ticks();
    m.queue_wait_us.record_ns(obs::elapsed_ns(task.enqueued_at, start));
    task.fn();
    m.task_run_us.record_ns(obs::elapsed_ns(start, obs::ticks()));
    m.tasks.inc();
  }
}

void ThreadPool::register_metrics(obs::MetricsRegistry& registry) {
  bind_pool_metrics(registry);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, size()));
  // Nested call from one of this pool's own workers: run inline instead of
  // deadlocking on chunks the (already busy) workers may never pick up.
  if (chunks == 1 || t_current_pool == this) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(global_thread_count());
  return pool;
}

void ThreadPool::set_global_threads(std::size_t n) { g_global_threads = n; }

}  // namespace hpcarbon
