// Clang thread-safety annotations + an annotated mutex, shared by every
// subsystem that owns concurrent state.
//
// The serving stack (serve::ResultCache shards, serve::TraceStore, the
// ThreadPool queue, the policy/tool registries) keeps its invariants
// behind mutexes; these macros let Clang *prove at compile time* that
// every access to a guarded member happens with the right lock held
// (`-Wthread-safety`, promoted to an error in all clang builds — see the
// root CMakeLists). On compilers without the attributes (gcc, MSVC) the
// macros expand to nothing and the wrappers degrade to a plain
// `std::mutex` + `std::lock_guard` with zero overhead, so annotations are
// free documentation everywhere and machine-checked where clang runs.
//
// Usage pattern (see serve/cache.h for a full example):
//
//   class Account {
//     void withdraw(double g) HPCARBON_EXCLUDES(mu_) {
//       MutexLock lock(mu_);
//       balance_ -= g;               // OK: mu_ held
//     }
//    private:
//     AnnotatedMutex mu_;
//     double balance_ HPCARBON_GUARDED_BY(mu_) = 0;  // lock required
//   };
//
// The macro set mirrors the modern "capability" spelling from the Clang
// docs (and abseil/base/thread_annotations.h); only the subset this
// codebase needs is defined.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HPCARBON_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HPCARBON_THREAD_ANNOTATION
#define HPCARBON_THREAD_ANNOTATION(x)  // not clang: annotations vanish
#endif

/// Marks a class as a lockable capability ("mutex" names it in warnings).
#define HPCARBON_CAPABILITY(x) HPCARBON_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define HPCARBON_SCOPED_CAPABILITY HPCARBON_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read/written while holding the given mutex.
#define HPCARBON_GUARDED_BY(x) HPCARBON_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* is protected by the given mutex.
#define HPCARBON_PT_GUARDED_BY(x) HPCARBON_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the mutex(es) to be held on entry (and exit).
#define HPCARBON_REQUIRES(...) \
  HPCARBON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and holds them on return.
#define HPCARBON_ACQUIRE(...) \
  HPCARBON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases mutex(es) the caller held on entry.
#define HPCARBON_RELEASE(...) \
  HPCARBON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns the given value.
#define HPCARBON_TRY_ACQUIRE(...) \
  HPCARBON_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the mutex(es): the function acquires them itself
/// (documents non-reentrancy; std::mutex self-lock is undefined behavior).
#define HPCARBON_EXCLUDES(...) \
  HPCARBON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declared lock-order edges for multi-mutex code paths.
#define HPCARBON_ACQUIRED_BEFORE(...) \
  HPCARBON_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HPCARBON_ACQUIRED_AFTER(...) \
  HPCARBON_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Accessor returning a reference to the mutex guarding other state.
#define HPCARBON_RETURN_CAPABILITY(x) \
  HPCARBON_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the analysis skips this function entirely. Every use
/// must carry a comment explaining why the proof cannot be expressed.
#define HPCARBON_NO_THREAD_SAFETY_ANALYSIS \
  HPCARBON_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hpcarbon {

/// `std::mutex` carrying the capability attribute so guarded members can
/// name it. Satisfies BasicLockable/Lockable, so it also works as the
/// lock of a `std::condition_variable_any` wait (the wait's internal
/// unlock/relock happens inside the standard library, outside the
/// analysis, which matches the semantics: the capability is held before
/// and after the wait).
class HPCARBON_CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() HPCARBON_ACQUIRE() { mu_.lock(); }
  void unlock() HPCARBON_RELEASE() { mu_.unlock(); }
  bool try_lock() HPCARBON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// `std::lock_guard` for AnnotatedMutex, visible to the analysis: the
/// constructor acquires the capability for the enclosing scope, the
/// destructor releases it.
class HPCARBON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(AnnotatedMutex& mu) HPCARBON_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~MutexLock() HPCARBON_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  AnnotatedMutex& mu_;
};

}  // namespace hpcarbon
