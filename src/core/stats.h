// Descriptive statistics used by the regional carbon-intensity analysis
// (Fig. 6 box plots + coefficient of variation) and by the test suite's
// property checks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hpcarbon::stats {

double mean(std::span<const double> xs);
/// Sample variance (n-1 denominator); 0 for fewer than two samples.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Coefficient of variation as a percentage: 100 * stddev / mean.
/// This is exactly the metric of Fig. 6(b).
double cov_percent(std::span<const double> xs);

/// Linear-interpolation quantile (R type-7, the matplotlib/numpy default the
/// paper's box plots were drawn with). p in [0,1].
double quantile(std::span<const double> xs, double p);
double median(std::span<const double> xs);

/// One-sort descriptive summary of a sample.
///
/// The free functions above each rescan (and `quantile` re-sorts) their
/// input per call, which is fine for one-off figures but quadratic-feeling
/// in summarization loops: the Monte-Carlo layer asks for mean, stddev,
/// and several quantiles of the same vector. Summary pays one pass for the
/// moments plus one sort at construction; every quantile afterwards is an
/// O(1) interpolation on the sorted data. Moments are accumulated over the
/// input order (before sorting), so mean()/stddev() are bit-identical to
/// the free functions on the same span.
class Summary {
 public:
  Summary() = default;
  explicit Summary(std::span<const double> xs);
  /// Takes ownership of the buffer (sorted in place; no copy).
  explicit Summary(std::vector<double>&& xs);

  std::size_t count() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  double mean() const;
  double variance() const;  // sample variance, n-1 denominator
  double stddev() const;
  double min() const;
  double max() const;

  /// R type-7 linear-interpolation quantile on the pre-sorted data; p in
  /// [0,1]. Matches stats::quantile exactly, without the per-call sort.
  double quantile(double p) const;
  double median() const { return quantile(0.5); }

  /// The samples in ascending order.
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  void finalize(std::span<const double> original_order);

  std::vector<double> sorted_;
  double mean_ = 0;
  double variance_ = 0;
};

/// Five-number summary plus Tukey whiskers (1.5 IQR clamped to data range),
/// i.e. the geometry of one box in Fig. 6(a).
struct BoxStats {
  double whisker_low = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double whisker_high = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
};
BoxStats box_stats(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// edge bins. Returns per-bin counts.
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins);

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Streaming mean/variance (Welford). Used by the energy meter, which
/// cannot buffer a full year of samples.
class Welford {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace hpcarbon::stats
