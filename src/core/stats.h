// Descriptive statistics used by the regional carbon-intensity analysis
// (Fig. 6 box plots + coefficient of variation) and by the test suite's
// property checks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hpcarbon::stats {

double mean(std::span<const double> xs);
/// Sample variance (n-1 denominator); 0 for fewer than two samples.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Coefficient of variation as a percentage: 100 * stddev / mean.
/// This is exactly the metric of Fig. 6(b).
double cov_percent(std::span<const double> xs);

/// Linear-interpolation quantile (R type-7, the matplotlib/numpy default the
/// paper's box plots were drawn with). p in [0,1].
double quantile(std::span<const double> xs, double p);
double median(std::span<const double> xs);

/// Five-number summary plus Tukey whiskers (1.5 IQR clamped to data range),
/// i.e. the geometry of one box in Fig. 6(a).
struct BoxStats {
  double whisker_low = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double whisker_high = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
};
BoxStats box_stats(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// edge bins. Returns per-bin counts.
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins);

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Streaming mean/variance (Welford). Used by the energy meter, which
/// cannot buffer a full year of samples.
class Welford {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace hpcarbon::stats
