#include "core/rng.h"

#include "core/error.h"

namespace hpcarbon {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HPC_REQUIRE(hi >= lo, "uniform: hi < lo");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HPC_REQUIRE(hi >= lo, "uniform_int: hi < lo");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Lemire-style rejection-free mapping is fine here; modulo bias is
  // negligible for the small ranges we draw.
  return lo + static_cast<std::int64_t>(next_u64() % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  HPC_REQUIRE(rate > 0, "exponential rate must be positive");
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() {
  Rng child(next_u64() ^ 0xA5A5A5A55A5A5A5AULL);
  return child;
}

Ar1::Ar1(double rho, Rng& rng) : rho_(rho), rng_(&rng) {
  HPC_REQUIRE(rho >= 0.0 && rho < 1.0, "AR(1) rho must be in [0,1)");
  noise_scale_ = std::sqrt(1.0 - rho * rho);
  x_ = rng_->normal();  // start in the stationary distribution
}

double Ar1::step() {
  x_ = rho_ * x_ + noise_scale_ * rng_->normal();
  return x_;
}

}  // namespace hpcarbon
