#include "core/json.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "core/error.h"

namespace hpcarbon::json {

namespace {

[[noreturn]] void type_error(const char* want, Value::Type got) {
  static const char* names[] = {"null", "bool", "number", "string", "array",
                                "object"};
  throw Error(std::string("json: expected ") + want + ", value is " +
              names[static_cast<int>(got)]);
}

}  // namespace

Value Value::null() { return Value(); }

Value Value::boolean(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  HPC_REQUIRE(std::isfinite(d), "json: numbers must be finite");
  Value v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.arr_ = std::move(items);
  return v;
}

Value Value::object(std::vector<Member> members) {
  Value v;
  v.type_ = Type::kObject;
  v.obj_ = std::move(members);
  return v;
}

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const std::vector<Member>& Value::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

std::size_t Value::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  type_error("array or object", type_);
}

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : members()) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Value::set(std::string key, Value v) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return *this;
}

void Value::push_back(Value v) {
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(v));
}

// --- Emission ---------------------------------------------------------------

void dump_number_to(std::string& out, double v) {
  HPC_REQUIRE(std::isfinite(v), "json: numbers must be finite");
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

std::string dump_number(double v) {
  std::string out;
  dump_number_to(out, v);
  return out;
}

void quote_to(std::string& out, std::string_view s) {
  out.reserve(out.size() + s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += esc;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

std::string quote(std::string_view s) {
  std::string out;
  quote_to(out, s);
  return out;
}

namespace {

void dump_value(const Value& v, bool sort_keys, std::string& out) {
  switch (v.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::kNumber:
      dump_number_to(out, v.as_number());
      break;
    case Value::Type::kString:
      quote_to(out, v.as_string());
      break;
    case Value::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(item, sort_keys, out);
      }
      out.push_back(']');
      break;
    }
    case Value::Type::kObject: {
      // Sorting indexes the member list rather than copying the values:
      // members can be deep. Small objects (every serve request/response)
      // sort through a stack-resident index so emission stays
      // allocation-free.
      const auto& members = v.members();
      std::size_t stack_order[32];
      std::vector<std::size_t> heap_order;
      std::size_t* order = stack_order;
      if (members.size() > 32) {
        heap_order.resize(members.size());
        order = heap_order.data();
      }
      for (std::size_t i = 0; i < members.size(); ++i) order[i] = i;
      if (sort_keys) {
        std::sort(order, order + members.size(), [&](std::size_t a,
                                                     std::size_t b) {
          return members[a].first < members[b].first;
        });
      }
      out.push_back('{');
      for (std::size_t k = 0; k < members.size(); ++k) {
        if (k != 0) out.push_back(',');
        quote_to(out, members[order[k]].first);
        out.push_back(':');
        dump_value(members[order[k]].second, sort_keys, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string Value::dump(bool sort_keys) const {
  std::string out;
  dump_value(*this, sort_keys, out);
  return out;
}

void Value::dump_to(std::string& out, bool sort_keys) const {
  dump_value(*this, sort_keys, out);
}

// --- Parsing (Reader: arena nodes, zero-copy strings) -----------------------

namespace {

constexpr int kMaxDepth = 64;

}  // namespace

bool Reader::as_bool(Ref r) const {
  const Node& n = node(r);
  if (n.type != Value::Type::kBool) type_error("bool", n.type);
  return n.flag;
}

double Reader::as_number(Ref r) const {
  const Node& n = node(r);
  if (n.type != Value::Type::kNumber) type_error("number", n.type);
  return n.num;
}

std::string_view Reader::as_string(Ref r) const {
  const Node& n = node(r);
  if (n.type != Value::Type::kString) type_error("string", n.type);
  return resolve(n.str_off, n.str_len, n.str_in_arena);
}

Reader::Ref Reader::first_child(Ref r) const {
  const Node& n = node(r);
  if (n.type != Value::Type::kArray && n.type != Value::Type::kObject) {
    type_error("array or object", n.type);
  }
  return n.child;
}

std::string_view Reader::key(Ref member) const {
  const Node& n = node(member);
  return resolve(n.key_off, n.key_len, n.key_in_arena);
}

std::size_t Reader::size(Ref r) const {
  std::size_t count = 0;
  for (Ref c = first_child(r); c != kNone; c = next(c)) ++count;
  return count;
}

Reader::Ref Reader::find(Ref obj, std::string_view want) const {
  const Node& n = node(obj);
  if (n.type != Value::Type::kObject) type_error("object", n.type);
  for (Ref c = n.child; c != kNone; c = next(c)) {
    if (key(c) == want) return c;
  }
  return kNone;
}

Value Reader::materialize(Ref r) const {
  const Node& n = node(r);
  switch (n.type) {
    case Value::Type::kNull:
      return Value::null();
    case Value::Type::kBool:
      return Value::boolean(n.flag);
    case Value::Type::kNumber:
      return Value::number(n.num);
    case Value::Type::kString:
      return Value::string(std::string(as_string(r)));
    case Value::Type::kArray: {
      std::vector<Value> items;
      for (Ref c = n.child; c != kNone; c = next(c)) {
        items.push_back(materialize(c));
      }
      return Value::array(std::move(items));
    }
    case Value::Type::kObject: {
      // Members go straight into the vector: parse() already rejected
      // duplicate keys, so the linear probe in Value::set is dead weight.
      std::vector<Member> members;
      for (Ref c = n.child; c != kNone; c = next(c)) {
        members.emplace_back(std::string(key(c)), materialize(c));
      }
      return Value::object(std::move(members));
    }
  }
  return Value::null();  // unreachable; keeps -Wreturn-type quiet
}

void Reader::fail(const std::string& what) const {
  throw Error("json: " + what + " at offset " + std::to_string(pos_));
}

void Reader::skip_ws() {
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
    ++pos_;
  }
}

char Reader::peek() const {
  if (pos_ >= text_.size()) {
    throw Error("json: unexpected end of input at offset " +
                std::to_string(pos_));
  }
  return text_[pos_];
}

void Reader::expect(char c) {
  if (peek() != c) fail(std::string("expected '") + c + "'");
  ++pos_;
}

bool Reader::consume_literal(const char* lit) {
  const std::size_t n = std::char_traits<char>::length(lit);
  if (text_.compare(pos_, n, lit) != 0) return false;
  pos_ += n;
  return true;
}

Reader::Ref Reader::new_node(Value::Type t) {
  const Ref r = static_cast<Ref>(nodes_.size());
  nodes_.emplace_back();
  nodes_.back().type = t;
  return r;
}

void Reader::append_child(Ref parent, Ref child) {
  Node& p = node(parent);
  if (p.last_child == kNone) {
    p.child = child;
  } else {
    node(p.last_child).next = child;
  }
  p.last_child = child;
}

Reader::Ref Reader::parse(std::string_view text) {
  nodes_.clear();   // capacity survives: reuse is the whole point
  arena_.clear();
  text_ = text;
  pos_ = 0;
  skip_ws();
  const Ref root = parse_value(0);
  skip_ws();
  if (pos_ != text_.size()) fail("trailing characters after document");
  return root;
}

Reader::Ref Reader::parse_value(int depth) {
  if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
  switch (peek()) {
    case 'n':
      if (!consume_literal("null")) fail("bad literal");
      return new_node(Value::Type::kNull);
    case 't': {
      if (!consume_literal("true")) fail("bad literal");
      const Ref r = new_node(Value::Type::kBool);
      node(r).flag = true;
      return r;
    }
    case 'f':
      if (!consume_literal("false")) fail("bad literal");
      return new_node(Value::Type::kBool);
    case '"': {
      const Ref r = new_node(Value::Type::kString);
      std::uint32_t off = 0, len = 0;
      bool in_arena = false;
      parse_string_payload(&off, &len, &in_arena);
      Node& n = node(r);
      n.str_off = off;
      n.str_len = len;
      n.str_in_arena = in_arena;
      return r;
    }
    case '[':
      return parse_array(depth);
    case '{':
      return parse_object(depth);
    default:
      return parse_number();
  }
}

Reader::Ref Reader::parse_number() {
  const std::size_t start = pos_;
  if (peek() == '-') ++pos_;
  const std::size_t int_start = pos_;
  while (pos_ < text_.size() && std::isdigit(
             static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
  if (pos_ == int_start) {
    pos_ = start;
    fail("expected a value");
  }
  if (pos_ - int_start > 1 && text_[int_start] == '0') {
    pos_ = int_start;
    fail("leading zeros are not allowed");
  }
  if (pos_ < text_.size() && text_[pos_] == '.') {
    ++pos_;
    const std::size_t frac = pos_;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == frac) fail("digits required after decimal point");
  }
  if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
    ++pos_;
    if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::size_t exp = pos_;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == exp) fail("digits required in exponent");
  }
  double v = 0;
  const auto res =
      std::from_chars(text_.data() + start, text_.data() + pos_, v);
  if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
    fail("malformed number");
  }
  if (!std::isfinite(v)) fail("number out of double range");
  const Ref r = new_node(Value::Type::kNumber);
  node(r).num = v;
  return r;
}

void Reader::parse_string_payload(std::uint32_t* out_off,
                                  std::uint32_t* out_len, bool* in_arena) {
  expect('"');
  // Fast scan: a literal with no escape and no control character is a
  // view straight into the input — the common case for every request
  // field, and the reason parsing allocates nothing.
  const std::size_t start = pos_;
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c == '"') {
      *out_off = static_cast<std::uint32_t>(start);
      *out_len = static_cast<std::uint32_t>(pos_ - start);
      *in_arena = false;
      ++pos_;
      return;
    }
    if (c == '\\' || static_cast<unsigned char>(c) < 0x20) break;
    ++pos_;
  }
  // Slow path: unescape into the arena, starting from the clean prefix.
  const std::size_t arena_start = arena_.size();
  arena_.append(text_.data() + start, pos_ - start);
  while (true) {
    if (pos_ >= text_.size()) fail("unterminated string");
    const char c = text_[pos_++];
    if (c == '"') {
      *out_off = static_cast<std::uint32_t>(arena_start);
      *out_len = static_cast<std::uint32_t>(arena_.size() - arena_start);
      *in_arena = true;
      return;
    }
    if (static_cast<unsigned char>(c) < 0x20) {
      --pos_;
      fail("unescaped control character in string");
    }
    if (c != '\\') {
      arena_.push_back(c);
      continue;
    }
    if (pos_ >= text_.size()) fail("unterminated escape");
    const char esc = text_[pos_++];
    switch (esc) {
      case '"': arena_.push_back('"'); break;
      case '\\': arena_.push_back('\\'); break;
      case '/': arena_.push_back('/'); break;
      case 'b': arena_.push_back('\b'); break;
      case 'f': arena_.push_back('\f'); break;
      case 'n': arena_.push_back('\n'); break;
      case 'r': arena_.push_back('\r'); break;
      case 't': arena_.push_back('\t'); break;
      case 'u': append_codepoint(parse_hex4_or_surrogate_pair()); break;
      default:
        pos_ -= 1;
        fail("unknown escape");
    }
  }
}

unsigned Reader::parse_hex4() {
  if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
  unsigned cp = 0;
  for (int i = 0; i < 4; ++i) {
    const char c = text_[pos_++];
    cp <<= 4;
    if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
    else fail("bad hex digit in \\u escape");
  }
  return cp;
}

unsigned Reader::parse_hex4_or_surrogate_pair() {
  unsigned cp = parse_hex4();
  if (cp >= 0xD800 && cp <= 0xDBFF) {
    // High surrogate: a low surrogate escape must follow.
    if (!consume_literal("\\u")) fail("unpaired surrogate");
    const unsigned lo = parse_hex4();
    if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
  } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
    fail("unpaired surrogate");
  }
  return cp;
}

void Reader::append_codepoint(unsigned cp) {
  // UTF-8 encode into the arena.
  if (cp < 0x80) {
    arena_.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    arena_.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    arena_.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    arena_.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    arena_.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    arena_.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    arena_.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    arena_.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    arena_.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    arena_.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

Reader::Ref Reader::parse_array(int depth) {
  expect('[');
  const Ref arr = new_node(Value::Type::kArray);
  skip_ws();
  if (peek() == ']') {
    ++pos_;
    return arr;
  }
  while (true) {
    skip_ws();
    append_child(arr, parse_value(depth + 1));
    skip_ws();
    const char c = peek();
    ++pos_;
    if (c == ']') return arr;
    if (c != ',') {
      --pos_;
      fail("expected ',' or ']'");
    }
  }
}

Reader::Ref Reader::parse_object(int depth) {
  expect('{');
  const Ref obj = new_node(Value::Type::kObject);
  skip_ws();
  if (peek() == '}') {
    ++pos_;
    return obj;
  }
  while (true) {
    skip_ws();
    if (peek() != '"') fail("object keys must be strings");
    std::uint32_t key_off = 0, key_len = 0;
    bool key_in_arena = false;
    parse_string_payload(&key_off, &key_len, &key_in_arena);
    const std::string_view k = resolve(key_off, key_len, key_in_arena);
    // Duplicate keys would make the canonical form ambiguous about what
    // was requested; reject rather than silently keeping one.
    for (Ref c = node(obj).child; c != kNone; c = next(c)) {
      if (key(c) == k) {
        fail("duplicate object key '" + std::string(k) + "'");
      }
    }
    skip_ws();
    expect(':');
    skip_ws();
    const Ref member = parse_value(depth + 1);
    Node& m = node(member);
    m.key_off = key_off;
    m.key_len = key_len;
    m.key_in_arena = key_in_arena;
    append_child(obj, member);
    skip_ws();
    const char c = peek();
    ++pos_;
    if (c == '}') return obj;
    if (c != ',') {
      --pos_;
      fail("expected ',' or '}'");
    }
  }
}

Value Value::parse(std::string_view text) {
  Reader reader;
  return reader.materialize(reader.parse(text));
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hpcarbon::json
