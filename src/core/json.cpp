#include "core/json.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "core/error.h"

namespace hpcarbon::json {

namespace {

[[noreturn]] void type_error(const char* want, Value::Type got) {
  static const char* names[] = {"null", "bool", "number", "string", "array",
                                "object"};
  throw Error(std::string("json: expected ") + want + ", value is " +
              names[static_cast<int>(got)]);
}

}  // namespace

Value Value::null() { return Value(); }

Value Value::boolean(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  HPC_REQUIRE(std::isfinite(d), "json: numbers must be finite");
  Value v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.arr_ = std::move(items);
  return v;
}

Value Value::object(std::vector<Member> members) {
  Value v;
  v.type_ = Type::kObject;
  v.obj_ = std::move(members);
  return v;
}

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const std::vector<Member>& Value::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

std::size_t Value::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  type_error("array or object", type_);
}

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : members()) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Value::set(std::string key, Value v) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return *this;
}

void Value::push_back(Value v) {
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(v));
}

// --- Emission ---------------------------------------------------------------

std::string dump_number(double v) {
  HPC_REQUIRE(std::isfinite(v), "json: numbers must be finite");
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += esc;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void dump_value(const Value& v, bool sort_keys, std::string& out) {
  switch (v.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::kNumber:
      out += dump_number(v.as_number());
      break;
    case Value::Type::kString:
      out += quote(v.as_string());
      break;
    case Value::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(item, sort_keys, out);
      }
      out.push_back(']');
      break;
    }
    case Value::Type::kObject: {
      // Sorting indexes the member list rather than copying the values:
      // members can be deep.
      const auto& members = v.members();
      std::vector<std::size_t> order(members.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      if (sort_keys) {
        std::sort(order.begin(), order.end(), [&](std::size_t a,
                                                  std::size_t b) {
          return members[a].first < members[b].first;
        });
      }
      out.push_back('{');
      bool first = true;
      for (const std::size_t i : order) {
        if (!first) out.push_back(',');
        first = false;
        out += quote(members[i].first);
        out.push_back(':');
        dump_value(members[i].second, sort_keys, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string Value::dump(bool sort_keys) const {
  std::string out;
  dump_value(*this, sort_keys, out);
  return out;
}

// --- Parsing ----------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw Error("json: unexpected end of input at offset " +
                  std::to_string(pos_));
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value::null();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::boolean(false);
      case '"':
        return Value::string(parse_string());
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == int_start) {
      pos_ = start;
      fail("expected a value");
    }
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      pos_ = int_start;
      fail("leading zeros are not allowed");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp = pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp) fail("digits required in exponent");
    }
    double v = 0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
      fail("malformed number");
    }
    if (!std::isfinite(v)) fail("number out of double range");
    return Value::number(v);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out); break;
        default:
          pos_ -= 1;
          fail("unknown escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return cp;
  }

  void append_codepoint(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate escape must follow.
      if (!consume_literal("\\u")) fail("unpaired surrogate");
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      skip_ws();
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("object keys must be strings");
      std::string key = parse_string();
      // Duplicate keys would make the canonical form ambiguous about what
      // was requested; reject rather than silently keeping one.
      if (obj.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      skip_ws();
      expect(':');
      skip_ws();
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hpcarbon::json
