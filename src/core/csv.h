// CSV import/export for carbon-intensity traces and bench outputs.
//
// Real deployments would feed measured hourly data (Electricity Maps / UK
// ESO API exports) straight into the analysis; this module provides the
// interchange point. Format: optional header row, comma separation,
// RFC 4180-style double quotes around cells that contain commas ("" escapes
// a literal quote), and an optional newline on the final row.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hpcarbon {

struct CsvData {
  std::vector<std::string> header;           // empty if no header detected
  std::vector<std::vector<double>> rows;     // numeric payload
};

/// Parse CSV text. If the first row contains any non-numeric cell, it is
/// treated as the header. Throws hpcarbon::Error on malformed numeric cells
/// or ragged rows.
CsvData parse_csv(const std::string& text);

/// Read a whole file; throws hpcarbon::Error if it cannot be opened.
std::string read_file(const std::string& path);
void write_file(const std::string& path, const std::string& content);

/// Serialise a single numeric column with a header name.
std::string to_csv_column(const std::string& name,
                          const std::vector<double>& values);

}  // namespace hpcarbon
