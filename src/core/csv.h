// CSV import/export for carbon-intensity traces and bench outputs.
//
// Real deployments would feed measured grid data (Electricity Maps / UK
// ESO API exports) straight into the analysis; this module provides the
// interchange point. Format: optional header row, comma separation,
// RFC 4180-style double quotes around cells that contain commas ("" escapes
// a literal quote), and an optional newline on the final row.
//
// Two parse layers:
//  * parse_csv_table — raw string cells (timestamped grid exports need the
//    datetime column verbatim; grid/import.h builds on this).
//  * parse_csv       — the numeric payload view used by bench round-trips.
//
// Emission goes through csv_escape / csv_row so that every CSV the tools
// write parses back through this module (RFC 4180 round-trip), even when a
// cell carries a comma or quote.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hpcarbon {

struct CsvData {
  std::vector<std::string> header;           // empty if no header detected
  std::vector<std::vector<double>> rows;     // numeric payload
};

/// Raw rectangular view: every cell as text, no header detection.
struct CsvTable {
  std::vector<std::vector<std::string>> rows;
  /// 1-based source line of each row (blank lines counted), parallel to
  /// `rows`; lets importers report gaps against the original file.
  std::vector<std::size_t> line_numbers;
};

/// Parse CSV text into string cells. Throws hpcarbon::Error on ragged rows
/// (all rows must match the first row's width) or malformed quoting.
CsvTable parse_csv_table(const std::string& text);

/// Parse CSV text. If the first row contains any non-numeric cell, it is
/// treated as the header. Throws hpcarbon::Error on malformed numeric cells
/// or ragged rows.
CsvData parse_csv(const std::string& text);

/// Read a whole file; throws hpcarbon::Error if it cannot be opened.
std::string read_file(const std::string& path);
void write_file(const std::string& path, const std::string& content);

/// RFC 4180 escaping: cells containing a comma, quote, CR, or LF are
/// wrapped in double quotes with internal quotes doubled; all other cells
/// pass through untouched (so numeric output stays byte-identical).
std::string csv_escape(const std::string& cell);

/// One emitted row: cells escaped, comma-joined, terminated with '\n'.
std::string csv_row(const std::vector<std::string>& cells);

/// Default ostream formatting of a double ("3.14", "42") — the cell format
/// every tool's CSV uses for numeric columns.
std::string csv_num(double v);

/// Serialise a single numeric column with a header name.
std::string to_csv_column(const std::string& name,
                          const std::vector<double>& values);

}  // namespace hpcarbon
