// Simulated calendar used by the hourly carbon-intensity analysis.
//
// The paper analyses one calendar year (2021) of hourly data: 365 days,
// 8760 hours, no leap handling (matching the Electricity Maps exports it
// consumed). We model an hour-of-year index [0, 8760) in some time zone and
// provide the conversions Fig. 7 needs (everything is re-aligned to JST,
// UTC+9, before the hour-of-day winner analysis).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/error.h"

namespace hpcarbon {

inline constexpr int kHoursPerDay = 24;
inline constexpr int kDaysPerYear = 365;
inline constexpr int kHoursPerYear = kHoursPerDay * kDaysPerYear;  // 8760

/// Fixed UTC offset, in whole hours (the operators studied span UTC+9 to
/// UTC-8; none uses fractional offsets). DST is deliberately not modeled:
/// grid data feeds publish in standard local time or UTC.
class TimeZone {
 public:
  constexpr TimeZone() = default;
  constexpr explicit TimeZone(int utc_offset_hours, const char* name = "")
      : offset_(utc_offset_hours), name_(name) {}

  constexpr int utc_offset_hours() const { return offset_; }
  constexpr const char* name() const { return name_; }

  friend constexpr bool operator==(TimeZone a, TimeZone b) {
    return a.offset_ == b.offset_;
  }

 private:
  int offset_ = 0;
  const char* name_ = "UTC";
};

inline constexpr TimeZone kUtc{0, "UTC"};
inline constexpr TimeZone kJst{9, "JST"};    // Japan (KN, TK)
inline constexpr TimeZone kGmt{0, "GMT"};    // Great Britain (ESO)
inline constexpr TimeZone kPst{-8, "PST"};   // California (CISO)
inline constexpr TimeZone kEst{-5, "EST"};   // Mid-Atlantic (PJM)
inline constexpr TimeZone kCst{-6, "CST"};   // Texas / Midwest (ERCOT, MISO)

/// Hour-of-year in a given time zone; the workhorse index of the grid module.
class HourOfYear {
 public:
  constexpr HourOfYear() = default;
  constexpr explicit HourOfYear(int index) : index_(wrap(index)) {}

  constexpr int index() const { return index_; }
  constexpr int hour_of_day() const { return index_ % kHoursPerDay; }
  constexpr int day_of_year() const { return index_ / kHoursPerDay; }

  /// Month in [0,11] under the non-leap civil calendar.
  int month() const;
  /// Day within the month, 1-based.
  int day_of_month() const;

  /// Shift by whole hours with year wraparound (hour 8759 + 1 -> hour 0).
  constexpr HourOfYear shifted(int hours) const {
    return HourOfYear(index_ + hours);
  }

  /// Re-express this instant (given as local time in `from`) as local time
  /// in `to`. Wraps around the year boundary, which is the behaviour the
  /// paper's JST re-alignment requires for a full-year histogram.
  constexpr HourOfYear convert(TimeZone from, TimeZone to) const {
    return shifted(to.utc_offset_hours() - from.utc_offset_hours());
  }

  /// "Mar-04 13:00" style label for tables.
  std::string to_string() const;

  friend constexpr bool operator==(HourOfYear a, HourOfYear b) {
    return a.index_ == b.index_;
  }
  friend constexpr auto operator<=>(HourOfYear a, HourOfYear b) {
    return a.index_ <=> b.index_;
  }

 private:
  static constexpr int wrap(int i) {
    int m = i % kHoursPerYear;
    return m < 0 ? m + kHoursPerYear : m;
  }
  int index_ = 0;
};

/// Days in each month of the modeled (non-leap) year.
inline constexpr std::array<int, 12> kDaysInMonth = {31, 28, 31, 30, 31, 30,
                                                     31, 31, 30, 31, 30, 31};
inline constexpr std::array<const char*, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

/// First hour-of-year of a month (month in [0,11]).
int month_start_hour(int month);

/// Fraction of the year elapsed at a given hour, in [0,1); used by the
/// seasonal terms of the grid simulator.
constexpr double year_fraction(HourOfYear h) {
  return static_cast<double>(h.index()) / kHoursPerYear;
}

}  // namespace hpcarbon
