#include "core/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/error.h"

namespace hpcarbon {

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  for (char ch : line) {
    if (ch == ',') {
      cells.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  cells.push_back(cur);
  return cells;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

CsvData parse_csv(const std::string& text) {
  CsvData data;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  std::size_t expected_cols = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    auto cells = split_line(line);
    if (first) {
      first = false;
      bool all_numeric = true;
      double tmp;
      for (const auto& c : cells) {
        if (!parse_double(c, &tmp)) {
          all_numeric = false;
          break;
        }
      }
      expected_cols = cells.size();
      if (!all_numeric) {
        data.header = cells;
        continue;
      }
    }
    HPC_REQUIRE(cells.size() == expected_cols, "ragged CSV row");
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& c : cells) {
      double v;
      HPC_REQUIRE(parse_double(c, &v), "non-numeric CSV cell: " + c);
      row.push_back(v);
    }
    data.rows.push_back(std::move(row));
  }
  return data;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HPC_REQUIRE(in.good(), "cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  HPC_REQUIRE(out.good(), "cannot open file for writing: " + path);
  out << content;
}

std::string to_csv_column(const std::string& name,
                          const std::vector<double>& values) {
  std::ostringstream out;
  out << name << '\n';
  for (double v : values) out << v << '\n';
  return out.str();
}

}  // namespace hpcarbon
