#include "core/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/error.h"

namespace hpcarbon {

namespace {

std::vector<std::string> split_line(const std::string& line,
                                    std::size_t line_no) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  bool sealed = false;  // cell ended with a closing quote; next must be ','
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');  // RFC 4180 escaped quote
          ++i;
        } else {
          quoted = false;
          sealed = true;
        }
      } else {
        cur.push_back(ch);
      }
    } else if (ch == ',') {
      cells.push_back(cur);
      cur.clear();
      sealed = false;
    } else if (ch == '\r') {
      continue;
    } else if (sealed) {
      throw Error("text after closing quote in CSV row " +
                  std::to_string(line_no));
    } else if (ch == '"' && cur.empty()) {
      quoted = true;
    } else {
      cur.push_back(ch);
    }
  }
  HPC_REQUIRE(!quoted,
              "unterminated quote in CSV row " + std::to_string(line_no));
  cells.push_back(cur);
  return cells;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

CsvTable parse_csv_table(const std::string& text) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  std::size_t expected_cols = 0;
  std::size_t line_no = 0;  // 1-based, counting blank lines too
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    auto cells = split_line(line, line_no);
    if (table.rows.empty()) {
      expected_cols = cells.size();
    }
    HPC_REQUIRE(cells.size() == expected_cols,
                "ragged CSV row " + std::to_string(line_no) + ": got " +
                    std::to_string(cells.size()) + " cells, expected " +
                    std::to_string(expected_cols));
    table.rows.push_back(std::move(cells));
    table.line_numbers.push_back(line_no);
  }
  return table;
}

CsvData parse_csv(const std::string& text) {
  const CsvTable table = parse_csv_table(text);
  CsvData data;
  bool first = true;
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const auto& cells = table.rows[r];
    if (first) {
      first = false;
      bool all_numeric = true;
      double tmp;
      for (const auto& c : cells) {
        if (!parse_double(c, &tmp)) {
          all_numeric = false;
          break;
        }
      }
      if (!all_numeric) {
        data.header = cells;
        continue;
      }
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& c : cells) {
      double v;
      HPC_REQUIRE(parse_double(c, &v), "non-numeric CSV cell: " + c);
      row.push_back(v);
    }
    data.rows.push_back(std::move(row));
  }
  return data;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HPC_REQUIRE(in.good(), "cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  HPC_REQUIRE(out.good(), "cannot open file for writing: " + path);
  out << content;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (const char ch : cell) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

std::string csv_row(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += csv_escape(cells[i]);
  }
  out.push_back('\n');
  return out;
}

std::string csv_num(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

std::string to_csv_column(const std::string& name,
                          const std::vector<double>& values) {
  std::string out = csv_row({name});
  for (double v : values) out += csv_row({csv_num(v)});
  return out;
}

}  // namespace hpcarbon
