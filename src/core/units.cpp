#include "core/units.h"

#include <cstdio>

namespace hpcarbon {

namespace {
std::string fmt(double v, const char* unit) {
  char buf[64];
  if (v == 0.0 || (std::fabs(v) >= 0.1 && std::fabs(v) < 10000.0)) {
    std::snprintf(buf, sizeof(buf), "%.3g %s", v, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g %s", v, unit);
  }
  return buf;
}
}  // namespace

std::string to_string(Mass m) {
  const double g = m.to_grams();
  if (std::fabs(g) >= 1e6) return fmt(m.to_tonnes(), "tCO2e");
  if (std::fabs(g) >= 1e3) return fmt(m.to_kilograms(), "kgCO2e");
  return fmt(g, "gCO2e");
}

std::string to_string(Energy e) {
  const double kwh = e.to_kwh();
  if (std::fabs(kwh) >= 1e3) return fmt(e.to_mwh(), "MWh");
  return fmt(kwh, "kWh");
}

std::string to_string(Power p) {
  const double w = p.to_watts();
  if (std::fabs(w) >= 1e6) return fmt(p.to_megawatts(), "MW");
  if (std::fabs(w) >= 1e3) return fmt(p.to_kilowatts(), "kW");
  return fmt(w, "W");
}

std::string to_string(CarbonIntensity i) {
  return fmt(i.to_g_per_kwh(), "gCO2/kWh");
}

}  // namespace hpcarbon
