#include "core/stats.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace hpcarbon::stats {

namespace {

// R type-7 linear interpolation on already-sorted data: the single
// implementation behind both stats::quantile and Summary::quantile.
double quantile_sorted(std::span<const double> sorted, double p) {
  HPC_REQUIRE(!sorted.empty(), "quantile of empty range");
  HPC_REQUIRE(p >= 0.0 && p <= 1.0, "quantile p outside [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double mean(std::span<const double> xs) {
  HPC_REQUIRE(!xs.empty(), "mean of empty range");
  double acc = 0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  HPC_REQUIRE(!xs.empty(), "min of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  HPC_REQUIRE(!xs.empty(), "max of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

double cov_percent(std::span<const double> xs) {
  const double m = mean(xs);
  HPC_REQUIRE(m != 0.0, "CoV undefined for zero mean");
  // CoV is defined on |mean|: dispersion must not report as negative for
  // negative-mean series (e.g. carbon *savings* deltas).
  return 100.0 * stddev(xs) / std::abs(m);
}

double quantile(std::span<const double> xs, double p) {
  HPC_REQUIRE(!xs.empty(), "quantile of empty range");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return quantile_sorted(v, p);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary::Summary(std::span<const double> xs)
    : sorted_(xs.begin(), xs.end()) {
  finalize(xs);
}

Summary::Summary(std::vector<double>&& xs) : sorted_(std::move(xs)) {
  // Moments must see the original order (summation order changes the last
  // ulp), so accumulate before the in-place sort.
  finalize(sorted_);
}

void Summary::finalize(std::span<const double> original_order) {
  if (!original_order.empty()) mean_ = stats::mean(original_order);
  variance_ = stats::variance(original_order);
  std::sort(sorted_.begin(), sorted_.end());
}

double Summary::mean() const {
  HPC_REQUIRE(!empty(), "mean of empty summary");
  return mean_;
}

double Summary::variance() const { return variance_; }

double Summary::stddev() const { return std::sqrt(variance_); }

double Summary::min() const {
  HPC_REQUIRE(!empty(), "min of empty summary");
  return sorted_.front();
}

double Summary::max() const {
  HPC_REQUIRE(!empty(), "max of empty summary");
  return sorted_.back();
}

double Summary::quantile(double p) const {
  HPC_REQUIRE(!empty(), "quantile of empty summary");
  return quantile_sorted(sorted_, p);
}

BoxStats box_stats(std::span<const double> xs) {
  // One Summary instead of three quantile() calls: one sort, not three.
  const Summary s(xs);
  BoxStats b;
  b.q1 = s.quantile(0.25);
  b.median = s.quantile(0.5);
  b.q3 = s.quantile(0.75);
  b.mean = s.mean();
  b.min = s.min();
  b.max = s.max();
  const double iqr = b.q3 - b.q1;
  // Tukey whiskers: furthest data point within 1.5*IQR of the box.
  double lo_fence = b.q1 - 1.5 * iqr;
  double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_low = b.max;
  b.whisker_high = b.min;
  for (double x : xs) {
    if (x >= lo_fence && x < b.whisker_low) b.whisker_low = x;
    if (x <= hi_fence && x > b.whisker_high) b.whisker_high = x;
  }
  return b;
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  HPC_REQUIRE(bins > 0, "histogram needs at least one bin");
  HPC_REQUIRE(hi > lo, "histogram range is empty");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto bin = static_cast<long>(std::floor((x - lo) / width));
    bin = std::clamp(bin, 0L, static_cast<long>(bins) - 1);
    ++counts[static_cast<std::size_t>(bin)];
  }
  return counts;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  HPC_REQUIRE(xs.size() == ys.size(), "pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void Welford::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

}  // namespace hpcarbon::stats
