#include "core/time.h"

#include <cstdio>

namespace hpcarbon {

int month_start_hour(int month) {
  HPC_REQUIRE(month >= 0 && month < 12, "month out of range");
  int days = 0;
  for (int m = 0; m < month; ++m) days += kDaysInMonth[static_cast<size_t>(m)];
  return days * kHoursPerDay;
}

int HourOfYear::month() const {
  int day = day_of_year();
  for (int m = 0; m < 12; ++m) {
    const int len = kDaysInMonth[static_cast<size_t>(m)];
    if (day < len) return m;
    day -= len;
  }
  return 11;  // unreachable for a wrapped index
}

int HourOfYear::day_of_month() const {
  int day = day_of_year();
  for (int m = 0; m < 12; ++m) {
    const int len = kDaysInMonth[static_cast<size_t>(m)];
    if (day < len) return day + 1;
    day -= len;
  }
  return kDaysInMonth.back();
}

std::string HourOfYear::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s-%02d %02d:00",
                kMonthNames[static_cast<size_t>(month())], day_of_month(),
                hour_of_day());
  return buf;
}

}  // namespace hpcarbon
