// Error handling primitives shared across hpcarbon.
//
// The library throws `hpcarbon::Error` (a std::runtime_error subclass) for
// all precondition violations. Benches and examples catch it at the top
// level; tests assert on it.
#pragma once

#include <stdexcept>
#include <string>

namespace hpcarbon {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) +
              ": requirement failed: " + expr + (msg.empty() ? "" : " — ") +
              msg);
}
}  // namespace detail

}  // namespace hpcarbon

// Precondition check that survives in release builds. Use for API-boundary
// validation (user-supplied configs), not for internal invariants.
#define HPC_REQUIRE(cond, msg)                                      \
  do {                                                              \
    if (!(cond)) ::hpcarbon::detail::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
