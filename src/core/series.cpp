#include "core/series.h"

#include <cmath>

#include "core/error.h"

namespace hpcarbon {

StepSeries::StepSeries(std::vector<double> values, double step_seconds)
    : values_(std::move(values)), step_seconds_(step_seconds) {
  HPC_REQUIRE(!values_.empty(), "series needs at least one sample");
  HPC_REQUIRE(std::isfinite(step_seconds_) && step_seconds_ > 0.0,
              "series step must be positive and finite");
  step_hours_ = step_seconds_ / kSecondsPerHour;
  // Computed as (n * step_s) / 3600 rather than n * step_hours so that any
  // step with an integral number of seconds per period gives an exact
  // period (8760.0 for hourly, 5-minute, and 15-minute years alike).
  period_hours_ =
      static_cast<double>(values_.size()) * step_seconds_ / kSecondsPerHour;
  // Two passes, deliberately: the validation sweep is branch-only and
  // vectorizes, while the prefix accumulation is a serial dependence
  // chain. Fusing them (measured via bench series) puts the isfinite
  // branch inside the chain and costs ~20% construction throughput.
  for (const double v : values_) {
    HPC_REQUIRE(std::isfinite(v), "series values must be finite");
  }
  prefix_.resize(values_.size() + 1);
  prefix_[0] = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + values_[i] * step_hours_;
  }
}

StepSeries StepSeries::hourly(std::vector<double> values) {
  return StepSeries(std::move(values), kSecondsPerHour);
}

std::size_t StepSeries::index_at_hours(double hours) const {
  HPC_REQUIRE(!empty(), "lookup on an empty series");
  HPC_REQUIRE(std::isfinite(hours), "lookup instant must be finite");
  double h = std::fmod(hours, period_hours_);
  if (h < 0.0) h += period_hours_;
  auto i = static_cast<std::size_t>(h / step_hours_);
  // Floating-point division can land exactly on size() when h is within one
  // ulp of the period; clamp to the final sample.
  return i < values_.size() ? i : values_.size() - 1;
}

double StepSeries::cumulative(double hours) const {
  const double pos = hours / step_hours_;
  auto i = static_cast<std::size_t>(pos);  // pos >= 0 by contract
  if (i >= values_.size()) return prefix_.back();
  const double frac = pos - static_cast<double>(i);
  double c = prefix_[i];
  if (frac > 0.0) c += values_[i] * frac * step_hours_;
  return c;
}

double StepSeries::integral(double start_hours, double duration_hours) const {
  HPC_REQUIRE(!empty(), "integral over an empty series");
  HPC_REQUIRE(std::isfinite(start_hours) && std::isfinite(duration_hours) &&
                  duration_hours >= 0.0,
              "interval must be finite with non-negative duration");
  double s = std::fmod(start_hours, period_hours_);
  if (s < 0.0) s += period_hours_;
  const double full_periods = std::floor(duration_hours / period_hours_);
  const double d = duration_hours - full_periods * period_hours_;
  double acc = full_periods * prefix_.back();
  const double e = s + d;
  if (e <= period_hours_) {
    acc += cumulative(e) - cumulative(s);
  } else {
    acc += (prefix_.back() - cumulative(s)) + cumulative(e - period_hours_);
  }
  return acc;
}

double StepSeries::mean(double start_hours, double duration_hours) const {
  HPC_REQUIRE(duration_hours > 0.0, "mean needs a positive duration");
  return integral(start_hours, duration_hours) / duration_hours;
}

StepSeries StepSeries::resampled(double new_step_seconds) const {
  HPC_REQUIRE(!empty(), "resample of an empty series");
  HPC_REQUIRE(std::isfinite(new_step_seconds) && new_step_seconds > 0.0,
              "resample step must be positive and finite");
  const double period_seconds =
      static_cast<double>(values_.size()) * step_seconds_;
  const double count = period_seconds / new_step_seconds;
  const auto n = static_cast<std::size_t>(std::llround(count));
  HPC_REQUIRE(n > 0 && std::abs(count - static_cast<double>(n)) < 1e-9,
              "resample step must divide the series period evenly");
  if (n == values_.size()) return *this;
  const double new_step_hours = new_step_seconds / kSecondsPerHour;
  std::vector<double> out(n);
  // Integer decimation (the common import path: 5-minute data -> hourly)
  // reads the prefix sums directly — no fmod/floor per cell. Same
  // mean-preserving quantity as the general path (an exact prefix
  // difference instead of two cumulative() endpoint evaluations; equal to
  // within one ulp of rounding per endpoint).
  const double factor = new_step_seconds / step_seconds_;
  const auto k = static_cast<std::size_t>(std::llround(factor));
  if (k > 1 && std::abs(factor - static_cast<double>(k)) < 1e-9 &&
      values_.size() == n * k) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = (prefix_[(i + 1) * k] - prefix_[i * k]) / new_step_hours;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = integral(static_cast<double>(i) * new_step_hours,
                        new_step_hours) /
               new_step_hours;
    }
  }
  return StepSeries(std::move(out), new_step_seconds);
}

StepSeries StepSeries::rotated(long steps) const {
  HPC_REQUIRE(!empty(), "rotate of an empty series");
  const auto n = static_cast<long>(values_.size());
  long shift = steps % n;
  if (shift < 0) shift += n;
  // Two bulk copies instead of a per-element modulo.
  std::vector<double> out;
  out.reserve(values_.size());
  const auto s = static_cast<std::size_t>(shift);
  out.insert(out.end(), values_.begin() + static_cast<std::ptrdiff_t>(s),
             values_.end());
  out.insert(out.end(), values_.begin(),
             values_.begin() + static_cast<std::ptrdiff_t>(s));
  return StepSeries(std::move(out), step_seconds_);
}

}  // namespace hpcarbon
