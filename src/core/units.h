// Strongly-typed physical quantities used throughout the carbon models.
//
// The paper's equations mix four dimensions that are easy to confuse in
// plain-double code: power (W), energy (kWh), CO2-equivalent mass (g), and
// carbon intensity (gCO2/kWh). Each gets a distinct value type; the only
// permitted cross-type arithmetic mirrors the physics:
//
//   Energy        = Power * Hours                 (kW * h -> kWh)
//   Mass          = CarbonIntensity * Energy      (g/kWh * kWh -> g)
//   CarbonIntensity = Mass / Energy
//   Power         = Energy / Hours
//
// All types are trivially copyable doubles under the hood; there is no
// runtime cost relative to raw arithmetic.
#pragma once

#include <cmath>
#include <compare>
#include <string>

namespace hpcarbon {

namespace detail {

// CRTP base providing the ring operations every quantity supports.
template <class Derived>
class Quantity {
 public:
  constexpr Quantity() = default;

  constexpr double raw() const { return value_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived::from_raw(a.value_ + b.value_);
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived::from_raw(a.value_ - b.value_);
  }
  friend constexpr Derived operator-(Derived a) {
    return Derived::from_raw(-a.value_);
  }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived::from_raw(a.value_ * s);
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived::from_raw(a.value_ * s);
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived::from_raw(a.value_ / s);
  }
  // Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value_ / b.value_;
  }
  Derived& operator+=(Derived o) {
    value_ += o.value_;
    return static_cast<Derived&>(*this);
  }
  Derived& operator-=(Derived o) {
    value_ -= o.value_;
    return static_cast<Derived&>(*this);
  }
  Derived& operator*=(double s) {
    value_ *= s;
    return static_cast<Derived&>(*this);
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value_ <=> b.value_;
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value_ == b.value_;
  }

 protected:
  constexpr explicit Quantity(double v) : value_(v) {}
  static constexpr Derived from_raw(double v) {
    Derived d;
    d.value_ = v;
    return d;
  }
  double value_ = 0.0;

  template <class>
  friend class Quantity;
};

}  // namespace detail

/// Elapsed (simulated) time. Raw unit: hours.
class Hours : public detail::Quantity<Hours> {
 public:
  constexpr Hours() = default;
  static constexpr Hours hours(double h) { return Hours(h); }
  static constexpr Hours minutes(double m) { return Hours(m / 60.0); }
  static constexpr Hours seconds(double s) { return Hours(s / 3600.0); }
  static constexpr Hours days(double d) { return Hours(d * 24.0); }
  /// Calendar year as used by the paper's hourly analysis: 365 d = 8760 h.
  static constexpr Hours years(double y) { return Hours(y * 8760.0); }

  constexpr double count() const { return value_; }
  constexpr double to_seconds() const { return value_ * 3600.0; }
  constexpr double to_days() const { return value_ / 24.0; }
  constexpr double to_years() const { return value_ / 8760.0; }

 private:
  constexpr explicit Hours(double h) : Quantity(h) {}
  friend class detail::Quantity<Hours>;
};

/// Electrical power. Raw unit: watts.
class Power : public detail::Quantity<Power> {
 public:
  constexpr Power() = default;
  static constexpr Power watts(double w) { return Power(w); }
  static constexpr Power kilowatts(double kw) { return Power(kw * 1e3); }
  static constexpr Power megawatts(double mw) { return Power(mw * 1e6); }

  constexpr double to_watts() const { return value_; }
  constexpr double to_kilowatts() const { return value_ / 1e3; }
  constexpr double to_megawatts() const { return value_ / 1e6; }

 private:
  constexpr explicit Power(double w) : Quantity(w) {}
  friend class detail::Quantity<Power>;
};

/// Electrical energy. Raw unit: kWh (the unit of Eq. 6 in the paper).
class Energy : public detail::Quantity<Energy> {
 public:
  constexpr Energy() = default;
  static constexpr Energy kilowatt_hours(double kwh) { return Energy(kwh); }
  static constexpr Energy watt_hours(double wh) { return Energy(wh / 1e3); }
  static constexpr Energy megawatt_hours(double mwh) {
    return Energy(mwh * 1e3);
  }
  static constexpr Energy joules(double j) { return Energy(j / 3.6e6); }

  constexpr double to_kwh() const { return value_; }
  constexpr double to_mwh() const { return value_ / 1e3; }
  constexpr double to_joules() const { return value_ * 3.6e6; }

 private:
  constexpr explicit Energy(double kwh) : Quantity(kwh) {}
  friend class detail::Quantity<Energy>;
};

/// CO2-equivalent mass. Raw unit: grams (the unit of Eq. 3-5).
class Mass : public detail::Quantity<Mass> {
 public:
  constexpr Mass() = default;
  static constexpr Mass grams(double g) { return Mass(g); }
  static constexpr Mass kilograms(double kg) { return Mass(kg * 1e3); }
  static constexpr Mass tonnes(double t) { return Mass(t * 1e6); }

  constexpr double to_grams() const { return value_; }
  constexpr double to_kilograms() const { return value_ / 1e3; }
  constexpr double to_tonnes() const { return value_ / 1e6; }

 private:
  constexpr explicit Mass(double g) : Quantity(g) {}
  friend class detail::Quantity<Mass>;
};

/// Carbon intensity of electricity. Raw unit: gCO2 per kWh (Eq. 6).
class CarbonIntensity : public detail::Quantity<CarbonIntensity> {
 public:
  constexpr CarbonIntensity() = default;
  static constexpr CarbonIntensity grams_per_kwh(double g) {
    return CarbonIntensity(g);
  }
  constexpr double to_g_per_kwh() const { return value_; }

 private:
  constexpr explicit CarbonIntensity(double g) : Quantity(g) {}
  friend class detail::Quantity<CarbonIntensity>;
};

// --- Cross-dimension arithmetic -------------------------------------------

constexpr Energy operator*(Power p, Hours t) {
  return Energy::kilowatt_hours(p.to_kilowatts() * t.count());
}
constexpr Energy operator*(Hours t, Power p) { return p * t; }

constexpr Power operator/(Energy e, Hours t) {
  return Power::kilowatts(e.to_kwh() / t.count());
}

constexpr Mass operator*(CarbonIntensity i, Energy e) {
  return Mass::grams(i.to_g_per_kwh() * e.to_kwh());
}
constexpr Mass operator*(Energy e, CarbonIntensity i) { return i * e; }

constexpr CarbonIntensity operator/(Mass m, Energy e) {
  return CarbonIntensity::grams_per_kwh(m.to_grams() / e.to_kwh());
}

// --- Formatting helpers ----------------------------------------------------

/// "12.3 kg", "4.56 t", "789 g" — picks a readable scale.
std::string to_string(Mass m);
/// "1.23 MWh", "45.6 kWh".
std::string to_string(Energy e);
/// "250 W", "1.2 kW", "29 MW".
std::string to_string(Power p);
/// "412 g/kWh".
std::string to_string(CarbonIntensity i);

}  // namespace hpcarbon
