// Minimal work-stealing-free thread pool with a parallel_for helper.
//
// The expensive paths in this library — generating 8760-hour grid traces for
// many regions, Monte-Carlo uncertainty propagation, scheduler parameter
// sweeps — are embarrassingly parallel across independent chunks, so a
// plain blocking queue is sufficient. The pool degrades gracefully to
// serial execution on single-core machines (parallel_for with one worker
// simply runs inline).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"
#include "obs/metrics.h"

namespace hpcarbon {

class ThreadPool {
 public:
  /// n_threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion. The enqueue
  /// timestamp rides along so worker_loop can report queue-wait and
  /// task-run latency (hpcarbon_pool_* in obs::MetricsRegistry::global()).
  template <class F>
  std::future<void> submit(F&& fn) HPCARBON_EXCLUDES(mu_) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace(Queued{[task] { (*task)(); }, obs::ticks()});
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [begin, end), partitioned into contiguous chunks.
  /// Blocks until all iterations complete. Exceptions from workers are
  /// rethrown on the calling thread (first one wins). Safe to nest: a call
  /// from one of this pool's own worker threads runs the loop inline
  /// rather than deadlocking on the shared queue.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed). Worker count: the
  /// set_global_threads() override if set, else the HPCARBON_THREADS
  /// environment variable, else hardware_concurrency.
  static ThreadPool& global();

  /// Override the worker count of the global pool. Only effective before
  /// the first global() call; later calls are ignored (the pool is already
  /// running). n == 0 restores the default resolution order.
  static void set_global_threads(std::size_t n);

  /// The HPCARBON_THREADS environment variable as a worker count, or 0 if
  /// unset/invalid. Shared by global() and the CLI so both resolve the
  /// variable identically.
  static std::size_t env_thread_hint();

  /// Register the pool's hpcarbon_pool_* instrument names in `registry`
  /// (idempotent, values untouched). Pools always *record* into the
  /// global registry; front-ends scraping a private registry call this
  /// so their metric set matches the global one — the property behind
  /// the byte-stable idle {"op":"metrics"} snapshot.
  static void register_metrics(obs::MetricsRegistry& registry);

 private:
  struct Queued {
    std::function<void()> fn;
    std::uint64_t enqueued_at = 0;  // obs::ticks() at submit
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  AnnotatedMutex mu_;
  std::queue<Queued> queue_ HPCARBON_GUARDED_BY(mu_);
  /// condition_variable_any: its wait takes the AnnotatedMutex directly,
  /// keeping the guarded-access proofs intact across the wait.
  std::condition_variable_any cv_;
  bool stop_ HPCARBON_GUARDED_BY(mu_) = false;
};

}  // namespace hpcarbon
