#include "core/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "core/error.h"

namespace hpcarbon {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  HPC_REQUIRE(header_.empty() || row.size() == header_.size(),
              "row width does not match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, v);
  return buf;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '+' || s[0] == '-') ? 1 : 0;
  bool digit = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digit = true;
    } else if (s[i] != '.' && s[i] != '%' && s[i] != 'e' && s[i] != '-' &&
               s[i] != '+') {
      return false;
    }
  }
  return digit;
}
}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::vector<std::string>> all;
  if (!header_.empty()) all.push_back(header_);
  all.insert(all.end(), rows_.begin(), rows_.end());
  if (all.empty()) return "";

  std::size_t cols = 0;
  for (const auto& r : all) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& r : all) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& r, bool is_header) {
    out << "|";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      const bool right = !is_header && looks_numeric(cell);
      out << ' ';
      if (right) {
        out << std::string(width[c] - cell.size(), ' ') << cell;
      } else {
        out << cell << std::string(width[c] - cell.size(), ' ');
      }
      out << " |";
    }
    out << '\n';
  };

  bool first = true;
  for (const auto& r : all) {
    emit_row(r, first && !header_.empty());
    if (first && !header_.empty()) {
      out << "|";
      for (std::size_t c = 0; c < cols; ++c) {
        out << std::string(width[c] + 2, '-') << "|";
      }
      out << '\n';
      first = false;
    }
  }
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out << ',';
      out << r[c];
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string banner(const std::string& title) {
  const std::string line(title.size() + 6, '=');
  return line + "\n== " + title + " ==\n" + line + "\n";
}

std::string bar(double value, double max_value, int width) {
  if (max_value <= 0 || value < 0) return "";
  int n = static_cast<int>(value / max_value * width + 0.5);
  n = std::clamp(n, 0, width);
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace hpcarbon
