// Resolution-agnostic piecewise-constant time series.
//
// The paper's operational pipeline runs on Electricity Maps exports, which
// ship at 5-minute or 15-minute cadence depending on the zone — but hourly
// data, synthetic traces, and PUE-weighted integrands all share the same
// shape: a periodic sequence of samples, each constant over one fixed step.
// StepSeries is that shape, factored out of the old hour-locked
// grid::HourlyPrefixSum so every consumer (trace integrals, Eq. 6
// integration, the scheduler's per-site carbon pricing) works at any
// resolution.
//
// Semantics:
//  * values()[i] applies over [i * step, (i+1) * step) seconds; the series
//    is periodic with period size() * step (one modeled year for traces).
//  * integral(start, duration) is the exact integral of that step function
//    in value·hours, O(1) via prefix sums: fractional endpoints weight the
//    stored sample directly (a prefix difference would reintroduce one ulp
//    of rounding per endpoint), starts wrap modulo the period (negative
//    starts wrap backwards), and durations may exceed any number of periods.
//  * With step_seconds == 3600 every code path reduces bit-identically to
//    the old hourly prefix sum: step_hours() is exactly 1.0, so the
//    index arithmetic (x / 1.0) and weights (w * 1.0) are unchanged
//    floating-point operations. Golden-parity tests assert this.
#pragma once

#include <cstddef>
#include <vector>

namespace hpcarbon {

inline constexpr double kSecondsPerHour = 3600.0;

class StepSeries {
 public:
  StepSeries() = default;
  /// values[i] applies over [i*step_seconds, (i+1)*step_seconds); the
  /// series repeats with period values.size() * step_seconds. Values must
  /// be finite; step must be positive and finite.
  StepSeries(std::vector<double> values, double step_seconds);
  /// The historical hourly layout (step = 3600 s).
  static StepSeries hourly(std::vector<double> values);

  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }
  double step_seconds() const { return step_seconds_; }
  /// Step expressed in hours (exactly 1.0 for hourly series).
  double step_hours() const { return step_hours_; }
  /// One full period, in hours (exactly 8760.0 for an hourly year).
  double period_hours() const { return period_hours_; }
  const std::vector<double>& values() const { return values_; }

  /// Integral of the series over one full period, value·hours.
  double total() const { return prefix_.empty() ? 0.0 : prefix_.back(); }

  /// Index of the sample containing the instant `hours` (wrapped into the
  /// period; negative values wrap backwards).
  std::size_t index_at_hours(double hours) const;
  /// Point sample at the instant `hours` (wrapped).
  double at_hours(double hours) const { return values_[index_at_hours(hours)]; }

  /// Integral over [start_hours, start_hours + duration_hours), value·hours.
  /// `start_hours` may be any finite value (wrapped into the period) and
  /// the duration may span period boundaries or exceed whole periods. O(1).
  double integral(double start_hours, double duration_hours) const;
  /// integral / duration; duration must be positive.
  double mean(double start_hours, double duration_hours) const;

  /// Mean-preserving resample onto a new step. The new step must divide the
  /// period evenly. Downsampling averages the covered samples (via the
  /// prefix sums); upsampling replicates each sample piecewise-constantly.
  StepSeries resampled(double new_step_seconds) const;

  /// Copy with values rotated so that rotated[i] = values[(i + steps) mod
  /// size] — the sample-level shift behind time-zone re-alignment.
  StepSeries rotated(long steps) const;

 private:
  /// Cumulative integral from 0 to `hours` in [0, period_hours], value·hours.
  double cumulative(double hours) const;

  std::vector<double> values_;
  std::vector<double> prefix_;  // size()+1; prefix_[i] = integral of first i
  double step_seconds_ = 0.0;
  double step_hours_ = 0.0;
  double period_hours_ = 0.0;
};

}  // namespace hpcarbon
