// Deterministic random number generation.
//
// Every stochastic element of the framework (grid weather, meter noise,
// scheduler arrivals, Monte-Carlo uncertainty) draws from a seeded
// xoshiro256** stream so that benches print identical tables on every run.
// std::mt19937 is avoided because its distributions are not reproducible
// across standard libraries.
#pragma once

#include <cmath>
#include <cstdint>

namespace hpcarbon {

/// SplitMix64: seed expander recommended by the xoshiro authors.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second deviate).
  double normal();
  double normal(double mean, double stddev);
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Log-normal parameterised by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma);
  bool bernoulli(double p);

  /// Derive an independent stream (for per-region / per-thread use).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0;
  bool has_cached_normal_ = false;
};

/// First-order autoregressive process with unit-variance stationary
/// distribution: x' = rho*x + sqrt(1-rho^2)*N(0,1). Drives the hour-to-hour
/// persistence of wind/solar availability and demand noise in the grid
/// simulator.
class Ar1 {
 public:
  /// rho in [0,1): autocorrelation over one step.
  Ar1(double rho, Rng& rng);
  double step();
  double value() const { return x_; }

 private:
  double rho_;
  double noise_scale_;
  double x_;
  Rng* rng_;
};

}  // namespace hpcarbon
