// Minimal dependency-free JSON: the wire format of the serve layer.
//
// The repo's interchange format has been CSV (traces, reports); the query
// service (src/serve) needs structured, self-describing requests and
// responses, so this module adds the smallest JSON core that supports it:
// objects, arrays, strings, numbers, booleans, and null, parsed from and
// written to single-line documents (the serve front-ends speak
// line-delimited JSON).
//
// Two properties matter more here than generality:
//
//  * Deterministic emission — dump() renders numbers through
//    std::to_chars (shortest round-trip form), escapes identically
//    everywhere, and can sort object keys. Responses must be bit-identical
//    across front-ends and thread counts, and the request canonicalization
//    (serve/request.h) hashes dumped text.
//  * Strict parsing — unknown escapes, trailing garbage, ragged numbers,
//    and duplicate object keys are errors (hpcarbon::Error with an offset),
//    never silently accepted: a canonical cache key must not be ambiguous
//    about what was asked.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcarbon::json {

class Value;
/// One object member. Insertion order is preserved; dump(sort_keys=true)
/// orders by key bytes without mutating the value.
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default-constructed value is null.
  Value() = default;

  static Value null();
  static Value boolean(bool b);
  /// Throws hpcarbon::Error for non-finite numbers (JSON cannot carry
  /// NaN/Inf, and a canonical key must not depend on a platform's printf).
  static Value number(double v);
  static Value string(std::string s);
  static Value array(std::vector<Value> items = {});
  static Value object(std::vector<Member> members = {});

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw hpcarbon::Error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;      // array elements
  const std::vector<Member>& members() const;   // object members

  /// Array/object element count; throws for scalar types.
  std::size_t size() const;

  /// Object lookup; nullptr when the key is absent (throws if not an
  /// object).
  const Value* find(const std::string& key) const;

  /// Object insert-or-replace, preserving the original position on
  /// replace. Returns *this for chaining.
  Value& set(std::string key, Value v);

  /// Array append (throws if not an array).
  void push_back(Value v);

  /// Compact single-line rendering ({"a":1,"b":[true,null]}).
  /// sort_keys orders every object's members by key bytes — the canonical
  /// form the serve layer hashes.
  std::string dump(bool sort_keys = false) const;

  /// Parse exactly one document (leading/trailing whitespace allowed,
  /// anything else after the value is an error). Throws hpcarbon::Error
  /// with a byte offset on malformed input; nesting is capped at depth 64.
  static Value parse(const std::string& text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<Member> obj_;
};

/// Shortest round-trip decimal form of a finite double ("5", "0.1",
/// "1e+30") via std::to_chars — the one number format every emitted
/// document and canonical key uses.
std::string dump_number(double v);

/// JSON string literal for `s`: quotes added, ", \, and control characters
/// escaped. The exact form dump() emits.
std::string quote(std::string_view s);

/// FNV-1a 64-bit hash (offset 0xcbf29ce484222325, prime 0x100000001b3):
/// the canonical-key hash of the serve layer.
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace hpcarbon::json
