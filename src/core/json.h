// Minimal dependency-free JSON: the wire format of the serve layer.
//
// The repo's interchange format has been CSV (traces, reports); the query
// service (src/serve) needs structured, self-describing requests and
// responses, so this module adds the smallest JSON core that supports it:
// objects, arrays, strings, numbers, booleans, and null, parsed from and
// written to single-line documents (the serve front-ends speak
// line-delimited JSON).
//
// Two properties matter more here than generality:
//
//  * Deterministic emission — dump() renders numbers through
//    std::to_chars (shortest round-trip form), escapes identically
//    everywhere, and can sort object keys. Responses must be bit-identical
//    across front-ends and thread counts, and the request canonicalization
//    (serve/request.h) hashes dumped text.
//  * Strict parsing — unknown escapes, trailing garbage, ragged numbers,
//    and duplicate object keys are errors (hpcarbon::Error with an offset),
//    never silently accepted: a canonical cache key must not be ambiguous
//    about what was asked.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcarbon::json {

class Value;
/// One object member. Insertion order is preserved; dump(sort_keys=true)
/// orders by key bytes without mutating the value.
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default-constructed value is null.
  Value() = default;

  static Value null();
  static Value boolean(bool b);
  /// Throws hpcarbon::Error for non-finite numbers (JSON cannot carry
  /// NaN/Inf, and a canonical key must not depend on a platform's printf).
  static Value number(double v);
  static Value string(std::string s);
  static Value array(std::vector<Value> items = {});
  static Value object(std::vector<Member> members = {});

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw hpcarbon::Error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;      // array elements
  const std::vector<Member>& members() const;   // object members

  /// Array/object element count; throws for scalar types.
  std::size_t size() const;

  /// Object lookup; nullptr when the key is absent (throws if not an
  /// object).
  const Value* find(const std::string& key) const;

  /// Object insert-or-replace, preserving the original position on
  /// replace. Returns *this for chaining.
  Value& set(std::string key, Value v);

  /// Array append (throws if not an array).
  void push_back(Value v);

  /// Compact single-line rendering ({"a":1,"b":[true,null]}).
  /// sort_keys orders every object's members by key bytes — the canonical
  /// form the serve layer hashes.
  std::string dump(bool sort_keys = false) const;

  /// Append-style rendering into a caller-owned buffer: identical bytes to
  /// dump(), no intermediate strings. The serve hot path reuses one
  /// per-thread buffer across requests, so emission allocates O(1)
  /// amortized.
  void dump_to(std::string& out, bool sort_keys = false) const;

  /// Parse exactly one document (leading/trailing whitespace allowed,
  /// anything else after the value is an error). Throws hpcarbon::Error
  /// with a byte offset on malformed input; nesting is capped at depth 64.
  /// Implemented as Reader::parse + materialization, so the strictness and
  /// error text of the two parsers cannot diverge.
  static Value parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<Member> obj_;
};

/// Zero-copy single-document parser: the serve hot path's view of a
/// request line.
///
/// parse() builds the document tree in a flat node pool (first-child /
/// next-sibling links) instead of heap-allocated Values. String payloads
/// are string_views into the *input text* whenever they contain no escape,
/// and into an internal unescape arena otherwise — so parsing a typical
/// request line performs no per-node allocation at all once the pool and
/// arena have warmed up (the Reader is designed to be reused; a
/// thread_local instance amortizes to zero allocations per line).
///
/// Grammar, strictness, nesting cap, and every error message byte
/// (including offsets) are identical to the historical Value::parse —
/// which is now implemented on top of this class, and whose golden corpus
/// (tests/test_json_golden.cpp) pins that equivalence.
///
/// Lifetime: refs and string_views are valid until the next parse() call
/// and require `text` to outlive them. Refs are indices into the pool;
/// kNone is the null ref.
class Reader {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kNone = 0xFFFFFFFFu;

  Reader() = default;
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Parse one document; returns the root ref. Resets previous contents
  /// (pool and arena capacity is retained — the point of reuse).
  Ref parse(std::string_view text);

  Value::Type type(Ref r) const { return node(r).type; }
  bool is_null(Ref r) const { return type(r) == Value::Type::kNull; }
  bool is_bool(Ref r) const { return type(r) == Value::Type::kBool; }
  bool is_number(Ref r) const { return type(r) == Value::Type::kNumber; }
  bool is_string(Ref r) const { return type(r) == Value::Type::kString; }
  bool is_array(Ref r) const { return type(r) == Value::Type::kArray; }
  bool is_object(Ref r) const { return type(r) == Value::Type::kObject; }

  /// Typed accessors; throw hpcarbon::Error on a type mismatch (same
  /// messages as Value's accessors).
  bool as_bool(Ref r) const;
  double as_number(Ref r) const;
  std::string_view as_string(Ref r) const;

  /// First array element / object member value; kNone when empty. Walk
  /// siblings with next(). Throws for scalar refs.
  Ref first_child(Ref r) const;
  /// Next sibling in insertion order; kNone at the end.
  Ref next(Ref r) const { return node(r).next; }
  /// The member key of an object child (unescaped view).
  std::string_view key(Ref member) const;
  /// Array/object element count; throws for scalar types.
  std::size_t size(Ref r) const;
  /// Object lookup; kNone when absent (throws if not an object).
  Ref find(Ref obj, std::string_view key) const;

  /// Deep-copy a subtree into a heap Value (Value::parse is parse() +
  /// materialize(root); the serve layer materializes lazily on cache
  /// misses only).
  Value materialize(Ref r) const;

 private:
  struct Node {
    Value::Type type = Value::Type::kNull;
    bool flag = false;           // kBool payload
    bool str_in_arena = false;   // string payload lives in arena_, not text_
    bool key_in_arena = false;
    double num = 0;
    Ref next = kNone;
    Ref child = kNone;       // first child (arrays/objects)
    Ref last_child = kNone;  // tail for O(1) append during parse
    std::uint32_t str_off = 0, str_len = 0;  // kString payload
    std::uint32_t key_off = 0, key_len = 0;  // object-member key
  };

  const Node& node(Ref r) const { return nodes_[r]; }
  Node& node(Ref r) { return nodes_[r]; }
  std::string_view resolve(std::uint32_t off, std::uint32_t len,
                           bool in_arena) const {
    return in_arena ? std::string_view(arena_).substr(off, len)
                    : text_.substr(off, len);
  }

  [[noreturn]] void fail(const std::string& what) const;
  void skip_ws();
  char peek() const;
  void expect(char c);
  bool consume_literal(const char* lit);
  Ref new_node(Value::Type t);
  void append_child(Ref parent, Ref child);
  Ref parse_value(int depth);
  Ref parse_number();
  /// Parse a string literal; returns (offset, length, in_arena) packed
  /// into the out-params. Zero-copy when the literal has no escapes.
  void parse_string_payload(std::uint32_t* off, std::uint32_t* len,
                            bool* in_arena);
  unsigned parse_hex4();
  unsigned parse_hex4_or_surrogate_pair();
  void append_codepoint(unsigned cp);
  Ref parse_array(int depth);
  Ref parse_object(int depth);

  std::vector<Node> nodes_;
  std::string arena_;       // unescaped string bytes (offsets stay stable)
  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Shortest round-trip decimal form of a finite double ("5", "0.1",
/// "1e+30") via std::to_chars — the one number format every emitted
/// document and canonical key uses.
std::string dump_number(double v);
/// Append form of dump_number (no temporary string).
void dump_number_to(std::string& out, double v);

/// JSON string literal for `s`: quotes added, ", \, and control characters
/// escaped. The exact form dump() emits.
std::string quote(std::string_view s);
/// Append form of quote (no temporary string).
void quote_to(std::string& out, std::string_view s);

/// FNV-1a 64-bit hash (offset 0xcbf29ce484222325, prime 0x100000001b3):
/// the canonical-key hash of the serve layer.
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace hpcarbon::json
