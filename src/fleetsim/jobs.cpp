#include "fleetsim/jobs.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "core/csv.h"
#include "core/error.h"

namespace hpcarbon::fleetsim {

void FleetJobs::push(std::int32_t job_id, Tick submit_tick, Tick duration_tick,
                     Power it_power, const std::string& user_name) {
  id.push_back(job_id);
  submit.push_back(submit_tick);
  duration.push_back(duration_tick);
  power.push_back(it_power);
  user.push_back(intern_user(user_name));
}

std::uint32_t FleetJobs::intern_user(const std::string& user_name) {
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (users[i] == user_name) return static_cast<std::uint32_t>(i);
  }
  users.push_back(user_name);
  return static_cast<std::uint32_t>(users.size() - 1);
}

void FleetJobs::validate() const {
  const std::size_t n = size();
  HPC_REQUIRE(id.size() == n && duration.size() == n && power.size() == n &&
                  user.size() == n,
              "fleet jobs: parallel vectors disagree on length");
  for (std::size_t i = 0; i < n; ++i) {
    HPC_REQUIRE(submit[i] >= 0, "fleet jobs: negative submit tick at index " +
                                    std::to_string(i));
    HPC_REQUIRE(i == 0 || submit[i - 1] <= submit[i],
                "fleet jobs: submits not sorted at index " +
                    std::to_string(i));
    HPC_REQUIRE(duration[i] > 0, "fleet jobs: non-positive duration at index " +
                                     std::to_string(i));
    HPC_REQUIRE(user[i] < users.size(),
                "fleet jobs: user index out of range at index " +
                    std::to_string(i));
  }
}

FleetJobs FleetJobs::from_jobs(const std::vector<sched::Job>& jobs) {
  // Sort by submit like the scheduling engine does, so queue order (and
  // therefore every policy decision) matches a direct SchedulingEngine run
  // on the same list.
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].submit_hour < jobs[b].submit_hour;
                   });
  FleetJobs out;
  out.id.reserve(jobs.size());
  out.submit.reserve(jobs.size());
  out.duration.reserve(jobs.size());
  out.power.reserve(jobs.size());
  out.user.reserve(jobs.size());
  for (const std::size_t i : order) {
    const sched::Job& j = jobs[i];
    const Tick dur = std::max<Tick>(1, nearest_tick(j.duration_hours));
    out.push(static_cast<std::int32_t>(j.id),
             std::max<Tick>(0, nearest_tick(j.submit_hour)), dur, j.it_power,
             j.user);
  }
  return out;
}

std::vector<sched::Job> FleetJobs::to_jobs() const {
  std::vector<sched::Job> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    sched::Job j;
    j.id = id[i];
    j.user = users[user[i]];
    j.submit_hour = hours_of(submit[i]);
    j.duration_hours = hours_of(duration[i]);
    j.it_power = power[i];
    out.push_back(std::move(j));
  }
  return out;
}

namespace {

double parse_num(const std::string& cell, const char* column,
                 std::size_t line) {
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (cell.empty() || end != cell.c_str() + cell.size()) {
    throw Error("jobs CSV: non-numeric " + std::string(column) + " '" + cell +
                "' (line " + std::to_string(line) + ")");
  }
  return v;
}

}  // namespace

FleetJobs parse_jobs_csv(const std::string& text, std::size_t site_count,
                         std::vector<std::int32_t>* origin_site) {
  const CsvTable table = parse_csv_table(text);
  HPC_REQUIRE(!table.rows.empty(), "jobs CSV: empty file");
  const auto& header = table.rows[0];
  const bool has_site = header.size() == 5;
  if (header.size() < 4 || header.size() > 5 || header[0] != "submit_hours" ||
      header[1] != "duration_hours" || header[2] != "power_kw" ||
      header[3] != "user" || (has_site && header[4] != "site")) {
    throw Error(
        "jobs CSV: header must be "
        "submit_hours,duration_hours,power_kw,user[,site] (line " +
        std::to_string(table.line_numbers[0]) + ")");
  }

  std::vector<sched::Job> jobs;
  std::vector<std::pair<std::size_t, std::int32_t>> origins;  // (row, site)
  jobs.reserve(table.rows.size() - 1);
  for (std::size_t r = 1; r < table.rows.size(); ++r) {
    const auto& cells = table.rows[r];
    const std::size_t line = table.line_numbers[r];
    sched::Job j;
    j.id = static_cast<int>(r - 1);
    j.submit_hour = parse_num(cells[0], "submit_hours", line);
    if (j.submit_hour < 0) {
      throw Error("jobs CSV: negative submit_hours (line " +
                  std::to_string(line) + ")");
    }
    j.duration_hours = parse_num(cells[1], "duration_hours", line);
    if (j.duration_hours <= 0) {
      throw Error("jobs CSV: duration_hours must be positive (line " +
                  std::to_string(line) + ")");
    }
    const double kw = parse_num(cells[2], "power_kw", line);
    if (kw <= 0) {
      throw Error("jobs CSV: power_kw must be positive (line " +
                  std::to_string(line) + ")");
    }
    j.it_power = Power::kilowatts(kw);
    if (cells[3].empty()) {
      throw Error("jobs CSV: empty user (line " + std::to_string(line) + ")");
    }
    j.user = cells[3];
    if (has_site) {
      const double site = parse_num(cells[4], "site", line);
      if (site != std::floor(site) || site < 0 ||
          site >= static_cast<double>(site_count)) {
        throw Error("jobs CSV: site must be an integer in [0, " +
                    std::to_string(site_count) + ") (line " +
                    std::to_string(line) + ")");
      }
      origins.emplace_back(jobs.size(), static_cast<std::int32_t>(site));
    }
    jobs.push_back(std::move(j));
  }

  FleetJobs out = FleetJobs::from_jobs(jobs);
  if (origin_site != nullptr) {
    // from_jobs may reorder; map origins through the preserved ids (ids
    // are the pre-sort row order by construction above).
    std::vector<std::int32_t> by_row(jobs.size(), -1);
    for (const auto& [row, site] : origins) by_row[row] = site;
    origin_site->assign(out.size(), -1);
    for (std::size_t i = 0; i < out.size(); ++i) {
      (*origin_site)[i] = by_row[static_cast<std::size_t>(out.id[i])];
    }
  }
  return out;
}

FleetJobs load_jobs_csv(const std::string& path, std::size_t site_count,
                        std::vector<std::int32_t>* origin_site) {
  return parse_jobs_csv(read_file(path), site_count, origin_site);
}

}  // namespace hpcarbon::fleetsim
