// Monte-Carlo uncertainty for fleet simulations: savings quantiles over
// workload-generator seeds.
//
// A single fleet run answers "what did this policy save on this job
// stream"; the distribution over seeds answers whether the edge survives
// a different mix. Sampling rides mc::Engine — sample i draws its
// workload seed from mc::substream(plan.seed, i), every sample runs a
// paired fcfs-local baseline on the same jobs, and FleetEngine::run is
// const — so the quantiles are bit-identical whatever thread count
// executes them.
#pragma once

#include <string>

#include "fleetsim/engine.h"
#include "fleetsim/workload.h"
#include "mc/distribution.h"
#include "mc/engine.h"
#include "sched/policy.h"

namespace hpcarbon::fleetsim {

/// Savings% vs a paired fcfs-local baseline, one draw per workload seed.
/// `base` supplies everything but the seed, which sample i replaces with
/// a substream-derived draw. Policies are constructed per sample (they
/// keep per-run state), priced by `cfg`.
mc::Distribution fleet_savings_distribution(
    const FleetEngine& engine, const FleetWorkloadParams& base,
    const std::string& policy_name, const mc::SamplePlan& plan,
    const sched::PolicyConfig& cfg = {});

}  // namespace hpcarbon::fleetsim
