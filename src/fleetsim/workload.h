// Seeded synthetic arrival processes for the fleet simulator.
//
// Three processes cover the workload shapes the scheduling literature
// cares about at fleet scale:
//
//  * poisson — memoryless arrivals at a constant rate (the workload_gen
//    baseline, generated directly onto the tick grid);
//  * diurnal — a sinusoidally modulated Poisson process (office-hours
//    load) realized by thinning, so the accept/reject stream is exactly
//    reproducible from the seed;
//  * bursty  — Poisson burst epochs carrying exponential-sized batches of
//    simultaneous submissions (campaign launches, array jobs).
//
// Draws come from two mc::substream-derived generators — one for the
// arrival process, one for job attributes — so two processes with the
// same seed share their duration/power/user sequence and differ only in
// *when* jobs land. Everything is a pure function of the params (seeded
// xoshiro256**, no wall clock), so generated fleets are bit-identical
// across machines and thread counts.
#pragma once

#include <cstdint>
#include <string>

#include "fleetsim/jobs.h"

namespace hpcarbon::fleetsim {

enum class ArrivalProcess { kPoisson, kDiurnal, kBursty };

const char* to_string(ArrivalProcess p);
/// "poisson" | "diurnal" | "bursty"; throws hpcarbon::Error otherwise.
ArrivalProcess arrival_process_from(const std::string& name);

struct FleetWorkloadParams {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  double horizon_hours = 24.0 * 28;
  /// Mean arrivals per hour (the diurnal modulation and bursty batching
  /// both preserve this long-run average, the latter approximately).
  double rate_per_hour = 4.0;
  /// Diurnal: rate(t) = rate * (1 + A cos(2*pi*(t - peak)/24)), A in [0,1).
  double diurnal_amplitude = 0.6;
  double diurnal_peak_hour = 14.0;
  /// Bursty: burst epochs arrive at rate/burst_mean_size; each carries an
  /// exponential-sized batch (mean burst_mean_size, minimum 1) submitted
  /// at the same tick.
  double burst_mean_size = 8.0;
  /// Job attributes, matching sched::WorkloadParams' distributions:
  /// lognormal durations (clamped) and uniform IT power.
  double duration_log_mean = 1.2;
  double duration_log_sigma = 1.0;
  double max_duration_hours = 96.0;
  double min_power_kw = 0.6;
  double max_power_kw = 2.4;
  int user_count = 8;
  std::uint64_t seed = 2024;
};

/// Generate a tick-aligned fleet workload. Ids are 0..n-1 in submit order.
FleetJobs generate_fleet_jobs(const FleetWorkloadParams& params);

}  // namespace hpcarbon::fleetsim
