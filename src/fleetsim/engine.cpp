#include "fleetsim/engine.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "core/error.h"
#include "core/stats.h"

namespace hpcarbon::fleetsim {

namespace {

obs::Counter& bind_jobs_counter(obs::MetricsRegistry& registry) {
  return registry.counter("hpcarbon_fleetsim_jobs_total", "",
                          "Jobs simulated by the fleet engine.");
}

obs::Counter& jobs_counter() {
  static obs::Counter& counter =
      bind_jobs_counter(obs::MetricsRegistry::global());
  return counter;
}

}  // namespace

void register_metrics(obs::MetricsRegistry& registry) {
  bind_jobs_counter(registry);
}

void FleetOutcomes::clear() {
  job_id.clear();
  site.clear();
  start.clear();
  wait_hours.clear();
  carbon_g.clear();
}

void FleetOutcomes::reserve(std::size_t n) {
  job_id.reserve(n);
  site.reserve(n);
  start.reserve(n);
  wait_hours.reserve(n);
  carbon_g.reserve(n);
}

FleetEngine::FleetEngine(std::vector<sched::Site> sites, HourOfYear epoch,
                         op::PueModel pue)
    : sites_(std::move(sites)), epoch_(epoch), pue_(pue) {
  HPC_REQUIRE(!sites_.empty(), "need at least one site");
  integrators_.reserve(sites_.size());
  for (const auto& s : sites_) {
    HPC_REQUIRE(s.capacity > 0, "site capacity must be positive");
    integrators_.emplace_back(s.trace_utc, pue_);
  }
}

int FleetEngine::capacity_total() const {
  int total = 0;
  for (const auto& s : sites_) total += s.capacity;
  return total;
}

namespace {

/// (completion tick, site), min-heap on tick. Ties pop in arbitrary order
/// — like the original engine, all due completions free their slots
/// before any decision is consulted, so tie order is unobservable.
using Completion = std::pair<Tick, std::uint32_t>;

constexpr Tick kNoEvent = std::numeric_limits<Tick>::max();

}  // namespace

sched::ScheduleMetrics FleetEngine::run(const FleetJobs& jobs,
                                        sched::SchedulingPolicy& policy,
                                        FleetOutcomes* outcomes,
                                        sched::CarbonBudgetLedger* ledger_out)
    const {
  if (jobs.empty()) {
    if (ledger_out != nullptr) *ledger_out = sched::CarbonBudgetLedger{};
    if (outcomes != nullptr) outcomes->clear();
    return sched::ScheduleMetrics{};
  }
  jobs.validate();
  const std::size_t n = jobs.size();

  // Policies take arrivals as sched::Job values (begin_run scans users,
  // forecasts read traces) and see queued jobs through PendingJob — one
  // materialization pass; tick times convert to exact doubles, so every
  // double a policy reads equals what SchedulingEngine would hand it.
  const std::vector<sched::Job> arrivals = jobs.to_jobs();

  sched::CarbonBudgetLedger ledger;
  std::vector<int> free_slots;
  free_slots.reserve(sites_.size());
  for (const auto& s : sites_) free_slots.push_back(s.capacity);

  std::vector<sched::PendingJob> waiting;
  // Parallel to `waiting`: the tick the planned start rounds up to, and
  // the job's duration in ticks (PendingJob cannot carry ticks).
  struct WaitMeta {
    Tick earliest;
    Tick duration;
  };
  std::vector<WaitMeta> waiting_meta;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions;

  sched::ScheduleMetrics metrics;
  std::vector<double> waits;
  waits.reserve(n);
  if (outcomes != nullptr) {
    outcomes->clear();
    outcomes->reserve(n);
  }
  double busy_node_hours = 0;
  double makespan = 0;
  double total_grams = 0;
  double transfer_grams = 0;
  double total_kwh = 0;

  std::size_t next_arrival = 0;
  Tick t = 0;
  double t_hours = 0;  // always hours_of(t); the view's double clock

  sched::ClusterView view;
  view.sites_ = &sites_;
  view.free_slots_ = &free_slots;
  view.integrators_ = &integrators_;
  view.ledger_ = &ledger;
  view.pue_ = &pue_;
  view.now_ = &t_hours;
  view.epoch_ = epoch_;

  policy.begin_run(arrivals, ledger, view);

  // Accounting is expression-identical to SchedulingEngine::run's
  // start_job (same operations, same order, same doubles) — that is the
  // whole bit-identity argument, so any edit here must mirror
  // sched/engine.cpp.
  auto start_job = [&](const sched::Job& j, std::size_t site, Tick now_tick,
                       Tick duration_tick) {
    const double now = t_hours;
    --free_slots[site];
    completions.emplace(now_tick + duration_tick,
                        static_cast<std::uint32_t>(site));
    const double grams =
        view.job_carbon_g(site, j.it_power, now, j.duration_hours);
    const double kwh =
        j.it_power.to_kilowatts() * j.duration_hours * pue_.base();
    double tgrams = 0;
    if (site != 0) {
      ++metrics.remote_dispatches;
      tgrams = sites_[site].transfer_energy.to_kwh() * view.current_ci(site);
      total_kwh += sites_[site].transfer_energy.to_kwh();
    }
    total_grams += grams + tgrams;
    transfer_grams += tgrams;
    total_kwh += kwh;
    busy_node_hours += j.duration_hours;
    makespan = std::max(makespan, now + j.duration_hours);
    const double wait = now - j.submit_hour;
    waits.push_back(wait);
    ledger.charge(j.user, Mass::grams(grams + tgrams));
    if (outcomes != nullptr) {
      outcomes->job_id.push_back(static_cast<std::int32_t>(j.id));
      outcomes->site.push_back(static_cast<std::uint32_t>(site));
      outcomes->start.push_back(now_tick);
      outcomes->wait_hours.push_back(wait);
      outcomes->carbon_g.push_back(grams + tgrams);
    }
    ++metrics.jobs_completed;
    policy.on_job_started(j, site, grams + tgrams, view);
  };

  auto dispatch = [&] {
    while (!waiting.empty()) {
      const auto decision = policy.select(waiting, view);
      if (!decision.has_value()) return;
      HPC_REQUIRE(decision->queue_index < waiting.size() &&
                      decision->site < sites_.size() &&
                      free_slots[decision->site] > 0,
                  "policy returned an invalid dispatch decision");
      const sched::Job j = waiting[decision->queue_index].job;
      const Tick duration_tick = waiting_meta[decision->queue_index].duration;
      waiting.erase(waiting.begin() +
                    static_cast<std::ptrdiff_t>(decision->queue_index));
      waiting_meta.erase(waiting_meta.begin() +
                         static_cast<std::ptrdiff_t>(decision->queue_index));
      start_job(j, decision->site, t, duration_tick);
    }
  };

  // Event loop: arrivals, completions, hourly ticks, and planned starts —
  // the same four wake sources as SchedulingEngine, all on the integer
  // tick clock.
  while (next_arrival < n || !completions.empty() || !waiting.empty()) {
    Tick next_tick = kNoEvent;
    if (next_arrival < n) {
      next_tick = std::min(next_tick, jobs.submit[next_arrival]);
    }
    if (!completions.empty()) {
      next_tick = std::min(next_tick, completions.top().first);
    }
    if (!waiting.empty()) {
      // Next whole hour (t >= 0, so integer division floors).
      next_tick =
          std::min(next_tick, (t / kTicksPerHour + 1) * kTicksPerHour);
      for (const auto& m : waiting_meta) {
        if (m.earliest > t) next_tick = std::min(next_tick, m.earliest);
      }
    }
    HPC_REQUIRE(next_tick != kNoEvent, "fleet simulator deadlock");
    t = std::max(t, next_tick);
    t_hours = hours_of(t);

    while (!completions.empty() && completions.top().first <= t) {
      ++free_slots[completions.top().second];
      completions.pop();
    }
    while (next_arrival < n && jobs.submit[next_arrival] <= t) {
      const sched::Job& j = arrivals[next_arrival];
      const double planned = policy.planned_start(j, view);
      waiting.push_back(sched::PendingJob{j, planned});
      waiting_meta.push_back(
          WaitMeta{ceil_tick(planned), jobs.duration[next_arrival]});
      ++next_arrival;
    }
    dispatch();
  }

  metrics.total_carbon = Mass::grams(total_grams);
  metrics.transfer_carbon = Mass::grams(transfer_grams);
  metrics.total_energy = Energy::kilowatt_hours(total_kwh);
  metrics.mean_wait_hours = stats::mean(waits);
  metrics.p95_wait_hours = stats::quantile(waits, 0.95);
  metrics.utilization =
      makespan > 0 ? busy_node_hours / (capacity_total() * makespan) : 0.0;
  if (ledger_out != nullptr) *ledger_out = ledger;
  jobs_counter().inc(n);
  return metrics;
}

}  // namespace hpcarbon::fleetsim
