#include "fleetsim/uncertainty.h"

#include "core/rng.h"

namespace hpcarbon::fleetsim {

mc::Distribution fleet_savings_distribution(const FleetEngine& engine,
                                            const FleetWorkloadParams& base,
                                            const std::string& policy_name,
                                            const mc::SamplePlan& plan,
                                            const sched::PolicyConfig& cfg) {
  const mc::Engine mc_engine(plan);
  return mc_engine.run([&](std::size_t, Rng& rng) {
    FleetWorkloadParams wp = base;
    wp.seed = rng.next_u64();
    const FleetJobs jobs = generate_fleet_jobs(wp);
    const auto baseline = sched::make_policy("fcfs-local", cfg);
    const double base_g =
        engine.run(jobs, *baseline).total_carbon.to_grams();
    const auto policy = sched::make_policy(policy_name, cfg);
    const double g = engine.run(jobs, *policy).total_carbon.to_grams();
    return base_g > 0 ? 100.0 * (base_g - g) / base_g : 0.0;
  });
}

}  // namespace hpcarbon::fleetsim
