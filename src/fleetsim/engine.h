// Event-heap discrete-event fleet engine: the datacenter-scale rebuild of
// sched::SchedulingEngine.
//
// Same mechanism contract as the original engine — sorted arrivals, a
// completion min-heap, hourly re-evaluation ticks while jobs queue,
// per-site free slots, O(1) prefix-sum carbon, and every decision
// delegated to a sched::SchedulingPolicy — but sized for thousands of
// nodes and millions of jobs:
//
//  * integer event ticks (fleetsim/jobs.h, 1024/hour): event matching is
//    an integer compare, not a `<= t + 1e-12` epsilon, and because the
//    tick rate is a power of two every tick converts to an *exact*
//    double, so the carbon/energy/wait arithmetic evaluates the same
//    expressions on the same doubles as SchedulingEngine — metrics,
//    outcomes, and ledgers are bit-identical on tick-aligned workloads
//    (tests/test_fleetsim.cpp pins this for all registered policies);
//  * struct-of-arrays job storage in and out (FleetJobs / FleetOutcomes):
//    no per-job heap Job while jobs wait on disk-format vectors;
//  * run() is const — all mutable state is per-call, so Monte-Carlo
//    uncertainty sweeps fan one engine out across mc::Engine threads.
//
// Policies written against ClusterView run unmodified: the engine binds
// the same view (friend access) with its double clock slaved to the tick
// clock. Policy-planned starts that are not tick-aligned are rounded up
// to the next tick (built-in policies plan whole-hour offsets, which are
// always aligned).
#pragma once

#include <cstdint>
#include <vector>

#include "core/time.h"
#include "fleetsim/jobs.h"
#include "obs/metrics.h"
#include "op/operational.h"
#include "op/pue.h"
#include "sched/budget.h"
#include "sched/engine.h"
#include "sched/job.h"
#include "sched/policy.h"

namespace hpcarbon::fleetsim {

/// Register the fleetsim instrument names (hpcarbon_fleetsim_jobs_total)
/// in `registry` so private-registry consumers expose the same metric
/// set as the process-global one. Runs always record into
/// MetricsRegistry::global(); a private registry reports 0.
void register_metrics(obs::MetricsRegistry& registry);

/// Per-job outcomes in dispatch order, struct-of-arrays (a million jobs
/// are five flat vectors, not a million strings).
struct FleetOutcomes {
  std::vector<std::int32_t> job_id;
  std::vector<std::uint32_t> site;   // index into the engine's sites
  std::vector<Tick> start;
  std::vector<double> wait_hours;
  std::vector<double> carbon_g;      // compute + transfer

  std::size_t size() const { return job_id.size(); }
  void clear();
  void reserve(std::size_t n);
};

class FleetEngine {
 public:
  /// sites[0] is the home site; `epoch` anchors tick 0 on the traces'
  /// calendar (UTC). Builds one CarbonIntegrator per site, exactly like
  /// SchedulingEngine.
  FleetEngine(std::vector<sched::Site> sites, HourOfYear epoch,
              op::PueModel pue = op::PueModel());

  /// Run the event loop under `policy`. Jobs must validate (sorted
  /// submits, positive durations). An empty fleet yields zero metrics.
  /// const: all simulation state is local, so concurrent runs on one
  /// engine (Monte-Carlo seed sweeps) are safe.
  sched::ScheduleMetrics run(const FleetJobs& jobs,
                             sched::SchedulingPolicy& policy,
                             FleetOutcomes* outcomes = nullptr,
                             sched::CarbonBudgetLedger* ledger_out =
                                 nullptr) const;

  const std::vector<sched::Site>& sites() const { return sites_; }
  HourOfYear epoch() const { return epoch_; }
  const op::PueModel& pue() const { return pue_; }
  /// Total node slots across every site ("4k nodes" in the bench).
  int capacity_total() const;

 private:
  std::vector<sched::Site> sites_;
  HourOfYear epoch_;
  op::PueModel pue_;
  std::vector<op::CarbonIntegrator> integrators_;  // one per site
};

}  // namespace hpcarbon::fleetsim
