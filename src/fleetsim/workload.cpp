#include "fleetsim/workload.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "mc/engine.h"

namespace hpcarbon::fleetsim {

const char* to_string(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kDiurnal: return "diurnal";
    case ArrivalProcess::kBursty: return "bursty";
  }
  return "?";
}

ArrivalProcess arrival_process_from(const std::string& name) {
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "diurnal") return ArrivalProcess::kDiurnal;
  if (name == "bursty") return ArrivalProcess::kBursty;
  throw Error("unknown arrival process '" + name +
              "' (known: poisson, diurnal, bursty)");
}

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Submit ticks for one realization of the process over the horizon.
std::vector<Tick> arrival_ticks(const FleetWorkloadParams& p, Rng& rng) {
  std::vector<Tick> ticks;
  const double horizon = p.horizon_hours;
  switch (p.process) {
    case ArrivalProcess::kPoisson: {
      double t = 0;
      while (true) {
        t += rng.exponential(p.rate_per_hour);
        if (t >= horizon) break;
        ticks.push_back(nearest_tick(t));
      }
      break;
    }
    case ArrivalProcess::kDiurnal: {
      // Thinning: candidates at the peak rate, each kept with probability
      // rate(t)/peak — exact for an inhomogeneous Poisson process, and
      // the accept stream is one uniform per candidate, so reproducible.
      const double peak = p.rate_per_hour * (1.0 + p.diurnal_amplitude);
      double t = 0;
      while (true) {
        t += rng.exponential(peak);
        if (t >= horizon) break;
        const double rate =
            p.rate_per_hour *
            (1.0 + p.diurnal_amplitude *
                       std::cos(kTwoPi * (t - p.diurnal_peak_hour) / 24.0));
        if (rng.uniform() * peak < rate) ticks.push_back(nearest_tick(t));
      }
      break;
    }
    case ArrivalProcess::kBursty: {
      const double epoch_rate = p.rate_per_hour / p.burst_mean_size;
      double t = 0;
      while (true) {
        t += rng.exponential(epoch_rate);
        if (t >= horizon) break;
        const auto batch = std::max<long long>(
            1, std::llround(rng.exponential(1.0 / p.burst_mean_size)));
        const Tick tick = nearest_tick(t);
        for (long long b = 0; b < batch; ++b) ticks.push_back(tick);
      }
      break;
    }
  }
  return ticks;
}

}  // namespace

FleetJobs generate_fleet_jobs(const FleetWorkloadParams& p) {
  HPC_REQUIRE(p.horizon_hours > 0, "fleet workload: horizon must be positive");
  HPC_REQUIRE(p.rate_per_hour > 0, "fleet workload: rate must be positive");
  HPC_REQUIRE(p.user_count > 0, "fleet workload: need at least one user");
  HPC_REQUIRE(p.diurnal_amplitude >= 0 && p.diurnal_amplitude < 1,
              "fleet workload: diurnal amplitude must be in [0, 1)");
  HPC_REQUIRE(p.burst_mean_size >= 1,
              "fleet workload: burst mean size must be >= 1");
  HPC_REQUIRE(p.min_power_kw > 0 && p.min_power_kw <= p.max_power_kw,
              "fleet workload: power range invalid");
  HPC_REQUIRE(p.duration_log_sigma >= 0 && p.max_duration_hours > 0,
              "fleet workload: duration parameters invalid");

  // Substream 0 drives the arrival process, substream 1 the per-job
  // attributes: the attribute sequence is process-independent for a seed.
  Rng arrival_rng = mc::substream(p.seed, 0);
  Rng attr_rng = mc::substream(p.seed, 1);

  const std::vector<Tick> ticks = arrival_ticks(p, arrival_rng);
  FleetJobs jobs;
  jobs.id.reserve(ticks.size());
  jobs.submit.reserve(ticks.size());
  jobs.duration.reserve(ticks.size());
  jobs.power.reserve(ticks.size());
  jobs.user.reserve(ticks.size());
  jobs.users.reserve(static_cast<std::size_t>(p.user_count));
  for (int u = 0; u < p.user_count; ++u) {
    jobs.users.push_back("user" + std::to_string(u));
  }
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    const auto user = static_cast<std::uint32_t>(
        attr_rng.uniform_int(0, p.user_count - 1));
    const double duration_hours =
        std::min(p.max_duration_hours,
                 attr_rng.lognormal(p.duration_log_mean, p.duration_log_sigma));
    const Tick duration = std::max<Tick>(1, nearest_tick(duration_hours));
    const Power power =
        Power::kilowatts(attr_rng.uniform(p.min_power_kw, p.max_power_kw));
    jobs.id.push_back(static_cast<std::int32_t>(i));
    jobs.submit.push_back(ticks[i]);
    jobs.duration.push_back(duration);
    jobs.power.push_back(power);
    jobs.user.push_back(user);
  }
  return jobs;
}

}  // namespace hpcarbon::fleetsim
