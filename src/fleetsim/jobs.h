// Struct-of-arrays job storage for the fleet simulator, on an integer
// tick clock.
//
// The scheduling engine in sched/engine.h keeps time as fractional-hour
// doubles, which forced epsilon comparisons on event matching and a
// 72-byte Job struct per queue entry — fine for the paper's few thousand
// jobs, hostile to millions. The fleet simulator stores jobs as parallel
// vectors (submit/duration ticks, IT power, user id) and quantizes time to
// an integer tick grid:
//
//   kTicksPerHour = 1024 (a power of two)
//
// so every event time is tick/1024 hours — *exactly* representable as a
// double (the numerator stays far below 2^53 for any simulated horizon).
// Sums and differences of tick-quantized hours are therefore exact FP
// arithmetic, which is what lets fleetsim::FleetEngine reproduce the
// double-based SchedulingEngine bit for bit on tick-aligned workloads
// (tests/test_fleetsim.cpp) while matching events with integer compares,
// no 1e-12 epsilon anywhere.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/units.h"
#include "sched/job.h"

namespace hpcarbon::fleetsim {

/// Simulation time in ticks since the epoch. 1024 ticks per hour keeps
/// sub-4-second resolution; int64 never wraps for any realistic horizon.
using Tick = std::int64_t;
inline constexpr Tick kTicksPerHour = 1024;

/// Exact: any tick count below 2^53 divides by the power-of-two tick rate
/// without rounding.
inline double hours_of(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerHour);
}

/// Nearest tick to a fractional-hour value (snapping error <= 1/2048 h,
/// about 1.8 s). Bridges double-based workloads into the tick grid.
inline Tick nearest_tick(double hours) {
  return static_cast<Tick>(
      std::llround(hours * static_cast<double>(kTicksPerHour)));
}

/// Smallest tick >= the fractional-hour value: policy-planned starts that
/// are not tick-aligned wake the engine at the next grid point.
inline Tick ceil_tick(double hours) {
  return static_cast<Tick>(
      std::ceil(hours * static_cast<double>(kTicksPerHour)));
}

/// True when `hours` lies exactly on the tick grid (round-trips through
/// the tick representation without loss).
inline bool tick_aligned(double hours) {
  return hours_of(nearest_tick(hours)) == hours;
}

/// Parallel-vector job storage. Jobs are kept sorted by submit tick
/// (validate() enforces it); `user` indexes into the `users` name table so
/// a million jobs over eight users store eight strings, not a million.
struct FleetJobs {
  std::vector<std::int32_t> id;        // stable external id (outcome joins)
  std::vector<Tick> submit;            // sorted ascending
  std::vector<Tick> duration;          // > 0
  std::vector<Power> power;            // average IT draw while running
  std::vector<std::uint32_t> user;     // index into `users`
  std::vector<std::string> users;      // distinct user names

  std::size_t size() const { return submit.size(); }
  bool empty() const { return submit.empty(); }

  /// Append one job; `user_name` is interned into `users`.
  void push(std::int32_t job_id, Tick submit_tick, Tick duration_tick,
            Power it_power, const std::string& user_name);

  /// Index of `user_name` in `users`, interning it if new. O(users) — the
  /// user population is small by construction.
  std::uint32_t intern_user(const std::string& user_name);

  /// Throws hpcarbon::Error unless submits are sorted, durations are
  /// positive, and every user index is in range.
  void validate() const;

  /// Quantize a double-based workload onto the tick grid (nearest tick;
  /// durations clamp up to one tick so no job becomes instantaneous) and
  /// sort by submit. Ids are preserved.
  static FleetJobs from_jobs(const std::vector<sched::Job>& jobs);

  /// Materialize sched::Job values (exact: tick times convert to the same
  /// doubles the engine computes with). Used to brief policies'
  /// begin_run() and by the parity tests.
  std::vector<sched::Job> to_jobs() const;
};

/// Parse a job-trace CSV into FleetJobs. Expected columns, with a header
/// row (extra columns rejected):
///
///   submit_hours,duration_hours,power_kw,user[,site]
///
/// The optional `site` column carries the job's origin site from the
/// recording cluster; it is validated against [0, site_count) and reported
/// via `origin_site` when requested, but placement stays with the policy.
/// Throws hpcarbon::Error with 1-based source line numbers on ragged rows,
/// malformed numbers, non-positive durations or powers, negative submits,
/// or out-of-range sites — same contract as the grid-trace importer.
FleetJobs parse_jobs_csv(const std::string& text, std::size_t site_count = 1,
                         std::vector<std::int32_t>* origin_site = nullptr);

/// read_file + parse_jobs_csv.
FleetJobs load_jobs_csv(const std::string& path, std::size_t site_count = 1,
                        std::vector<std::int32_t>* origin_site = nullptr);

}  // namespace hpcarbon::fleetsim
