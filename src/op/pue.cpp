#include "op/pue.h"

#include <cmath>

#include "core/error.h"

namespace hpcarbon::op {

PueModel::PueModel(double base, double seasonal_amp, int peak_day_of_year)
    : base_(base), seasonal_amp_(seasonal_amp), peak_day_(peak_day_of_year) {
  HPC_REQUIRE(base >= 1.0, "PUE cannot be below 1.0");
  HPC_REQUIRE(seasonal_amp >= 0.0 && base - seasonal_amp >= 1.0,
              "seasonal swing would push PUE below 1.0");
}

double PueModel::at(HourOfYear hour) const {
  if (seasonal_amp_ == 0.0) return base_;
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  return base_ + seasonal_amp_ *
                     std::cos(kTwoPi * (hour.day_of_year() - peak_day_) /
                              kDaysPerYear);
}

}  // namespace hpcarbon::op
