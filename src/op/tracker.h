// carbontracker-equivalent: follow a running job and report its energy and
// operational carbon.
//
// The paper measures C_op with the carbontracker tool (Anthony et al.):
// sample device power at a fixed cadence, integrate to energy, multiply by
// PUE and the grid's carbon intensity at the time of consumption. Tracker
// reproduces that pipeline against the simulated node power model and a
// grid trace.
#pragma once

#include <string>

#include "core/units.h"
#include "grid/trace.h"
#include "hw/meter.h"
#include "hw/node.h"
#include "hw/power.h"
#include "op/pue.h"

namespace hpcarbon::op {

struct TrackerReport {
  std::string job_name;
  Hours duration;
  Energy it_energy;        // integrated IT-side energy
  Energy facility_energy;  // after PUE
  Mass carbon;             // Eq. 6, trace-integrated
  CarbonIntensity average_intensity;
  Power average_power;

  std::string to_string() const;
};

struct TrackerOptions {
  Hours sample_interval = Hours::seconds(1.0);
  double sensor_noise_sigma = 0.0;
  PueModel pue = PueModel();
};

class Tracker {
 public:
  Tracker(const grid::CarbonIntensityTrace& trace, HourOfYear start,
          TrackerOptions opts = {});

  /// Track an arbitrary power signal for `duration`.
  TrackerReport track(const std::string& job_name,
                      const hw::PowerSignal& signal, Hours duration);

  /// Track a training run of `m` on `node` processing `samples` samples
  /// (constant training power, duration from the perf model).
  TrackerReport track_training(const hw::NodeConfig& node,
                               const workload::BenchmarkModel& m,
                               double samples, int gpus_used = 0);

 private:
  const grid::CarbonIntensityTrace* trace_;
  HourOfYear start_;
  TrackerOptions opts_;
};

}  // namespace hpcarbon::op
