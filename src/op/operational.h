// Operational carbon footprint: Eq. 6 of the paper.
//
//   C_op = I_sys * E_op, with E_op = E_IT * PUE.
//
// Two forms are provided: the constant-intensity product (used by the
// upgrade analysis columns of Fig. 8) and an hour-by-hour integration
// against a carbon-intensity trace (used by the scheduler and the tracker).
#pragma once

#include "core/units.h"
#include "grid/trace.h"
#include "op/pue.h"

namespace hpcarbon::op {

/// Eq. 6 with constant carbon intensity. `it_energy` is IT-side energy;
/// PUE scales it to facility draw.
Mass operational_carbon(Energy it_energy, CarbonIntensity intensity,
                        const PueModel& pue = PueModel());

/// Eq. 6 integrated against a trace: constant IT power over
/// [start, start+duration) in the trace's local time, hourly intensity and
/// (optionally seasonal) PUE applied per hour. Duration may wrap the year.
Mass operational_carbon(Power it_power, const grid::CarbonIntensityTrace& trace,
                        HourOfYear start, Hours duration,
                        const PueModel& pue = PueModel());

/// Average carbon intensity experienced by a constant-power job over the
/// window (the effective I_sys of Eq. 6).
CarbonIntensity effective_intensity(const grid::CarbonIntensityTrace& trace,
                                    HourOfYear start, Hours duration);

}  // namespace hpcarbon::op
