// Operational carbon footprint: Eq. 6 of the paper.
//
//   C_op = I_sys * E_op, with E_op = E_IT * PUE.
//
// Two forms are provided: the constant-intensity product (used by the
// upgrade analysis columns of Fig. 8) and an hour-by-hour integration
// against a carbon-intensity trace (used by the scheduler and the tracker).
#pragma once

#include "core/series.h"
#include "core/units.h"
#include "grid/trace.h"
#include "op/pue.h"

namespace hpcarbon::op {

/// Eq. 6 with constant carbon intensity. `it_energy` is IT-side energy;
/// PUE scales it to facility draw.
Mass operational_carbon(Energy it_energy, CarbonIntensity intensity,
                        const PueModel& pue = PueModel());

/// Eq. 6 integrated against a trace: constant IT power over
/// [start, start+duration) in the trace's local time, hourly intensity and
/// (optionally seasonal) PUE applied per hour. Duration may wrap the year.
Mass operational_carbon(Power it_power, const grid::CarbonIntensityTrace& trace,
                        HourOfYear start, Hours duration,
                        const PueModel& pue = PueModel());

/// Average carbon intensity experienced by a constant-power job over the
/// window (the effective I_sys of Eq. 6).
CarbonIntensity effective_intensity(const grid::CarbonIntensityTrace& trace,
                                    HourOfYear start, Hours duration);

/// PUE-weighted cumulative carbon over a trace: prefix sums of
/// intensity(t) * PUE(t) built once at the trace's native resolution
/// (hourly or 5-/15-minute imports alike), then every interval-carbon
/// query is O(1) regardless of duration — fractional endpoints and year
/// wrap included. This is what makes the scheduling engine's per-job
/// carbon pricing constant-time; hold one per (trace, PUE) pair for
/// repeated queries instead of calling the free operational_carbon() in a
/// loop.
class CarbonIntegrator {
 public:
  CarbonIntegrator() = default;
  CarbonIntegrator(const grid::CarbonIntensityTrace& trace,
                   const PueModel& pue);

  /// Integral of intensity * PUE over [start_hour, start_hour + duration)
  /// fractional hours in the trace's local time; units (g/kWh)·h. O(1).
  double weighted_sum(double start_hour, double duration_hours) const;

  /// Grams of CO2 for a constant IT power over the interval. O(1).
  double carbon_g(double it_kw, double start_hour,
                  double duration_hours) const {
    return it_kw * weighted_sum(start_hour, duration_hours);
  }
  Mass carbon(Power it_power, double start_hour, double duration_hours) const {
    return Mass::grams(
        carbon_g(it_power.to_kilowatts(), start_hour, duration_hours));
  }

 private:
  StepSeries weighted_;  // per-sample intensity * PUE, native resolution
};

}  // namespace hpcarbon::op
