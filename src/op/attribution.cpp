#include "op/attribution.h"

#include "core/error.h"
#include "hw/perf.h"

namespace hpcarbon::op {

double embodied_rate_g_per_hour(const hw::NodeConfig& node,
                                const AmortizationPolicy& policy) {
  HPC_REQUIRE(policy.service_life_years > 0,
              "service life must be positive");
  HPC_REQUIRE(policy.expected_utilization > 0 &&
                  policy.expected_utilization <= 1.0,
              "expected utilization must be in (0,1]");
  const Mass em = hw::node_embodied(node, hw::EmbodiedScope::kFullNode);
  const double lifetime_busy_hours =
      policy.service_life_years * 8760.0 * policy.expected_utilization;
  return em.to_grams() / lifetime_busy_hours;
}

Mass amortized_embodied(const hw::NodeConfig& node, Hours busy_time,
                        const AmortizationPolicy& policy) {
  HPC_REQUIRE(busy_time.count() >= 0, "busy time must be non-negative");
  return Mass::grams(embodied_rate_g_per_hour(node, policy) *
                     busy_time.count());
}

JobCarbonBill billed_training(Tracker& tracker, const hw::NodeConfig& node,
                              const workload::BenchmarkModel& m,
                              double samples,
                              const AmortizationPolicy& policy,
                              int gpus_used) {
  JobCarbonBill bill;
  bill.operational = tracker.track_training(node, m, samples, gpus_used);
  // Partial-node jobs occupy a GPU fraction of the node; attribute embodied
  // carbon proportionally.
  const int k = gpus_used == 0 ? node.gpu_count : gpus_used;
  const double node_fraction =
      static_cast<double>(k) / static_cast<double>(node.gpu_count);
  bill.embodied_share =
      amortized_embodied(node, bill.operational.duration, policy) *
      node_fraction;
  return bill;
}

}  // namespace hpcarbon::op
