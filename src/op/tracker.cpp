#include "op/tracker.h"

#include <algorithm>
#include <sstream>

#include "core/error.h"
#include "hw/perf.h"
#include "op/operational.h"

namespace hpcarbon::op {

std::string TrackerReport::to_string() const {
  std::ostringstream out;
  out << "job: " << job_name << "\n"
      << "  duration:          " << duration.count() << " h\n"
      << "  IT energy:         " << hpcarbon::to_string(it_energy) << "\n"
      << "  facility energy:   " << hpcarbon::to_string(facility_energy)
      << "\n"
      << "  avg power:         " << hpcarbon::to_string(average_power) << "\n"
      << "  avg CI:            " << hpcarbon::to_string(average_intensity)
      << "\n"
      << "  operational CO2:   " << hpcarbon::to_string(carbon) << "\n";
  return out.str();
}

Tracker::Tracker(const grid::CarbonIntensityTrace& trace, HourOfYear start,
                 TrackerOptions opts)
    : trace_(&trace), start_(start), opts_(opts) {}

TrackerReport Tracker::track(const std::string& job_name,
                             const hw::PowerSignal& signal, Hours duration) {
  HPC_REQUIRE(duration.count() > 0, "duration must be positive");
  hw::MeterOptions mopts;
  mopts.sample_interval = opts_.sample_interval;
  mopts.noise_sigma = opts_.sensor_noise_sigma;
  hw::EnergyMeter meter(mopts);

  // Integrate energy and carbon together, hour-aligned so each joule is
  // priced at the carbon intensity of the hour it was consumed in.
  double grams = 0;
  double facility_kwh = 0;
  double t = 0;
  const double step = opts_.sample_interval.count();
  double prev_w = signal(Hours::hours(0)).to_watts();
  meter.record(Power::watts(prev_w), Hours::hours(0));
  while (t < duration.count()) {
    const double dt = std::min(step, duration.count() - t);
    const double w = signal(Hours::hours(t + dt)).to_watts();
    const double avg_kw = 0.5 * (prev_w + w) / 1000.0;
    // Price the interval at its midpoint hour so accumulated floating-point
    // drift in `t` cannot push a sample across an hour boundary.
    const HourOfYear hour = start_.shifted(static_cast<int>(t + 0.5 * dt));
    const double pue = opts_.pue.at(hour);
    const double kwh = avg_kw * dt * pue;
    facility_kwh += kwh;
    grams += trace_->at(hour).to_g_per_kwh() * kwh;
    meter.record(Power::watts(w), Hours::hours(dt));
    prev_w = w;
    t += dt;
  }

  TrackerReport r;
  r.job_name = job_name;
  r.duration = duration;
  r.it_energy = meter.total();
  r.facility_energy = Energy::kilowatt_hours(facility_kwh);
  r.carbon = Mass::grams(grams);
  r.average_power = meter.average_power();
  r.average_intensity = facility_kwh > 0
                            ? Mass::grams(grams) /
                                  Energy::kilowatt_hours(facility_kwh)
                            : CarbonIntensity();
  return r;
}

TrackerReport Tracker::track_training(const hw::NodeConfig& node,
                                      const workload::BenchmarkModel& m,
                                      double samples, int gpus_used) {
  const double tput = hw::throughput(m, node, gpus_used);
  const Hours duration = Hours::seconds(samples / tput);
  const Power p = hw::node_training_power(node, m, gpus_used);
  return track(m.name + " on " + node.name, [p](Hours) { return p; },
               duration);
}

}  // namespace hpcarbon::op
