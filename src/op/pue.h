// Power Usage Effectiveness model.
//
// The paper sets PUE to a constant across the systems it characterizes and
// notes that seasonal variation exists but can be approximated with IT and
// cooling energy monitors. We support both: a constant baseline and an
// optional seasonal swing (cooling overhead peaks in summer).
#pragma once

#include "core/time.h"

namespace hpcarbon::op {

class PueModel {
 public:
  /// Constant PUE (the paper's configuration). Modern leadership HPC
  /// facilities run at roughly 1.1-1.3; 1.2 is the library default.
  explicit PueModel(double base = 1.2, double seasonal_amp = 0.0,
                    int peak_day_of_year = 200);

  double base() const { return base_; }

  /// True when the model has no seasonal swing, i.e. at() == base()
  /// everywhere; fast paths (O(1) trace integration) key off this.
  bool is_constant() const { return seasonal_amp_ == 0.0; }

  /// PUE at a specific hour (seasonal cosine around the base).
  double at(HourOfYear hour) const;

  /// Annual mean PUE (== base: the seasonal term integrates to ~zero).
  double annual_mean() const { return base_; }

 private:
  double base_;
  double seasonal_amp_;
  int peak_day_;
};

}  // namespace hpcarbon::op
