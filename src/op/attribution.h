// Per-job embodied-carbon attribution.
//
// The paper's carbon-budget implication (Sec. 4) prices only operational
// carbon; but Sec. 3 shows embodied carbon rivals it. For budgets to be
// complete, each job must also carry its share of the hardware's embodied
// carbon, amortized over the node's expected service life and utilization:
//
//   embodied_share(job) = C_em(node) * busy_hours(job)
//                         / (service_life * 8760 * expected_utilization)
//
// so a node that serves its full expected life at its expected duty cycle
// attributes exactly 100% of its embodied carbon to the work it ran.
#pragma once

#include "core/units.h"
#include "hw/node.h"
#include "op/tracker.h"

namespace hpcarbon::op {

struct AmortizationPolicy {
  /// Expected node service life (leadership systems run 5-7 years).
  double service_life_years = 6.0;
  /// Expected lifetime GPU-busy duty cycle (the paper's medium usage).
  double expected_utilization = 0.40;
};

/// Embodied carbon attributed to `busy_time` of exclusive node use.
Mass amortized_embodied(const hw::NodeConfig& node, Hours busy_time,
                        const AmortizationPolicy& policy = {});

/// Hourly embodied-attribution rate of a node (gCO2e per busy hour).
double embodied_rate_g_per_hour(const hw::NodeConfig& node,
                                const AmortizationPolicy& policy = {});

/// A job's complete carbon bill: Eq. 6 operational plus amortized embodied.
struct JobCarbonBill {
  TrackerReport operational;
  Mass embodied_share;
  Mass total() const { return operational.carbon + embodied_share; }
  /// Fraction of the bill that is embodied; grows as grids decarbonize.
  double embodied_fraction() const {
    const double t = total().to_grams();
    return t > 0 ? embodied_share.to_grams() / t : 0.0;
  }
};

/// Track a training run and attach its embodied share.
JobCarbonBill billed_training(Tracker& tracker, const hw::NodeConfig& node,
                              const workload::BenchmarkModel& m,
                              double samples,
                              const AmortizationPolicy& policy = {},
                              int gpus_used = 0);

}  // namespace hpcarbon::op
