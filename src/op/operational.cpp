#include "op/operational.h"

#include <algorithm>

#include "core/error.h"

namespace hpcarbon::op {

Mass operational_carbon(Energy it_energy, CarbonIntensity intensity,
                        const PueModel& pue) {
  HPC_REQUIRE(it_energy.to_kwh() >= 0, "negative energy");
  return intensity * (it_energy * pue.base());
}

Mass operational_carbon(Power it_power,
                        const grid::CarbonIntensityTrace& trace,
                        HourOfYear start, Hours duration,
                        const PueModel& pue) {
  HPC_REQUIRE(duration.count() > 0, "duration must be positive");
  const double kw = it_power.to_kilowatts();
  if (pue.is_constant()) {
    // O(1): the trace's prefix sums price the whole interval at once; the
    // constant PUE factors out of the integral.
    return Mass::grams(kw * pue.base() *
                       trace.interval_sum(start.index(), duration.count()));
  }
  // Seasonal PUE varies per hour: one-shot callers keep the hour-stepping
  // loop (building a weighted prefix would cost a full year's pass anyway);
  // repeated-query callers should hold a CarbonIntegrator instead.
  double grams = 0;
  double remaining = duration.count();
  int idx = start.index();
  const bool hourly = trace.hourly();
  while (remaining > 0) {
    const double w = std::min(1.0, remaining);
    const HourOfYear h(idx);
    // Hourly traces read the sample directly (bit-identical to the
    // pre-StepSeries loop); finer traces integrate the hour chunk so
    // intra-hour variation is captured under the hour's PUE.
    const double intensity_hours =
        hourly ? trace.at(h).to_g_per_kwh() * w
               : trace.interval_sum(idx, w);
    grams += kw * pue.at(h) * intensity_hours;
    remaining -= w;
    idx = (idx + 1) % kHoursPerYear;
  }
  return Mass::grams(grams);
}

CarbonIntensity effective_intensity(const grid::CarbonIntensityTrace& trace,
                                    HourOfYear start, Hours duration) {
  return trace.mean_over(start, duration);
}

CarbonIntegrator::CarbonIntegrator(const grid::CarbonIntensityTrace& trace,
                                   const PueModel& pue) {
  // Weight each native-resolution sample by the PUE of the hour containing
  // it (PUE is modeled hour-granular; sub-hourly samples within one hour
  // share that hour's PUE).
  std::vector<double> weighted(trace.values());
  const double step_hours = trace.step_hours();
  for (std::size_t i = 0; i < weighted.size(); ++i) {
    const auto hour = static_cast<int>(static_cast<double>(i) * step_hours);
    weighted[i] *= pue.at(HourOfYear(hour));
  }
  weighted_ = StepSeries(std::move(weighted), trace.step_seconds());
}

double CarbonIntegrator::weighted_sum(double start_hour,
                                      double duration_hours) const {
  return weighted_.integral(start_hour, duration_hours);
}

}  // namespace hpcarbon::op
