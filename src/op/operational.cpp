#include "op/operational.h"

#include <algorithm>

#include "core/error.h"

namespace hpcarbon::op {

Mass operational_carbon(Energy it_energy, CarbonIntensity intensity,
                        const PueModel& pue) {
  HPC_REQUIRE(it_energy.to_kwh() >= 0, "negative energy");
  return intensity * (it_energy * pue.base());
}

Mass operational_carbon(Power it_power,
                        const grid::CarbonIntensityTrace& trace,
                        HourOfYear start, Hours duration,
                        const PueModel& pue) {
  HPC_REQUIRE(duration.count() > 0, "duration must be positive");
  double grams = 0;
  double remaining = duration.count();
  int idx = start.index();
  const double kw = it_power.to_kilowatts();
  while (remaining > 0) {
    const double w = std::min(1.0, remaining);
    const HourOfYear h(idx);
    const double kwh = kw * w * pue.at(h);
    grams += trace.at(h).to_g_per_kwh() * kwh;
    remaining -= w;
    idx = (idx + 1) % kHoursPerYear;
  }
  return Mass::grams(grams);
}

CarbonIntensity effective_intensity(const grid::CarbonIntensityTrace& trace,
                                    HourOfYear start, Hours duration) {
  return trace.mean_over(start, duration);
}

}  // namespace hpcarbon::op
