// Tool registry behind the unified `hpcarbon` driver.
//
// Every example and figure/table bench file defines a file-local
// `tool_main(int, char**)` and closes with HPCARBON_TOOL(name, kind, desc).
// Compiled standalone (-DHPCARBON_STANDALONE) the macro emits a forwarding
// main(), so `./bench/bench_fig1` keeps working; compiled into the driver it
// registers the entry point here instead, so `hpcarbon bench fig1` routes
// to the same code with no duplicated logic.
#pragma once

#include <string>
#include <vector>

namespace hpcarbon::cli {

enum class ToolKind { kBench, kExample };

const char* to_string(ToolKind kind);

struct ToolEntry {
  std::string name;         // subcommand name, e.g. "fig1", "quickstart"
  ToolKind kind = ToolKind::kBench;
  std::string description;  // one line for `hpcarbon list`
  int (*fn)(int, char**) = nullptr;
};

/// Idempotent per name: re-registering an existing name replaces the entry.
void register_tool(ToolEntry entry);

/// All registered tools, sorted by (kind, name).
std::vector<ToolEntry> tools();

/// nullptr when no tool has that name.
const ToolEntry* find_tool(const std::string& name);

}  // namespace hpcarbon::cli

#ifdef HPCARBON_STANDALONE
#define HPCARBON_TOOL(name_, kind_, desc_) \
  int main(int argc, char** argv) { return tool_main(argc, argv); }
#else
#define HPCARBON_TOOL(name_, kind_, desc_)                         \
  namespace {                                                      \
  [[maybe_unused]] const bool hpcarbon_tool_registered = [] {      \
    ::hpcarbon::cli::register_tool(                                \
        {name_, ::hpcarbon::cli::kind_, desc_, &tool_main});       \
    return true;                                                   \
  }();                                                             \
  }
#endif
