#include "cli/serve_tool.h"

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/dispatch.h"
#include "core/csv.h"
#include "core/error.h"
#include "core/thread_pool.h"
#include "serve/engine.h"

namespace hpcarbon::cli {

namespace {

struct FrontEndOptions {
  serve::ServeOptions serve;
  std::string input_path;  // batch only; "-" reads stdin
  std::string out_path;    // batch only; empty writes stdout
  std::size_t threads = 0;
};

/// Flags shared by both front-ends; returns false for flags the caller
/// must handle (positional input path for batch).
bool parse_common_flag(const std::string& arg, int argc, char** argv, int& i,
                       FrontEndOptions& opts) {
  auto next_value = [&](const char* flag) -> std::string {
    if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
    return argv[++i];
  };
  auto next_count = [&](const char* flag) {
    const std::string v = next_value(flag);
    std::size_t consumed = 0;
    long n = 0;
    try {
      n = std::stol(v, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != v.size() || n < 1) {
      throw Error(std::string(flag) + " expects a positive integer, got '" +
                  v + "'");
    }
    return static_cast<std::size_t>(n);
  };
  if (arg == "--threads") {
    opts.threads = next_count("--threads");
    return true;
  }
  if (arg == "--cache-mb") {
    const std::size_t mb = next_count("--cache-mb");
    // Bounded so the <<20 below cannot overflow std::size_t into a
    // budget unrelated to what was asked for.
    if (mb > (std::size_t{1} << 20)) {  // 1 TiB
      throw Error("--cache-mb must be at most 1048576 (1 TiB)");
    }
    opts.serve.cache_bytes = mb << 20;
    return true;
  }
  if (arg == "--shards") {
    const std::size_t shards = next_count("--shards");
    if (shards > 4096) throw Error("--shards must be at most 4096");
    opts.serve.cache_shards = shards;
    return true;
  }
  return false;
}

void size_pool(const FrontEndOptions& opts) {
  ThreadPool::set_global_threads(
      opts.threads > 0 ? opts.threads : default_worker_threads());
}

/// Request lines of a JSONL payload: blank and whitespace-only lines are
/// skipped (trailing newline, CRLF endings), everything else is a request.
std::vector<std::string> request_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
      line.pop_back();
    }
    if (!line.empty()) lines.push_back(std::move(line));
    if (end == text.size()) break;
    pos = end + 1;
  }
  return lines;
}

std::string read_all_of_stdin() {
  std::ostringstream buf;
  buf << std::cin.rdbuf();
  return buf.str();
}

}  // namespace

int cmd_batch(int argc, char** argv) {
  FrontEndOptions opts;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (parse_common_flag(arg, argc, argv, i, opts)) continue;
    if (arg == "--out") {
      if (i + 1 >= argc) throw Error("--out needs a value");
      opts.out_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      throw Error("unknown batch flag '" + arg + "' (see `hpcarbon help`)");
    } else if (opts.input_path.empty()) {
      opts.input_path = arg;
    } else {
      throw Error("batch takes one input file, got '" + arg + "' too");
    }
  }
  if (opts.input_path.empty()) {
    std::cerr << "hpcarbon batch: name a requests.jsonl file (or '-' for "
                 "stdin)\n";
    return 2;
  }
  size_pool(opts);

  const std::string text = opts.input_path == "-" ? read_all_of_stdin()
                                                  : read_file(opts.input_path);
  const std::vector<std::string> lines = request_lines(text);

  serve::Engine engine(opts.serve);
  const std::vector<std::string> responses = engine.handle_batch(lines);

  std::string out;
  for (const auto& r : responses) {
    out += r;
    out.push_back('\n');
  }
  if (opts.out_path.empty()) {
    std::cout << out;
  } else {
    write_file(opts.out_path, out);
  }

  const serve::CacheStats cs = engine.cache_stats();
  std::cerr << "hpcarbon batch: " << lines.size() << " requests; cache: "
            << cs.hits << " hits, " << cs.misses << " misses, "
            << cs.evictions << " evictions, " << cs.entries << " entries, "
            << cs.bytes << " bytes\n";
  return 0;
}

int cmd_serve(int argc, char** argv) {
  FrontEndOptions opts;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (parse_common_flag(arg, argc, argv, i, opts)) continue;
    throw Error("unknown serve flag '" + arg + "' (see `hpcarbon help`)");
  }
  size_pool(opts);

  serve::Engine engine(opts.serve);
  std::string line;
  std::string response;  // reused across lines (handle_line_to appends)
  while (std::getline(std::cin, line)) {
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    response.clear();
    engine.handle_line_to(line, response);
    response.push_back('\n');
    // One response per request, flushed immediately: the reader on the
    // other end of the pipe must not wait on a buffer.
    std::cout << response << std::flush;
  }
  return 0;
}

}  // namespace hpcarbon::cli
