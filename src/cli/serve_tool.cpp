#include "cli/serve_tool.h"

#include <chrono>
#include <condition_variable>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/dispatch.h"
#include "core/csv.h"
#include "core/error.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"
#include "net/framing.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/scrape.h"
#include "serve/engine.h"
#include "serve/limits.h"

namespace hpcarbon::cli {

namespace {

struct FrontEndOptions {
  serve::ServeOptions serve;
  std::string input_path;  // batch only; "-" reads stdin
  std::string out_path;    // batch only; empty writes stdout
  std::size_t threads = 0;
  // Serve-only observability endpoints (pipe and socket modes).
  std::string metrics_unix;      // --metrics-unix PATH (Prometheus scrape)
  double stats_interval_s = 0;   // --stats-interval SECS (stderr summary)
  // Socket mode (serve only): active when listen or unix_path is set.
  std::string listen;     // --listen HOST:PORT
  std::string unix_path;  // --unix PATH
  std::size_t workers = net::ServerOptions::default_workers();
  std::size_t max_conns = net::ServerOptions{}.max_conns;
  std::size_t max_inflight = net::ServerOptions{}.max_inflight;
  double idle_timeout_s = net::ServerOptions{}.idle_timeout_s;
};

std::string next_value(const char* flag, int argc, char** argv, int& i) {
  if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
  return argv[++i];
}

std::size_t parse_count(const char* flag, const std::string& v, long min) {
  std::size_t consumed = 0;
  long n = 0;
  try {
    n = std::stol(v, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != v.size() || n < min) {
    throw Error(std::string(flag) + " expects an integer >= " +
                std::to_string(min) + ", got '" + v + "'");
  }
  return static_cast<std::size_t>(n);
}

/// Flags shared by both front-ends; returns false for flags the caller
/// must handle (positional input path for batch, socket flags for serve).
bool parse_common_flag(const std::string& arg, int argc, char** argv, int& i,
                       FrontEndOptions& opts) {
  auto next_count = [&](const char* flag) {
    return parse_count(flag, next_value(flag, argc, argv, i), 1);
  };
  if (arg == "--threads") {
    opts.threads = next_count("--threads");
    return true;
  }
  if (arg == "--cache-mb") {
    const std::size_t mb = next_count("--cache-mb");
    // Bounded so the <<20 below cannot overflow std::size_t into a
    // budget unrelated to what was asked for.
    if (mb > (std::size_t{1} << 20)) {  // 1 TiB
      throw Error("--cache-mb must be at most 1048576 (1 TiB)");
    }
    opts.serve.cache_bytes = mb << 20;
    return true;
  }
  if (arg == "--shards") {
    const std::size_t shards = next_count("--shards");
    if (shards > 4096) throw Error("--shards must be at most 4096");
    opts.serve.cache_shards = shards;
    return true;
  }
  return false;
}

/// Socket-mode serve flags; returns false for anything it doesn't know.
bool parse_net_flag(const std::string& arg, int argc, char** argv, int& i,
                    FrontEndOptions& opts) {
  if (arg == "--listen") {
    opts.listen = next_value("--listen", argc, argv, i);
    return true;
  }
  if (arg == "--unix") {
    opts.unix_path = next_value("--unix", argc, argv, i);
    return true;
  }
  if (arg == "--workers") {  // 0 = answer inline on the IO thread
    opts.workers =
        parse_count("--workers", next_value("--workers", argc, argv, i), 0);
    return true;
  }
  if (arg == "--max-conns") {
    opts.max_conns = parse_count(
        "--max-conns", next_value("--max-conns", argc, argv, i), 1);
    return true;
  }
  if (arg == "--max-inflight") {
    opts.max_inflight = parse_count(
        "--max-inflight", next_value("--max-inflight", argc, argv, i), 1);
    return true;
  }
  if (arg == "--idle-timeout") {
    const std::string v = next_value("--idle-timeout", argc, argv, i);
    std::size_t consumed = 0;
    double s = 0;
    try {
      s = std::stod(v, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != v.size()) {
      throw Error("--idle-timeout expects seconds (0 disables), got '" + v +
                  "'");
    }
    opts.idle_timeout_s = s;
    return true;
  }
  if (arg == "--metrics-unix") {
    opts.metrics_unix = next_value("--metrics-unix", argc, argv, i);
    return true;
  }
  if (arg == "--stats-interval") {
    const std::string v = next_value("--stats-interval", argc, argv, i);
    std::size_t consumed = 0;
    double s = 0;
    try {
      s = std::stod(v, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != v.size() || s < 0) {
      throw Error("--stats-interval expects seconds (0 disables), got '" + v +
                  "'");
    }
    opts.stats_interval_s = s;
    return true;
  }
  return false;
}

/// One-line operational summary on stderr, assembled from the engine's
/// obs registry (stderr only — stdout is the data plane).
void print_stats_summary(serve::Engine& engine) {
  engine.sync_metrics();
  std::uint64_t requests = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  obs::Histogram::Snapshot lat;
  for (const auto& s : engine.registry().snapshot()) {
    if (s.name == "hpcarbon_serve_requests_total") {
      requests += static_cast<std::uint64_t>(s.value);
    } else if (s.name == "hpcarbon_serve_total_latency_us") {
      lat.merge(s.hist);
    } else if (s.name == "hpcarbon_cache_hits_total") {
      cache_hits = s.value;
    } else if (s.name == "hpcarbon_cache_misses_total") {
      cache_misses = s.value;
    }
  }
  std::cerr << "hpcarbon serve: " << requests << " requests, cache "
            << cache_hits << " hits / " << cache_misses << " misses, p50 "
            << lat.quantile_us(0.50) << " us, p99 " << lat.quantile_us(0.99)
            << " us\n";
}

/// `--stats-interval SECS`: a background thread printing the summary
/// line every interval until destruction (daemon liveness signal when
/// stdout is a busy pipe).
class PeriodicStats {
 public:
  PeriodicStats(serve::Engine& engine, double interval_s) {
    if (interval_s <= 0) return;
    thread_ = std::thread([this, &engine, interval_s] {
      const auto interval = std::chrono::duration<double>(interval_s);
      MutexLock lock(mu_);
      while (!stop_) {
        // Print only on a real timeout: a spurious wake (or the stop
        // notify) re-checks the flag instead.
        if (cv_.wait_for(mu_, interval) == std::cv_status::no_timeout) {
          continue;
        }
        if (!stop_) print_stats_summary(engine);
      }
    });
  }

  ~PeriodicStats() {
    if (!thread_.joinable()) return;
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  AnnotatedMutex mu_;
  std::condition_variable_any cv_;
  bool stop_ HPCARBON_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

/// `--metrics-unix PATH`: Prometheus scrape endpoint over the engine's
/// registry, mirroring cache/trace counters before every snapshot.
std::unique_ptr<obs::ScrapeServer> start_scrape_server(
    const std::string& path, serve::Engine& engine) {
  if (path.empty()) return nullptr;
  auto scrape = std::make_unique<obs::ScrapeServer>(
      path, &engine.registry(), [&engine] { engine.sync_metrics(); });
  scrape->start();
  std::cerr << "hpcarbon serve: metrics on unix " << path << "\n";
  return scrape;
}

void size_pool(const FrontEndOptions& opts) {
  ThreadPool::set_global_threads(
      opts.threads > 0 ? opts.threads : default_worker_threads());
}

/// Request lines of a JSONL payload: blank and whitespace-only lines are
/// skipped (trailing newline, CRLF endings), everything else is a request.
std::vector<std::string> request_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
      line.pop_back();
    }
    if (!line.empty()) lines.push_back(std::move(line));
    if (end == text.size()) break;
    pos = end + 1;
  }
  return lines;
}

std::string read_all_of_stdin() {
  std::ostringstream buf;
  buf << std::cin.rdbuf();
  return buf.str();
}

/// Pipe mode: request/response loop on stdin/stdout, one flushed response
/// per line. Framing (trimming, blank-line skipping, the shared
/// max-line-length guard) goes through the same LineFramer the socket
/// front-end uses, so an oversized line gets the identical ok:false
/// answer here without ever being buffered whole.
int serve_pipe(const FrontEndOptions& opts) {
  serve::Engine engine(opts.serve);
  const std::unique_ptr<obs::ScrapeServer> scrape =
      start_scrape_server(opts.metrics_unix, engine);
  PeriodicStats reporter(engine, opts.stats_interval_s);
  net::LineFramer framer;
  std::string response;  // reused across lines (handle_line_to appends)
  char chunk[65536];
  auto answer = [&](const net::LineFramer::Item& item) {
    response.clear();
    if (item.kind == net::LineFramer::Item::Kind::kOversize) {
      serve::append_error_response(
          response, {}, serve::oversize_line_error(item.oversize_bytes));
    } else {
      engine.handle_line_to(item.line, response);
    }
    response.push_back('\n');
    // One response per request, flushed immediately: the reader on the
    // other end of the pipe must not wait on a buffer.
    std::cout << response << std::flush;
  };
  while (std::cin.read(chunk, sizeof(chunk)) || std::cin.gcount() > 0) {
    framer.feed(
        std::string_view(chunk, static_cast<std::size_t>(std::cin.gcount())));
    for (auto item = framer.next();
         item.kind != net::LineFramer::Item::Kind::kNone;
         item = framer.next()) {
      answer(item);
    }
  }
  const auto last = framer.finish();  // input without a trailing newline
  if (last.kind != net::LineFramer::Item::Kind::kNone) answer(last);
  return 0;
}

/// Socket mode: epoll event loop on the configured TCP and/or UDS
/// endpoints, graceful drain on SIGTERM/SIGINT (exit 0).
int serve_sockets(const FrontEndOptions& opts) {
  net::ServerOptions sopts;
  sopts.serve = opts.serve;
  // Daemon uptime: the stats op's uptime_s field and the
  // hpcarbon_process_uptime_seconds gauge (whole seconds since start).
  const auto started = std::chrono::steady_clock::now();
  sopts.serve.uptime = [started] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };
  sopts.tcp = opts.listen;
  sopts.unix_path = opts.unix_path;
  sopts.workers = opts.workers;
  sopts.max_conns = opts.max_conns;
  sopts.max_inflight = opts.max_inflight;
  sopts.idle_timeout_s = opts.idle_timeout_s;

  net::Server server(std::move(sopts));
  server.start();
  const std::unique_ptr<obs::ScrapeServer> scrape =
      start_scrape_server(opts.metrics_unix, server.engine());
  PeriodicStats reporter(server.engine(), opts.stats_interval_s);
  std::cerr << "hpcarbon serve: listening on";
  if (!server.tcp_endpoint().empty()) {
    std::cerr << " tcp " << server.tcp_endpoint();
  }
  if (!opts.unix_path.empty()) std::cerr << " unix " << opts.unix_path;
  std::cerr << " (workers=" << opts.workers
            << ", max-conns=" << opts.max_conns
            << ", max-inflight=" << opts.max_inflight << ")\n";

  net::install_signal_drain(server);
  server.run();
  net::uninstall_signal_drain();

  const auto& fe = server.stats();
  std::cerr << "hpcarbon serve: drained; "
            << fe.connections_accepted.value() << " connections, "
            << fe.bytes_in.value() << " bytes in, " << fe.bytes_out.value()
            << " bytes out, " << fe.requests_shed.value() << " shed\n";
  return 0;
}

}  // namespace

int cmd_batch(int argc, char** argv) {
  FrontEndOptions opts;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (parse_common_flag(arg, argc, argv, i, opts)) continue;
    if (arg == "--out") {
      if (i + 1 >= argc) throw Error("--out needs a value");
      opts.out_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      throw Error("unknown batch flag '" + arg + "' (see `hpcarbon help`)");
    } else if (opts.input_path.empty()) {
      opts.input_path = arg;
    } else {
      throw Error("batch takes one input file, got '" + arg + "' too");
    }
  }
  if (opts.input_path.empty()) {
    std::cerr << "hpcarbon batch: name a requests.jsonl file (or '-' for "
                 "stdin)\n";
    return 2;
  }
  size_pool(opts);

  const std::string text = opts.input_path == "-" ? read_all_of_stdin()
                                                  : read_file(opts.input_path);
  const std::vector<std::string> lines = request_lines(text);

  serve::Engine engine(opts.serve);
  const std::vector<std::string> responses = engine.handle_batch(lines);

  std::string out;
  for (const auto& r : responses) {
    out += r;
    out.push_back('\n');
  }
  if (opts.out_path.empty()) {
    std::cout << out;
  } else {
    write_file(opts.out_path, out);
  }

  const serve::CacheStats cs = engine.cache_stats();
  std::cerr << "hpcarbon batch: " << lines.size() << " requests; cache: "
            << cs.hits << " hits, " << cs.misses << " misses, "
            << cs.evictions << " evictions, " << cs.entries << " entries, "
            << cs.bytes << " bytes\n";
  return 0;
}

int cmd_serve(int argc, char** argv) {
  FrontEndOptions opts;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (parse_common_flag(arg, argc, argv, i, opts)) continue;
    if (parse_net_flag(arg, argc, argv, i, opts)) continue;
    throw Error("unknown serve flag '" + arg + "' (see `hpcarbon help`)");
  }
  size_pool(opts);
  if (!opts.listen.empty() || !opts.unix_path.empty()) {
    return serve_sockets(opts);
  }
  return serve_pipe(opts);
}

}  // namespace hpcarbon::cli
