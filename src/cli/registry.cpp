#include "cli/registry.h"

#include <algorithm>
#include <tuple>

namespace hpcarbon::cli {

namespace {

// Function-local static: tool registrars run during static initialization
// of other translation units, before any global vector here would be
// guaranteed constructed.
std::vector<ToolEntry>& registry() {
  static std::vector<ToolEntry> entries;
  return entries;
}

}  // namespace

const char* to_string(ToolKind kind) {
  switch (kind) {
    case ToolKind::kBench:
      return "bench";
    case ToolKind::kExample:
      return "example";
  }
  return "unknown";
}

void register_tool(ToolEntry entry) {
  auto& entries = registry();
  for (auto& e : entries) {
    if (e.name == entry.name) {
      e = std::move(entry);
      return;
    }
  }
  entries.push_back(std::move(entry));
}

std::vector<ToolEntry> tools() {
  std::vector<ToolEntry> sorted = registry();
  std::sort(sorted.begin(), sorted.end(),
            [](const ToolEntry& a, const ToolEntry& b) {
              return std::tie(a.kind, a.name) < std::tie(b.kind, b.name);
            });
  return sorted;
}

const ToolEntry* find_tool(const std::string& name) {
  for (const auto& e : registry()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace hpcarbon::cli
