#include "cli/registry.h"

#include <algorithm>
#include <deque>
#include <tuple>

#include "core/thread_annotations.h"

namespace hpcarbon::cli {

namespace {

struct Registry {
  AnnotatedMutex mu;
  /// Deque, not vector: entries are append-or-replace only and a deque
  /// never relocates survivors, so the pointers find_tool hands out stay
  /// valid for the process lifetime; the lock serializes registration
  /// against concurrent enumeration in a daemon.
  std::deque<ToolEntry> entries HPCARBON_GUARDED_BY(mu);
};

// Function-local static: tool registrars run during static initialization
// of other translation units, before any global here would be guaranteed
// constructed.
Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

const char* to_string(ToolKind kind) {
  switch (kind) {
    case ToolKind::kBench:
      return "bench";
    case ToolKind::kExample:
      return "example";
  }
  return "unknown";
}

void register_tool(ToolEntry entry) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  for (auto& e : r.entries) {
    if (e.name == entry.name) {
      e = std::move(entry);
      return;
    }
  }
  r.entries.push_back(std::move(entry));
}

std::vector<ToolEntry> tools() {
  Registry& r = registry();
  std::vector<ToolEntry> sorted;
  {
    MutexLock lock(r.mu);
    sorted.assign(r.entries.begin(), r.entries.end());
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const ToolEntry& a, const ToolEntry& b) {
              return std::tie(a.kind, a.name) < std::tie(b.kind, b.name);
            });
  return sorted;
}

const ToolEntry* find_tool(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  for (const auto& e : r.entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace hpcarbon::cli
