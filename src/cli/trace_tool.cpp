#include "cli/trace_tool.h"

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/csv.h"
#include "core/error.h"
#include "core/table.h"
#include "grid/analysis.h"
#include "grid/presets.h"

namespace hpcarbon::cli {

namespace {

int trace_usage(std::ostream& out, int exit_code) {
  out << "usage: hpcarbon trace <stats|resample|export> <file> [flags]\n"
         "\n"
         "  stats <file>                 import and print summary statistics\n"
         "  resample <file> --step S     re-emit at cadence S seconds\n"
         "  export <file>                re-emit canonical "
         "hour,intensity CSV\n"
         "\n"
         "flags:\n"
         "  --region CODE      region tag; a Table 3 code also sets the "
         "zone (default TRACE)\n"
         "  --tz-offset H      force the local-time zone, whole hours vs "
         "UTC\n"
         "  --step-in S        force the input cadence, seconds (default: "
         "inferred)\n"
         "  --max-gap N        forward-fill cap per gap, samples (default "
         "12)\n"
         "  --no-tile          fail instead of tiling sub-year coverage\n"
         "  --out PATH         write output CSV here instead of stdout\n";
  return exit_code;
}

double parse_number(const char* flag, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw Error(std::string(flag) + " expects a number, got '" + value + "'");
  }
}

struct TraceArgs {
  std::string verb;
  std::string file;
  TraceImportFlags flags;
  double step_out = 0;  // resample target cadence
  std::string out_path;
};

TraceArgs parse_args(int argc, char** argv) {
  TraceArgs args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--region") {
      args.flags.region = next_value("--region");
    } else if (arg == "--tz-offset") {
      const double off = parse_number("--tz-offset", next_value("--tz-offset"));
      if (off != static_cast<int>(off) || off < -12 || off > 14) {
        throw Error("--tz-offset expects a whole-hour UTC offset");
      }
      args.flags.options.tz = TimeZone(static_cast<int>(off), "forced");
      args.flags.tz_forced = true;
    } else if (arg == "--step-in") {
      args.flags.options.step_seconds =
          parse_number("--step-in", next_value("--step-in"));
    } else if (arg == "--max-gap") {
      args.flags.options.max_gap_samples = static_cast<int>(
          parse_number("--max-gap", next_value("--max-gap")));
    } else if (arg == "--no-tile") {
      args.flags.options.tile_to_year = false;
    } else if (arg == "--step") {
      args.step_out = parse_number("--step", next_value("--step"));
    } else if (arg == "--out") {
      args.out_path = next_value("--out");
    } else if (!arg.empty() && arg[0] == '-') {
      throw Error("unknown flag '" + arg + "' (see `hpcarbon trace`)");
    } else if (args.verb.empty()) {
      args.verb = arg;
    } else if (args.file.empty()) {
      args.file = arg;
    } else {
      throw Error("unexpected argument '" + arg + "'");
    }
  }
  return args;
}

void emit(const std::string& content, const std::string& out_path) {
  if (out_path.empty()) {
    std::cout << content;
  } else {
    write_file(out_path, content);
    std::cout << "written to " << out_path << '\n';
  }
}

int cmd_stats(const grid::CarbonIntensityTrace& trace,
              const grid::ImportReport& report) {
  std::cout << banner("trace " + trace.region_code());
  std::cout << "import: " << report.to_string() << '\n';
  std::cout << "zone:   UTC" << (trace.time_zone().utc_offset_hours() >= 0
                                     ? "+"
                                     : "")
            << trace.time_zone().utc_offset_hours() << ", cadence "
            << trace.step_seconds() << " s (" << trace.size()
            << " samples/year)\n\n";

  const grid::RegionSummary s = grid::summarize(trace);
  TextTable t({"Stat", "gCO2/kWh"});
  t.add_row({"min", TextTable::num(s.box.min, 1)});
  t.add_row({"q1", TextTable::num(s.box.q1, 1)});
  t.add_row({"median", TextTable::num(s.box.median, 1)});
  t.add_row({"mean", TextTable::num(s.box.mean, 1)});
  t.add_row({"q3", TextTable::num(s.box.q3, 1)});
  t.add_row({"max", TextTable::num(s.box.max, 1)});
  t.add_row({"CoV %", TextTable::num(s.cov_percent, 1)});
  std::cout << t.to_string();

  const auto profile = grid::diurnal_profile(trace);
  const auto lo = std::min_element(profile.begin(), profile.end());
  const auto hi = std::max_element(profile.begin(), profile.end());
  std::cout << "\ncleanest local hour " << (lo - profile.begin()) << " ("
            << TextTable::num(*lo, 1) << "), dirtiest hour "
            << (hi - profile.begin()) << " (" << TextTable::num(*hi, 1)
            << ")\n";
  return 0;
}

}  // namespace

grid::CarbonIntensityTrace import_with_flags(const std::string& path,
                                             const TraceImportFlags& flags,
                                             grid::ImportReport* report) {
  grid::ImportOptions opts = flags.options;
  if (!flags.tz_forced) {
    if (const auto spec = grid::find_region(flags.region)) {
      opts.tz = spec->tz;
    } else if (flags.region != "TRACE") {
      // A typo'd code would otherwise silently tag the trace UTC and shift
      // every local-hour statistic; only the default tag gets the UTC
      // fallback.
      throw Error("unknown region code '" + flags.region +
                  "'; use a Table 3 code or pass --tz-offset");
    }
  }
  return grid::import_trace_file(path, flags.region, opts, report);
}

int cmd_trace(int argc, char** argv) {
  const TraceArgs args = parse_args(argc, argv);
  if (args.verb.empty() || args.file.empty()) {
    return trace_usage(args.verb == "help" ? std::cout : std::cerr,
                       args.verb == "help" ? 0 : 2);
  }
  grid::ImportReport report;
  const grid::CarbonIntensityTrace trace =
      import_with_flags(args.file, args.flags, &report);

  if (args.verb == "stats") {
    return cmd_stats(trace, report);
  }
  if (args.verb == "resample") {
    if (args.step_out <= 0) {
      throw Error("trace resample needs --step SECONDS");
    }
    const auto resampled = trace.resampled(args.step_out);
    // Progress lines go to stderr so a bare `trace resample file --step S`
    // still pipes clean CSV.
    std::cerr << "import: " << report.to_string() << '\n'
              << "resampled " << trace.step_seconds() << " s -> "
              << resampled.step_seconds() << " s (" << resampled.size()
              << " samples)\n";
    emit(resampled.to_csv(), args.out_path);
    return 0;
  }
  if (args.verb == "export") {
    std::cerr << "import: " << report.to_string() << '\n';
    emit(trace.to_csv(), args.out_path);
    return 0;
  }
  std::cerr << "hpcarbon trace: unknown verb '" << args.verb << "'\n";
  return trace_usage(std::cerr, 2);
}

}  // namespace hpcarbon::cli
