// `hpcarbon sweep`: the uncertainty counterpart of `hpcarbon run`.
//
// Where `run` prints point estimates for the region x policy matrix,
// `sweep` drives the Monte-Carlo layer end to end and prints quantile
// tables: embodied carbon per Table 1 part, node lifetime footprints under
// a perturbed CI trace, upgrade break-even years (with probability of
// payback) under decarbonization trajectories, fleet-plan savings
// confidence intervals, and per-scheduling-policy savings distributions
// over workload-generator seeds. One merged long-format CSV
// (section,quantity,...) mirrors every printed row.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cli/scenario_runner.h"
#include "core/table.h"
#include "lifecycle/uncertainty.h"

namespace hpcarbon::cli {

struct SweepOptions {
  /// Monte-Carlo draws per model-layer quantity (embodied, lifetime,
  /// breakeven, fleet sections).
  int samples = 4096;
  /// Workload-generator seeds for the scheduler section (each seed costs
  /// one engine run per registered policy).
  int sched_samples = 16;
  std::uint64_t seed = 42;
  /// Sections to run, from {"embodied", "lifetime", "breakeven", "fleet",
  /// "sched"}; empty selects all five.
  std::vector<std::string> sections;
  /// Home region whose generated CI trace prices the lifetime section.
  std::string region = "CISO";
  double lifetime_years = 5.0;
  double breakeven_horizon_years = 15.0;
  lifecycle::LifecycleBands bands;
  /// Real grid-data overrides (`--trace-csv REGION=path`), applied to any
  /// trace the lifetime and sched sections generate for a matching region.
  TraceOverrides trace_csv;
};

/// One summarized quantity. `extra` carries section-specific annotations
/// (e.g. "P(payback)=0.94" for break-even rows).
struct SweepRow {
  std::string section;
  std::string quantity;
  std::string unit;
  int samples = 0;
  double mean = 0;
  double stddev = 0;
  double p05 = 0;
  double p25 = 0;
  double p50 = 0;
  double p75 = 0;
  double p95 = 0;
  std::string extra;
};

struct SweepReport {
  std::vector<SweepRow> rows;

  /// Rows of one section, rendered as an aligned quantile table.
  TextTable section_table(const std::string& section) const;
  /// Long-format CSV of every row (header + one line per row).
  std::string to_csv() const;
};

/// Section names in presentation order.
std::vector<std::string> sweep_sections();

/// Run the selected sections. Throws hpcarbon::Error for unknown section
/// names or region codes.
SweepReport run_sweep(const SweepOptions& opts);

/// `hpcarbon sweep` entry point (argv excludes the subcommand itself).
int cmd_sweep(int argc, char** argv);

}  // namespace hpcarbon::cli
