// `hpcarbon metrics`: scrape-side companion to `hpcarbon serve
// --metrics-unix PATH`.
//
//   hpcarbon metrics --unix PATH   connect to a daemon's metrics socket,
//                                  print its Prometheus exposition
//   hpcarbon metrics --local       print this process's own (global)
//                                  registry — format smoke without a
//                                  daemon
//
// The socket protocol is read-to-EOF (obs/scrape.h): no request bytes,
// no framing, so any netcat-style client works too. Exit 0 on a
// successful scrape, nonzero on connect/read failure.
#pragma once

namespace hpcarbon::cli {

/// `hpcarbon metrics (--unix PATH | --local)` (argv excludes the
/// subcommand itself).
int cmd_metrics(int argc, char** argv);

}  // namespace hpcarbon::cli
