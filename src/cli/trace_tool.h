// `hpcarbon trace`: inspect, resample, and export real grid-trace files.
//
//   hpcarbon trace stats <file>                 import + summary statistics
//   hpcarbon trace resample <file> --step S     re-emit at a new cadence
//   hpcarbon trace export <file>                re-emit canonical CSV
//
// Shared import flags: --region CODE (tags the trace and picks the preset
// zone), --tz-offset H, --step-in S (force the input cadence), --max-gap N,
// --no-tile. Output goes to stdout or --out PATH.
#pragma once

#include <string>

#include "grid/import.h"

namespace hpcarbon::cli {

/// Flags shared by `hpcarbon trace` and the --trace-csv overrides of
/// `hpcarbon run` / `hpcarbon sweep`.
struct TraceImportFlags {
  std::string region = "TRACE";
  grid::ImportOptions options;
  /// True once --tz-offset fixed the zone explicitly (otherwise the region
  /// preset's zone applies).
  bool tz_forced = false;
};

/// Import honoring the flags: explicit zone wins, else the preset zone of
/// `region`, else UTC.
grid::CarbonIntensityTrace import_with_flags(const std::string& path,
                                             const TraceImportFlags& flags,
                                             grid::ImportReport* report);

/// `hpcarbon trace` entry point (argv excludes the subcommand itself).
int cmd_trace(int argc, char** argv);

}  // namespace hpcarbon::cli
