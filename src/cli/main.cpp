// The unified `hpcarbon` driver.
//
//   hpcarbon list                          enumerate tools and scenarios
//   hpcarbon run <REGION...|--all-regions> batch region x policy sweep
//   hpcarbon sweep                         Monte-Carlo quantile tables
//   hpcarbon trace <verb> <file>           real grid-trace import/inspect
//   hpcarbon batch requests.jsonl          carbon-query service, file mode
//   hpcarbon serve                         carbon-query service, pipe mode
//   hpcarbon bench <name> [args...]        run a figure/table/ablation bench
//   hpcarbon example <name> [args...]      run an example
//
// All commands route through cli::dispatch (cli/dispatch.h), which lives
// in hpcarbon_cli_core so the exit-code contract is unit-tested; this file
// only maps uncaught hpcarbon::Error to exit 1.
#include <iostream>

#include "cli/dispatch.h"
#include "core/error.h"

int main(int argc, char** argv) {
  try {
    return hpcarbon::cli::dispatch(argc, argv, std::cout, std::cerr);
  } catch (const hpcarbon::Error& e) {
    std::cerr << "hpcarbon: " << e.what() << '\n';
    return 1;
  }
}
