// Top-level command dispatch of the `hpcarbon` driver.
//
// Lives in hpcarbon_cli_core (not main.cpp) so the exit-code and stream
// contract is unit-testable in-process:
//
//   hpcarbon                  -> usage on `err`, exit 2
//   hpcarbon <unknown>        -> diagnostic + usage on `err`, exit 2
//   hpcarbon help|--help|-h   -> usage on `out`, exit 0
//
// Subcommand reports print to std::cout/std::cerr as before; `out`/`err`
// carry only the driver-level usage and diagnostics.
#pragma once

#include <iosfwd>

namespace hpcarbon::cli {

/// Render the usage text to `out` and return `exit_code`.
int usage(std::ostream& out, int exit_code);

/// Worker count the driver uses when --threads is absent: the
/// HPCARBON_THREADS environment variable if set, else at least two
/// workers so scenario/batch fan-out overlaps even on single-core
/// machines. Shared by run, sweep, batch, and serve.
std::size_t default_worker_threads();

/// Full driver dispatch over the original argc/argv (argv[0] is the
/// program name). May throw hpcarbon::Error (main catches and maps to
/// exit 1).
int dispatch(int argc, char** argv, std::ostream& out, std::ostream& err);

}  // namespace hpcarbon::cli
