#include "cli/sweep.h"

#include <algorithm>
#include <iostream>
#include <sstream>
#include <thread>

#include "cli/dispatch.h"
#include "core/csv.h"
#include "core/error.h"
#include "core/thread_pool.h"
#include "embodied/catalog.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "hw/node.h"
#include "sched/engine.h"
#include "sched/policy.h"
#include "sched/workload_gen.h"

namespace hpcarbon::cli {

namespace {

SweepRow make_row(std::string section, std::string quantity, std::string unit,
                  const mc::Distribution& d, double scale = 1.0,
                  std::string extra = "") {
  SweepRow r;
  r.section = std::move(section);
  r.quantity = std::move(quantity);
  r.unit = std::move(unit);
  r.samples = d.samples();
  r.extra = std::move(extra);
  if (!d.empty()) {
    r.mean = d.mean() * scale;
    r.stddev = d.stddev() * scale;
    r.p05 = d.quantile(0.05) * scale;
    r.p25 = d.quantile(0.25) * scale;
    r.p50 = d.quantile(0.50) * scale;
    r.p75 = d.quantile(0.75) * scale;
    r.p95 = d.quantile(0.95) * scale;
  }
  return r;
}

grid::RegionSpec region_spec(const std::string& code) {
  if (const auto spec = grid::find_region(code)) return *spec;
  throw Error("unknown region code '" + code + "' (see `hpcarbon list`)");
}

/// The subset of --trace-csv overrides naming one of `codes` (sections use
/// different region sets, and an override that matches no section at all is
/// rejected up front in run_sweep).
TraceOverrides overrides_matching(const SweepOptions& opts,
                                  const std::vector<std::string>& codes) {
  TraceOverrides out;
  for (const auto& ov : opts.trace_csv) {
    if (std::find(codes.begin(), codes.end(), ov.first) != codes.end()) {
      out.push_back(ov);
    }
  }
  return out;
}

lifecycle::UpgradeScenario upgrade_scenario() {
  lifecycle::UpgradeScenario s;
  s.old_node = hw::v100_node();
  s.new_node = hw::a100_node();
  s.suite = workload::Suite::kNlp;
  s.intensity = CarbonIntensity::grams_per_kwh(200);
  s.usage = lifecycle::UsageProfile::medium();
  s.pue = op::PueModel(1.2);
  return s;
}

void sweep_embodied(const SweepOptions& opts, SweepReport& report) {
  const mc::SamplePlan plan{opts.samples, opts.seed, nullptr};
  for (auto id : embodied::table1_parts()) {
    const mc::Distribution d =
        embodied::is_processor(id)
            ? embodied::propagate_distribution(embodied::processor(id),
                                               opts.bands.embodied, plan)
            : embodied::propagate_distribution(embodied::memory(id),
                                               opts.bands.embodied, plan);
    report.rows.push_back(
        make_row("embodied", embodied::display_name(id), "kg", d, 1e-3));
  }
}

void sweep_lifetime(const SweepOptions& opts, SweepReport& report) {
  const mc::SamplePlan plan{opts.samples, opts.seed, nullptr};
  const auto traces = traces_for({region_spec(opts.region)},
                                 overrides_matching(opts, {opts.region}));
  const HourOfYear start(month_start_hour(5));  // June 1, as in `run`
  for (const auto& node : {hw::v100_node(), hw::a100_node()}) {
    const auto d = lifecycle::node_lifetime_footprint_distribution(
        node, workload::Suite::kNlp, 0.40, opts.lifetime_years, traces[0],
        start, op::PueModel(1.2), opts.bands, plan);
    const std::string label = node.name + " node " +
                              TextTable::num(opts.lifetime_years, 0) + "y " +
                              opts.region;
    report.rows.push_back(
        make_row("lifetime", label + " embodied", "t", d.embodied, 1e-6));
    report.rows.push_back(make_row("lifetime", label + " operational", "t",
                                   d.operational, 1e-6));
    report.rows.push_back(
        make_row("lifetime", label + " total", "t", d.total, 1e-6));
  }
}

void sweep_breakeven(const SweepOptions& opts, SweepReport& report) {
  const mc::SamplePlan plan{opts.samples, opts.seed, nullptr};
  const auto scenario = upgrade_scenario();
  for (double decline : {0.00, 0.03, 0.07}) {
    const lifecycle::GridTrajectory traj(scenario.intensity, decline);
    const auto bd = lifecycle::breakeven_distribution(
        scenario, traj, opts.breakeven_horizon_years, opts.bands, plan);
    const std::string label = "V100->A100 break-even at decline " +
                              TextTable::num(100.0 * decline, 0) + "%/y";
    const std::string extra =
        "P(payback<=" + TextTable::num(opts.breakeven_horizon_years, 0) +
        "y)=" + TextTable::num(bd.payback_probability, 3);
    report.rows.push_back(
        make_row("breakeven", label, "years", bd.years, 1.0, extra));
  }
  const lifecycle::GridTrajectory traj(scenario.intensity, 0.03);
  report.rows.push_back(make_row(
      "breakeven", "V100->A100 savings at 4y at decline 3%/y", "%",
      lifecycle::savings_distribution(scenario, traj, 4.0, opts.bands, plan)));
}

void sweep_fleet(const SweepOptions& opts, SweepReport& report) {
  const mc::SamplePlan plan{opts.samples, opts.seed, nullptr};
  const auto scenario = upgrade_scenario();
  const lifecycle::GridTrajectory traj(scenario.intensity, 0.03);
  const double horizon = 6.0;
  const auto plans = {
      std::make_pair(std::string("all-at-once"),
                     lifecycle::all_at_once(scenario, 100)),
      std::make_pair(std::string("phased over 4y"),
                     lifecycle::phased(scenario, 100, 4)),
  };
  for (const auto& [name, fleet] : plans) {
    report.rows.push_back(make_row(
        "fleet",
        "100-node " + name + " savings at " + TextTable::num(horizon, 0) + "y",
        "%",
        lifecycle::fleet_savings_distribution(fleet, traj, horizon, opts.bands,
                                              plan)));
  }
}

void sweep_sched(const SweepOptions& opts, SweepReport& report) {
  // The bench_sched_ablation setting: dirtiest Fig. 7 region (ERCOT) is
  // home, ESO and CISO are the remote options, four June weeks of jobs.
  const auto traces = traces_for(
      grid::fig7_regions(),
      overrides_matching(opts, grid::codes_of(grid::fig7_regions())));
  const std::vector<sched::Site> sites = {
      sched::make_site("ERCOT", traces[2], 16),
      sched::make_site("ESO", traces[0], 16),
      sched::make_site("CISO", traces[1], 16),
  };
  const HourOfYear epoch(month_start_hour(5));
  // Pin the savings denominator explicitly rather than trusting static
  // registration order across translation units (scenario_runner does the
  // same): policies[0] must be the fcfs-local baseline.
  const auto fcfs = sched::find_policy("fcfs-local");
  HPC_REQUIRE(fcfs.has_value(), "fcfs-local baseline policy not registered");
  std::vector<sched::PolicyDescriptor> policies = {*fcfs};
  for (const auto& desc : sched::registered_policies()) {
    if (desc.name != fcfs->name) policies.push_back(desc);
  }

  // One joint draw per workload seed: every policy scores the same jobs,
  // so the per-policy savings distributions isolate policy choice from
  // workload luck.
  const mc::Engine engine({opts.sched_samples, opts.seed, nullptr});
  const auto dists = engine.run_multi(
      policies.size(), [&](std::size_t, Rng& rng, std::span<double> out) {
        sched::WorkloadParams wp;
        wp.horizon_hours = 24.0 * 28;
        wp.arrival_rate_per_hour = 2.5;
        wp.seed = rng.next_u64();
        const auto jobs = sched::generate_jobs(wp);
        sched::SchedulingEngine sim(sites, epoch);
        double base_g = 0;
        for (std::size_t p = 0; p < policies.size(); ++p) {
          const auto policy = policies[p].make({});
          const double g = sim.run(jobs, *policy).total_carbon.to_grams();
          if (p == 0) base_g = g;  // fcfs-local, pinned above
          out[p] = base_g > 0 ? 100.0 * (base_g - g) / base_g : 0.0;
        }
      });
  for (std::size_t p = 0; p < policies.size(); ++p) {
    report.rows.push_back(make_row("sched",
                                   policies[p].name + " savings vs fcfs", "%",
                                   dists[p], 1.0,
                                   p == 0 ? "baseline" : ""));
  }
}

}  // namespace

std::vector<std::string> sweep_sections() {
  return {"embodied", "lifetime", "breakeven", "fleet", "sched"};
}

SweepReport run_sweep(const SweepOptions& opts) {
  HPC_REQUIRE(opts.samples > 0, "sweep needs at least one sample");
  HPC_REQUIRE(opts.sched_samples > 0,
              "sweep needs at least one scheduler sample");
  lifecycle::validate(opts.bands);

  std::vector<std::string> sections;
  for (const auto& s :
       opts.sections.empty() ? sweep_sections() : opts.sections) {
    // Programmatic callers may pass repeats; run each section once.
    if (std::find(sections.begin(), sections.end(), s) == sections.end()) {
      sections.push_back(s);
    }
  }
  const auto known = sweep_sections();
  for (const auto& s : sections) {
    if (std::find(known.begin(), known.end(), s) == known.end()) {
      std::string list;
      for (const auto& k : known) list += (list.empty() ? "" : ", ") + k;
      throw Error("unknown sweep section '" + s + "' (known: " + list + ")");
    }
  }

  // Every --trace-csv override must land somewhere in the selected
  // sections: the lifetime section prices opts.region, sched the Fig. 7
  // trio. Anything else is a typo, not a no-op.
  for (const auto& ov : opts.trace_csv) {
    std::vector<std::string> used;
    if (std::find(sections.begin(), sections.end(), "lifetime") !=
        sections.end()) {
      used.push_back(opts.region);
    }
    if (std::find(sections.begin(), sections.end(), "sched") !=
        sections.end()) {
      const auto fig7 = grid::codes_of(grid::fig7_regions());
      used.insert(used.end(), fig7.begin(), fig7.end());
    }
    if (std::find(used.begin(), used.end(), ov.first) == used.end()) {
      throw Error("--trace-csv override for '" + ov.first +
                  "' matches no region used by the selected sections");
    }
  }

  SweepReport report;
  for (const auto& s : sections) {
    if (s == "embodied") sweep_embodied(opts, report);
    if (s == "lifetime") sweep_lifetime(opts, report);
    if (s == "breakeven") sweep_breakeven(opts, report);
    if (s == "fleet") sweep_fleet(opts, report);
    if (s == "sched") sweep_sched(opts, report);
  }
  return report;
}

TextTable SweepReport::section_table(const std::string& section) const {
  TextTable t({"Quantity", "Unit", "Samples", "Mean", "SD", "p05", "p25",
               "p50", "p75", "p95", "Notes"});
  for (const auto& r : rows) {
    if (r.section != section) continue;
    t.add_row({r.quantity, r.unit, std::to_string(r.samples),
               TextTable::num(r.mean, 2), TextTable::num(r.stddev, 2),
               TextTable::num(r.p05, 2), TextTable::num(r.p25, 2),
               TextTable::num(r.p50, 2), TextTable::num(r.p75, 2),
               TextTable::num(r.p95, 2), r.extra.empty() ? "-" : r.extra});
  }
  return t;
}

std::string SweepReport::to_csv() const {
  // csv_row escapes the string cells: break-even `extra` annotations carry
  // no commas today, but quantity labels are free-form and must stay
  // RFC-4180 parseable whatever they grow to contain.
  std::string out =
      csv_row({"section", "quantity", "unit", "samples", "mean", "stddev",
               "p05", "p25", "p50", "p75", "p95", "extra"});
  for (const auto& r : rows) {
    out += csv_row({r.section, r.quantity, r.unit, std::to_string(r.samples),
                    csv_num(r.mean), csv_num(r.stddev), csv_num(r.p05),
                    csv_num(r.p25), csv_num(r.p50), csv_num(r.p75),
                    csv_num(r.p95), r.extra});
  }
  return out;
}

int cmd_sweep(int argc, char** argv) {
  SweepOptions opts;
  std::string csv_path;
  std::size_t threads = 0;
  bool smoke = false;
  int samples_flag = 0, sched_samples_flag = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    auto next_number = [&](const char* flag) {
      const std::string v = next_value(flag);
      try {
        std::size_t consumed = 0;
        const double parsed = std::stod(v, &consumed);
        if (consumed != v.size()) throw std::invalid_argument(v);
        return parsed;
      } catch (const std::exception&) {
        throw Error(std::string(flag) + " expects a number, got '" + v + "'");
      }
    };
    auto next_count = [&](const char* flag) {
      const double n = next_number(flag);
      if (n < 1 || n != static_cast<int>(n)) {
        throw Error(std::string(flag) +
                    " expects a positive integer sample count");
      }
      return static_cast<int>(n);
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--samples") {
      samples_flag = next_count("--samples");
    } else if (arg == "--sched-samples") {
      sched_samples_flag = next_count("--sched-samples");
    } else if (arg == "--seed") {
      opts.seed = static_cast<std::uint64_t>(next_number("--seed"));
    } else if (arg == "--section") {
      std::string list = next_value("--section");
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        // Repeats would duplicate both the computation and the rows.
        if (!name.empty() && std::find(opts.sections.begin(),
                                       opts.sections.end(),
                                       name) == opts.sections.end()) {
          opts.sections.push_back(name);
        }
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--region") {
      opts.region = next_value("--region");
    } else if (arg == "--years") {
      opts.lifetime_years = next_number("--years");
    } else if (arg == "--horizon") {
      opts.breakeven_horizon_years = next_number("--horizon");
    } else if (arg == "--band-fab") {
      opts.bands.embodied.fab_per_area = next_number("--band-fab");
    } else if (arg == "--band-yield") {
      opts.bands.embodied.yield = next_number("--band-yield");
    } else if (arg == "--band-epc") {
      opts.bands.embodied.epc = next_number("--band-epc");
    } else if (arg == "--band-packaging") {
      opts.bands.embodied.packaging = next_number("--band-packaging");
    } else if (arg == "--band-grid") {
      opts.bands.grid_ci = next_number("--band-grid");
    } else if (arg == "--trace-csv") {
      opts.trace_csv.push_back(
          parse_trace_override(next_value("--trace-csv")));
    } else if (arg == "--csv") {
      csv_path = next_value("--csv");
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(next_number("--threads"));
    } else {
      throw Error("unknown sweep argument '" + arg +
                  "' (see `hpcarbon help`)");
    }
  }
  // --smoke shrinks every sample count for CI; explicit flags still win.
  opts.samples = samples_flag > 0 ? samples_flag : (smoke ? 256 : 4096);
  opts.sched_samples =
      sched_samples_flag > 0 ? sched_samples_flag : (smoke ? 4 : 16);

  ThreadPool::set_global_threads(threads > 0 ? threads
                                             : default_worker_threads());

  const SweepReport report = run_sweep(opts);
  const auto selected = opts.sections.empty() ? sweep_sections()
                                              : opts.sections;
  std::cout << banner("uncertainty sweep: " +
                      std::to_string(opts.samples) + " samples, seed " +
                      std::to_string(opts.seed));
  for (const auto& section : selected) {
    std::cout << banner("sweep: " + section);
    std::cout << report.section_table(section).to_string();
  }
  if (!csv_path.empty()) {
    write_file(csv_path, report.to_csv());
    std::cout << "\nquantile CSV written to " << csv_path << '\n';
  }
  return 0;
}

}  // namespace hpcarbon::cli
