#include "cli/metrics_tool.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <string>

#include "core/error.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/engine.h"

namespace hpcarbon::cli {

namespace {

/// One scrape: connect, read to EOF, return the exposition bytes.
std::string scrape_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("metrics: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw Error("metrics: socket() failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error("metrics: cannot connect to " + path + ": " + why);
  }
  std::string out;
  char chunk[65536];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      out.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error("metrics: read from " + path + " failed: " + why);
    }
    break;  // EOF: the server sends one exposition and closes
  }
  ::close(fd);
  return out;
}

}  // namespace

int cmd_metrics(int argc, char** argv) {
  std::string unix_path;
  bool local = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--unix") {
      if (i + 1 >= argc) throw Error("--unix needs a value");
      unix_path = argv[++i];
    } else if (arg == "--local") {
      local = true;
    } else {
      throw Error("unknown metrics flag '" + arg + "' (see `hpcarbon help`)");
    }
  }
  if (local != unix_path.empty()) {  // neither or both
    std::cerr << "hpcarbon metrics: pass exactly one of --unix PATH (scrape "
                 "a daemon) or --local (this process's registry)\n";
    return 2;
  }
  if (local) {
    // A fresh CLI process has an empty registry; constructing the serve
    // engine registers the full instrument catalog (all zeros), which is
    // exactly what a format smoke wants to see.
    serve::Engine engine;
    engine.sync_metrics();
    std::cout << obs::to_prometheus(engine.registry().snapshot());
    return 0;
  }
  std::cout << scrape_unix(unix_path);
  return 0;
}

}  // namespace hpcarbon::cli
