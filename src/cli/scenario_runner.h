// Batch scenario runner: the region x scheduler-policy sweep behind
// `hpcarbon run`.
//
// A scenario is one home region running one scheduling policy against a
// common synthetic job stream, with the two cleanest other selected regions
// available as remote sites (cross-region policies need somewhere to
// dispatch to). Region trace generation and the policy ablation matrix both
// fan out over ThreadPool::global(); the results merge into a single
// table/CSV report, one row per (region, policy) cell.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/table.h"
#include "grid/region.h"
#include "grid/trace.h"
#include "sched/simulator.h"

namespace hpcarbon::cli {

/// (region code, CSV path) pairs from `--trace-csv REGION=path`: the named
/// region's synthetic trace is replaced by the imported file.
using TraceOverrides = std::vector<std::pair<std::string, std::string>>;

/// Split "ESO=grid.csv" into {"ESO", "grid.csv"}; throws on a missing '='.
std::pair<std::string, std::string> parse_trace_override(
    const std::string& spec);

/// Generate the regions' synthetic traces, then swap in any override whose
/// code matches a spec (imported in that region's local zone, at the file's
/// native cadence). Appends one human-readable import note per override to
/// `notes` when given.
std::vector<grid::CarbonIntensityTrace> traces_for(
    const std::vector<grid::RegionSpec>& specs, const TraceOverrides& overrides,
    std::vector<std::string>* notes = nullptr);

struct ScenarioOptions {
  /// Table 3 region codes (KN, TK, ESO, CISO, PJM, MISO, ERCOT).
  /// Empty selects all seven.
  std::vector<std::string> regions;
  /// Canonical policy names to ablate (see sched::registered_policies());
  /// empty selects every registered policy. "fcfs-local" is always run —
  /// it is the savings baseline.
  std::vector<std::string> policies;
  double horizon_days = 28;
  double arrival_rate_per_hour = 2.5;
  int start_month = 5;  // 0-based: June 1, where Fig. 7 complementarity peaks
  int site_capacity = 16;
  /// When > 0 (`hpcarbon run --uncertainty N`), each (region, policy) cell
  /// is additionally re-run over N workload-generator seeds and the rows
  /// gain savings% quantiles: the point estimate alone cannot say whether
  /// a policy's edge survives a different job mix.
  int uncertainty_samples = 0;
  /// Root seed of the per-sample workload seeds (mc::substream-derived).
  std::uint64_t uncertainty_seed = 909;
  /// Real grid-data overrides; every entry must name a selected region.
  TraceOverrides trace_csv;
};

struct ScenarioRow {
  std::string region;
  std::string policy;
  double median_ci_g_per_kwh = 0;  // home-region trace statistics
  double cov_percent = 0;
  double carbon_kg = 0;
  double savings_vs_fcfs_pct = 0;
  double mean_wait_hours = 0;
  double p95_wait_hours = 0;
  int remote_dispatches = 0;
  int jobs_completed = 0;
  /// savings% quantiles over workload seeds; populated only when
  /// ScenarioOptions::uncertainty_samples > 0.
  double savings_p05 = 0;
  double savings_p50 = 0;
  double savings_p95 = 0;
};

struct ScenarioReport {
  std::vector<ScenarioRow> rows;  // region-major, FcfsLocal first per region
  std::size_t jobs = 0;
  /// Workload seeds behind the savings% quantile columns (0: disabled).
  int uncertainty_samples = 0;
  /// Distinct pool worker threads that executed scenario cells.
  std::size_t worker_threads_used = 0;
  /// One line per --trace-csv override ("ESO <- grid.csv: ...").
  std::vector<std::string> trace_notes;

  TextTable to_table() const;
  std::string to_csv() const;
};

/// All Table 3 region codes, in paper order.
std::vector<std::string> region_codes();

/// Short names of every registered policy, in registration order.
std::vector<std::string> policy_names();

/// Accepts the short name ("greedy") or the canonical name
/// ("greedy-lowest-ci") of any registered policy and returns the canonical
/// name. Throws hpcarbon::Error for unknown names.
std::string parse_policy(const std::string& name);

/// Run the full matrix. Throws hpcarbon::Error for unknown region codes.
ScenarioReport run_scenarios(const ScenarioOptions& opts);

}  // namespace hpcarbon::cli
