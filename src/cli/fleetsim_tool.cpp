#include "cli/fleetsim_tool.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "cli/dispatch.h"
#include "cli/scenario_runner.h"
#include "core/error.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "fleetsim/engine.h"
#include "fleetsim/jobs.h"
#include "fleetsim/uncertainty.h"
#include "fleetsim/workload.h"
#include "grid/analysis.h"
#include "grid/presets.h"
#include "grid/region.h"
#include "mc/engine.h"
#include "sched/policy.h"

namespace hpcarbon::cli {

namespace {

struct FleetsimOptions {
  std::vector<std::string> regions;   // regions[0] is the home site
  std::vector<std::string> policies;  // canonical names; empty: all
  fleetsim::FleetWorkloadParams workload;
  int capacity = 16;
  int uncertainty_samples = 0;
  std::uint64_t uncertainty_seed = 909;
  std::string jobs_csv;  // replay instead of generating when non-empty
  std::size_t threads = 0;
};

double parse_number(const char* flag, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw Error(std::string(flag) + " expects a number, got '" + value + "'");
  }
}

int parse_positive_int(const char* flag, const std::string& value) {
  const double n = parse_number(flag, value);
  if (n < 1 || n != static_cast<int>(n)) {
    throw Error(std::string(flag) + " expects a positive integer");
  }
  return static_cast<int>(n);
}

FleetsimOptions parse_args(int argc, char** argv) {
  FleetsimOptions opts;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--policies") {
      std::string list = next_value("--policies");
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!name.empty()) opts.policies.push_back(parse_policy(name));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--process") {
      opts.workload.process =
          fleetsim::arrival_process_from(next_value("--process"));
    } else if (arg == "--days") {
      opts.workload.horizon_hours =
          24.0 * parse_number("--days", next_value("--days"));
      if (opts.workload.horizon_hours <= 0) {
        throw Error("--days expects a positive number");
      }
    } else if (arg == "--rate") {
      opts.workload.rate_per_hour =
          parse_number("--rate", next_value("--rate"));
      if (opts.workload.rate_per_hour <= 0) {
        throw Error("--rate expects a positive number");
      }
    } else if (arg == "--capacity") {
      opts.capacity = parse_positive_int("--capacity", next_value("--capacity"));
    } else if (arg == "--seed") {
      const double s = parse_number("--seed", next_value("--seed"));
      if (s < 0 || s != static_cast<std::uint64_t>(s)) {
        throw Error("--seed expects a non-negative integer");
      }
      opts.workload.seed = static_cast<std::uint64_t>(s);
    } else if (arg == "--uncertainty") {
      opts.uncertainty_samples =
          parse_positive_int("--uncertainty", next_value("--uncertainty"));
    } else if (arg == "--jobs-csv") {
      opts.jobs_csv = next_value("--jobs-csv");
    } else if (arg == "--threads") {
      const double n = parse_number("--threads", next_value("--threads"));
      if (n < 0 || n != static_cast<std::size_t>(n)) {
        throw Error("--threads expects a non-negative integer");
      }
      opts.threads = static_cast<std::size_t>(n);
    } else if (!arg.empty() && arg[0] == '-') {
      throw Error("unknown flag '" + arg + "' (see `hpcarbon help`)");
    } else if (std::find(opts.regions.begin(), opts.regions.end(), arg) ==
               opts.regions.end()) {
      opts.regions.push_back(arg);
    }
  }
  if (opts.regions.empty()) opts.regions = {"ERCOT", "ESO", "CISO"};
  if (opts.policies.empty()) {
    for (const auto& desc : sched::registered_policies()) {
      opts.policies.push_back(desc.name);
    }
  }
  return opts;
}

/// Home region plus the two cleanest (lowest annual median CI) other
/// selected regions — the same trio construction `hpcarbon run` and the
/// serve `sched`/`fleetsim` families use.
std::vector<sched::Site> build_sites(const std::vector<std::string>& codes,
                                     int capacity) {
  std::vector<grid::RegionSpec> specs;
  for (const auto& code : codes) {
    if (const auto spec = grid::find_region(code)) {
      specs.push_back(*spec);
    } else {
      std::string known;
      for (const auto& c : region_codes()) {
        known += (known.empty() ? "" : ", ") + c;
      }
      throw Error("unknown region code '" + code + "' (known: " + known + ")");
    }
  }
  const auto traces = traces_for(specs, {});
  std::vector<std::size_t> by_median(codes.size());
  for (std::size_t i = 0; i < by_median.size(); ++i) by_median[i] = i;
  std::vector<double> medians;
  medians.reserve(traces.size());
  for (const auto& trace : traces) {
    medians.push_back(grid::summarize(trace).box.median);
  }
  std::sort(by_median.begin(), by_median.end(),
            [&](std::size_t a, std::size_t b) {
              return medians[a] < medians[b];
            });
  std::vector<sched::Site> sites = {
      sched::make_site(codes[0], traces[0], capacity)};
  for (const std::size_t idx : by_median) {
    if (idx == 0 || sites.size() >= 3) continue;
    sites.push_back(sched::make_site(codes[idx], traces[idx], capacity));
  }
  return sites;
}

}  // namespace

int cmd_fleetsim(int argc, char** argv, std::ostream& err) {
  (void)err;
  const FleetsimOptions opts = parse_args(argc, argv);
  ThreadPool::set_global_threads(opts.threads > 0 ? opts.threads
                                                  : default_worker_threads());

  const std::vector<sched::Site> sites =
      build_sites(opts.regions, opts.capacity);
  const fleetsim::FleetEngine engine(sites,
                                     HourOfYear(month_start_hour(5)));

  fleetsim::FleetJobs jobs;
  if (!opts.jobs_csv.empty()) {
    if (opts.uncertainty_samples > 0) {
      throw Error("--uncertainty resamples the synthetic workload and "
                  "cannot be combined with --jobs-csv");
    }
    jobs = fleetsim::load_jobs_csv(opts.jobs_csv, sites.size());
  } else {
    jobs = fleetsim::generate_fleet_jobs(opts.workload);
  }

  std::cout << banner("fleet simulation: " + std::to_string(jobs.size()) +
                      " jobs on " + std::to_string(engine.capacity_total()) +
                      " nodes");
  std::cout << "sites:";
  for (const auto& s : sites) std::cout << ' ' << s.code;
  if (opts.jobs_csv.empty()) {
    std::cout << "; arrivals: " << fleetsim::to_string(opts.workload.process)
              << " @ " << opts.workload.rate_per_hour << "/h over "
              << opts.workload.horizon_hours / 24.0 << " days (seed "
              << opts.workload.seed << ")";
  } else {
    std::cout << "; replayed from " << opts.jobs_csv;
  }
  std::cout << "\n\n";

  // fcfs-local is the savings baseline, always run first.
  const auto baseline_policy = sched::make_policy("fcfs-local");
  const auto baseline = engine.run(jobs, *baseline_policy);
  const double base_g = baseline.total_carbon.to_grams();

  std::vector<std::string> headers = {"Policy",     "Carbon kg", "Savings %",
                                      "Mean wait h", "p95 wait h", "Remote",
                                      "Mjobs/s"};
  const bool quantiles = opts.uncertainty_samples > 0;
  if (quantiles) {
    headers.insert(headers.end(), {"p05 %", "p50 %", "p95 %"});
  }
  TextTable table(headers);
  for (const auto& name : opts.policies) {
    const auto policy = sched::make_policy(name);
    const auto start = std::chrono::steady_clock::now();
    const auto metrics = engine.run(jobs, *policy);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double g = metrics.total_carbon.to_grams();
    std::vector<std::string> row = {
        name,
        TextTable::num(metrics.total_carbon.to_kilograms(), 1),
        TextTable::num(base_g > 0 ? 100.0 * (base_g - g) / base_g : 0.0, 2),
        TextTable::num(metrics.mean_wait_hours, 2),
        TextTable::num(metrics.p95_wait_hours, 2),
        std::to_string(metrics.remote_dispatches),
        TextTable::num(seconds > 0
                           ? static_cast<double>(jobs.size()) / seconds / 1e6
                           : 0.0,
                       2)};
    if (quantiles) {
      const mc::SamplePlan plan{opts.uncertainty_samples,
                                opts.uncertainty_seed,
                                &ThreadPool::global()};
      const mc::Distribution d = fleetsim::fleet_savings_distribution(
          engine, opts.workload, name, plan);
      row.push_back(TextTable::num(d.p05(), 2));
      row.push_back(TextTable::num(d.p50(), 2));
      row.push_back(TextTable::num(d.p95(), 2));
    }
    table.add_row(row);
  }
  std::cout << table.to_string();
  std::cout << "\nsavings vs fcfs-local baseline ("
            << TextTable::num(baseline.total_carbon.to_kilograms(), 1)
            << " kg); Mjobs/s is simulated jobs per wall-clock second\n";
  if (quantiles) {
    std::cout << "quantiles over " << opts.uncertainty_samples
              << " workload seeds (bit-identical for any --threads)\n";
  }
  return 0;
}

}  // namespace hpcarbon::cli
