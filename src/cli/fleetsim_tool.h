// `hpcarbon fleetsim`: the datacenter-scale fleet simulator as a CLI
// command — policy ablation over millions of synthetic (or replayed) jobs
// through fleetsim::FleetEngine, with measured simulation throughput and
// optional savings quantiles over workload seeds.
#pragma once

#include <ostream>

namespace hpcarbon::cli {

/// argv starts after the subcommand (like cmd_run). Returns the process
/// exit code.
int cmd_fleetsim(int argc, char** argv, std::ostream& err);

}  // namespace hpcarbon::cli
