// `hpcarbon batch` and `hpcarbon serve`: the query-service front-ends.
//
// Both speak line-delimited JSON (one request per line, one response per
// line — see README "Query API") over the same serve::Engine:
//
//   hpcarbon batch requests.jsonl      file (or '-': stdin) in, JSONL out
//   hpcarbon serve                     request/response loop on
//                                      stdin/stdout, flushed per line, so
//                                      tests, CI, and scripts drive it
//                                      through a pipe — no sockets
//
// Responses are bit-identical between the two front-ends (and across
// thread counts); `batch` additionally prints a one-line cache summary to
// stderr, and the `{"op":"stats"}` control request reports counters
// in-band for the daemon loop.
#pragma once

namespace hpcarbon::cli {

/// `hpcarbon batch FILE [--out PATH] [--threads N] [--cache-mb M]
/// [--shards N]` (argv excludes the subcommand itself).
int cmd_batch(int argc, char** argv);

/// `hpcarbon serve [--threads N] [--cache-mb M] [--shards N]`.
int cmd_serve(int argc, char** argv);

}  // namespace hpcarbon::cli
