// `hpcarbon batch` and `hpcarbon serve`: the query-service front-ends.
//
// Both speak line-delimited JSON (one request per line, one response per
// line — see README "Query API") over the same serve::Engine:
//
//   hpcarbon batch requests.jsonl      file (or '-': stdin) in, JSONL out
//   hpcarbon serve                     request/response loop on
//                                      stdin/stdout, flushed per line, so
//                                      tests, CI, and scripts drive it
//                                      through a pipe
//   hpcarbon serve --listen HOST:PORT  epoll network daemon (TCP and/or
//            [--unix PATH]             Unix-domain socket; src/net) with
//                                      pipelining, backpressure and
//                                      graceful SIGTERM drain
//
// Responses are bit-identical across all three front-ends (and across
// thread counts); `batch` additionally prints a one-line cache summary to
// stderr, and the `{"op":"stats"}` control request reports engine
// counters plus net_* transport counters in-band (zeros in pipe/batch
// mode, where there is no transport). All front-ends share the
// serve::kMaxRequestLineBytes line limit: an oversized request line is
// answered with an ok:false response reporting its byte count.
//
// Observability (README "Observability"): `{"op":"metrics"}` returns the
// full obs registry as JSON; `--metrics-unix PATH` exposes a Prometheus
// scrape socket (read with `hpcarbon metrics --unix PATH`); and
// `--stats-interval SECS` prints a one-line operational summary to
// stderr every interval.
#pragma once

namespace hpcarbon::cli {

/// `hpcarbon batch FILE [--out PATH] [--threads N] [--cache-mb M]
/// [--shards N]` (argv excludes the subcommand itself).
int cmd_batch(int argc, char** argv);

/// `hpcarbon serve [--threads N] [--cache-mb M] [--shards N]
/// [--listen HOST:PORT] [--unix PATH] [--workers N] [--max-conns N]
/// [--max-inflight N] [--idle-timeout SECONDS] [--metrics-unix PATH]
/// [--stats-interval SECS]`.
int cmd_serve(int argc, char** argv);

}  // namespace hpcarbon::cli
