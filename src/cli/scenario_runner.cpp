#include "cli/scenario_runner.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "core/error.h"
#include "core/stats.h"
#include "core/thread_pool.h"
#include "grid/analysis.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "mc/engine.h"
#include "sched/workload_gen.h"

namespace hpcarbon::cli {

namespace {

grid::RegionSpec spec_for_code(const std::string& code) {
  for (const auto& spec : grid::all_regions()) {
    if (spec.code == code) return spec;
  }
  std::string known;
  for (const auto& c : region_codes()) known += (known.empty() ? "" : ", ") + c;
  throw Error("unknown region code '" + code + "' (known: " + known + ")");
}

}  // namespace

std::vector<std::string> region_codes() {
  std::vector<std::string> codes;
  for (const auto& spec : grid::all_regions()) codes.push_back(spec.code);
  return codes;
}

std::vector<std::string> policy_names() {
  std::vector<std::string> names;
  for (const auto& desc : sched::registered_policies()) {
    names.push_back(desc.short_name);
  }
  return names;
}

std::string parse_policy(const std::string& name) {
  if (const auto desc = sched::find_policy(name)) {
    return desc->name;
  }
  std::string known;
  for (const auto& desc : sched::registered_policies()) {
    known += (known.empty() ? "" : ", ") + desc.short_name;
  }
  throw Error("unknown policy '" + name + "' (known: " + known + ")");
}

ScenarioReport run_scenarios(const ScenarioOptions& opts) {
  // Resolve the region selection up front so bad codes fail fast.
  std::vector<grid::RegionSpec> specs;
  if (opts.regions.empty()) {
    specs = grid::all_regions();
  } else {
    for (const auto& code : opts.regions) specs.push_back(spec_for_code(code));
  }

  // "fcfs-local" always runs first: it is the savings denominator. The
  // policy set comes from the string-keyed registry, so newly registered
  // policies appear in the matrix with no edits here.
  std::vector<std::string> policies = {"fcfs-local"};
  std::vector<std::string> requested = opts.policies;
  if (requested.empty()) {
    for (const auto& desc : sched::registered_policies()) {
      requested.push_back(desc.name);
    }
  }
  for (const std::string& p : requested) {
    const std::string canonical = parse_policy(p);
    if (std::find(policies.begin(), policies.end(), canonical) ==
        policies.end()) {
      policies.push_back(canonical);
    }
  }

  // Stage 1 — one 8760-hour trace per region, generated in parallel on the
  // global pool.
  const auto traces = grid::generate_traces(specs);
  const auto summaries = grid::summarize(traces);

  // Cleanest-first region order (by annual median CI) decides which sites
  // serve as remote-dispatch options for each home region.
  std::vector<std::size_t> by_median(specs.size());
  for (std::size_t i = 0; i < by_median.size(); ++i) by_median[i] = i;
  std::sort(by_median.begin(), by_median.end(),
            [&](std::size_t a, std::size_t b) {
              return summaries[a].box.median < summaries[b].box.median;
            });

  sched::WorkloadParams wp;
  wp.horizon_hours = 24.0 * opts.horizon_days;
  wp.arrival_rate_per_hour = opts.arrival_rate_per_hour;
  const auto jobs = sched::generate_jobs(wp);
  const HourOfYear epoch(month_start_hour(opts.start_month));

  // Home + the two cleanest other regions, the same trio for every policy
  // cell and every uncertainty sample of a region.
  auto build_sites = [&](std::size_t r) {
    std::vector<sched::Site> sites = {
        sched::make_site(specs[r].code, traces[r], opts.site_capacity)};
    for (std::size_t idx : by_median) {
      if (idx == r || sites.size() >= 3) continue;
      sites.push_back(sched::make_site(specs[idx].code, traces[idx],
                                       opts.site_capacity));
    }
    return sites;
  };

  // Stage 2 — the (region x policy) ablation matrix on the global pool.
  ScenarioReport report;
  report.jobs = jobs.size();
  report.rows.resize(specs.size() * policies.size());

  std::mutex mu;
  std::set<std::thread::id> worker_ids;

  ThreadPool::global().parallel_for(
      0, report.rows.size(), [&](std::size_t cell) {
        const std::size_t r = cell / policies.size();
        const std::string& policy_name = policies[cell % policies.size()];

        const std::vector<sched::Site> sites = build_sites(r);
        sched::SchedulingEngine engine(sites, epoch);
        const auto policy = sched::make_policy(policy_name);
        const auto metrics = engine.run(jobs, *policy);

        ScenarioRow& row = report.rows[cell];
        row.region = specs[r].code;
        row.policy = policy_name;
        row.median_ci_g_per_kwh = summaries[r].box.median;
        row.cov_percent = summaries[r].cov_percent;
        row.carbon_kg = metrics.total_carbon.to_kilograms();
        row.mean_wait_hours = metrics.mean_wait_hours;
        row.p95_wait_hours = metrics.p95_wait_hours;
        row.remote_dispatches = metrics.remote_dispatches;
        row.jobs_completed = metrics.jobs_completed;

        std::lock_guard<std::mutex> lock(mu);
        worker_ids.insert(std::this_thread::get_id());
      });

  report.worker_threads_used = worker_ids.size();

  // Savings relative to the same region's FcfsLocal cell (index 0 of each
  // region's policy block, by construction).
  for (std::size_t r = 0; r < specs.size(); ++r) {
    const double base = report.rows[r * policies.size()].carbon_kg;
    for (std::size_t p = 0; p < policies.size(); ++p) {
      ScenarioRow& row = report.rows[r * policies.size() + p];
      row.savings_vs_fcfs_pct = base > 0 ? 100.0 * (base - row.carbon_kg) / base
                                         : 0.0;
    }
  }

  // Stage 3 (optional) — savings% quantiles over workload-generator seeds.
  // Sample k draws the same workload for every region (paired comparison),
  // and all policies of one (region, sample) cell share one engine so the
  // quantiles isolate the policy effect, not workload luck.
  if (opts.uncertainty_samples > 0) {
    report.uncertainty_samples = opts.uncertainty_samples;
    const auto n_samples = static_cast<std::size_t>(opts.uncertainty_samples);
    std::vector<double> savings(specs.size() * policies.size() * n_samples,
                                0.0);
    ThreadPool::global().parallel_for(
        0, specs.size() * n_samples, [&](std::size_t cell) {
          const std::size_t r = cell / n_samples;
          const std::size_t k = cell % n_samples;
          Rng rng = mc::substream(opts.uncertainty_seed, k);
          sched::WorkloadParams sample_wp = wp;
          sample_wp.seed = rng.next_u64();
          const auto sample_jobs = sched::generate_jobs(sample_wp);
          sched::SchedulingEngine engine(build_sites(r), epoch);
          double base_g = 0;
          for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto policy = sched::make_policy(policies[p]);
            const double g =
                engine.run(sample_jobs, *policy).total_carbon.to_grams();
            if (p == 0) base_g = g;  // fcfs-local, by construction
            savings[(r * policies.size() + p) * n_samples + k] =
                base_g > 0 ? 100.0 * (base_g - g) / base_g : 0.0;
          }
        });
    for (std::size_t i = 0; i < report.rows.size(); ++i) {
      const stats::Summary s(
          std::span<const double>(&savings[i * n_samples], n_samples));
      report.rows[i].savings_p05 = s.quantile(0.05);
      report.rows[i].savings_p50 = s.quantile(0.50);
      report.rows[i].savings_p95 = s.quantile(0.95);
    }
  }
  return report;
}

TextTable ScenarioReport::to_table() const {
  std::vector<std::string> header = {
      "Region", "Policy", "Median CI", "CoV%", "Carbon (kg)",
      "vs FCFS", "Mean wait (h)", "p95 wait (h)", "Remote", "Jobs"};
  if (uncertainty_samples > 0) {
    header.insert(header.end(), {"sav p05", "sav p50", "sav p95"});
  }
  TextTable t(header);
  for (const auto& r : rows) {
    std::vector<std::string> row = {
        r.region, r.policy, TextTable::num(r.median_ci_g_per_kwh, 0),
        TextTable::num(r.cov_percent, 1), TextTable::num(r.carbon_kg, 1),
        TextTable::pct(r.savings_vs_fcfs_pct, 1),
        TextTable::num(r.mean_wait_hours, 2),
        TextTable::num(r.p95_wait_hours, 2),
        std::to_string(r.remote_dispatches),
        std::to_string(r.jobs_completed)};
    if (uncertainty_samples > 0) {
      row.insert(row.end(), {TextTable::pct(r.savings_p05, 1),
                             TextTable::pct(r.savings_p50, 1),
                             TextTable::pct(r.savings_p95, 1)});
    }
    t.add_row(std::move(row));
  }
  return t;
}

std::string ScenarioReport::to_csv() const {
  std::ostringstream out;
  out << "region,policy,median_ci_g_per_kwh,cov_percent,carbon_kg,"
         "savings_vs_fcfs_pct,mean_wait_hours,p95_wait_hours,"
         "remote_dispatches,jobs_completed";
  if (uncertainty_samples > 0) {
    out << ",savings_p05,savings_p50,savings_p95";
  }
  out << '\n';
  for (const auto& r : rows) {
    out << r.region << ',' << r.policy << ',' << r.median_ci_g_per_kwh << ','
        << r.cov_percent << ',' << r.carbon_kg << ',' << r.savings_vs_fcfs_pct
        << ',' << r.mean_wait_hours << ',' << r.p95_wait_hours << ','
        << r.remote_dispatches << ',' << r.jobs_completed;
    if (uncertainty_samples > 0) {
      out << ',' << r.savings_p05 << ',' << r.savings_p50 << ','
          << r.savings_p95;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace hpcarbon::cli
