#include "cli/scenario_runner.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>

#include "core/csv.h"
#include "core/error.h"
#include "core/stats.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"
#include "grid/analysis.h"
#include "grid/import.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "mc/engine.h"
#include "sched/workload_gen.h"
#include "serve/cache.h"

namespace hpcarbon::cli {

namespace {

grid::RegionSpec spec_for_code(const std::string& code) {
  if (const auto spec = grid::find_region(code)) return *spec;
  std::string known;
  for (const auto& c : region_codes()) known += (known.empty() ? "" : ", ") + c;
  throw Error("unknown region code '" + code + "' (known: " + known + ")");
}

}  // namespace

std::pair<std::string, std::string> parse_trace_override(
    const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
    throw Error("--trace-csv expects REGION=path, got '" + spec + "'");
  }
  return {spec.substr(0, eq), spec.substr(eq + 1)};
}

std::vector<grid::CarbonIntensityTrace> traces_for(
    const std::vector<grid::RegionSpec>& specs,
    const TraceOverrides& overrides, std::vector<std::string>* notes) {
  // Which spec each override drives. Unknown codes and duplicate codes
  // are typos, not no-ops: two overrides for one region would silently
  // shadow one file, so both are rejected up front.
  std::vector<std::size_t> override_of(specs.size(), overrides.size());
  for (std::size_t o = 0; o < overrides.size(); ++o) {
    bool applied = false;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].code != overrides[o].first) continue;
      if (override_of[i] != overrides.size()) {
        throw Error("duplicate --trace-csv override for '" +
                    overrides[o].first + "'");
      }
      override_of[i] = o;
      applied = true;
      break;
    }
    if (!applied) {
      std::string known;
      for (const auto& s : specs) known += (known.empty() ? "" : ", ") + s.code;
      throw Error("--trace-csv override for '" + overrides[o].first +
                  "' matches no selected region (selected: " + known + ")");
    }
  }

  // Every trace comes through the shared TraceStore: presets generate
  // once per process and --trace-csv files parse once, so `sweep` running
  // several sections (or `run --uncertainty N`) stops redoing identical
  // work. First-touch generation of distinct regions still overlaps on
  // the pool; warm lookups are a map hit.
  std::vector<grid::CarbonIntensityTrace> traces(specs.size());
  std::vector<std::string> import_notes(overrides.size());
  ThreadPool::global().parallel_for(0, specs.size(), [&](std::size_t i) {
    auto& store = serve::TraceStore::global();
    if (override_of[i] < overrides.size()) {
      const auto& [code, path] = overrides[override_of[i]];
      traces[i] = *store.imported(code, path, &import_notes[override_of[i]]);
    } else {
      traces[i] = *store.preset(specs[i].code);
    }
  });
  if (notes != nullptr) {
    for (auto& note : import_notes) notes->push_back(std::move(note));
  }
  return traces;
}

std::vector<std::string> region_codes() {
  return grid::codes_of(grid::all_regions());
}

std::vector<std::string> policy_names() {
  std::vector<std::string> names;
  for (const auto& desc : sched::registered_policies()) {
    names.push_back(desc.short_name);
  }
  return names;
}

std::string parse_policy(const std::string& name) {
  if (const auto desc = sched::find_policy(name)) {
    return desc->name;
  }
  std::string known;
  for (const auto& desc : sched::registered_policies()) {
    known += (known.empty() ? "" : ", ") + desc.short_name;
  }
  throw Error("unknown policy '" + name + "' (known: " + known + ")");
}

ScenarioReport run_scenarios(const ScenarioOptions& opts) {
  // Resolve the region selection up front so bad codes fail fast.
  std::vector<grid::RegionSpec> specs;
  if (opts.regions.empty()) {
    specs = grid::all_regions();
  } else {
    for (const auto& code : opts.regions) specs.push_back(spec_for_code(code));
  }

  // "fcfs-local" always runs first: it is the savings denominator. The
  // policy set comes from the string-keyed registry, so newly registered
  // policies appear in the matrix with no edits here.
  std::vector<std::string> policies = {"fcfs-local"};
  std::vector<std::string> requested = opts.policies;
  if (requested.empty()) {
    for (const auto& desc : sched::registered_policies()) {
      requested.push_back(desc.name);
    }
  }
  for (const std::string& p : requested) {
    const std::string canonical = parse_policy(p);
    if (std::find(policies.begin(), policies.end(), canonical) ==
        policies.end()) {
      policies.push_back(canonical);
    }
  }

  // Stage 1 — one year-long trace per region, generated in parallel on the
  // global pool; --trace-csv overrides swap in imported real data at its
  // native cadence (the whole downstream matrix is resolution-agnostic).
  std::vector<std::string> trace_notes;
  const auto traces = traces_for(specs, opts.trace_csv, &trace_notes);
  const auto summaries = grid::summarize(traces);

  // Cleanest-first region order (by annual median CI) decides which sites
  // serve as remote-dispatch options for each home region.
  std::vector<std::size_t> by_median(specs.size());
  for (std::size_t i = 0; i < by_median.size(); ++i) by_median[i] = i;
  std::sort(by_median.begin(), by_median.end(),
            [&](std::size_t a, std::size_t b) {
              return summaries[a].box.median < summaries[b].box.median;
            });

  sched::WorkloadParams wp;
  wp.horizon_hours = 24.0 * opts.horizon_days;
  wp.arrival_rate_per_hour = opts.arrival_rate_per_hour;
  const auto jobs = sched::generate_jobs(wp);
  const HourOfYear epoch(month_start_hour(opts.start_month));

  // Home + the two cleanest other regions, the same trio for every policy
  // cell and every uncertainty sample of a region.
  auto build_sites = [&](std::size_t r) {
    std::vector<sched::Site> sites = {
        sched::make_site(specs[r].code, traces[r], opts.site_capacity)};
    for (std::size_t idx : by_median) {
      if (idx == r || sites.size() >= 3) continue;
      sites.push_back(sched::make_site(specs[idx].code, traces[idx],
                                       opts.site_capacity));
    }
    return sites;
  };

  // Stage 2 — the (region x policy) ablation matrix on the global pool.
  ScenarioReport report;
  report.trace_notes = std::move(trace_notes);
  report.jobs = jobs.size();
  report.rows.resize(specs.size() * policies.size());

  AnnotatedMutex mu;
  std::set<std::thread::id> worker_ids;  // guarded by mu (function-local)

  ThreadPool::global().parallel_for(
      0, report.rows.size(), [&](std::size_t cell) {
        const std::size_t r = cell / policies.size();
        const std::string& policy_name = policies[cell % policies.size()];

        const std::vector<sched::Site> sites = build_sites(r);
        sched::SchedulingEngine engine(sites, epoch);
        const auto policy = sched::make_policy(policy_name);
        const auto metrics = engine.run(jobs, *policy);

        ScenarioRow& row = report.rows[cell];
        row.region = specs[r].code;
        row.policy = policy_name;
        row.median_ci_g_per_kwh = summaries[r].box.median;
        row.cov_percent = summaries[r].cov_percent;
        row.carbon_kg = metrics.total_carbon.to_kilograms();
        row.mean_wait_hours = metrics.mean_wait_hours;
        row.p95_wait_hours = metrics.p95_wait_hours;
        row.remote_dispatches = metrics.remote_dispatches;
        row.jobs_completed = metrics.jobs_completed;

        MutexLock lock(mu);
        worker_ids.insert(std::this_thread::get_id());
      });

  report.worker_threads_used = worker_ids.size();

  // Savings relative to the same region's FcfsLocal cell (index 0 of each
  // region's policy block, by construction).
  for (std::size_t r = 0; r < specs.size(); ++r) {
    const double base = report.rows[r * policies.size()].carbon_kg;
    for (std::size_t p = 0; p < policies.size(); ++p) {
      ScenarioRow& row = report.rows[r * policies.size() + p];
      row.savings_vs_fcfs_pct = base > 0 ? 100.0 * (base - row.carbon_kg) / base
                                         : 0.0;
    }
  }

  // Stage 3 (optional) — savings% quantiles over workload-generator seeds.
  // Sample k draws the same workload for every region (paired comparison),
  // and all policies of one (region, sample) cell share one engine so the
  // quantiles isolate the policy effect, not workload luck.
  if (opts.uncertainty_samples > 0) {
    report.uncertainty_samples = opts.uncertainty_samples;
    const auto n_samples = static_cast<std::size_t>(opts.uncertainty_samples);
    std::vector<double> savings(specs.size() * policies.size() * n_samples,
                                0.0);
    ThreadPool::global().parallel_for(
        0, specs.size() * n_samples, [&](std::size_t cell) {
          const std::size_t r = cell / n_samples;
          const std::size_t k = cell % n_samples;
          Rng rng = mc::substream(opts.uncertainty_seed, k);
          sched::WorkloadParams sample_wp = wp;
          sample_wp.seed = rng.next_u64();
          const auto sample_jobs = sched::generate_jobs(sample_wp);
          sched::SchedulingEngine engine(build_sites(r), epoch);
          double base_g = 0;
          for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto policy = sched::make_policy(policies[p]);
            const double g =
                engine.run(sample_jobs, *policy).total_carbon.to_grams();
            if (p == 0) base_g = g;  // fcfs-local, by construction
            savings[(r * policies.size() + p) * n_samples + k] =
                base_g > 0 ? 100.0 * (base_g - g) / base_g : 0.0;
          }
        });
    for (std::size_t i = 0; i < report.rows.size(); ++i) {
      const stats::Summary s(
          std::span<const double>(&savings[i * n_samples], n_samples));
      report.rows[i].savings_p05 = s.quantile(0.05);
      report.rows[i].savings_p50 = s.quantile(0.50);
      report.rows[i].savings_p95 = s.quantile(0.95);
    }
  }
  return report;
}

TextTable ScenarioReport::to_table() const {
  std::vector<std::string> header = {
      "Region", "Policy", "Median CI", "CoV%", "Carbon (kg)",
      "vs FCFS", "Mean wait (h)", "p95 wait (h)", "Remote", "Jobs"};
  if (uncertainty_samples > 0) {
    header.insert(header.end(), {"sav p05", "sav p50", "sav p95"});
  }
  TextTable t(header);
  for (const auto& r : rows) {
    std::vector<std::string> row = {
        r.region, r.policy, TextTable::num(r.median_ci_g_per_kwh, 0),
        TextTable::num(r.cov_percent, 1), TextTable::num(r.carbon_kg, 1),
        TextTable::pct(r.savings_vs_fcfs_pct, 1),
        TextTable::num(r.mean_wait_hours, 2),
        TextTable::num(r.p95_wait_hours, 2),
        std::to_string(r.remote_dispatches),
        std::to_string(r.jobs_completed)};
    if (uncertainty_samples > 0) {
      row.insert(row.end(), {TextTable::pct(r.savings_p05, 1),
                             TextTable::pct(r.savings_p50, 1),
                             TextTable::pct(r.savings_p95, 1)});
    }
    t.add_row(std::move(row));
  }
  return t;
}

std::string ScenarioReport::to_csv() const {
  // Emission goes through csv_row so string cells (region/policy names)
  // stay RFC-4180 parseable even if a registered policy name ever carries
  // a comma or quote.
  std::vector<std::string> header = {
      "region", "policy", "median_ci_g_per_kwh", "cov_percent", "carbon_kg",
      "savings_vs_fcfs_pct", "mean_wait_hours", "p95_wait_hours",
      "remote_dispatches", "jobs_completed"};
  if (uncertainty_samples > 0) {
    header.insert(header.end(), {"savings_p05", "savings_p50", "savings_p95"});
  }
  std::string out = csv_row(header);
  for (const auto& r : rows) {
    std::vector<std::string> cells = {
        r.region, r.policy, csv_num(r.median_ci_g_per_kwh),
        csv_num(r.cov_percent), csv_num(r.carbon_kg),
        csv_num(r.savings_vs_fcfs_pct), csv_num(r.mean_wait_hours),
        csv_num(r.p95_wait_hours), std::to_string(r.remote_dispatches),
        std::to_string(r.jobs_completed)};
    if (uncertainty_samples > 0) {
      cells.insert(cells.end(), {csv_num(r.savings_p05),
                                 csv_num(r.savings_p50),
                                 csv_num(r.savings_p95)});
    }
    out += csv_row(cells);
  }
  return out;
}

}  // namespace hpcarbon::cli
