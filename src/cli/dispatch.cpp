#include "cli/dispatch.h"

#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cli/fleetsim_tool.h"
#include "cli/metrics_tool.h"
#include "cli/registry.h"
#include "cli/scenario_runner.h"
#include "cli/serve_tool.h"
#include "cli/sweep.h"
#include "cli/trace_tool.h"
#include "core/csv.h"
#include "core/error.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "sched/policy.h"

namespace hpcarbon::cli {

int usage(std::ostream& out, int exit_code) {
  out << "usage: hpcarbon <command> [args...]\n"
         "\n"
         "commands:\n"
         "  list                         all tools, regions, and policies\n"
         "  policies                     registered scheduling policies and "
         "their knobs\n"
         "  run <REGION...>              scenario sweep over the named "
         "Table 3 regions\n"
         "  run --all-regions            scenario sweep over all seven "
         "regions\n"
         "      [--policies a,b,...]     subset of policies (default: all "
         "registered)\n"
         "      [--days N]               workload horizon (default 28)\n"
         "      [--rate R]               job arrivals per hour (default "
         "2.5)\n"
         "      [--uncertainty N]        add savings quantiles over N "
         "workload seeds\n"
         "      [--trace-csv REGION=FILE] drive a region with an imported "
         "grid CSV\n"
         "      [--csv PATH]             also write the merged report as "
         "CSV\n"
         "      [--threads N]            worker threads (default: max(cores, "
         "2))\n"
         "  sweep                        Monte-Carlo uncertainty sweep: "
         "quantile tables\n"
         "      [--samples N]            MC draws per quantity (default "
         "4096)\n"
         "      [--sched-samples N]      workload seeds for the scheduler "
         "section\n"
         "      [--section a,b,...]      embodied, lifetime, breakeven, "
         "fleet, sched\n"
         "      [--region CODE]          CI-trace region for the lifetime "
         "section\n"
         "      [--years Y]              lifetime-section horizon (default "
         "5)\n"
         "      [--horizon Y]            break-even payback horizon (default "
         "15)\n"
         "      [--seed S] [--smoke] [--csv PATH] [--threads N]\n"
         "      [--trace-csv REGION=FILE] [--band-fab X] [--band-yield X]\n"
         "      [--band-epc X] [--band-packaging X] [--band-grid X]\n"
         "  fleetsim [REGION...]         integer-tick fleet simulator: "
         "policy ablation\n"
         "                               at millions of jobs/sec (default "
         "trio ERCOT ESO CISO)\n"
         "      [--policies a,b,...]     subset of policies (default: all "
         "registered)\n"
         "      [--process P]            arrivals: poisson, diurnal, or "
         "bursty\n"
         "      [--days N] [--rate R]    synthetic workload horizon and "
         "arrivals/hour\n"
         "      [--capacity N]           nodes per site (default 16)\n"
         "      [--jobs-csv PATH]        replay a job-trace CSV instead of "
         "generating\n"
         "      [--uncertainty N]        savings quantiles over N workload "
         "seeds\n"
         "      [--seed S] [--threads N]\n"
         "  trace <verb> <file>          import/inspect a real grid-trace "
         "CSV\n"
         "      stats|resample|export    (see `hpcarbon trace help`)\n"
         "  batch FILE                   answer a JSONL file of carbon "
         "queries\n"
         "      [--out PATH]             write responses to a file instead "
         "of stdout\n"
         "      [--cache-mb M] [--shards N] [--threads N]  ('-' reads "
         "stdin)\n"
         "  serve                        line-delimited JSON query loop on "
         "stdin/stdout\n"
         "      [--cache-mb M] [--shards N] [--threads N]  (see README "
         "\"Query API\")\n"
         "      [--listen HOST:PORT] [--unix PATH]  epoll socket daemon "
         "instead of a pipe\n"
         "      [--workers N] [--max-conns N] [--max-inflight N] "
         "[--idle-timeout S]\n"
         "      [--metrics-unix PATH]    Prometheus scrape socket (see "
         "README \"Observability\")\n"
         "      [--stats-interval S]     periodic one-line stats summary "
         "on stderr\n"
         "  metrics --unix PATH          scrape a daemon's metrics socket "
         "(Prometheus text)\n"
         "      [--local]                print this process's own registry "
         "instead\n"
         "  bench <name> [args...]       run one figure/table/ablation "
         "bench\n"
         "  example <name> [args...]     run one example\n"
         "  help                         this message\n";
  return exit_code;
}

std::size_t default_worker_threads() {
  const std::size_t env = ThreadPool::env_thread_hint();
  if (env > 0) return env;
  return std::max<std::size_t>(2, std::thread::hardware_concurrency());
}

namespace {

int run_tool(ToolKind kind, const std::string& name, int argc, char** argv,
             std::ostream& err) {
  const ToolEntry* tool = find_tool(name);
  if (tool == nullptr) {
    err << "hpcarbon: unknown tool '" << name
        << "' (see `hpcarbon list`)\n";
    return 2;
  }
  if (tool->kind != kind) {
    err << "hpcarbon: '" << name << "' is "
        << (tool->kind == ToolKind::kBench ? "a bench" : "an example")
        << "; use `hpcarbon " << to_string(tool->kind) << " " << name
        << "`\n";
    return 2;
  }
  // The tool sees itself as argv[0], with any trailing driver arguments
  // forwarded, so argv-consuming tools (region_explorer, upgrade_advisor)
  // behave identically under the driver and standalone.
  return tool->fn(argc, argv);
}

int cmd_list() {
  std::cout << banner("hpcarbon tools");
  TextTable t({"Kind", "Name", "Description"});
  for (const auto& e : tools()) {
    t.add_row({to_string(e.kind), e.name, e.description});
  }
  std::cout << t.to_string();

  std::cout << banner("scenario runner (`hpcarbon run`)");
  std::cout << "regions: ";
  for (const auto& c : region_codes()) std::cout << c << ' ';
  std::cout << "(or --all-regions)\npolicies: ";
  for (const auto& p : policy_names()) std::cout << p << ' ';
  // Report the count `run` would use without spinning up the pool for a
  // purely informational command.
  std::cout << "\nworker threads: " << default_worker_threads() << '\n';
  return 0;
}

int cmd_policies() {
  std::cout << banner("registered scheduling policies");
  TextTable t({"Policy", "Short", "Description", "Knobs (default)"});
  for (const auto& desc : sched::registered_policies()) {
    std::string knobs;
    for (const auto& k : desc.knobs) {
      if (!knobs.empty()) knobs.append(", ");
      knobs.append(k.name);
      knobs.append("=");
      knobs.append(TextTable::num(k.default_value, 1));
    }
    t.add_row({desc.name, desc.short_name, desc.description,
               knobs.empty() ? std::string("-") : knobs});
  }
  std::cout << t.to_string();
  std::cout << "\nselect with `hpcarbon run --policies name,name,...` "
               "(canonical or short names);\nsee README \"Adding a "
               "scheduling policy\" to register your own.\n";
  return 0;
}

double parse_number(const char* flag, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw Error(std::string(flag) + " expects a number, got '" + value + "'");
  }
}

int cmd_run(int argc, char** argv, std::ostream& err) {
  ScenarioOptions opts;
  std::string csv_path;
  bool all_regions = false;
  std::size_t threads = 0;  // 0: no --threads flag; use default_worker_threads
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--all-regions") {
      all_regions = true;
    } else if (arg == "--policies") {
      std::string list = next_value("--policies");
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!name.empty()) opts.policies.push_back(parse_policy(name));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--days") {
      opts.horizon_days = parse_number("--days", next_value("--days"));
    } else if (arg == "--rate") {
      opts.arrival_rate_per_hour = parse_number("--rate", next_value("--rate"));
    } else if (arg == "--uncertainty") {
      const double n = parse_number("--uncertainty", next_value("--uncertainty"));
      if (n < 1 || n != static_cast<int>(n)) {
        throw Error("--uncertainty expects a positive integer sample count");
      }
      opts.uncertainty_samples = static_cast<int>(n);
    } else if (arg == "--trace-csv") {
      opts.trace_csv.push_back(
          parse_trace_override(next_value("--trace-csv")));
    } else if (arg == "--csv") {
      csv_path = next_value("--csv");
    } else if (arg == "--threads") {
      const double n = parse_number("--threads", next_value("--threads"));
      if (n < 0 || n != static_cast<std::size_t>(n)) {
        throw Error("--threads expects a non-negative integer");
      }
      threads = static_cast<std::size_t>(n);
    } else if (!arg.empty() && arg[0] == '-') {
      throw Error("unknown flag '" + arg + "' (see `hpcarbon help`)");
    } else if (std::find(opts.regions.begin(), opts.regions.end(), arg) ==
               opts.regions.end()) {
      opts.regions.push_back(arg);  // repeated codes would duplicate cells
    }
  }
  if (all_regions) {
    if (!opts.regions.empty()) {
      throw Error("--all-regions cannot be combined with named regions");
    }
    opts.regions = region_codes();
  }
  if (opts.regions.empty()) {
    err << "hpcarbon run: name at least one region or pass "
           "--all-regions (see `hpcarbon list`)\n";
    return 2;
  }

  ThreadPool::set_global_threads(threads > 0 ? threads
                                             : default_worker_threads());
  const ScenarioReport report = run_scenarios(opts);
  std::cout << banner("scenario sweep: " + std::to_string(opts.regions.size()) +
                      " regions x policy ablation");
  std::cout << report.jobs << " jobs over "
            << static_cast<int>(opts.horizon_days) << " days; "
            << report.rows.size() << " scenario cells on "
            << report.worker_threads_used << " worker threads\n";
  for (const auto& note : report.trace_notes) {
    std::cout << "trace override: " << note << '\n';
  }
  std::cout << '\n';
  std::cout << report.to_table().to_string();
  if (!csv_path.empty()) {
    write_file(csv_path, report.to_csv());
    std::cout << "\nmerged CSV report written to " << csv_path << '\n';
  }
  return 0;
}

}  // namespace

int dispatch(int argc, char** argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) return usage(err, 2);
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    return usage(out, 0);
  }
  if (cmd == "list") return cmd_list();
  if (cmd == "policies") return cmd_policies();
  if (cmd == "run") return cmd_run(argc - 2, argv + 2, err);
  if (cmd == "fleetsim") return cmd_fleetsim(argc - 2, argv + 2, err);
  if (cmd == "sweep") return cmd_sweep(argc - 2, argv + 2);
  if (cmd == "trace") return cmd_trace(argc - 2, argv + 2);
  if (cmd == "batch") return cmd_batch(argc - 2, argv + 2);
  if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
  if (cmd == "metrics") return cmd_metrics(argc - 2, argv + 2);
  if (cmd == "bench" || cmd == "example") {
    if (argc < 3) {
      err << "hpcarbon " << cmd << ": missing tool name\n";
      return 2;
    }
    const ToolKind kind =
        cmd == "bench" ? ToolKind::kBench : ToolKind::kExample;
    return run_tool(kind, argv[2], argc - 2, argv + 2, err);
  }
  err << "hpcarbon: unknown command '" << cmd << "'\n";
  return usage(err, 2);
}

}  // namespace hpcarbon::cli
