// Hardware-upgrade carbon analysis: RQ 7 (Fig. 8) and RQ 8 (Fig. 9).
//
// Setting (matching the paper): a facility runs a node generation with a
// fixed annual workload (the suite's jobs, arriving at a rate that keeps
// the GPUs busy a fraction `gpu_usage` of the time). An upgrade replaces
// the node with a newer generation: the same annual workload then occupies
// the new node for a shorter busy time (the suite's mean time-to-solution
// ratio), at the new node's training power.
//
// Carbon accounting over t years after the upgrade decision:
//
//   C_keep(t)    = I * E_old(t)                    (old embodied is sunk)
//   C_upgrade(t) = C_em(new node) + I * E_new(t)
//   savings%(t)  = 100 * (C_keep - C_upgrade) / C_keep
//
// with busy-energy E(t) = P_train * busy_hours * PUE — the paper scales
// carbontracker-measured per-job training energy, so allocated-but-idle
// draw is excluded from both sides (documented in EXPERIMENTS.md).
//
// The new node's embodied carbon uses full-node scope (GPUs, CPUs, DRAM,
// local SSD): an upgrade procures whole nodes.
#pragma once

#include <optional>
#include <vector>

#include "core/units.h"
#include "hw/node.h"
#include "hw/perf.h"
#include "hw/power.h"
#include "op/pue.h"
#include "workload/suite.h"

namespace hpcarbon::lifecycle {

/// The paper's usage tiers (RQ 8): medium 40% GPU usage from production
/// traces, high/low at 1.5x more/less.
struct UsageProfile {
  double gpu_usage = 0.40;
  static UsageProfile high() { return {0.60}; }
  static UsageProfile medium() { return {0.40}; }
  static UsageProfile low() { return {0.40 / 1.5}; }
};

struct UpgradeScenario {
  hw::NodeConfig old_node;
  hw::NodeConfig new_node;
  workload::Suite suite = workload::Suite::kNlp;
  CarbonIntensity intensity = CarbonIntensity::grams_per_kwh(200);
  UsageProfile usage = UsageProfile::medium();
  op::PueModel pue = op::PueModel(1.2);
};

/// Annual busy-energy (facility side, PUE applied) of the *current* node
/// carrying the workload at the given usage.
Energy annual_energy_keep(const UpgradeScenario& s);
/// Annual busy-energy of the new node carrying the same workload.
Energy annual_energy_upgrade(const UpgradeScenario& s);

/// Embodied carbon introduced by the upgrade (full new node).
Mass upgrade_embodied(const UpgradeScenario& s);

/// savings%(t); negative while the embodied "tax" is unpaid.
double savings_percent(const UpgradeScenario& s, double years);

/// savings%(t) over a grid of years.
std::vector<double> savings_curve(const UpgradeScenario& s,
                                  const std::vector<double>& years);

/// Years until C_upgrade == C_keep, or nullopt if the upgrade never breaks
/// even (new node not more carbon-efficient for this workload).
std::optional<double> breakeven_years(const UpgradeScenario& s);

/// Asymptotic savings% as t -> infinity: 100 * (1 - E_new/E_old).
double asymptotic_savings_percent(const UpgradeScenario& s);

}  // namespace hpcarbon::lifecycle
