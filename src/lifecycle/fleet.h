// Fleet-level upgrade planning.
//
// Real facilities do not flip thousands of nodes overnight; they phase
// replacements across budget years. This module extends the single-node
// RQ 7/8 analysis to an N-node fleet with an arbitrary replacement
// schedule, under a constant or decarbonizing grid, and answers the
// operator's question: all-at-once, phased, or keep?
#pragma once

#include <string>
#include <vector>

#include "lifecycle/scenario.h"
#include "lifecycle/upgrade.h"

namespace hpcarbon::lifecycle {

struct FleetPlan {
  /// Per-node scenario (nodes are homogeneous; the plan scales it).
  UpgradeScenario node;
  int node_count = 100;
  /// replacement_schedule[k] = fraction of the fleet replaced at the start
  /// of year k (k = 0, 1, …). Fractions must be in [0,1] and sum to <= 1;
  /// the remainder is never replaced.
  std::vector<double> replacement_schedule = {1.0};
};

/// Cumulative fleet carbon (embodied of replacements + operation of both
/// generations) over [0, years], under the trajectory.
Mass fleet_cumulative_carbon(const FleetPlan& plan, const GridTrajectory& traj,
                             double years);

/// Schedule-accounting core on precomputed per-node annual energies (kWh)
/// and new-node embodied grams — the seam the Monte-Carlo layer samples
/// through (a grid-CI scale multiplies both energies; embodied is drawn
/// per sample). fleet_cumulative_carbon wraps this with point values.
double fleet_cumulative_grams(const FleetPlan& plan, const GridTrajectory& traj,
                              double years, double e_old_kwh, double e_new_kwh,
                              double em_new_g);

/// Cumulative carbon had the fleet never been upgraded.
Mass fleet_keep_carbon(const FleetPlan& plan, const GridTrajectory& traj,
                       double years);

/// savings% of the plan vs never upgrading, at the horizon.
double fleet_savings_percent(const FleetPlan& plan, const GridTrajectory& traj,
                             double years);

/// Carbon trajectories evaluated on a grid of times (for plotting).
std::vector<Mass> fleet_carbon_curve(const FleetPlan& plan,
                                     const GridTrajectory& traj,
                                     const std::vector<double>& years);

/// Canonical schedules to compare.
FleetPlan all_at_once(UpgradeScenario node, int node_count);
FleetPlan phased(UpgradeScenario node, int node_count, int phase_years);

}  // namespace hpcarbon::lifecycle
