#include "lifecycle/systems.h"

namespace hpcarbon::lifecycle {

using embodied::PartId;

SystemInventory frontier() {
  SystemInventory s;
  s.name = "Frontier";
  s.location = "Oak Ridge, TN, United States";
  s.processors = "AMD EPYC 7763, AMD Instinct MI250X";
  s.cores = 8730112;
  s.year = 2021;
  const double nodes = 9408;
  s.components = {
      {PartId::kMi250x, nodes * 4},
      {PartId::kEpyc7763, nodes * 1},
      {PartId::kDram64GbDdr4, nodes * 8},              // 512 GB/node
      {PartId::kSsdNytro3530_3_2Tb, 60000.0 / 3.2},    // ~60 PB flash
      {PartId::kHddExosX16_16Tb, 695000.0 / 16.0},     // 695 PB capacity tier
  };
  return s;
}

SystemInventory lumi() {
  SystemInventory s;
  s.name = "LUMI";
  s.location = "Kajaani, Finland";
  s.processors = "AMD EPYC 7763, AMD Instinct MI250X";
  s.cores = 2220288;
  s.year = 2022;
  const double g_nodes = 2978;  // LUMI-G
  const double c_nodes = 2048;  // LUMI-C
  s.components = {
      {PartId::kMi250x, g_nodes * 4},
      {PartId::kEpyc7763, g_nodes * 1 + c_nodes * 2},
      {PartId::kDram64GbDdr4, g_nodes * 8 + c_nodes * 4},
      {PartId::kSsdNytro3530_3_2Tb, 8500.0 / 3.2},     // LUMI-F ~8.5 PB
      {PartId::kHddExosX16_16Tb, 80000.0 / 16.0},      // LUMI-P 80 PB
  };
  return s;
}

SystemInventory perlmutter() {
  SystemInventory s;
  s.name = "Perlmutter";
  s.location = "Berkeley, CA, United States";
  s.processors = "AMD EPYC 7763, NVIDIA A100 SXM4";
  s.cores = 761856;
  s.year = 2021;
  const double g_nodes = 1536;
  const double c_nodes = 3072;
  s.components = {
      {PartId::kA100Sxm4_40, g_nodes * 4},
      {PartId::kEpyc7763, g_nodes * 1 + c_nodes * 2},
      {PartId::kDram64GbDdr4, g_nodes * 4 + c_nodes * 8},
      {PartId::kSsdNytro3530_3_2Tb, 35000.0 / 3.2},    // 35 PB all-flash
      // No HDD tier: Perlmutter deploys an all-flash file system.
  };
  return s;
}

std::vector<SystemInventory> studied_systems() {
  return {frontier(), lumi(), perlmutter()};
}

}  // namespace hpcarbon::lifecycle
