#include "lifecycle/footprint.h"

#include <sstream>

#include "core/error.h"
#include "hw/power.h"
#include "op/operational.h"

namespace hpcarbon::lifecycle {

namespace {
constexpr double kHoursPerYearD = 8760.0;
}

std::string TotalFootprint::to_string() const {
  std::ostringstream out;
  out << "embodied " << hpcarbon::to_string(embodied) << " + operational "
      << hpcarbon::to_string(operational) << " = "
      << hpcarbon::to_string(total()) << " ("
      << static_cast<int>(embodied_share() * 100.0 + 0.5) << "% embodied)";
  return out.str();
}

TotalFootprint node_lifetime_footprint(const hw::NodeConfig& node,
                                       workload::Suite suite,
                                       double gpu_usage, double years,
                                       CarbonIntensity intensity,
                                       const op::PueModel& pue) {
  HPC_REQUIRE(years > 0, "years must be positive");
  HPC_REQUIRE(gpu_usage >= 0 && gpu_usage <= 1.0, "usage must be in [0,1]");
  TotalFootprint f;
  f.embodied = hw::node_embodied(node, hw::EmbodiedScope::kFullNode);
  const Power p = hw::node_training_power(node, suite);
  const Energy it =
      p * Hours::hours(kHoursPerYearD * years * gpu_usage);
  f.operational = op::operational_carbon(it, intensity, pue);
  return f;
}

TotalFootprint node_lifetime_footprint(const hw::NodeConfig& node,
                                       workload::Suite suite,
                                       double gpu_usage, double years,
                                       const grid::CarbonIntensityTrace& trace,
                                       HourOfYear start,
                                       const op::PueModel& pue) {
  HPC_REQUIRE(years > 0, "years must be positive");
  TotalFootprint f;
  f.embodied = hw::node_embodied(node, hw::EmbodiedScope::kFullNode);
  // Average busy power over the node's allocation, priced hourly.
  const Power avg = hw::node_training_power(node, suite) * gpu_usage;
  f.operational = op::operational_carbon(
      avg, trace, start, Hours::years(years), pue);
  return f;
}

double embodied_parity_years(const hw::NodeConfig& node, workload::Suite suite,
                             double gpu_usage, CarbonIntensity intensity,
                             const op::PueModel& pue) {
  HPC_REQUIRE(gpu_usage > 0, "usage must be positive for parity");
  const Mass em = hw::node_embodied(node, hw::EmbodiedScope::kFullNode);
  const Power p = hw::node_training_power(node, suite);
  const Energy per_year =
      (p * Hours::hours(kHoursPerYearD * gpu_usage)) * pue.annual_mean();
  const Mass op_per_year = intensity * per_year;
  return em.to_grams() / op_per_year.to_grams();
}

}  // namespace hpcarbon::lifecycle
