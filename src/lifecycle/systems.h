// Inventory presets for the three leadership systems of Table 2.
//
// Component counts come from public architecture documents:
//  * Frontier — 9,408 nodes, each 1x EPYC 7763 ("Trento") + 4x MI250X +
//    512 GB DDR4; Orion file system: ~695 PB HDD capacity tier (the figure
//    the paper quotes) plus flash performance/metadata tiers (~60 PB
//    modeled, within the publicly reported range once node-adjacent burst
//    capacity is included).
//  * LUMI — LUMI-G: 2,978 nodes (1x EPYC 7763 + 4x MI250X + 512 GB);
//    LUMI-C: 2,048 nodes (2x EPYC 7763 + 256 GB); LUMI-P 80 PB HDD;
//    LUMI-F ~8.5 PB flash.
//  * Perlmutter — 1,536 GPU nodes (1x EPYC 7763 + 4x A100 SXM4 + 256 GB);
//    3,072 CPU nodes (2x EPYC 7763 + 512 GB); 35 PB all-flash scratch,
//    no HDD tier.
//
// Fig. 5 reports proportions only (the paper deliberately omits absolutes);
// these inventories reproduce its proportions to within a few points.
#pragma once

#include <vector>

#include "lifecycle/inventory.h"

namespace hpcarbon::lifecycle {

SystemInventory frontier();
SystemInventory lumi();
SystemInventory perlmutter();

/// Table 2 order.
std::vector<SystemInventory> studied_systems();

}  // namespace hpcarbon::lifecycle
