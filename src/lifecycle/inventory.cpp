#include "lifecycle/inventory.h"

#include "core/error.h"

namespace hpcarbon::lifecycle {

namespace {
embodied::PartClass class_of(embodied::PartId id) {
  if (embodied::is_processor(id)) return embodied::processor(id).cls;
  return embodied::memory(id).cls;
}
}  // namespace

Mass ClassBreakdown::total() const {
  Mass t;
  for (const auto& m : by_class) t += m;
  return t;
}

double ClassBreakdown::share_percent(embodied::PartClass cls) const {
  const double tot = total().to_grams();
  if (tot <= 0) return 0;
  return 100.0 * by_class[static_cast<std::size_t>(cls)].to_grams() / tot;
}

double ClassBreakdown::memory_storage_share_percent() const {
  return share_percent(embodied::PartClass::kDram) +
         share_percent(embodied::PartClass::kSsd) +
         share_percent(embodied::PartClass::kHdd);
}

ClassBreakdown class_breakdown(const SystemInventory& system) {
  ClassBreakdown b;
  for (const auto& c : system.components) {
    HPC_REQUIRE(c.count >= 0, "negative component count in " + system.name);
    const Mass m = embodied::embodied_of(c.part).total() * c.count;
    b.by_class[static_cast<std::size_t>(class_of(c.part))] += m;
  }
  return b;
}

Mass system_embodied(const SystemInventory& system) {
  return class_breakdown(system).total();
}

}  // namespace hpcarbon::lifecycle
