// Grid decarbonization scenarios.
//
// The paper's Insight 8 is forward-looking: "esp. if the center already
// runs primarily on renewable energy sources, as could be the case in the
// future for many centers". This module makes that future explicit: a grid
// whose average carbon intensity declines at a fixed annual rate, and the
// upgrade arithmetic re-evaluated on that trajectory. As grids decarbonize,
// operational savings shrink over time and the embodied tax takes longer to
// amortize — or never amortizes.
#pragma once

#include <optional>

#include "core/units.h"
#include "lifecycle/upgrade.h"

namespace hpcarbon::lifecycle {

/// Exponentially declining average carbon intensity:
/// CI(t) = CI0 * (1 - annual_decline)^t, t in years.
class GridTrajectory {
 public:
  GridTrajectory(CarbonIntensity initial, double annual_decline);

  CarbonIntensity initial() const { return initial_; }
  double annual_decline() const { return decline_; }

  CarbonIntensity at(double years) const;

  /// Integral of CI(t) dt over [t0, t1], in (g/kWh)·years — multiply by an
  /// annual energy to get grams.
  double integral(double t0, double t1) const;

 private:
  CarbonIntensity initial_;
  double decline_;
};

/// savings%(t) of an upgrade when the grid decarbonizes along `traj`
/// (the scenario's own `intensity` field is ignored in favor of the
/// trajectory).
double savings_percent(const UpgradeScenario& s, const GridTrajectory& traj,
                       double years);

/// First break-even time under the trajectory within `horizon_years`, or
/// nullopt if the upgrade never pays off inside the horizon. Monotone
/// bisection on cumulative carbon difference.
std::optional<double> breakeven_years(const UpgradeScenario& s,
                                      const GridTrajectory& traj,
                                      double horizon_years = 30.0);

/// Break-even core on precomputed annual energies (kWh) and the new node's
/// embodied grams — the seam the Monte-Carlo layer samples through (it
/// perturbs em_new_g and scales the energies per sample). The
/// scenario-based overload above wraps this with point values.
std::optional<double> breakeven_years(double e_keep_kwh, double e_new_kwh,
                                      double em_new_g,
                                      const GridTrajectory& traj,
                                      double horizon_years);

}  // namespace hpcarbon::lifecycle
