#include "lifecycle/scenario.h"

#include <cmath>

#include "core/error.h"

namespace hpcarbon::lifecycle {

GridTrajectory::GridTrajectory(CarbonIntensity initial, double annual_decline)
    : initial_(initial), decline_(annual_decline) {
  HPC_REQUIRE(initial.to_g_per_kwh() > 0, "initial intensity must be positive");
  HPC_REQUIRE(annual_decline >= 0.0 && annual_decline < 1.0,
              "annual decline must be in [0,1)");
}

CarbonIntensity GridTrajectory::at(double years) const {
  HPC_REQUIRE(years >= 0, "time must be non-negative");
  return CarbonIntensity::grams_per_kwh(
      initial_.to_g_per_kwh() * std::pow(1.0 - decline_, years));
}

double GridTrajectory::integral(double t0, double t1) const {
  HPC_REQUIRE(t1 >= t0 && t0 >= 0, "invalid integration bounds");
  const double ci0 = initial_.to_g_per_kwh();
  if (decline_ == 0.0) return ci0 * (t1 - t0);
  const double k = std::log(1.0 - decline_);  // negative
  return ci0 * (std::exp(k * t1) - std::exp(k * t0)) / k;
}

double savings_percent(const UpgradeScenario& s, const GridTrajectory& traj,
                       double years) {
  HPC_REQUIRE(years > 0, "years must be positive");
  const double ci_integral = traj.integral(0.0, years);  // (g/kWh)·years
  const double keep_g = annual_energy_keep(s).to_kwh() * ci_integral;
  const double up_g = upgrade_embodied(s).to_grams() +
                      annual_energy_upgrade(s).to_kwh() * ci_integral;
  return 100.0 * (keep_g - up_g) / keep_g;
}

std::optional<double> breakeven_years(const UpgradeScenario& s,
                                      const GridTrajectory& traj,
                                      double horizon_years) {
  return breakeven_years(annual_energy_keep(s).to_kwh(),
                         annual_energy_upgrade(s).to_kwh(),
                         upgrade_embodied(s).to_grams(), traj, horizon_years);
}

std::optional<double> breakeven_years(double e_keep, double e_new, double em,
                                      const GridTrajectory& traj,
                                      double horizon_years) {
  HPC_REQUIRE(horizon_years > 0, "horizon must be positive");
  if (e_new >= e_keep) return std::nullopt;
  // Cumulative difference D(t) = (e_keep - e_new) * integral(0,t) - em is
  // monotone increasing; bisect for the root.
  auto diff = [&](double t) {
    return (e_keep - e_new) * traj.integral(0.0, t) - em;
  };
  if (diff(horizon_years) < 0) return std::nullopt;
  double lo = 0, hi = horizon_years;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    (diff(mid) < 0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace hpcarbon::lifecycle
