#include "lifecycle/upgrade.h"

#include "core/error.h"

namespace hpcarbon::lifecycle {

namespace {
constexpr double kHoursPerYearD = 8760.0;
}

Energy annual_energy_keep(const UpgradeScenario& s) {
  HPC_REQUIRE(s.usage.gpu_usage > 0 && s.usage.gpu_usage <= 1.0,
              "GPU usage must be in (0,1]");
  const Power p = hw::node_training_power(s.old_node, s.suite);
  const Hours busy = Hours::hours(kHoursPerYearD * s.usage.gpu_usage);
  return (p * busy) * s.pue.annual_mean();
}

Energy annual_energy_upgrade(const UpgradeScenario& s) {
  const double time_ratio =
      hw::suite_time_ratio(s.suite, s.old_node, s.new_node);
  const Power p = hw::node_training_power(s.new_node, s.suite);
  const Hours busy =
      Hours::hours(kHoursPerYearD * s.usage.gpu_usage * time_ratio);
  return (p * busy) * s.pue.annual_mean();
}

Mass upgrade_embodied(const UpgradeScenario& s) {
  return hw::node_embodied(s.new_node, hw::EmbodiedScope::kFullNode);
}

double savings_percent(const UpgradeScenario& s, double years) {
  HPC_REQUIRE(years > 0, "years must be positive");
  const double keep_g =
      (s.intensity * annual_energy_keep(s)).to_grams() * years;
  const double up_g = upgrade_embodied(s).to_grams() +
                      (s.intensity * annual_energy_upgrade(s)).to_grams() *
                          years;
  return 100.0 * (keep_g - up_g) / keep_g;
}

std::vector<double> savings_curve(const UpgradeScenario& s,
                                  const std::vector<double>& years) {
  std::vector<double> out;
  out.reserve(years.size());
  for (double y : years) out.push_back(savings_percent(s, y));
  return out;
}

std::optional<double> breakeven_years(const UpgradeScenario& s) {
  const double keep_rate = (s.intensity * annual_energy_keep(s)).to_grams();
  const double up_rate = (s.intensity * annual_energy_upgrade(s)).to_grams();
  if (up_rate >= keep_rate) return std::nullopt;
  return upgrade_embodied(s).to_grams() / (keep_rate - up_rate);
}

double asymptotic_savings_percent(const UpgradeScenario& s) {
  const double e_old = annual_energy_keep(s).to_kwh();
  const double e_new = annual_energy_upgrade(s).to_kwh();
  return 100.0 * (1.0 - e_new / e_old);
}

}  // namespace hpcarbon::lifecycle
