// Distribution-returning lifecycle analyses: uncertainty end to end.
//
// Benhari et al. and Rao & Chien both show that break-even years and
// upgrade savings flip sign within plausible input bands; the paper's own
// Threats-to-Validity section lists the uncertain inputs (yield, per-area
// emission factors, EPC, grid carbon intensity). The point-estimate APIs
// in footprint.h / upgrade.h / scenario.h / fleet.h answer "what is the
// number"; this module answers "what is the number's distribution":
//
//  * node lifetime footprint   -> embodied/operational/total distributions
//                                 (embodied bands x CI perturbation);
//  * break-even under a        -> distribution of break-even years plus
//    GridTrajectory               P(payback within horizon);
//  * upgrade / fleet savings%  -> confidence intervals on the savings that
//                                 decide all-at-once vs phased vs keep.
//
// Every sample perturbs the part-level embodied inputs (through
// hw::sample_node_embodied) and scales grid carbon intensity within
// bands.grid_ci; both sources propagate jointly so correlated outputs
// (embodied vs total) stay correlated. Sampling runs on mc::Engine:
// deterministic per plan, bit-identical across thread counts.
#pragma once

#include "embodied/uncertainty.h"
#include "grid/trace.h"
#include "lifecycle/fleet.h"
#include "lifecycle/footprint.h"
#include "lifecycle/scenario.h"
#include "lifecycle/upgrade.h"
#include "mc/engine.h"
#include "op/pue.h"
#include "workload/suite.h"

namespace hpcarbon::lifecycle {

/// Uncertain inputs of the lifecycle layer: the part-level embodied bands
/// plus a relative band on grid carbon intensity (trace or trajectory).
struct LifecycleBands {
  embodied::UncertaintyBands embodied;
  /// Grid CI half-width: one multiplicative draw in [1-b, 1+b] per sample
  /// scales the whole trace/trajectory (systematic bias band, not
  /// hour-to-hour noise — the grid simulator already models the latter).
  double grid_ci = 0.10;
};

/// Throws hpcarbon::Error for negative or >= 100% grid bands, and for
/// invalid embodied bands (see embodied::validate).
void validate(const LifecycleBands& bands);

/// Distributions of a TotalFootprint's three components. `total` is the
/// per-sample sum, so it carries the embodied/operational correlation.
struct FootprintDistribution {
  mc::Distribution embodied;
  mc::Distribution operational;
  mc::Distribution total;
};

/// Distribution counterpart of node_lifetime_footprint (constant CI).
FootprintDistribution node_lifetime_footprint_distribution(
    const hw::NodeConfig& node, workload::Suite suite, double gpu_usage,
    double years, CarbonIntensity intensity, const op::PueModel& pue,
    const LifecycleBands& bands, const mc::SamplePlan& plan = {});

/// Distribution counterpart of the trace-priced overload: embodied bands
/// x CI-trace perturbation.
FootprintDistribution node_lifetime_footprint_distribution(
    const hw::NodeConfig& node, workload::Suite suite, double gpu_usage,
    double years, const grid::CarbonIntensityTrace& trace, HourOfYear start,
    const op::PueModel& pue, const LifecycleBands& bands,
    const mc::SamplePlan& plan = {});

/// Break-even under a decarbonizing grid, as a distribution.
struct BreakevenDistribution {
  /// Break-even years of the samples that do pay back within the horizon
  /// (empty when none do).
  mc::Distribution years;
  /// P(break-even within the horizon): paid-back samples / all samples.
  double payback_probability = 0;
  int samples = 0;
};

/// Distribution counterpart of breakeven_years(scenario, trajectory).
BreakevenDistribution breakeven_distribution(const UpgradeScenario& s,
                                             const GridTrajectory& traj,
                                             double horizon_years,
                                             const LifecycleBands& bands,
                                             const mc::SamplePlan& plan = {});

/// Distribution counterpart of savings_percent(scenario, trajectory, years).
mc::Distribution savings_distribution(const UpgradeScenario& s,
                                      const GridTrajectory& traj, double years,
                                      const LifecycleBands& bands,
                                      const mc::SamplePlan& plan = {});

/// Distribution counterpart of fleet_savings_percent: the savings% CI of a
/// replacement schedule at the horizon.
mc::Distribution fleet_savings_distribution(const FleetPlan& fleet,
                                            const GridTrajectory& traj,
                                            double years,
                                            const LifecycleBands& bands,
                                            const mc::SamplePlan& plan = {});

}  // namespace hpcarbon::lifecycle
