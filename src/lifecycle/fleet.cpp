#include "lifecycle/fleet.h"

#include <algorithm>

#include "core/error.h"

namespace hpcarbon::lifecycle {

namespace {

void validate(const FleetPlan& plan) {
  HPC_REQUIRE(plan.node_count > 0, "fleet must have nodes");
  double total = 0;
  for (double f : plan.replacement_schedule) {
    HPC_REQUIRE(f >= 0.0 && f <= 1.0, "replacement fraction outside [0,1]");
    total += f;
  }
  HPC_REQUIRE(total <= 1.0 + 1e-9, "replacement schedule exceeds the fleet");
}

}  // namespace

Mass fleet_cumulative_carbon(const FleetPlan& plan, const GridTrajectory& traj,
                             double years) {
  return Mass::grams(fleet_cumulative_grams(
      plan, traj, years, annual_energy_keep(plan.node).to_kwh(),
      annual_energy_upgrade(plan.node).to_kwh(),
      upgrade_embodied(plan.node).to_grams()));
}

double fleet_cumulative_grams(const FleetPlan& plan, const GridTrajectory& traj,
                              double years, double e_old, double e_new,
                              double em_new) {
  validate(plan);
  HPC_REQUIRE(years > 0, "years must be positive");
  const double n = plan.node_count;

  double grams = 0;
  double replaced = 0;
  for (std::size_t k = 0; k < plan.replacement_schedule.size(); ++k) {
    const double f = plan.replacement_schedule[k];
    if (f <= 0) continue;
    const auto swap_time = static_cast<double>(k);
    replaced += f;
    if (swap_time >= years) {
      // Replacement happens after the horizon: this slice runs old gear
      // the whole time and buys nothing yet.
      grams += f * n * e_old * traj.integral(0.0, years);
      continue;
    }
    grams += f * n *
             (e_old * traj.integral(0.0, swap_time) + em_new +
              e_new * traj.integral(swap_time, years));
  }
  grams += (1.0 - replaced) * n * e_old * traj.integral(0.0, years);
  return grams;
}

Mass fleet_keep_carbon(const FleetPlan& plan, const GridTrajectory& traj,
                       double years) {
  validate(plan);
  HPC_REQUIRE(years > 0, "years must be positive");
  const double e_old = annual_energy_keep(plan.node).to_kwh();
  return Mass::grams(plan.node_count * e_old * traj.integral(0.0, years));
}

double fleet_savings_percent(const FleetPlan& plan, const GridTrajectory& traj,
                             double years) {
  const double keep = fleet_keep_carbon(plan, traj, years).to_grams();
  const double up = fleet_cumulative_carbon(plan, traj, years).to_grams();
  return 100.0 * (keep - up) / keep;
}

std::vector<Mass> fleet_carbon_curve(const FleetPlan& plan,
                                     const GridTrajectory& traj,
                                     const std::vector<double>& years) {
  std::vector<Mass> out;
  out.reserve(years.size());
  for (double y : years) {
    out.push_back(fleet_cumulative_carbon(plan, traj, y));
  }
  return out;
}

FleetPlan all_at_once(UpgradeScenario node, int node_count) {
  FleetPlan p;
  p.node = std::move(node);
  p.node_count = node_count;
  p.replacement_schedule = {1.0};
  return p;
}

FleetPlan phased(UpgradeScenario node, int node_count, int phase_years) {
  HPC_REQUIRE(phase_years >= 1, "phase length must be at least one year");
  FleetPlan p;
  p.node = std::move(node);
  p.node_count = node_count;
  p.replacement_schedule.assign(static_cast<std::size_t>(phase_years),
                                1.0 / phase_years);
  return p;
}

}  // namespace hpcarbon::lifecycle
