// Total carbon footprint: Eq. 1 of the paper, C_total = C_em + C_op,
// with convenience constructors for the common "component + workload +
// region + lifetime" question practitioners ask.
#pragma once

#include <string>

#include "core/units.h"
#include "grid/trace.h"
#include "hw/node.h"
#include "op/pue.h"
#include "workload/suite.h"

namespace hpcarbon::lifecycle {

struct TotalFootprint {
  Mass embodied;
  Mass operational;
  Mass total() const { return embodied + operational; }
  /// Fraction of lifetime carbon that was emitted before first boot.
  double embodied_share() const {
    const double t = total().to_grams();
    return t > 0 ? embodied.to_grams() / t : 0.0;
  }
  std::string to_string() const;
};

/// Lifetime footprint of a node: full-node embodied plus `years` of
/// suite-average operation at `gpu_usage` duty cycle under a constant
/// carbon intensity (busy-energy model; see lifecycle/upgrade.h).
TotalFootprint node_lifetime_footprint(const hw::NodeConfig& node,
                                       workload::Suite suite,
                                       double gpu_usage, double years,
                                       CarbonIntensity intensity,
                                       const op::PueModel& pue = op::PueModel());

/// Same, but priced against an hourly carbon-intensity trace starting at
/// `start` (captures the temporal variation of Sec. 4).
TotalFootprint node_lifetime_footprint(const hw::NodeConfig& node,
                                       workload::Suite suite,
                                       double gpu_usage, double years,
                                       const grid::CarbonIntensityTrace& trace,
                                       HourOfYear start = HourOfYear(0),
                                       const op::PueModel& pue = op::PueModel());

/// Years of operation after which cumulative operational carbon equals the
/// embodied carbon ("carbon payback horizon" of a procurement).
double embodied_parity_years(const hw::NodeConfig& node, workload::Suite suite,
                             double gpu_usage, CarbonIntensity intensity,
                             const op::PueModel& pue = op::PueModel());

}  // namespace hpcarbon::lifecycle
