// System-scale component inventory and embodied-carbon rollups (Fig. 5).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/units.h"
#include "embodied/catalog.h"

namespace hpcarbon::lifecycle {

struct ComponentCount {
  embodied::PartId part;
  double count = 0;
};

struct SystemInventory {
  std::string name;       // "Frontier"
  std::string location;   // "Oak Ridge, TN, United States"
  std::string processors; // "AMD EPYC 7763, AMD Instinct MI250X"
  long cores = 0;
  int year = 0;
  std::vector<ComponentCount> components;
};

/// Embodied carbon aggregated into the five Fig. 5 classes
/// (GPU, CPU, DRAM, SSD, HDD).
struct ClassBreakdown {
  std::array<Mass, 5> by_class;  // indexed by embodied::PartClass
  Mass total() const;
  /// Percentage share of one class.
  double share_percent(embodied::PartClass cls) const;
  /// Combined memory+storage share (DRAM+SSD+HDD) — the paper's "~60%"
  /// observation.
  double memory_storage_share_percent() const;
};

ClassBreakdown class_breakdown(const SystemInventory& system);

/// Total system embodied carbon (all components).
Mass system_embodied(const SystemInventory& system);

}  // namespace hpcarbon::lifecycle
