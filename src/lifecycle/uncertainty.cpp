#include "lifecycle/uncertainty.h"

#include <cmath>
#include <limits>

#include "core/error.h"
#include "hw/node.h"

namespace hpcarbon::lifecycle {

namespace {

constexpr double kNoPayback = std::numeric_limits<double>::quiet_NaN();

// One multiplicative grid-CI draw in [1-b, 1+b]. Always drawn *after* the
// node's embodied inputs so the per-sample draw order — and therefore a
// given (seed, sample) result — is fixed across the APIs below.
double grid_scale(Rng& rng, const LifecycleBands& bands) {
  return rng.uniform(1.0 - bands.grid_ci, 1.0 + bands.grid_ci);
}

// Shared body of the two footprint overloads: embodied is re-sampled per
// draw, operational is linear in the CI scale, total is their per-sample
// sum (correlations preserved).
FootprintDistribution footprint_distribution(const hw::NodeConfig& node,
                                             double base_operational_g,
                                             const LifecycleBands& bands,
                                             const mc::SamplePlan& plan) {
  auto dists = mc::Engine(plan).run_multi(
      3, [&](std::size_t, Rng& rng, std::span<double> out) {
        const double em =
            hw::sample_node_embodied(node, hw::EmbodiedScope::kFullNode,
                                     bands.embodied, rng)
                .to_grams();
        const double op = base_operational_g * grid_scale(rng, bands);
        out[0] = em;
        out[1] = op;
        out[2] = em + op;
      });
  return {std::move(dists[0]), std::move(dists[1]), std::move(dists[2])};
}

}  // namespace

void validate(const LifecycleBands& bands) {
  embodied::validate(bands.embodied);
  HPC_REQUIRE(bands.grid_ci >= 0.0 && bands.grid_ci < 1.0,
              "grid CI band must be in [0, 1)");
}

FootprintDistribution node_lifetime_footprint_distribution(
    const hw::NodeConfig& node, workload::Suite suite, double gpu_usage,
    double years, CarbonIntensity intensity, const op::PueModel& pue,
    const LifecycleBands& bands, const mc::SamplePlan& plan) {
  validate(bands);
  const TotalFootprint point =
      node_lifetime_footprint(node, suite, gpu_usage, years, intensity, pue);
  return footprint_distribution(node, point.operational.to_grams(), bands,
                                plan);
}

FootprintDistribution node_lifetime_footprint_distribution(
    const hw::NodeConfig& node, workload::Suite suite, double gpu_usage,
    double years, const grid::CarbonIntensityTrace& trace, HourOfYear start,
    const op::PueModel& pue, const LifecycleBands& bands,
    const mc::SamplePlan& plan) {
  validate(bands);
  const TotalFootprint point = node_lifetime_footprint(
      node, suite, gpu_usage, years, trace, start, pue);
  return footprint_distribution(node, point.operational.to_grams(), bands,
                                plan);
}

BreakevenDistribution breakeven_distribution(const UpgradeScenario& s,
                                             const GridTrajectory& traj,
                                             double horizon_years,
                                             const LifecycleBands& bands,
                                             const mc::SamplePlan& plan) {
  validate(bands);
  const double e_keep = annual_energy_keep(s).to_kwh();
  const double e_new = annual_energy_upgrade(s).to_kwh();
  const auto raw = mc::Engine(plan).run_samples([&](std::size_t, Rng& rng) {
    const double em =
        hw::sample_node_embodied(s.new_node, hw::EmbodiedScope::kFullNode,
                                 bands.embodied, rng)
            .to_grams();
    // One CI scale multiplies the whole trajectory, i.e. both annual rates.
    const double scale = grid_scale(rng, bands);
    const auto be = breakeven_years(e_keep * scale, e_new * scale, em, traj,
                                    horizon_years);
    return be.value_or(kNoPayback);
  });

  BreakevenDistribution result;
  result.samples = static_cast<int>(raw.size());
  std::vector<double> paid_back;
  paid_back.reserve(raw.size());
  for (double y : raw) {
    if (!std::isnan(y)) paid_back.push_back(y);
  }
  result.payback_probability =
      static_cast<double>(paid_back.size()) / static_cast<double>(raw.size());
  result.years = mc::Distribution(std::move(paid_back));
  return result;
}

mc::Distribution savings_distribution(const UpgradeScenario& s,
                                      const GridTrajectory& traj, double years,
                                      const LifecycleBands& bands,
                                      const mc::SamplePlan& plan) {
  validate(bands);
  HPC_REQUIRE(years > 0, "years must be positive");
  const double e_keep = annual_energy_keep(s).to_kwh();
  const double e_new = annual_energy_upgrade(s).to_kwh();
  const double ci_integral = traj.integral(0.0, years);
  return mc::Engine(plan).run([&](std::size_t, Rng& rng) {
    const double em =
        hw::sample_node_embodied(s.new_node, hw::EmbodiedScope::kFullNode,
                                 bands.embodied, rng)
            .to_grams();
    const double scale = grid_scale(rng, bands);
    const double keep_g = e_keep * scale * ci_integral;
    const double up_g = em + e_new * scale * ci_integral;
    return 100.0 * (keep_g - up_g) / keep_g;
  });
}

mc::Distribution fleet_savings_distribution(const FleetPlan& fleet,
                                            const GridTrajectory& traj,
                                            double years,
                                            const LifecycleBands& bands,
                                            const mc::SamplePlan& plan) {
  validate(bands);
  HPC_REQUIRE(years > 0, "years must be positive");
  const double e_old = annual_energy_keep(fleet.node).to_kwh();
  const double e_new = annual_energy_upgrade(fleet.node).to_kwh();
  return mc::Engine(plan).run([&](std::size_t, Rng& rng) {
    const double em =
        hw::sample_node_embodied(fleet.node.new_node,
                                 hw::EmbodiedScope::kFullNode, bands.embodied,
                                 rng)
            .to_grams();
    const double scale = grid_scale(rng, bands);
    const double keep_g =
        fleet.node_count * e_old * scale * traj.integral(0.0, years);
    const double up_g = fleet_cumulative_grams(fleet, traj, years,
                                               e_old * scale, e_new * scale,
                                               em);
    return 100.0 * (keep_g - up_g) / keep_g;
  });
}

}  // namespace hpcarbon::lifecycle
