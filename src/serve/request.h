// Typed carbon queries: the request half of the serve layer.
//
// A request is one JSON document: {"op": <family>, "params": {...},
// "id": <optional echo tag>}. Six scenario families cover the questions
// the modeling stack answers (each maps onto the same library calls the
// `run`/`sweep`/`trace`/`fleetsim` CLI paths make, so service responses
// agree with the offline tools):
//
//   embodied   — Eq. 2-5 breakdown for one catalog part
//   lifetime   — node lifetime footprint priced on a region CI trace,
//                optionally with Monte-Carlo quantiles (mc::substream)
//   breakeven  — upgrade break-even under a decarbonizing grid
//   sched      — scheduler-policy carbon savings vs the FCFS baseline
//   trace      — CI-trace statistics, plus O(1) window-mean queries
//   fleetsim   — the same policy-vs-FCFS question through the integer-tick
//                fleet engine (src/fleetsim): seeded arrival processes,
//                optional savings quantiles over workload seeds
//
// parse_query validates strictly (unknown fields, bad types, out-of-range
// values, and unknown enum names are errors, not defaults) and normalizes:
// every optional parameter is filled with its default and names are
// resolved to canonical form (e.g. policy short names). The *canonical
// key* is the normalized document dumped with sorted object keys and
// hashed with FNV-1a/64 — semantically identical requests (reordered
// fields, explicit defaults, short vs canonical policy names) collide on
// purpose, which is what makes the result cache (serve/cache.h) effective.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/json.h"
#include "embodied/catalog.h"

namespace hpcarbon::serve {

struct Query {
  /// Family name ("embodied", "lifetime", "breakeven", "sched", "trace",
  /// "fleetsim").
  std::string op;
  /// Client echo tag (response correlation); excluded from the canonical
  /// key — two requests differing only in id are the same question.
  std::string id;
  /// {"op":...,"params":{...}} with sorted keys: the cache identity.
  std::string canonical;
  /// FNV-1a/64 of `canonical`.
  std::uint64_t key = 0;
  /// Index of `op` in query_families() (0..5), set by parse_query: the
  /// engine's per-family instrument slot (obs latency histograms and
  /// request counters) without a string compare on the hot path.
  int family = -1;

  /// Normalized parameters (defaults filled, names canonical, validated),
  /// materialized on demand from `canonical`. parse_query builds the
  /// canonical text directly — the hot path (cache hits) never pays for a
  /// params document; evaluation on a cache miss materializes one here.
  json::Value params() const;
};

/// The six family names, in documentation order.
std::vector<std::string> query_families();

/// Catalog part slugs accepted by the embodied family, in Table 1/5 order
/// (e.g. "a100-pcie-40"). One per embodied::PartId.
std::vector<std::string> part_slugs();
/// Slug -> catalog id; throws hpcarbon::Error for unknown slugs.
embodied::PartId part_from_slug(const std::string& slug);

/// Parse + validate one request document (a json::Reader ref — the
/// zero-copy form the serve hot path uses). Throws hpcarbon::Error with a
/// message naming the op and parameter on any violation.
Query parse_query(const json::Reader& reader, json::Reader::Ref doc);
/// json::Reader::parse + parse_query over a private reader.
Query parse_query_line(std::string_view line);

}  // namespace hpcarbon::serve
