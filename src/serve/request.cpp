#include "serve/request.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/error.h"
#include "core/time.h"
#include "grid/presets.h"
#include "sched/policy.h"

namespace hpcarbon::serve {

namespace {

/// Largest integer parameter the canonical form can carry exactly: the
/// normalized document stores numbers as doubles, so anything above 2^53
/// would canonicalize lossily.
constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

/// Strict, consuming view over a request's params object (a json::Reader
/// ref). Every getter validates its field, records it as consumed, and
/// emits the normalized value (default filled, name canonicalized) as a
/// pre-dumped canonical fragment; finish() rejects any field no getter
/// claimed. canonical_params() assembles the sorted {"k":v,...} object
/// text directly — the fragments byte-match what Value::dump(sort_keys)
/// of the equivalent document would produce, so canonical keys (and every
/// cached entry) are unchanged by the zero-copy rework.
class ParamReader {
 public:
  using Ref = json::Reader::Ref;
  static constexpr Ref kNone = json::Reader::kNone;

  ParamReader(const json::Reader& reader, Ref params, std::string_view op)
      : reader_(reader), params_(params), op_(op) {}

  bool has(const char* key) const {
    return params_ != kNone && reader_.find(params_, key) != kNone;
  }

  double number(const char* key, double def, double lo, double hi) {
    double v = def;
    if (const Ref f = claim(key); f != kNone) {
      if (!reader_.is_number(f)) fail(key, "must be a number");
      v = reader_.as_number(f);
    }
    if (!(v >= lo && v <= hi)) {
      fail(key, "must be in [" + json::dump_number(lo) + ", " +
                    json::dump_number(hi) + "]");
    }
    emit_number(key, v);
    return v;
  }

  long integer(const char* key, long def, long lo, long hi) {
    double v = static_cast<double>(def);
    if (const Ref f = claim(key); f != kNone) {
      if (!reader_.is_number(f)) fail(key, "must be an integer");
      v = reader_.as_number(f);
      if (v != std::floor(v) || std::abs(v) > kMaxExactInt) {
        fail(key, "must be an integer");
      }
    }
    const long n = static_cast<long>(v);
    if (n < lo || n > hi) {
      fail(key, "must be in [" + std::to_string(lo) + ", " +
                    std::to_string(hi) + "]");
    }
    emit_number(key, static_cast<double>(n));
    return n;
  }

  std::string str(const char* key, const char* def) {
    std::string_view v = def;
    if (const Ref f = claim(key); f != kNone) {
      if (!reader_.is_string(f)) fail(key, "must be a string");
      v = reader_.as_string(f);
    }
    emit_string(key, v);
    return std::string(v);
  }

  std::string required_str(const char* key) {
    const Ref f = claim(key);
    if (f == kNone) fail(key, "is required");
    if (!reader_.is_string(f)) fail(key, "must be a string");
    const std::string_view v = reader_.as_string(f);
    emit_string(key, v);
    return std::string(v);
  }

  /// Optional string; absent fields stay absent in the normalized params
  /// (no default exists — e.g. trace_csv paths).
  std::string optional_str(const char* key) {
    const Ref f = claim(key);
    if (f == kNone) return {};
    if (!reader_.is_string(f) || reader_.as_string(f).empty()) {
      fail(key, "must be a non-empty string");
    }
    const std::string_view v = reader_.as_string(f);
    emit_string(key, v);
    return std::string(v);
  }

  /// Replace the normalized value of an already-claimed field (name
  /// canonicalization: short policy names, etc.).
  void rewrite(const char* key, std::string canonical_value) {
    for (auto& [k, frag] : fields_) {
      if (k == key) {
        frag = json::quote(canonical_value);
        return;
      }
    }
  }

  std::vector<std::string> string_array(const char* key,
                                        std::vector<std::string> def,
                                        std::size_t min_len,
                                        std::size_t max_len) {
    std::vector<std::string> v = std::move(def);
    if (const Ref f = claim(key); f != kNone) {
      if (!reader_.is_array(f)) fail(key, "must be an array of strings");
      v.clear();
      for (Ref item = reader_.first_child(f); item != kNone;
           item = reader_.next(item)) {
        if (!reader_.is_string(item)) fail(key, "must be an array of strings");
        v.emplace_back(reader_.as_string(item));
      }
    }
    if (v.size() < min_len || v.size() > max_len) {
      fail(key, "must have between " + std::to_string(min_len) + " and " +
                    std::to_string(max_len) + " entries");
    }
    std::string frag = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i != 0) frag.push_back(',');
      json::quote_to(frag, v[i]);
    }
    frag.push_back(']');
    fields_.emplace_back(key, std::move(frag));
    return v;
  }

  [[noreturn]] void fail(const char* key, const std::string& what) const {
    throw Error("query '" + std::string(op_) + "': parameter '" + key + "' " +
                what);
  }

  void finish() {
    if (params_ == kNone) return;
    for (Ref f = reader_.first_child(params_); f != kNone;
         f = reader_.next(f)) {
      const std::string_view k = reader_.key(f);
      if (std::find(consumed_.begin(), consumed_.end(), k) ==
          consumed_.end()) {
        throw Error("query '" + std::string(op_) + "': unknown parameter '" +
                    std::string(k) + "'");
      }
    }
  }

  /// The sorted-canonical params object text ({"a":1,"b":"x"}), appended.
  void canonical_params_to(std::string& out) {
    std::sort(fields_.begin(), fields_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.push_back('{');
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) out.push_back(',');
      json::quote_to(out, fields_[i].first);
      out.push_back(':');
      out += fields_[i].second;
    }
    out.push_back('}');
  }

 private:
  Ref claim(const char* key) {
    consumed_.push_back(key);
    return params_ == kNone ? kNone : reader_.find(params_, key);
  }

  void emit_number(const char* key, double v) {
    std::string frag;
    json::dump_number_to(frag, v);
    fields_.emplace_back(key, std::move(frag));
  }

  void emit_string(const char* key, std::string_view v) {
    fields_.emplace_back(key, json::quote(v));
  }

  const json::Reader& reader_;
  Ref params_;
  std::string_view op_;
  /// Getter keys are string literals with static storage, so views are
  /// safe to hold.
  std::vector<std::string_view> consumed_;
  /// (key, dumped fragment) in claim order; sorted once at assembly.
  std::vector<std::pair<std::string_view, std::string>> fields_;
};

const std::vector<std::pair<const char*, embodied::PartId>>& slug_table() {
  using embodied::PartId;
  static const std::vector<std::pair<const char*, PartId>> table = {
      {"mi250x", PartId::kMi250x},
      {"a100-pcie-40", PartId::kA100Pcie40},
      {"v100-sxm2-32", PartId::kV100Sxm2_32},
      {"epyc-7763", PartId::kEpyc7763},
      {"epyc-7742", PartId::kEpyc7742},
      {"xeon-gold-6240r", PartId::kXeonGold6240R},
      {"dram-64gb-ddr4", PartId::kDram64GbDdr4},
      {"ssd-nytro-3530", PartId::kSsdNytro3530_3_2Tb},
      {"hdd-exos-x16", PartId::kHddExosX16_16Tb},
      {"p100-pcie-16", PartId::kP100Pcie16},
      {"a100-sxm4-40", PartId::kA100Sxm4_40},
      {"xeon-e5-2680", PartId::kXeonE5_2680},
      {"epyc-7542", PartId::kEpyc7542},
  };
  return table;
}

void check_region(ParamReader& r, const char* key, const std::string& code) {
  if (!grid::find_region(code)) {
    std::string known;
    for (const auto& c : grid::codes_of(grid::all_regions())) {
      known += (known.empty() ? "" : ", ") + c;
    }
    r.fail(key, "names no Table 3 region (known: " + known + ")");
  }
}

void check_node(ParamReader& r, const char* key, const std::string& node) {
  if (node != "p100" && node != "v100" && node != "a100") {
    r.fail(key, "must be one of p100, v100, a100");
  }
}

void check_suite(ParamReader& r, const char* key, const std::string& suite) {
  if (suite != "nlp" && suite != "vision" && suite != "candle") {
    r.fail(key, "must be one of nlp, vision, candle");
  }
}

void normalize_embodied(ParamReader& r) {
  const std::string part = r.required_str("part");
  const auto& table = slug_table();
  const bool known = std::any_of(table.begin(), table.end(), [&](auto& e) {
    return part == e.first;
  });
  if (!known) {
    std::string slugs;
    for (const auto& s : part_slugs()) slugs += (slugs.empty() ? "" : ", ") + s;
    r.fail("part", "names no catalog part (known: " + slugs + ")");
  }
}

void normalize_lifetime(ParamReader& r) {
  check_node(r, "node", r.required_str("node"));
  check_suite(r, "suite", r.str("suite", "nlp"));
  r.number("years", 5.0, 0.1, 100.0);
  r.number("gpu_usage", 0.40, 0.01, 1.0);
  check_region(r, "region", r.str("region", "CISO"));
  r.optional_str("trace_csv");
  r.integer("start_month", 5, 0, 11);
  r.number("pue", 1.2, 1.0, 3.0);
  // samples > 0 switches on the Monte-Carlo quantile columns; the draws
  // ride mc::substream(seed, i) so the answer is bit-identical whatever
  // pool executes it.
  r.integer("samples", 0, 0, 1000000);
  r.integer("seed", 42, 0, static_cast<long>(kMaxExactInt));
  r.number("grid_band", 0.10, 0.0, 0.99);
}

void normalize_breakeven(ParamReader& r) {
  check_node(r, "old_node", r.str("old_node", "v100"));
  check_node(r, "new_node", r.str("new_node", "a100"));
  check_suite(r, "suite", r.str("suite", "nlp"));
  r.number("intensity_g_per_kwh", 200.0, 1.0, 10000.0);
  r.number("annual_decline", 0.03, 0.0, 0.999);
  r.number("horizon_years", 15.0, 0.1, 200.0);
  r.number("gpu_usage", 0.40, 0.01, 1.0);
  r.number("pue", 1.2, 1.0, 3.0);
}

void normalize_sched(ParamReader& r) {
  // regions[0] is the home site; the engine adds the two cleanest others
  // as remote-dispatch options, mirroring `hpcarbon run`.
  const auto regions = r.string_array(
      "regions", {"ERCOT", "ESO", "CISO"}, 1, grid::all_regions().size());
  std::set<std::string> seen;
  for (const auto& code : regions) {
    check_region(r, "regions", code);
    if (!seen.insert(code).second) {
      r.fail("regions", "lists region '" + code + "' twice");
    }
  }
  const std::string policy = r.required_str("policy");
  const auto desc = sched::find_policy(policy);
  if (!desc) {
    std::string known;
    for (const auto& d : sched::registered_policies()) {
      known += (known.empty() ? "" : ", ") + d.short_name;
    }
    r.fail("policy", "names no registered policy (known: " + known + ")");
  }
  // Short names resolve to the canonical name before hashing, so
  // {"policy":"greedy"} and {"policy":"greedy-lowest-ci"} share a cache
  // entry.
  r.rewrite("policy", desc->name);
  r.number("days", 28.0, 0.5, 366.0);
  r.number("rate", 2.5, 0.01, 1000.0);
  r.integer("capacity", 16, 1, 4096);
  r.integer("start_month", 5, 0, 11);
  r.integer("seed", 2024, 0, static_cast<long>(kMaxExactInt));
}

void normalize_fleetsim(ParamReader& r) {
  // Same trio contract as sched: regions[0] is the home site, the engine
  // adds the two cleanest others as remote options.
  const auto regions = r.string_array(
      "regions", {"ERCOT", "ESO", "CISO"}, 1, grid::all_regions().size());
  std::set<std::string> seen;
  for (const auto& code : regions) {
    check_region(r, "regions", code);
    if (!seen.insert(code).second) {
      r.fail("regions", "lists region '" + code + "' twice");
    }
  }
  const std::string policy = r.required_str("policy");
  const auto desc = sched::find_policy(policy);
  if (!desc) {
    std::string known;
    for (const auto& d : sched::registered_policies()) {
      known += (known.empty() ? "" : ", ") + d.short_name;
    }
    r.fail("policy", "names no registered policy (known: " + known + ")");
  }
  r.rewrite("policy", desc->name);
  const std::string process = r.str("process", "poisson");
  if (process != "poisson" && process != "diurnal" && process != "bursty") {
    r.fail("process", "must be one of poisson, diurnal, bursty");
  }
  const double days = r.number("days", 28.0, 0.5, 366.0);
  const double rate = r.number("rate", 4.0, 0.01, 10000.0);
  // Cross-field guard: the engine simulates millions of jobs per second,
  // but a serve answer should still be interactive — bound the expected
  // job count, not each factor alone.
  if (rate * 24.0 * days > 4.0e6) {
    r.fail("rate", "implies more than 4000000 expected jobs (rate * days * "
                   "24); lower rate or days");
  }
  r.integer("capacity", 16, 1, 4096);
  r.integer("start_month", 5, 0, 11);
  // samples > 0 adds savings quantiles over workload seeds (bounded: each
  // sample is two full fleet runs).
  r.integer("samples", 0, 0, 64);
  r.integer("seed", 2024, 0, static_cast<long>(kMaxExactInt));
}

void normalize_trace(ParamReader& r) {
  check_region(r, "region", r.required_str("region"));
  r.optional_str("trace_csv");
  const bool has_start = r.has("window_start_hour");
  const bool has_len = r.has("window_hours");
  if (has_start != has_len) {
    r.fail(has_start ? "window_hours" : "window_start_hour",
           "window queries need both window_start_hour and window_hours");
  }
  if (has_start) {
    r.number("window_start_hour", 0.0, 0.0, kHoursPerYear);
    r.number("window_hours", 24.0, 1e-6, kHoursPerYear);
  }
  // A windowless query carries no window fields in its canonical form, so
  // it shares a cache entry with any other spelling of "whole year".
}

}  // namespace

std::vector<std::string> query_families() {
  return {"embodied", "lifetime", "breakeven", "sched", "trace", "fleetsim"};
}

std::vector<std::string> part_slugs() {
  std::vector<std::string> out;
  for (const auto& [slug, id] : slug_table()) out.push_back(slug);
  return out;
}

embodied::PartId part_from_slug(const std::string& slug) {
  for (const auto& [s, id] : slug_table()) {
    if (slug == s) return id;
  }
  throw Error("unknown catalog part slug '" + slug + "'");
}

json::Value Query::params() const {
  json::Reader reader;
  const json::Reader::Ref root = reader.parse(canonical);
  return reader.materialize(reader.find(root, "params"));
}

Query parse_query(const json::Reader& reader, json::Reader::Ref doc) {
  using Ref = json::Reader::Ref;
  constexpr Ref kNone = json::Reader::kNone;

  if (!reader.is_object(doc)) throw Error("request must be a JSON object");
  for (Ref f = reader.first_child(doc); f != kNone; f = reader.next(f)) {
    const std::string_view k = reader.key(f);
    if (k != "op" && k != "params" && k != "id") {
      throw Error("request has unknown top-level field '" + std::string(k) +
                  "'");
    }
  }
  const Ref op_field = reader.find(doc, "op");
  if (op_field == kNone || !reader.is_string(op_field)) {
    throw Error("request needs a string 'op' field");
  }
  Query q;
  q.op = reader.as_string(op_field);

  if (const Ref id = reader.find(doc, "id"); id != kNone) {
    if (!reader.is_string(id)) throw Error("request 'id' must be a string");
    q.id = reader.as_string(id);
  }

  const Ref params = reader.find(doc, "params");
  if (params != kNone && !reader.is_object(params)) {
    throw Error("request 'params' must be an object");
  }

  // Family indices match query_families() order.
  ParamReader r(reader, params, q.op);
  if (q.op == "embodied") { q.family = 0; normalize_embodied(r); }
  else if (q.op == "lifetime") { q.family = 1; normalize_lifetime(r); }
  else if (q.op == "breakeven") { q.family = 2; normalize_breakeven(r); }
  else if (q.op == "sched") { q.family = 3; normalize_sched(r); }
  else if (q.op == "trace") { q.family = 4; normalize_trace(r); }
  else if (q.op == "fleetsim") { q.family = 5; normalize_fleetsim(r); }
  else {
    std::string known;
    for (const auto& f : query_families()) {
      known += (known.empty() ? "" : ", ") + f;
    }
    throw Error("unknown op '" + q.op + "' (known: " + known + ")");
  }
  r.finish();

  // The canonical text is assembled directly: "op" sorts before "params",
  // and the params fragments are already dump-identical, so these are the
  // exact bytes Value::dump(sort_keys=true) of the normalized document
  // produced before the zero-copy rework (pinned by the golden tests).
  q.canonical.reserve(32 + q.op.size());
  q.canonical += "{\"op\":";
  json::quote_to(q.canonical, q.op);
  q.canonical += ",\"params\":";
  r.canonical_params_to(q.canonical);
  q.canonical.push_back('}');
  q.key = json::fnv1a64(q.canonical);
  return q;
}

Query parse_query_line(std::string_view line) {
  json::Reader reader;
  return parse_query(reader, reader.parse(line));
}

}  // namespace hpcarbon::serve
