// Result + trace caching: the memory layer of the serve subsystem.
//
// Two caches with different lifetimes and shapes:
//
//  * ResultCache — a sharded LRU over rendered result documents, keyed by
//    the canonical FNV-1a/64 request hash (serve/request.h). N independent
//    mutex-guarded shards (key-selected) keep concurrent lookups from
//    serializing on one lock; the byte budget is split evenly across
//    shards and enforced by LRU eviction per shard. Hit/miss/eviction
//    counters aggregate over shards for the stats op and bench_serve.
//
//  * TraceStore — a process-wide store of immutable, fully-built
//    CarbonIntensityTraces behind shared_ptr. Generating a preset region's
//    synthetic year and parsing a --trace-csv file both cost orders of
//    magnitude more than any single query; the store does each exactly
//    once per process and hands out shared, already-prefix-summed traces.
//    The CLI's traces_for (scenario_runner) and every serve query pull
//    traces through it, so multi-section sweeps and repeated queries stop
//    re-parsing identical inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.h"
#include "grid/trace.h"

namespace hpcarbon::serve {

/// Aggregate counters over all shards (one consistent-enough snapshot;
/// shards are read one lock at a time), plus the per-shard occupancy
/// breakdown — totals alone hide shard imbalance, which is exactly what
/// an operator tuning --shards needs to see ({"op":"stats"} reports
/// these as the shard_entries / shard_bytes arrays).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inserts = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  /// Parallel per-shard views, indexed by shard (entries == sum of
  /// shard_entries, bytes == sum of shard_bytes).
  std::vector<std::size_t> shard_entries;
  std::vector<std::size_t> shard_bytes;
};

class ResultCache {
 public:
  /// `byte_budget` is split evenly across `shards`; both must be >= 1.
  explicit ResultCache(std::size_t shards = 8,
                       std::size_t byte_budget = 8u << 20);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Cached value for the canonical key, refreshing its LRU position;
  /// nullopt on miss. The full canonical string is verified on a hash
  /// hit — FNV-1a/64 is not collision-proof, and a collision must read
  /// as a miss, never as a confidently wrong answer. Counts one hit or
  /// one miss.
  std::optional<std::string> get(std::uint64_t key,
                                 std::string_view canonical);

  /// get(), appended: on a hit the cached value is appended to `out`
  /// under the shard lock (no intermediate std::string) and true is
  /// returned; on a miss `out` is untouched. The serve hot path embeds
  /// the cached result mid-response this way, so a warm lookup copies
  /// the bytes exactly once — into the response buffer.
  bool get_append(std::uint64_t key, std::string_view canonical,
                  std::string& out);

  /// Insert or refresh (a hash collision replaces the resident entry —
  /// latest canonical wins). Evicts least-recently-used entries of the
  /// shard until it fits its budget. A value whose own cost exceeds the
  /// shard budget is not cached at all (it would evict the entire shard
  /// for a one-shot entry).
  void put(std::uint64_t key, std::string_view canonical, std::string value);

  CacheStats stats() const;
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t byte_budget() const { return budget_per_shard_ * shards_.size(); }

  /// Budgeted cost of one entry: canonical + value bytes + bookkeeping
  /// overhead.
  static std::size_t entry_cost(std::string_view canonical,
                                std::string_view value);

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::string canonical;
    std::string value;
  };
  struct Shard {
    mutable AnnotatedMutex mu;
    /// Front = most recently used. Every field below holds the shard
    /// invariant (index points into lru; bytes == sum of entry costs;
    /// entries == inserts - evictions) only while mu is held.
    std::list<Entry> lru HPCARBON_GUARDED_BY(mu);
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index
        HPCARBON_GUARDED_BY(mu);
    std::size_t bytes HPCARBON_GUARDED_BY(mu) = 0;
    std::uint64_t hits HPCARBON_GUARDED_BY(mu) = 0;
    std::uint64_t misses HPCARBON_GUARDED_BY(mu) = 0;
    std::uint64_t evictions HPCARBON_GUARDED_BY(mu) = 0;
    std::uint64_t inserts HPCARBON_GUARDED_BY(mu) = 0;
  };

  Shard& shard_of(std::uint64_t key);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t budget_per_shard_;
};

class TraceStore {
 public:
  using TracePtr = std::shared_ptr<const grid::CarbonIntensityTrace>;

  TraceStore() = default;
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Process-wide store shared by the CLI tools and serve engines.
  static TraceStore& global();

  /// The generated synthetic trace of a Table 3 region code, built once
  /// (bit-identical to grid::generate_traces — the simulator is
  /// deterministic per RegionSpec). Throws hpcarbon::Error for unknown
  /// codes.
  TracePtr preset(const std::string& code);

  /// The imported trace of (region code, CSV path): read + parsed once,
  /// rows taken as the region's local time, native cadence. `note`
  /// receives the human-readable import summary ("ESO <- f.csv: ...")
  /// recorded when the file was first parsed. Throws on unknown codes and
  /// on any import error.
  TracePtr imported(const std::string& code, const std::string& path,
                    std::string* note = nullptr);

  /// Traces currently held.
  std::size_t size() const;
  /// Lookup counters (a miss is a generate/parse).
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// Drop every cached trace and reset counters (tests).
  void clear();

  /// Cap on *imported* traces held at once (presets are bounded by the
  /// seven Table 3 regions and never evicted). When a new import would
  /// exceed the cap, the least-recently-used import is dropped — holders
  /// of its shared_ptr are unaffected; the next request for it re-parses.
  /// Bounds daemon memory when clients name many distinct trace_csv
  /// paths. Default 32 (a year of 5-minute data is ~1.7 MB shared).
  void set_max_imports(std::size_t n);
  std::size_t max_imports() const;

 private:
  struct Entry {
    TracePtr trace;
    std::string note;
    bool is_import = false;
    std::uint64_t last_use = 0;  // recency stamp for import eviction
  };

  void evict_imports_locked() HPCARBON_REQUIRES(mu_);

  mutable AnnotatedMutex mu_;
  std::map<std::string, Entry> entries_ HPCARBON_GUARDED_BY(mu_);
  std::uint64_t hits_ HPCARBON_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ HPCARBON_GUARDED_BY(mu_) = 0;
  std::uint64_t use_clock_ HPCARBON_GUARDED_BY(mu_) = 0;
  std::size_t max_imports_ HPCARBON_GUARDED_BY(mu_) = 32;
};

}  // namespace hpcarbon::serve
