#include "serve/engine.h"

#include <algorithm>
#include <unordered_map>

#include "core/error.h"
#include "core/thread_pool.h"
#include "core/time.h"
#include "serve/limits.h"
#include "embodied/catalog.h"
#include "embodied/models.h"
#include "grid/analysis.h"
#include "hw/node.h"
#include "lifecycle/footprint.h"
#include "lifecycle/scenario.h"
#include "lifecycle/uncertainty.h"
#include "lifecycle/upgrade.h"
#include "fleetsim/engine.h"
#include "fleetsim/uncertainty.h"
#include "fleetsim/workload.h"
#include "op/pue.h"
#include "sched/engine.h"
#include "sched/policy.h"
#include "sched/workload_gen.h"
#include "workload/suite.h"

namespace hpcarbon::serve {

namespace {

double num(const json::Value& params, const char* key) {
  const json::Value* f = params.find(key);
  HPC_REQUIRE(f != nullptr, std::string("normalized params miss '") + key + "'");
  return f->as_number();
}

const std::string& str(const json::Value& params, const char* key) {
  const json::Value* f = params.find(key);
  HPC_REQUIRE(f != nullptr, std::string("normalized params miss '") + key + "'");
  return f->as_string();
}

hw::NodeConfig node_from_slug(const std::string& slug) {
  if (slug == "p100") return hw::p100_node();
  if (slug == "v100") return hw::v100_node();
  if (slug == "a100") return hw::a100_node();
  throw Error("unknown node slug '" + slug + "'");
}

workload::Suite suite_from_slug(const std::string& slug) {
  if (slug == "nlp") return workload::Suite::kNlp;
  if (slug == "vision") return workload::Suite::kVision;
  if (slug == "candle") return workload::Suite::kCandle;
  throw Error("unknown suite slug '" + slug + "'");
}

/// The query's trace: the imported file when trace_csv is present, the
/// generated preset otherwise. Both come pre-built from the store.
TraceStore::TracePtr query_trace(const json::Value& params, TraceStore& traces,
                                 std::string* note) {
  const std::string& region = str(params, "region");
  if (const json::Value* path = params.find("trace_csv")) {
    return traces.imported(region, path->as_string(), note);
  }
  return traces.preset(region);
}

json::Value evaluate_embodied(const json::Value& params) {
  const embodied::PartId id = part_from_slug(str(params, "part"));
  const embodied::EmbodiedBreakdown b = embodied::embodied_of(id);
  json::Value out = json::Value::object();
  out.set("display_name", json::Value::string(embodied::display_name(id)));
  out.set("manufacturing_g", json::Value::number(b.manufacturing.to_grams()));
  out.set("packaging_g", json::Value::number(b.packaging.to_grams()));
  out.set("packaging_share", json::Value::number(b.packaging_share()));
  out.set("total_g", json::Value::number(b.total().to_grams()));
  return out;
}

json::Value evaluate_lifetime(const json::Value& params, TraceStore& traces) {
  const hw::NodeConfig node = node_from_slug(str(params, "node"));
  const workload::Suite suite = suite_from_slug(str(params, "suite"));
  const double years = num(params, "years");
  const double usage = num(params, "gpu_usage");
  const op::PueModel pue(num(params, "pue"));
  const HourOfYear start(
      month_start_hour(static_cast<int>(num(params, "start_month"))));
  std::string note;
  const TraceStore::TracePtr trace = query_trace(params, traces, &note);

  const lifecycle::TotalFootprint fp = lifecycle::node_lifetime_footprint(
      node, suite, usage, years, *trace, start, pue);
  json::Value out = json::Value::object();
  out.set("embodied_g", json::Value::number(fp.embodied.to_grams()));
  out.set("embodied_share", json::Value::number(fp.embodied_share()));
  out.set("operational_g", json::Value::number(fp.operational.to_grams()));
  out.set("total_g", json::Value::number(fp.total().to_grams()));
  if (!note.empty()) out.set("import", json::Value::string(note));

  const int samples = static_cast<int>(num(params, "samples"));
  if (samples > 0) {
    lifecycle::LifecycleBands bands;  // default embodied bands
    bands.grid_ci = num(params, "grid_band");
    const mc::SamplePlan plan{
        samples, static_cast<std::uint64_t>(num(params, "seed")), nullptr};
    const lifecycle::FootprintDistribution d =
        lifecycle::node_lifetime_footprint_distribution(
            node, suite, usage, years, *trace, start, pue, bands, plan);
    out.set("samples", json::Value::number(samples));
    out.set("total_p05_g", json::Value::number(d.total.p05()));
    out.set("total_p50_g", json::Value::number(d.total.p50()));
    out.set("total_p95_g", json::Value::number(d.total.p95()));
  }
  return out;
}

json::Value evaluate_breakeven(const json::Value& params) {
  lifecycle::UpgradeScenario s;
  s.old_node = node_from_slug(str(params, "old_node"));
  s.new_node = node_from_slug(str(params, "new_node"));
  s.suite = suite_from_slug(str(params, "suite"));
  s.intensity =
      CarbonIntensity::grams_per_kwh(num(params, "intensity_g_per_kwh"));
  s.usage = lifecycle::UsageProfile{num(params, "gpu_usage")};
  s.pue = op::PueModel(num(params, "pue"));
  const lifecycle::GridTrajectory traj(s.intensity,
                                       num(params, "annual_decline"));
  const double horizon = num(params, "horizon_years");

  const auto be = lifecycle::breakeven_years(s, traj, horizon);
  json::Value out = json::Value::object();
  out.set("asymptotic_savings_pct",
          json::Value::number(lifecycle::asymptotic_savings_percent(s)));
  out.set("breakeven_years",
          be ? json::Value::number(*be) : json::Value::null());
  out.set("pays_back", json::Value::boolean(be.has_value()));
  out.set("savings_pct_at_horizon",
          json::Value::number(lifecycle::savings_percent(s, traj, horizon)));
  return out;
}

/// Site trio shared by the sched and fleetsim families, mirroring
/// run_scenarios: the home region (regions[0]) plus the two cleanest
/// (lowest annual median CI) other selected regions as remote options —
/// same construction, same numbers.
std::vector<sched::Site> query_sites(const json::Value& params,
                                     TraceStore& traces) {
  std::vector<std::string> codes;
  for (const auto& item : params.find("regions")->items()) {
    codes.push_back(item.as_string());
  }
  std::vector<TraceStore::TracePtr> region_traces;
  std::vector<grid::RegionSummary> summaries;
  for (const auto& code : codes) {
    region_traces.push_back(traces.preset(code));
    summaries.push_back(grid::summarize(*region_traces.back()));
  }

  std::vector<std::size_t> by_median(codes.size());
  for (std::size_t i = 0; i < by_median.size(); ++i) by_median[i] = i;
  std::sort(by_median.begin(), by_median.end(),
            [&](std::size_t a, std::size_t b) {
              return summaries[a].box.median < summaries[b].box.median;
            });
  const int capacity = static_cast<int>(num(params, "capacity"));
  std::vector<sched::Site> sites = {
      sched::make_site(codes[0], *region_traces[0], capacity)};
  for (const std::size_t idx : by_median) {
    if (idx == 0 || sites.size() >= 3) continue;
    sites.push_back(
        sched::make_site(codes[idx], *region_traces[idx], capacity));
  }
  return sites;
}

json::Value evaluate_sched(const json::Value& params, TraceStore& traces) {
  const std::vector<sched::Site> sites = query_sites(params, traces);

  sched::WorkloadParams wp;
  wp.horizon_hours = 24.0 * num(params, "days");
  wp.arrival_rate_per_hour = num(params, "rate");
  wp.seed = static_cast<std::uint64_t>(num(params, "seed"));
  const auto jobs = sched::generate_jobs(wp);
  const HourOfYear epoch(
      month_start_hour(static_cast<int>(num(params, "start_month"))));

  sched::SchedulingEngine engine(sites, epoch);
  const auto baseline_policy = sched::make_policy("fcfs-local");
  const auto base = engine.run(jobs, *baseline_policy);
  const auto policy = sched::make_policy(str(params, "policy"));
  const auto metrics = engine.run(jobs, *policy);

  const double base_g = base.total_carbon.to_grams();
  const double g = metrics.total_carbon.to_grams();
  json::Value out = json::Value::object();
  out.set("baseline_carbon_kg",
          json::Value::number(base.total_carbon.to_kilograms()));
  out.set("carbon_kg", json::Value::number(metrics.total_carbon.to_kilograms()));
  out.set("jobs", json::Value::number(static_cast<double>(jobs.size())));
  out.set("jobs_completed", json::Value::number(metrics.jobs_completed));
  out.set("mean_wait_hours", json::Value::number(metrics.mean_wait_hours));
  out.set("p95_wait_hours", json::Value::number(metrics.p95_wait_hours));
  out.set("remote_dispatches", json::Value::number(metrics.remote_dispatches));
  out.set("savings_pct", json::Value::number(
                             base_g > 0 ? 100.0 * (base_g - g) / base_g : 0.0));
  return out;
}

json::Value evaluate_fleetsim(const json::Value& params, TraceStore& traces) {
  const std::vector<sched::Site> sites = query_sites(params, traces);
  const HourOfYear epoch(
      month_start_hour(static_cast<int>(num(params, "start_month"))));
  const fleetsim::FleetEngine engine(sites, epoch);

  fleetsim::FleetWorkloadParams wp;
  wp.process = fleetsim::arrival_process_from(str(params, "process"));
  wp.horizon_hours = 24.0 * num(params, "days");
  wp.rate_per_hour = num(params, "rate");
  wp.seed = static_cast<std::uint64_t>(num(params, "seed"));
  const fleetsim::FleetJobs jobs = fleetsim::generate_fleet_jobs(wp);

  const auto baseline_policy = sched::make_policy("fcfs-local");
  const auto base = engine.run(jobs, *baseline_policy);
  const auto policy = sched::make_policy(str(params, "policy"));
  const auto metrics = engine.run(jobs, *policy);

  const double base_g = base.total_carbon.to_grams();
  const double g = metrics.total_carbon.to_grams();
  json::Value out = json::Value::object();
  out.set("baseline_carbon_kg",
          json::Value::number(base.total_carbon.to_kilograms()));
  out.set("carbon_kg", json::Value::number(metrics.total_carbon.to_kilograms()));
  out.set("jobs", json::Value::number(static_cast<double>(jobs.size())));
  out.set("jobs_completed", json::Value::number(metrics.jobs_completed));
  out.set("mean_wait_hours", json::Value::number(metrics.mean_wait_hours));
  out.set("p95_wait_hours", json::Value::number(metrics.p95_wait_hours));
  out.set("process", json::Value::string(fleetsim::to_string(wp.process)));
  out.set("remote_dispatches", json::Value::number(metrics.remote_dispatches));
  out.set("savings_pct", json::Value::number(
                             base_g > 0 ? 100.0 * (base_g - g) / base_g : 0.0));
  out.set("utilization", json::Value::number(metrics.utilization));

  const int samples = static_cast<int>(num(params, "samples"));
  if (samples > 0) {
    // Savings quantiles over workload seeds; pool nullptr keeps serve
    // evaluation single-threaded per request (batch fan-out already runs
    // requests in parallel) — the result is bit-identical either way.
    const mc::SamplePlan plan{
        samples, static_cast<std::uint64_t>(num(params, "seed")), nullptr};
    const mc::Distribution d = fleetsim::fleet_savings_distribution(
        engine, wp, str(params, "policy"), plan);
    out.set("samples", json::Value::number(samples));
    out.set("savings_p05", json::Value::number(d.p05()));
    out.set("savings_p50", json::Value::number(d.p50()));
    out.set("savings_p95", json::Value::number(d.p95()));
  }
  return out;
}

json::Value evaluate_trace(const json::Value& params, TraceStore& traces) {
  std::string note;
  const TraceStore::TracePtr trace = query_trace(params, traces, &note);
  const grid::RegionSummary summary = grid::summarize(*trace);

  json::Value out = json::Value::object();
  out.set("cov_pct", json::Value::number(summary.cov_percent));
  out.set("max", json::Value::number(summary.box.max));
  out.set("mean", json::Value::number(summary.box.mean));
  out.set("median", json::Value::number(summary.box.median));
  out.set("min", json::Value::number(summary.box.min));
  out.set("p25", json::Value::number(summary.box.q1));
  out.set("p75", json::Value::number(summary.box.q3));
  out.set("samples", json::Value::number(static_cast<double>(trace->size())));
  out.set("step_seconds", json::Value::number(trace->step_seconds()));
  if (!note.empty()) out.set("import", json::Value::string(note));
  if (const json::Value* start = params.find("window_start_hour")) {
    const double hours = num(params, "window_hours");
    // O(1) through the prefix sums the trace was built with.
    out.set("window_mean",
            json::Value::number(
                trace->interval_sum(start->as_number(), hours) / hours));
  }
  return out;
}

// --- Response assembly ------------------------------------------------------
//
// Responses are assembled as text around the cached result document, so a
// cache hit and a fresh evaluation emit byte-identical lines. Key order
// is the sorted order dump(sort_keys) would produce.

/// Append the success-response text up to (and including) "result": — the
/// caller appends the result document and the closing brace. Splitting
/// here lets a cache hit stream the cached bytes straight into the
/// response buffer (ResultCache::get_append).
void success_prefix_to(std::string& out, const std::string& id,
                       const std::string& op) {
  out.push_back('{');
  if (!id.empty()) {
    out += "\"id\":";
    json::quote_to(out, id);
    out.push_back(',');
  }
  out += "\"ok\":true,\"op\":";
  json::quote_to(out, op);
  out += ",\"result\":";
}

std::string error_response(const std::string& id, const std::string& what) {
  std::string out;
  append_error_response(out, id, what);
  return out;
}

/// The id of a parsed request document, for error correlation on
/// documents that fail validation; empty when there is no string id.
std::string salvage_id(const json::Reader& reader, json::Reader::Ref doc) {
  if (reader.is_object(doc)) {
    if (const json::Reader::Ref id = reader.find(doc, "id");
        id != json::Reader::kNone && reader.is_string(id)) {
      return std::string(reader.as_string(id));
    }
  }
  return {};
}

/// One request line, parsed exactly once and classified. kError carries
/// its final response; kStats is answered at its sequence point; kQuery
/// goes through the cache/evaluate path.
struct Planned {
  enum class Kind { kError, kStats, kQuery } kind = Kind::kError;
  Query q;              // kQuery
  std::string response; // kError
  std::string stats_id; // kStats
};

Planned plan_line(std::string_view line) {
  // Reject oversized lines before parsing (and before any id salvage —
  // the streaming front-ends never materialize the oversized bytes, so
  // answering without an id is what keeps every transport byte-identical
  // here). serve/limits.h owns the shared constant and message.
  if (line.size() > kMaxRequestLineBytes) {
    Planned p;
    p.response = error_response({}, oversize_line_error(line.size()));
    return p;
  }
  // One reader per thread: node pool and unescape arena warm up once and
  // every subsequent line parses with zero allocations. plan_line only
  // runs on the thread that called handle_line/handle_batch (the pool
  // fan-out evaluates already-planned queries), and nothing below keeps
  // views into the reader past the next parse — Planned owns its strings.
  thread_local json::Reader reader;
  constexpr json::Reader::Ref kNone = json::Reader::kNone;
  Planned p;
  json::Reader::Ref doc = kNone;
  try {
    doc = reader.parse(line);
  } catch (const Error& e) {
    p.response = error_response({}, e.what());
    return p;
  }
  if (reader.is_object(doc)) {
    if (const json::Reader::Ref op = reader.find(doc, "op");
        op != kNone && reader.is_string(op) &&
        reader.as_string(op) == "stats") {
      // The control request is validated as strictly as any family:
      // unknown fields and a non-string id are errors, not defaults.
      for (json::Reader::Ref f = reader.first_child(doc); f != kNone;
           f = reader.next(f)) {
        const std::string_view k = reader.key(f);
        if (k != "op" && k != "id") {
          p.response = error_response(
              salvage_id(reader, doc),
              "request has unknown top-level field '" + std::string(k) +
                  "' (stats takes only op and id)");
          return p;
        }
      }
      if (const json::Reader::Ref id = reader.find(doc, "id"); id != kNone) {
        if (!reader.is_string(id)) {
          p.response = error_response({}, "request 'id' must be a string");
          return p;
        }
        p.stats_id = reader.as_string(id);
      }
      p.kind = Planned::Kind::kStats;
      return p;
    }
  }
  try {
    p.q = parse_query(reader, doc);
    p.kind = Planned::Kind::kQuery;
  } catch (const Error& e) {
    p.response = error_response(salvage_id(reader, doc), e.what());
  }
  return p;
}

}  // namespace

void append_error_response(std::string& out, std::string_view id,
                           std::string_view what) {
  out += "{\"error\":";
  json::quote_to(out, what);
  if (!id.empty()) {
    out += ",\"id\":";
    json::quote_to(out, id);
  }
  out += ",\"ok\":false}";
}

std::string oversize_line_error(std::size_t line_bytes) {
  return "request line exceeds " + std::to_string(kMaxRequestLineBytes) +
         " bytes (got " + std::to_string(line_bytes) + ")";
}

json::Value evaluate(const Query& q, TraceStore& traces) {
  // Materialized lazily from the canonical text: only cache misses (and
  // direct evaluate callers) pay for a params document.
  const json::Value params = q.params();
  if (q.op == "embodied") return evaluate_embodied(params);
  if (q.op == "lifetime") return evaluate_lifetime(params, traces);
  if (q.op == "breakeven") return evaluate_breakeven(params);
  if (q.op == "sched") return evaluate_sched(params, traces);
  if (q.op == "trace") return evaluate_trace(params, traces);
  if (q.op == "fleetsim") return evaluate_fleetsim(params, traces);
  throw Error("unknown op '" + q.op + "'");
}

Engine::Engine(ServeOptions opts)
    : opts_(opts), cache_(opts.cache_shards, opts.cache_bytes) {}

ThreadPool& Engine::pool() const {
  return opts_.pool != nullptr ? *opts_.pool : ThreadPool::global();
}

TraceStore& Engine::traces() const {
  return opts_.traces != nullptr ? *opts_.traces : TraceStore::global();
}

std::string Engine::stats_response(const std::string& id) const {
  const CacheStats cs = cache_.stats();
  const TraceStore& ts = traces();
  json::Value out = json::Value::object();
  out.set("bytes", json::Value::number(static_cast<double>(cs.bytes)));
  out.set("byte_budget",
          json::Value::number(static_cast<double>(cache_.byte_budget())));
  out.set("entries", json::Value::number(static_cast<double>(cs.entries)));
  out.set("evictions", json::Value::number(static_cast<double>(cs.evictions)));
  out.set("hits", json::Value::number(static_cast<double>(cs.hits)));
  out.set("inserts", json::Value::number(static_cast<double>(cs.inserts)));
  out.set("misses", json::Value::number(static_cast<double>(cs.misses)));
  // Transport counters: the socket front-end (src/net) wires its
  // FrontEndStats in through ServeOptions; pipe and batch have no
  // transport and report zeros, so the field set is identical everywhere.
  const FrontEndStats* fe = opts_.frontend;
  auto net = [&](const std::atomic<std::uint64_t> FrontEndStats::*field) {
    return json::Value::number(static_cast<double>(
        fe != nullptr ? (fe->*field).load(std::memory_order_relaxed) : 0));
  };
  out.set("net_accepted", net(&FrontEndStats::connections_accepted));
  out.set("net_active", net(&FrontEndStats::connections_active));
  out.set("net_bytes_in", net(&FrontEndStats::bytes_in));
  out.set("net_bytes_out", net(&FrontEndStats::bytes_out));
  out.set("net_max_inflight", net(&FrontEndStats::max_inflight));
  out.set("net_shed", net(&FrontEndStats::requests_shed));
  out.set("shards",
          json::Value::number(static_cast<double>(cache_.shard_count())));
  out.set("trace_entries", json::Value::number(static_cast<double>(ts.size())));
  out.set("trace_hits", json::Value::number(static_cast<double>(ts.hits())));
  out.set("trace_misses",
          json::Value::number(static_cast<double>(ts.misses())));
  std::string response;
  success_prefix_to(response, id, "stats");
  out.dump_to(response, /*sort_keys=*/true);
  response.push_back('}');
  return response;
}

namespace {

void answer_query_to(ResultCache& cache, TraceStore& traces, const Query& q,
                     std::string& out) {
  const std::size_t mark = out.size();
  success_prefix_to(out, q.id, q.op);
  if (cache.get_append(q.key, q.canonical, out)) {
    out.push_back('}');
    return;
  }
  try {
    const std::string result = evaluate(q, traces).dump(/*sort_keys=*/true);
    cache.put(q.key, q.canonical, result);
    out += result;
    out.push_back('}');
  } catch (const Error& e) {
    out.resize(mark);  // drop the success prefix
    append_error_response(out, q.id, e.what());  // runtime failures not cached
  }
}

void answer_segment(ResultCache& cache, ThreadPool& pool, TraceStore& traces,
                    std::vector<Planned>& plan, std::size_t begin,
                    std::size_t end, std::vector<std::string>& responses) {
  // Plan the segment: errors are final, cache hits answer immediately,
  // and identical in-flight canonical keys dedup to one leader.
  std::unordered_map<std::uint64_t, std::size_t> first_of;
  std::vector<std::size_t> leaders;
  std::vector<bool> follower(end - begin, false);
  for (std::size_t i = begin; i < end; ++i) {
    Planned& p = plan[i];
    if (p.kind == Planned::Kind::kError) {
      responses[i] = p.response;
      continue;
    }
    if (first_of.count(p.q.key) != 0) {
      follower[i - begin] = true;  // answered from the leader's fill below
      continue;
    }
    success_prefix_to(responses[i], p.q.id, p.q.op);
    if (cache.get_append(p.q.key, p.q.canonical, responses[i])) {
      responses[i].push_back('}');
      continue;
    }
    responses[i].clear();  // miss: the leader fan-out rebuilds the line
    first_of[p.q.key] = i;
    leaders.push_back(i);
  }

  // Distinct uncached queries fan out over the pool. Each leader writes
  // only its own response slot, so the fan-out is race-free and the
  // output is bit-identical for any worker count (evaluation is
  // deterministic per canonical query).
  pool.parallel_for(0, leaders.size(), [&](std::size_t k) {
    const Query& q = plan[leaders[k]].q;
    std::string& out = responses[leaders[k]];
    try {
      const std::string result = evaluate(q, traces).dump(/*sort_keys=*/true);
      cache.put(q.key, q.canonical, result);
      success_prefix_to(out, q.id, q.op);
      out += result;
      out.push_back('}');
    } catch (const Error& e) {
      append_error_response(out, q.id, e.what());
    }
  });

  // Followers read their leader's freshly-cached result (a real counted
  // hit, matching what a sequential replay would record). If the entry
  // was already evicted — tiny budgets — or the leader failed, the
  // follower takes the same miss -> evaluate -> put path a sequential
  // replay would: deterministic evaluation reproduces the same bytes.
  // (Counters match sequential replay too, except under intra-segment
  // eviction churn, where racing leader puts make hit/miss/eviction
  // totals timing-dependent — see the handle_batch contract.)
  for (std::size_t i = begin; i < end; ++i) {
    if (!follower[i - begin]) continue;
    answer_query_to(cache, traces, plan[i].q, responses[i]);
  }
}

}  // namespace

std::string Engine::handle_line(std::string_view line) {
  std::string out;
  handle_line_to(line, out);
  return out;
}

void Engine::handle_line_to(std::string_view line, std::string& out) {
  Planned p = plan_line(line);
  switch (p.kind) {
    case Planned::Kind::kError:
      out += p.response;
      return;
    case Planned::Kind::kStats:
      out += stats_response(p.stats_id);
      return;
    case Planned::Kind::kQuery:
      answer_query_to(cache_, traces(), p.q, out);
      return;
  }
}

std::vector<std::string> Engine::handle_batch(
    const std::vector<std::string>& lines) {
  // Parse every line exactly once, then answer in segments delimited by
  // {"op":"stats"} control requests: a stats line is a sequence point —
  // it reports the counters after everything before it and nothing after
  // it, exactly as a sequential handle_line replay would.
  std::vector<Planned> plan(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) plan[i] = plan_line(lines[i]);

  std::vector<std::string> responses(lines.size());
  std::size_t segment_start = 0;
  for (std::size_t i = 0; i <= lines.size(); ++i) {
    if (i < lines.size() && plan[i].kind != Planned::Kind::kStats) continue;
    answer_segment(cache_, pool(), traces(), plan, segment_start, i,
                   responses);
    if (i < lines.size()) responses[i] = stats_response(plan[i].stats_id);
    segment_start = i + 1;
  }
  return responses;
}

}  // namespace hpcarbon::serve
