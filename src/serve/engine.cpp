#include "serve/engine.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "core/error.h"
#include "core/thread_pool.h"
#include "core/time.h"
#include "mc/engine.h"
#include "obs/export.h"
#include "serve/limits.h"
#include "embodied/catalog.h"
#include "embodied/models.h"
#include "grid/analysis.h"
#include "hw/node.h"
#include "lifecycle/footprint.h"
#include "lifecycle/scenario.h"
#include "lifecycle/uncertainty.h"
#include "lifecycle/upgrade.h"
#include "fleetsim/engine.h"
#include "fleetsim/uncertainty.h"
#include "fleetsim/workload.h"
#include "op/pue.h"
#include "sched/engine.h"
#include "sched/policy.h"
#include "sched/workload_gen.h"
#include "workload/suite.h"

namespace hpcarbon::serve {

namespace {

double num(const json::Value& params, const char* key) {
  const json::Value* f = params.find(key);
  HPC_REQUIRE(f != nullptr, std::string("normalized params miss '") + key + "'");
  return f->as_number();
}

const std::string& str(const json::Value& params, const char* key) {
  const json::Value* f = params.find(key);
  HPC_REQUIRE(f != nullptr, std::string("normalized params miss '") + key + "'");
  return f->as_string();
}

hw::NodeConfig node_from_slug(const std::string& slug) {
  if (slug == "p100") return hw::p100_node();
  if (slug == "v100") return hw::v100_node();
  if (slug == "a100") return hw::a100_node();
  throw Error("unknown node slug '" + slug + "'");
}

workload::Suite suite_from_slug(const std::string& slug) {
  if (slug == "nlp") return workload::Suite::kNlp;
  if (slug == "vision") return workload::Suite::kVision;
  if (slug == "candle") return workload::Suite::kCandle;
  throw Error("unknown suite slug '" + slug + "'");
}

/// The query's trace: the imported file when trace_csv is present, the
/// generated preset otherwise. Both come pre-built from the store.
TraceStore::TracePtr query_trace(const json::Value& params, TraceStore& traces,
                                 std::string* note) {
  const std::string& region = str(params, "region");
  if (const json::Value* path = params.find("trace_csv")) {
    return traces.imported(region, path->as_string(), note);
  }
  return traces.preset(region);
}

json::Value evaluate_embodied(const json::Value& params) {
  const embodied::PartId id = part_from_slug(str(params, "part"));
  const embodied::EmbodiedBreakdown b = embodied::embodied_of(id);
  json::Value out = json::Value::object();
  out.set("display_name", json::Value::string(embodied::display_name(id)));
  out.set("manufacturing_g", json::Value::number(b.manufacturing.to_grams()));
  out.set("packaging_g", json::Value::number(b.packaging.to_grams()));
  out.set("packaging_share", json::Value::number(b.packaging_share()));
  out.set("total_g", json::Value::number(b.total().to_grams()));
  return out;
}

json::Value evaluate_lifetime(const json::Value& params, TraceStore& traces) {
  const hw::NodeConfig node = node_from_slug(str(params, "node"));
  const workload::Suite suite = suite_from_slug(str(params, "suite"));
  const double years = num(params, "years");
  const double usage = num(params, "gpu_usage");
  const op::PueModel pue(num(params, "pue"));
  const HourOfYear start(
      month_start_hour(static_cast<int>(num(params, "start_month"))));
  std::string note;
  const TraceStore::TracePtr trace = query_trace(params, traces, &note);

  const lifecycle::TotalFootprint fp = lifecycle::node_lifetime_footprint(
      node, suite, usage, years, *trace, start, pue);
  json::Value out = json::Value::object();
  out.set("embodied_g", json::Value::number(fp.embodied.to_grams()));
  out.set("embodied_share", json::Value::number(fp.embodied_share()));
  out.set("operational_g", json::Value::number(fp.operational.to_grams()));
  out.set("total_g", json::Value::number(fp.total().to_grams()));
  if (!note.empty()) out.set("import", json::Value::string(note));

  const int samples = static_cast<int>(num(params, "samples"));
  if (samples > 0) {
    lifecycle::LifecycleBands bands;  // default embodied bands
    bands.grid_ci = num(params, "grid_band");
    const mc::SamplePlan plan{
        samples, static_cast<std::uint64_t>(num(params, "seed")), nullptr};
    const lifecycle::FootprintDistribution d =
        lifecycle::node_lifetime_footprint_distribution(
            node, suite, usage, years, *trace, start, pue, bands, plan);
    out.set("samples", json::Value::number(samples));
    out.set("total_p05_g", json::Value::number(d.total.p05()));
    out.set("total_p50_g", json::Value::number(d.total.p50()));
    out.set("total_p95_g", json::Value::number(d.total.p95()));
  }
  return out;
}

json::Value evaluate_breakeven(const json::Value& params) {
  lifecycle::UpgradeScenario s;
  s.old_node = node_from_slug(str(params, "old_node"));
  s.new_node = node_from_slug(str(params, "new_node"));
  s.suite = suite_from_slug(str(params, "suite"));
  s.intensity =
      CarbonIntensity::grams_per_kwh(num(params, "intensity_g_per_kwh"));
  s.usage = lifecycle::UsageProfile{num(params, "gpu_usage")};
  s.pue = op::PueModel(num(params, "pue"));
  const lifecycle::GridTrajectory traj(s.intensity,
                                       num(params, "annual_decline"));
  const double horizon = num(params, "horizon_years");

  const auto be = lifecycle::breakeven_years(s, traj, horizon);
  json::Value out = json::Value::object();
  out.set("asymptotic_savings_pct",
          json::Value::number(lifecycle::asymptotic_savings_percent(s)));
  out.set("breakeven_years",
          be ? json::Value::number(*be) : json::Value::null());
  out.set("pays_back", json::Value::boolean(be.has_value()));
  out.set("savings_pct_at_horizon",
          json::Value::number(lifecycle::savings_percent(s, traj, horizon)));
  return out;
}

/// Site trio shared by the sched and fleetsim families, mirroring
/// run_scenarios: the home region (regions[0]) plus the two cleanest
/// (lowest annual median CI) other selected regions as remote options —
/// same construction, same numbers.
std::vector<sched::Site> query_sites(const json::Value& params,
                                     TraceStore& traces) {
  std::vector<std::string> codes;
  for (const auto& item : params.find("regions")->items()) {
    codes.push_back(item.as_string());
  }
  std::vector<TraceStore::TracePtr> region_traces;
  std::vector<grid::RegionSummary> summaries;
  for (const auto& code : codes) {
    region_traces.push_back(traces.preset(code));
    summaries.push_back(grid::summarize(*region_traces.back()));
  }

  std::vector<std::size_t> by_median(codes.size());
  for (std::size_t i = 0; i < by_median.size(); ++i) by_median[i] = i;
  std::sort(by_median.begin(), by_median.end(),
            [&](std::size_t a, std::size_t b) {
              return summaries[a].box.median < summaries[b].box.median;
            });
  const int capacity = static_cast<int>(num(params, "capacity"));
  std::vector<sched::Site> sites = {
      sched::make_site(codes[0], *region_traces[0], capacity)};
  for (const std::size_t idx : by_median) {
    if (idx == 0 || sites.size() >= 3) continue;
    sites.push_back(
        sched::make_site(codes[idx], *region_traces[idx], capacity));
  }
  return sites;
}

json::Value evaluate_sched(const json::Value& params, TraceStore& traces) {
  const std::vector<sched::Site> sites = query_sites(params, traces);

  sched::WorkloadParams wp;
  wp.horizon_hours = 24.0 * num(params, "days");
  wp.arrival_rate_per_hour = num(params, "rate");
  wp.seed = static_cast<std::uint64_t>(num(params, "seed"));
  const auto jobs = sched::generate_jobs(wp);
  const HourOfYear epoch(
      month_start_hour(static_cast<int>(num(params, "start_month"))));

  sched::SchedulingEngine engine(sites, epoch);
  const auto baseline_policy = sched::make_policy("fcfs-local");
  const auto base = engine.run(jobs, *baseline_policy);
  const auto policy = sched::make_policy(str(params, "policy"));
  const auto metrics = engine.run(jobs, *policy);

  const double base_g = base.total_carbon.to_grams();
  const double g = metrics.total_carbon.to_grams();
  json::Value out = json::Value::object();
  out.set("baseline_carbon_kg",
          json::Value::number(base.total_carbon.to_kilograms()));
  out.set("carbon_kg", json::Value::number(metrics.total_carbon.to_kilograms()));
  out.set("jobs", json::Value::number(static_cast<double>(jobs.size())));
  out.set("jobs_completed", json::Value::number(metrics.jobs_completed));
  out.set("mean_wait_hours", json::Value::number(metrics.mean_wait_hours));
  out.set("p95_wait_hours", json::Value::number(metrics.p95_wait_hours));
  out.set("remote_dispatches", json::Value::number(metrics.remote_dispatches));
  out.set("savings_pct", json::Value::number(
                             base_g > 0 ? 100.0 * (base_g - g) / base_g : 0.0));
  return out;
}

json::Value evaluate_fleetsim(const json::Value& params, TraceStore& traces) {
  const std::vector<sched::Site> sites = query_sites(params, traces);
  const HourOfYear epoch(
      month_start_hour(static_cast<int>(num(params, "start_month"))));
  const fleetsim::FleetEngine engine(sites, epoch);

  fleetsim::FleetWorkloadParams wp;
  wp.process = fleetsim::arrival_process_from(str(params, "process"));
  wp.horizon_hours = 24.0 * num(params, "days");
  wp.rate_per_hour = num(params, "rate");
  wp.seed = static_cast<std::uint64_t>(num(params, "seed"));
  const fleetsim::FleetJobs jobs = fleetsim::generate_fleet_jobs(wp);

  const auto baseline_policy = sched::make_policy("fcfs-local");
  const auto base = engine.run(jobs, *baseline_policy);
  const auto policy = sched::make_policy(str(params, "policy"));
  const auto metrics = engine.run(jobs, *policy);

  const double base_g = base.total_carbon.to_grams();
  const double g = metrics.total_carbon.to_grams();
  json::Value out = json::Value::object();
  out.set("baseline_carbon_kg",
          json::Value::number(base.total_carbon.to_kilograms()));
  out.set("carbon_kg", json::Value::number(metrics.total_carbon.to_kilograms()));
  out.set("jobs", json::Value::number(static_cast<double>(jobs.size())));
  out.set("jobs_completed", json::Value::number(metrics.jobs_completed));
  out.set("mean_wait_hours", json::Value::number(metrics.mean_wait_hours));
  out.set("p95_wait_hours", json::Value::number(metrics.p95_wait_hours));
  out.set("process", json::Value::string(fleetsim::to_string(wp.process)));
  out.set("remote_dispatches", json::Value::number(metrics.remote_dispatches));
  out.set("savings_pct", json::Value::number(
                             base_g > 0 ? 100.0 * (base_g - g) / base_g : 0.0));
  out.set("utilization", json::Value::number(metrics.utilization));

  const int samples = static_cast<int>(num(params, "samples"));
  if (samples > 0) {
    // Savings quantiles over workload seeds; pool nullptr keeps serve
    // evaluation single-threaded per request (batch fan-out already runs
    // requests in parallel) — the result is bit-identical either way.
    const mc::SamplePlan plan{
        samples, static_cast<std::uint64_t>(num(params, "seed")), nullptr};
    const mc::Distribution d = fleetsim::fleet_savings_distribution(
        engine, wp, str(params, "policy"), plan);
    out.set("samples", json::Value::number(samples));
    out.set("savings_p05", json::Value::number(d.p05()));
    out.set("savings_p50", json::Value::number(d.p50()));
    out.set("savings_p95", json::Value::number(d.p95()));
  }
  return out;
}

json::Value evaluate_trace(const json::Value& params, TraceStore& traces) {
  std::string note;
  const TraceStore::TracePtr trace = query_trace(params, traces, &note);
  const grid::RegionSummary summary = grid::summarize(*trace);

  json::Value out = json::Value::object();
  out.set("cov_pct", json::Value::number(summary.cov_percent));
  out.set("max", json::Value::number(summary.box.max));
  out.set("mean", json::Value::number(summary.box.mean));
  out.set("median", json::Value::number(summary.box.median));
  out.set("min", json::Value::number(summary.box.min));
  out.set("p25", json::Value::number(summary.box.q1));
  out.set("p75", json::Value::number(summary.box.q3));
  out.set("samples", json::Value::number(static_cast<double>(trace->size())));
  out.set("step_seconds", json::Value::number(trace->step_seconds()));
  if (!note.empty()) out.set("import", json::Value::string(note));
  if (const json::Value* start = params.find("window_start_hour")) {
    const double hours = num(params, "window_hours");
    // O(1) through the prefix sums the trace was built with.
    out.set("window_mean",
            json::Value::number(
                trace->interval_sum(start->as_number(), hours) / hours));
  }
  return out;
}

// --- Response assembly ------------------------------------------------------
//
// Responses are assembled as text around the cached result document, so a
// cache hit and a fresh evaluation emit byte-identical lines. Key order
// is the sorted order dump(sort_keys) would produce.

/// Append the success-response text up to (and including) "result": — the
/// caller appends the result document and the closing brace. Splitting
/// here lets a cache hit stream the cached bytes straight into the
/// response buffer (ResultCache::get_append).
void success_prefix_to(std::string& out, const std::string& id,
                       const std::string& op) {
  out.push_back('{');
  if (!id.empty()) {
    out += "\"id\":";
    json::quote_to(out, id);
    out.push_back(',');
  }
  out += "\"ok\":true,\"op\":";
  json::quote_to(out, op);
  out += ",\"result\":";
}

std::string error_response(const std::string& id, const std::string& what) {
  std::string out;
  append_error_response(out, id, what);
  return out;
}

/// The id of a parsed request document, for error correlation on
/// documents that fail validation; empty when there is no string id.
std::string salvage_id(const json::Reader& reader, json::Reader::Ref doc) {
  if (reader.is_object(doc)) {
    if (const json::Reader::Ref id = reader.find(doc, "id");
        id != json::Reader::kNone && reader.is_string(id)) {
      return std::string(reader.as_string(id));
    }
  }
  return {};
}

/// One request line, parsed exactly once and classified. kError carries
/// its final response; kStats / kMetrics are answered at their sequence
/// points; kQuery goes through the cache/evaluate path.
struct Planned {
  enum class Kind { kError, kStats, kMetrics, kQuery } kind = Kind::kError;
  Query q;                // kQuery
  std::string response;   // kError
  std::string control_id; // kStats / kMetrics
};

Planned plan_line(std::string_view line) {
  // Reject oversized lines before parsing (and before any id salvage —
  // the streaming front-ends never materialize the oversized bytes, so
  // answering without an id is what keeps every transport byte-identical
  // here). serve/limits.h owns the shared constant and message.
  if (line.size() > kMaxRequestLineBytes) {
    Planned p;
    p.response = error_response({}, oversize_line_error(line.size()));
    return p;
  }
  // One reader per thread: node pool and unescape arena warm up once and
  // every subsequent line parses with zero allocations. plan_line only
  // runs on the thread that called handle_line/handle_batch (the pool
  // fan-out evaluates already-planned queries), and nothing below keeps
  // views into the reader past the next parse — Planned owns its strings.
  thread_local json::Reader reader;
  constexpr json::Reader::Ref kNone = json::Reader::kNone;
  Planned p;
  json::Reader::Ref doc = kNone;
  try {
    doc = reader.parse(line);
  } catch (const Error& e) {
    p.response = error_response({}, e.what());
    return p;
  }
  if (reader.is_object(doc)) {
    if (const json::Reader::Ref op = reader.find(doc, "op");
        op != kNone && reader.is_string(op) &&
        (reader.as_string(op) == "stats" ||
         reader.as_string(op) == "metrics")) {
      const bool is_stats = reader.as_string(op) == "stats";
      // The control requests are validated as strictly as any family:
      // unknown fields and a non-string id are errors, not defaults.
      for (json::Reader::Ref f = reader.first_child(doc); f != kNone;
           f = reader.next(f)) {
        const std::string_view k = reader.key(f);
        if (k != "op" && k != "id") {
          p.response = error_response(
              salvage_id(reader, doc),
              "request has unknown top-level field '" + std::string(k) +
                  "' (" + (is_stats ? "stats" : "metrics") +
                  " takes only op and id)");
          return p;
        }
      }
      if (const json::Reader::Ref id = reader.find(doc, "id"); id != kNone) {
        if (!reader.is_string(id)) {
          p.response = error_response({}, "request 'id' must be a string");
          return p;
        }
        p.control_id = reader.as_string(id);
      }
      p.kind = is_stats ? Planned::Kind::kStats : Planned::Kind::kMetrics;
      return p;
    }
  }
  try {
    p.q = parse_query(reader, doc);
    p.kind = Planned::Kind::kQuery;
  } catch (const Error& e) {
    p.response = error_response(salvage_id(reader, doc), e.what());
  }
  return p;
}

}  // namespace

void append_error_response(std::string& out, std::string_view id,
                           std::string_view what) {
  out += "{\"error\":";
  json::quote_to(out, what);
  if (!id.empty()) {
    out += ",\"id\":";
    json::quote_to(out, id);
  }
  out += ",\"ok\":false}";
}

std::string oversize_line_error(std::size_t line_bytes) {
  return "request line exceeds " + std::to_string(kMaxRequestLineBytes) +
         " bytes (got " + std::to_string(line_bytes) + ")";
}

json::Value evaluate(const Query& q, TraceStore& traces) {
  // Materialized lazily from the canonical text: only cache misses (and
  // direct evaluate callers) pay for a params document.
  const json::Value params = q.params();
  if (q.op == "embodied") return evaluate_embodied(params);
  if (q.op == "lifetime") return evaluate_lifetime(params, traces);
  if (q.op == "breakeven") return evaluate_breakeven(params);
  if (q.op == "sched") return evaluate_sched(params, traces);
  if (q.op == "trace") return evaluate_trace(params, traces);
  if (q.op == "fleetsim") return evaluate_fleetsim(params, traces);
  throw Error("unknown op '" + q.op + "'");
}

FrontEndStats::FrontEndStats(obs::MetricsRegistry& registry)
    : connections_accepted(registry.counter(
          "hpcarbon_net_connections_accepted_total", "",
          "Connections accepted by the socket front-end.")),
      connections_active(
          registry.gauge("hpcarbon_net_connections_active", "",
                         "Currently open client connections.")),
      requests_shed(
          registry.counter("hpcarbon_net_requests_shed_total", "",
                           "Requests rejected by overload shedding.")),
      bytes_in(registry.counter("hpcarbon_net_bytes_in_total", "",
                                "Request bytes read from clients.")),
      bytes_out(registry.counter("hpcarbon_net_bytes_out_total", "",
                                 "Response bytes written to clients.")),
      max_inflight(
          registry.gauge("hpcarbon_net_max_inflight", "",
                         "High-water mark of requests in flight.")) {}

Engine::Engine(ServeOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cache_shards, opts_.cache_bytes) {
  register_instruments();
}

ThreadPool& Engine::pool() const {
  return opts_.pool != nullptr ? *opts_.pool : ThreadPool::global();
}

TraceStore& Engine::traces() const {
  return opts_.traces != nullptr ? *opts_.traces : TraceStore::global();
}

obs::MetricsRegistry& Engine::registry() const {
  return opts_.registry != nullptr ? *opts_.registry
                                   : obs::MetricsRegistry::global();
}

void Engine::register_instruments() {
  obs::MetricsRegistry& reg = registry();
  // Registration order is fixed (families in documentation order, then
  // the pseudo-families, then the mirrored subsystem instruments) so
  // every engine, whatever its transport, exposes the same metric set in
  // the same order — see the idle-snapshot contract in obs/metrics.h.
  const std::vector<std::string> families = query_families();
  HPC_REQUIRE(families.size() == kFamilyCount,
              "engine instrument slots out of sync with query_families()");
  auto label = [](const std::string& family) {
    return "family=\"" + family + "\"";
  };
  for (std::size_t i = 0; i < kFamilyCount; ++i) {
    FamilySlots& s = slots_[i];
    const std::string l = label(families[i]);
    s.requests = &reg.counter("hpcarbon_serve_requests_total", l,
                              "Requests answered, by family.");
    s.parse_us =
        &reg.histogram("hpcarbon_serve_parse_latency_us", l,
                       "Request parse+plan latency (batch front-end).");
    s.eval_us = &reg.histogram("hpcarbon_serve_eval_latency_us", l,
                               "Cache-miss evaluate+serialize latency.");
    s.total_us =
        &reg.histogram("hpcarbon_serve_total_latency_us", l,
                       "End-to-end request latency, line in to line out "
                       "(pipe/socket front-ends).");
  }
  slots_[kStatsSlot].requests =
      &reg.counter("hpcarbon_serve_requests_total", label("stats"),
                   "Requests answered, by family.");
  slots_[kMetricsSlot].requests =
      &reg.counter("hpcarbon_serve_requests_total", label("metrics"),
                   "Requests answered, by family.");
  slots_[kErrorSlot].requests =
      &reg.counter("hpcarbon_serve_requests_total", label("error"),
                   "Requests answered, by family.");

  // Mirrored instruments: the cache shards and the trace store keep their
  // own authoritative counters; sync_metrics() copies them in at scrape
  // time (advance_to / set), so the query hot path never double-counts.
  cache_hits_ = &reg.counter("hpcarbon_cache_hits_total", "",
                             "ResultCache hits (mirrored at scrape).");
  cache_misses_ = &reg.counter("hpcarbon_cache_misses_total", "",
                               "ResultCache misses (mirrored at scrape).");
  cache_evictions_ = &reg.counter("hpcarbon_cache_evictions_total", "",
                                  "ResultCache evictions (mirrored at scrape).");
  cache_inserts_ = &reg.counter("hpcarbon_cache_inserts_total", "",
                                "ResultCache inserts (mirrored at scrape).");
  cache_entries_ =
      &reg.gauge("hpcarbon_cache_entries", "", "Cached results resident.");
  cache_bytes_ =
      &reg.gauge("hpcarbon_cache_bytes", "", "Cached result bytes resident.");
  shard_entries_.clear();
  shard_bytes_.clear();
  for (std::size_t i = 0; i < cache_.shard_count(); ++i) {
    const std::string l = "shard=\"" + std::to_string(i) + "\"";
    shard_entries_.push_back(
        &reg.gauge("hpcarbon_cache_shard_entries", l,
                   "Cached results resident, by shard."));
    shard_bytes_.push_back(&reg.gauge("hpcarbon_cache_shard_bytes", l,
                                      "Cached result bytes, by shard."));
  }
  trace_hits_ = &reg.counter("hpcarbon_trace_store_hits_total", "",
                             "TraceStore hits (mirrored at scrape).");
  trace_misses_ = &reg.counter("hpcarbon_trace_store_misses_total", "",
                               "TraceStore misses (mirrored at scrape).");
  trace_entries_ =
      &reg.gauge("hpcarbon_trace_store_entries", "", "Traces resident.");

  reg.gauge("hpcarbon_build_info",
            "version=\"" + obs::build_fingerprint() + "\"",
            "Build fingerprint; value is always 1.")
      .set(1);
  uptime_seconds_ = &reg.gauge(
      "hpcarbon_process_uptime_seconds", "",
      "Daemon uptime (whole seconds; 0 for the pipe/batch front-ends).");

  // Subsystems that record into the process-global registry register
  // their names here too, so private-registry engines (tests) expose the
  // identical metric set — with zero values — as the global one.
  ThreadPool::register_metrics(reg);
  mc::register_metrics(reg);
  fleetsim::register_metrics(reg);
}

void Engine::sync_metrics() const {
  MutexLock lock(scrape_mu_);
  const CacheStats cs = cache_.stats();
  cache_hits_->advance_to(cs.hits);
  cache_misses_->advance_to(cs.misses);
  cache_evictions_->advance_to(cs.evictions);
  cache_inserts_->advance_to(cs.inserts);
  cache_entries_->set(static_cast<std::int64_t>(cs.entries));
  cache_bytes_->set(static_cast<std::int64_t>(cs.bytes));
  for (std::size_t i = 0; i < shard_entries_.size(); ++i) {
    shard_entries_[i]->set(static_cast<std::int64_t>(cs.shard_entries[i]));
    shard_bytes_[i]->set(static_cast<std::int64_t>(cs.shard_bytes[i]));
  }
  const TraceStore& ts = traces();
  trace_hits_->advance_to(ts.hits());
  trace_misses_->advance_to(ts.misses());
  trace_entries_->set(static_cast<std::int64_t>(ts.size()));
  uptime_seconds_->set(
      opts_.uptime ? static_cast<std::int64_t>(opts_.uptime()) : 0);
}

std::string Engine::metrics_response(const std::string& id) const {
  sync_metrics();
  const json::Value body = obs::to_json(registry().snapshot(),
                                        {"hpcarbon_net_", "hpcarbon_process_"});
  std::string response;
  success_prefix_to(response, id, "metrics");
  body.dump_to(response, /*sort_keys=*/true);
  response.push_back('}');
  return response;
}

std::string Engine::stats_response(const std::string& id) const {
  const CacheStats cs = cache_.stats();
  const TraceStore& ts = traces();
  json::Value out = json::Value::object();
  out.set("build", json::Value::string(obs::build_fingerprint()));
  out.set("bytes", json::Value::number(static_cast<double>(cs.bytes)));
  out.set("byte_budget",
          json::Value::number(static_cast<double>(cache_.byte_budget())));
  out.set("entries", json::Value::number(static_cast<double>(cs.entries)));
  out.set("evictions", json::Value::number(static_cast<double>(cs.evictions)));
  out.set("hits", json::Value::number(static_cast<double>(cs.hits)));
  out.set("inserts", json::Value::number(static_cast<double>(cs.inserts)));
  // End-to-end line latency over all query families (the obs total_us
  // histograms merged — associative, so the merge order is irrelevant).
  // The batch front-end answers whole segments, not lines, so it records
  // no total_us and reports lat_count 0, like an idle daemon.
  obs::Histogram::Snapshot lat;
  for (std::size_t i = 0; i < kFamilyCount; ++i) {
    lat.merge(slots_[i].total_us->snapshot());
  }
  out.set("lat_count", json::Value::number(static_cast<double>(lat.count)));
  out.set("lat_p50_us", json::Value::number(lat.quantile_us(0.50)));
  out.set("lat_p99_us", json::Value::number(lat.quantile_us(0.99)));
  out.set("misses", json::Value::number(static_cast<double>(cs.misses)));
  // Transport counters: the socket front-end (src/net) wires its
  // FrontEndStats in through ServeOptions; pipe and batch have no
  // transport and report zeros, so the field set is identical everywhere.
  const FrontEndStats* fe = opts_.frontend;
  auto tally = [](std::uint64_t v) {
    return json::Value::number(static_cast<double>(v));
  };
  auto level = [](std::int64_t v) {
    return json::Value::number(static_cast<double>(v));
  };
  out.set("net_accepted",
          tally(fe != nullptr ? fe->connections_accepted.value() : 0));
  out.set("net_active",
          level(fe != nullptr ? fe->connections_active.value() : 0));
  out.set("net_bytes_in", tally(fe != nullptr ? fe->bytes_in.value() : 0));
  out.set("net_bytes_out", tally(fe != nullptr ? fe->bytes_out.value() : 0));
  out.set("net_max_inflight",
          level(fe != nullptr ? fe->max_inflight.value() : 0));
  out.set("net_shed", tally(fe != nullptr ? fe->requests_shed.value() : 0));
  // Per-shard occupancy, in shard order: imbalance (a hot shard thrashing
  // while others idle) is invisible in the totals above.
  json::Value shard_bytes = json::Value::array();
  json::Value shard_entries = json::Value::array();
  for (std::size_t i = 0; i < cs.shard_entries.size(); ++i) {
    shard_entries.push_back(
        json::Value::number(static_cast<double>(cs.shard_entries[i])));
    shard_bytes.push_back(
        json::Value::number(static_cast<double>(cs.shard_bytes[i])));
  }
  out.set("shard_bytes", std::move(shard_bytes));
  out.set("shard_entries", std::move(shard_entries));
  out.set("shards",
          json::Value::number(static_cast<double>(cache_.shard_count())));
  out.set("trace_entries", json::Value::number(static_cast<double>(ts.size())));
  out.set("trace_hits", json::Value::number(static_cast<double>(ts.hits())));
  out.set("trace_misses",
          json::Value::number(static_cast<double>(ts.misses())));
  out.set("uptime_s",
          json::Value::number(opts_.uptime
                                  ? static_cast<double>(static_cast<std::int64_t>(
                                        opts_.uptime()))
                                  : 0.0));
  std::string response;
  success_prefix_to(response, id, "stats");
  out.dump_to(response, /*sort_keys=*/true);
  response.push_back('}');
  return response;
}

namespace {

void answer_query_to(ResultCache& cache, TraceStore& traces, const Query& q,
                     obs::Histogram* eval_us, std::string& out) {
  const std::size_t mark = out.size();
  success_prefix_to(out, q.id, q.op);
  if (cache.get_append(q.key, q.canonical, out)) {
    out.push_back('}');
    return;
  }
  try {
    const std::uint64_t t0 = obs::ticks();
    const std::string result = evaluate(q, traces).dump(/*sort_keys=*/true);
    eval_us->record_ns(obs::elapsed_ns(t0, obs::ticks()));
    cache.put(q.key, q.canonical, result);
    out += result;
    out.push_back('}');
  } catch (const Error& e) {
    out.resize(mark);  // drop the success prefix
    append_error_response(out, q.id, e.what());  // runtime failures not cached
  }
}

void answer_segment(ResultCache& cache, ThreadPool& pool, TraceStore& traces,
                    const std::array<FamilySlots, Engine::kSlotCount>& slots,
                    std::vector<Planned>& plan, std::size_t begin,
                    std::size_t end, std::vector<std::string>& responses) {
  // Plan the segment: errors are final, cache hits answer immediately,
  // and identical in-flight canonical keys dedup to one leader. Request
  // counters tick here — inside the segment, before the next sequence
  // point — so a stats/metrics line still reports exactly the requests
  // ahead of it, as a sequential replay would.
  std::unordered_map<std::uint64_t, std::size_t> first_of;
  std::vector<std::size_t> leaders;
  std::vector<bool> follower(end - begin, false);
  for (std::size_t i = begin; i < end; ++i) {
    Planned& p = plan[i];
    if (p.kind == Planned::Kind::kError) {
      responses[i] = p.response;
      slots[Engine::kErrorSlot].requests->inc();
      continue;
    }
    slots[static_cast<std::size_t>(p.q.family)].requests->inc();
    if (first_of.count(p.q.key) != 0) {
      follower[i - begin] = true;  // answered from the leader's fill below
      continue;
    }
    success_prefix_to(responses[i], p.q.id, p.q.op);
    if (cache.get_append(p.q.key, p.q.canonical, responses[i])) {
      responses[i].push_back('}');
      continue;
    }
    responses[i].clear();  // miss: the leader fan-out rebuilds the line
    first_of[p.q.key] = i;
    leaders.push_back(i);
  }

  // Distinct uncached queries fan out over the pool. Each leader writes
  // only its own response slot, so the fan-out is race-free and the
  // output is bit-identical for any worker count (evaluation is
  // deterministic per canonical query).
  pool.parallel_for(0, leaders.size(), [&](std::size_t k) {
    const Query& q = plan[leaders[k]].q;
    std::string& out = responses[leaders[k]];
    try {
      const std::uint64_t t0 = obs::ticks();
      const std::string result = evaluate(q, traces).dump(/*sort_keys=*/true);
      slots[static_cast<std::size_t>(q.family)].eval_us->record_ns(
          obs::elapsed_ns(t0, obs::ticks()));
      cache.put(q.key, q.canonical, result);
      success_prefix_to(out, q.id, q.op);
      out += result;
      out.push_back('}');
    } catch (const Error& e) {
      append_error_response(out, q.id, e.what());
    }
  });

  // Followers read their leader's freshly-cached result (a real counted
  // hit, matching what a sequential replay would record). If the entry
  // was already evicted — tiny budgets — or the leader failed, the
  // follower takes the same miss -> evaluate -> put path a sequential
  // replay would: deterministic evaluation reproduces the same bytes.
  // (Counters match sequential replay too, except under intra-segment
  // eviction churn, where racing leader puts make hit/miss/eviction
  // totals timing-dependent — see the handle_batch contract.)
  for (std::size_t i = begin; i < end; ++i) {
    if (!follower[i - begin]) continue;
    const Planned& p = plan[i];
    answer_query_to(cache, traces, p.q,
                    slots[static_cast<std::size_t>(p.q.family)].eval_us,
                    responses[i]);
  }
}

}  // namespace

std::string Engine::handle_line(std::string_view line) {
  std::string out;
  handle_line_to(line, out);
  return out;
}

void Engine::handle_line_to(std::string_view line, std::string& out) {
  // The only hot-path instrumentation cost on a warm hit is the two
  // ticks() reads and one histogram record (~tens of ns) — parse latency
  // is sampled by the batch front-end, and eval latency only on misses.
  const std::uint64_t t0 = obs::ticks();
  Planned p = plan_line(line);
  switch (p.kind) {
    case Planned::Kind::kError:
      out += p.response;
      slots_[kErrorSlot].requests->inc();
      return;
    case Planned::Kind::kStats:
      out += stats_response(p.control_id);
      slots_[kStatsSlot].requests->inc();
      return;
    case Planned::Kind::kMetrics:
      // Counted after the snapshot: a metrics response never includes
      // itself, so the first scrape of an idle engine reads identically
      // on every transport.
      out += metrics_response(p.control_id);
      slots_[kMetricsSlot].requests->inc();
      return;
    case Planned::Kind::kQuery: {
      const FamilySlots& slot = slots_[static_cast<std::size_t>(p.q.family)];
      answer_query_to(cache_, traces(), p.q, slot.eval_us, out);
      slot.total_us->record_ns(obs::elapsed_ns(t0, obs::ticks()));
      slot.requests->inc();
      return;
    }
  }
}

std::vector<std::string> Engine::handle_batch(
    const std::vector<std::string>& lines) {
  // Parse every line exactly once, then answer in segments delimited by
  // {"op":"stats"} / {"op":"metrics"} control requests: a control line is
  // a sequence point — it reports the counters after everything before it
  // and nothing after it, exactly as a sequential handle_line replay
  // would.
  std::vector<Planned> plan(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::uint64_t t0 = obs::ticks();
    plan[i] = plan_line(lines[i]);
    if (plan[i].kind == Planned::Kind::kQuery) {
      slots_[static_cast<std::size_t>(plan[i].q.family)].parse_us->record_ns(
          obs::elapsed_ns(t0, obs::ticks()));
    }
  }

  std::vector<std::string> responses(lines.size());
  std::size_t segment_start = 0;
  for (std::size_t i = 0; i <= lines.size(); ++i) {
    const bool control =
        i < lines.size() && (plan[i].kind == Planned::Kind::kStats ||
                             plan[i].kind == Planned::Kind::kMetrics);
    if (i < lines.size() && !control) continue;
    answer_segment(cache_, pool(), traces(), slots_, plan, segment_start, i,
                   responses);
    if (i < lines.size()) {
      if (plan[i].kind == Planned::Kind::kStats) {
        responses[i] = stats_response(plan[i].control_id);
        slots_[kStatsSlot].requests->inc();
      } else {
        responses[i] = metrics_response(plan[i].control_id);
        slots_[kMetricsSlot].requests->inc();
      }
    }
    segment_start = i + 1;
  }
  return responses;
}

}  // namespace hpcarbon::serve
