#include "serve/cache.h"

#include "core/error.h"
#include "grid/import.h"
#include "grid/presets.h"
#include "grid/simulator.h"

namespace hpcarbon::serve {

// --- ResultCache ------------------------------------------------------------

namespace {

/// Approximate per-entry bookkeeping (list node + hash slot + key).
constexpr std::size_t kEntryOverhead = 64;

}  // namespace

ResultCache::ResultCache(std::size_t shards, std::size_t byte_budget) {
  HPC_REQUIRE(shards >= 1, "ResultCache needs at least one shard");
  HPC_REQUIRE(byte_budget >= shards * kEntryOverhead,
              "ResultCache byte budget too small for its shard count");
  budget_per_shard_ = byte_budget / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t ResultCache::entry_cost(std::string_view canonical,
                                    std::string_view value) {
  return canonical.size() + value.size() + kEntryOverhead;
}

ResultCache::Shard& ResultCache::shard_of(std::uint64_t key) {
  // The canonical key is already FNV-mixed; the low bits select evenly.
  return *shards_[key % shards_.size()];
}

std::optional<std::string> ResultCache::get(std::uint64_t key,
                                            std::string_view canonical) {
  Shard& s = shard_of(key);
  MutexLock lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end() || it->second->canonical != canonical) {
    ++s.misses;  // absent, or a 64-bit hash collision: never serve it
    return std::nullopt;
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  return it->second->value;
}

bool ResultCache::get_append(std::uint64_t key, std::string_view canonical,
                             std::string& out) {
  Shard& s = shard_of(key);
  MutexLock lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end() || it->second->canonical != canonical) {
    ++s.misses;  // absent, or a 64-bit hash collision: never serve it
    return false;
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  out += it->second->value;
  return true;
}

void ResultCache::put(std::uint64_t key, std::string_view canonical,
                      std::string value) {
  const std::size_t cost = entry_cost(canonical, value);
  Shard& s = shard_of(key);
  MutexLock lock(s.mu);
  if (cost > budget_per_shard_) return;  // would evict the whole shard
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    s.bytes -= entry_cost(it->second->canonical, it->second->value);
    it->second->canonical = std::string(canonical);
    it->second->value = std::move(value);
    s.bytes += cost;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
  } else {
    s.lru.push_front(Entry{key, std::string(canonical), std::move(value)});
    s.index[key] = s.lru.begin();
    s.bytes += cost;
    ++s.inserts;
  }
  while (s.bytes > budget_per_shard_) {
    const Entry& victim = s.lru.back();
    s.bytes -= entry_cost(victim.canonical, victim.value);
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++s.evictions;
  }
}

CacheStats ResultCache::stats() const {
  CacheStats total;
  total.shard_entries.reserve(shards_.size());
  total.shard_bytes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.inserts += shard->inserts;
    total.entries += shard->lru.size();
    total.bytes += shard->bytes;
    total.shard_entries.push_back(shard->lru.size());
    total.shard_bytes.push_back(shard->bytes);
  }
  return total;
}

// --- TraceStore -------------------------------------------------------------

TraceStore& TraceStore::global() {
  static TraceStore store;
  return store;
}

TraceStore::TracePtr TraceStore::preset(const std::string& code) {
  const std::string key = "preset:" + code;
  {
    MutexLock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      it->second.last_use = ++use_clock_;
      return it->second.trace;
    }
  }
  const auto spec = grid::find_region(code);
  if (!spec) throw Error("TraceStore: unknown region code '" + code + "'");
  // Generate outside the lock: a year-long synthetic trace is the
  // expensive part, and concurrent first-touch generation of *different*
  // regions should overlap. Two racing generations of the same code
  // produce identical traces (the simulator is deterministic per spec);
  // the first insert wins.
  auto trace = std::make_shared<const grid::CarbonIntensityTrace>(
      grid::GridSimulator(*spec).run());
  MutexLock lock(mu_);
  const auto [it, inserted] =
      entries_.try_emplace(key, Entry{trace, {}, false, 0});
  if (inserted) ++misses_;
  else ++hits_;
  it->second.last_use = ++use_clock_;
  return it->second.trace;
}

TraceStore::TracePtr TraceStore::imported(const std::string& code,
                                          const std::string& path,
                                          std::string* note) {
  const std::string key = "import:" + code + "=" + path;
  {
    MutexLock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      it->second.last_use = ++use_clock_;
      if (note != nullptr) *note = it->second.note;
      return it->second.trace;
    }
  }
  const auto spec = grid::find_region(code);
  if (!spec) throw Error("TraceStore: unknown region code '" + code + "'");
  grid::ImportOptions io;
  io.tz = spec->tz;  // file rows are the region's local time
  grid::ImportReport report;
  auto trace = std::make_shared<const grid::CarbonIntensityTrace>(
      grid::import_trace_file(path, code, io, &report));
  Entry entry{std::move(trace),
              code + " <- " + path + ": " + report.to_string(), true, 0};
  MutexLock lock(mu_);
  const auto [it, inserted] = entries_.try_emplace(key, std::move(entry));
  if (inserted) ++misses_;
  else ++hits_;
  it->second.last_use = ++use_clock_;
  if (note != nullptr) *note = it->second.note;
  TracePtr result = it->second.trace;
  evict_imports_locked();
  return result;
}

void TraceStore::evict_imports_locked() {
  // Presets never evict (seven at most, shared by every consumer); the
  // least-recently-used imports go first. Holders of an evicted trace's
  // shared_ptr keep a valid object.
  while (true) {
    std::size_t imports = 0;
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.is_import) continue;
      ++imports;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (imports <= max_imports_ || victim == entries_.end()) return;
    entries_.erase(victim);
  }
}

void TraceStore::set_max_imports(std::size_t n) {
  MutexLock lock(mu_);
  max_imports_ = n;
  evict_imports_locked();
}

std::size_t TraceStore::max_imports() const {
  MutexLock lock(mu_);
  return max_imports_;
}

std::size_t TraceStore::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::uint64_t TraceStore::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

std::uint64_t TraceStore::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

void TraceStore::clear() {
  MutexLock lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace hpcarbon::serve
