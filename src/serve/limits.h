// Request-framing limits shared by every front-end.
//
// The serve layer speaks newline-delimited JSON on three transports — the
// batch file reader, the stdin/stdout pipe loop, and the src/net socket
// server — and all three enforce the same maximum request-line length so
// a malformed or hostile client cannot make any of them buffer without
// bound. The limit lives here (not in engine.h) because the network
// framer needs the constant without pulling in the engine.
//
// An oversized line is answered, not dropped: the response is the regular
// ok:false error document carrying the observed byte count, emitted with
// no id (the line is rejected *before* parsing, so there is no id to
// salvage — which also keeps the streaming framer, which never
// materializes the oversized bytes, byte-identical to the batch path,
// which has the whole line in hand).
#pragma once

#include <cstddef>
#include <string>

namespace hpcarbon::serve {

/// Hard cap on one request line (bytes, excluding the newline). Large
/// enough for any legitimate query document — the biggest canonical
/// request is well under 1 KiB — while bounding per-connection buffering.
inline constexpr std::size_t kMaxRequestLineBytes = std::size_t{1} << 20;

/// The error message an oversized line is answered with. Shared by the
/// engine's pre-parse check (batch / handle_line) and the streaming
/// framer (pipe + socket), so every front-end rejects with identical
/// bytes.
std::string oversize_line_error(std::size_t line_bytes);

}  // namespace hpcarbon::serve
