// Concurrent carbon-query engine: the execution half of the serve layer.
//
// One Engine owns a ResultCache and answers request lines
// (serve/request.h) with response lines:
//
//   {"id":"q1","ok":true,"op":"lifetime","result":{...}}      success
//   {"error":"...","id":"q1","ok":false}                      invalid
//
// Responses are a pure function of the canonical request — the client id
// is echoed but never changes the result, and cache state is reported
// only through the separate {"op":"stats"} control request — so the batch
// front-end, the stdin/stdout daemon loop, repeated runs, and every
// thread count all emit bit-identical bytes for the same question.
//
// handle_batch is the planner: it parses every line, answers cache hits
// immediately, dedups identical in-flight canonical keys down to one
// leader evaluation, fans the distinct leaders over the pool
// (ThreadPool::global() by default), and assembles responses in input
// order. Evaluation itself calls the same library seams as `hpcarbon
// run`/`sweep`/`trace` (deterministic, mc::substream-seeded where
// sampling is requested), so service answers agree with the offline
// tools.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/cache.h"
#include "serve/request.h"

namespace hpcarbon {
class ThreadPool;
}

namespace hpcarbon::serve {

/// Front-end transport counters, reported through the {"op":"stats"}
/// control request so overload shedding and connection churn are
/// observable in-band. The socket server (src/net) owns one and updates
/// it from its event loop and workers; the pipe/batch front-ends have no
/// transport, report every field as zero, and pass no pointer. Plain
/// relaxed atomics: each field is a monotonic tally (or high-water mark),
/// never a cross-field invariant.
struct FrontEndStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> requests_shed{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> max_inflight{0};
};

struct ServeOptions {
  /// ResultCache geometry.
  std::size_t cache_shards = 8;
  std::size_t cache_bytes = 8u << 20;
  /// Pool the batch planner fans leaders over; nullptr selects
  /// ThreadPool::global(). Responses are bit-identical either way.
  ThreadPool* pool = nullptr;
  /// Trace source; nullptr selects TraceStore::global().
  TraceStore* traces = nullptr;
  /// Transport counters surfaced by {"op":"stats"} as the net_* fields;
  /// nullptr (pipe/batch — no transport) reports zeros for all of them.
  const FrontEndStats* frontend = nullptr;
};

/// Append the canonical error-response document
/// `{"error":<what>,["id":<id>,]"ok":false}` (no trailing newline) to
/// `out`. Exposed so transport-level rejections (oversized lines,
/// overload shedding in src/net) emit bytes identical to the engine's own
/// error path. An empty id is omitted.
void append_error_response(std::string& out, std::string_view id,
                           std::string_view what);

/// Answer one validated query against the library (no caching). Returns
/// the result object; throws hpcarbon::Error for runtime failures (e.g. an
/// unreadable trace_csv path). Exposed for tests that compare service
/// answers against direct library calls.
json::Value evaluate(const Query& q, TraceStore& traces);

class Engine {
 public:
  explicit Engine(ServeOptions opts = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// One request line -> one response line (no trailing newline). Invalid
  /// requests yield ok:false responses, never throws. A line longer than
  /// kMaxRequestLineBytes (serve/limits.h) is rejected before parsing
  /// with the shared oversize error. The {"op":"stats"} control request
  /// answers cache counters and is itself never cached.
  std::string handle_line(std::string_view line);

  /// handle_line, appended to a caller-owned buffer (identical bytes, no
  /// return-value string). The daemon loop and the load bench reuse one
  /// buffer across lines, so a warm request allocates nothing on this
  /// side of the cache.
  void handle_line_to(std::string_view line, std::string& out);

  /// Answer a whole batch; responses to query requests are parallel to
  /// `lines` and byte-identical to feeding the lines through handle_line
  /// one at a time on an equally-warm engine. Distinct uncached queries
  /// evaluate concurrently; duplicates within the batch evaluate once; a
  /// stats line is a sequence point (it reports counters as of
  /// everything before it in the batch, like a sequential replay would).
  /// Caveat: when the cache is so small that entries evict each other
  /// *within one segment*, leader puts race and the hit/miss/eviction
  /// counts a stats line reports can differ from sequential replay —
  /// query responses themselves never do.
  std::vector<std::string> handle_batch(const std::vector<std::string>& lines);

  CacheStats cache_stats() const { return cache_.stats(); }
  const ServeOptions& options() const { return opts_; }

 private:
  ThreadPool& pool() const;
  TraceStore& traces() const;
  /// {"op":"stats"} response body for the current counters.
  std::string stats_response(const std::string& id) const;

  ServeOptions opts_;
  ResultCache cache_;
};

}  // namespace hpcarbon::serve
