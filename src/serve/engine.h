// Concurrent carbon-query engine: the execution half of the serve layer.
//
// One Engine owns a ResultCache and answers request lines
// (serve/request.h) with response lines:
//
//   {"id":"q1","ok":true,"op":"lifetime","result":{...}}      success
//   {"error":"...","id":"q1","ok":false}                      invalid
//
// Responses are a pure function of the canonical request — the client id
// is echoed but never changes the result, and cache state is reported
// only through the separate {"op":"stats"} control request — so the batch
// front-end, the stdin/stdout daemon loop, repeated runs, and every
// thread count all emit bit-identical bytes for the same question.
//
// handle_batch is the planner: it parses every line, answers cache hits
// immediately, dedups identical in-flight canonical keys down to one
// leader evaluation, fans the distinct leaders over the pool
// (ThreadPool::global() by default), and assembles responses in input
// order. Evaluation itself calls the same library seams as `hpcarbon
// run`/`sweep`/`trace` (deterministic, mc::substream-seeded where
// sampling is requested), so service answers agree with the offline
// tools.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/request.h"

namespace hpcarbon {
class ThreadPool;
}

namespace hpcarbon::serve {

/// Front-end transport instruments (the hpcarbon_net_* obs domain),
/// reported through the {"op":"stats"} control request as the net_*
/// fields so overload shedding and connection churn are observable
/// in-band. The socket server (src/net) owns one — registered against
/// its metrics registry — and updates it from its event loop and
/// workers; the pipe/batch front-ends have no transport, report every
/// field as zero, and pass no pointer. Each field is a monotonic tally,
/// a level, or a high-water mark, never a cross-field invariant.
struct FrontEndStats {
  /// Registers (idempotently) the hpcarbon_net_* series in `registry`.
  explicit FrontEndStats(obs::MetricsRegistry& registry);

  obs::Counter& connections_accepted;
  obs::Gauge& connections_active;
  obs::Counter& requests_shed;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Gauge& max_inflight;
};

struct ServeOptions {
  /// ResultCache geometry.
  std::size_t cache_shards = 8;
  std::size_t cache_bytes = 8u << 20;
  /// Pool the batch planner fans leaders over; nullptr selects
  /// ThreadPool::global(). Responses are bit-identical either way.
  ThreadPool* pool = nullptr;
  /// Trace source; nullptr selects TraceStore::global().
  TraceStore* traces = nullptr;
  /// Transport counters surfaced by {"op":"stats"} as the net_* fields;
  /// nullptr (pipe/batch — no transport) reports zeros for all of them.
  const FrontEndStats* frontend = nullptr;
  /// Metrics sink; nullptr selects obs::MetricsRegistry::global(). Tests
  /// that assert exact counts pass a private registry (instruments are
  /// process-shared otherwise).
  obs::MetricsRegistry* registry = nullptr;
  /// Daemon uptime in seconds, reported (floored) as the stats uptime_s
  /// field and the hpcarbon_process_uptime_seconds gauge. Unset (pipe /
  /// batch — no daemon) reports 0, keeping those modes time-independent.
  std::function<double()> uptime;
};

/// Append the canonical error-response document
/// `{"error":<what>,["id":<id>,]"ok":false}` (no trailing newline) to
/// `out`. Exposed so transport-level rejections (oversized lines,
/// overload shedding in src/net) emit bytes identical to the engine's own
/// error path. An empty id is omitted.
void append_error_response(std::string& out, std::string_view id,
                           std::string_view what);

/// Answer one validated query against the library (no caching). Returns
/// the result object; throws hpcarbon::Error for runtime failures (e.g. an
/// unreadable trace_csv path). Exposed for tests that compare service
/// answers against direct library calls.
json::Value evaluate(const Query& q, TraceStore& traces);

/// Per-family instrument slot: resolved once at Engine construction so
/// the hot path records without touching the registry. The six query
/// families get the full set; the stats/metrics/error pseudo-families
/// (slots 6..8) count requests only.
struct FamilySlots {
  obs::Counter* requests = nullptr;
  obs::Histogram* parse_us = nullptr;  // plan_line (batch front-end)
  obs::Histogram* eval_us = nullptr;   // evaluate + dump (cache misses)
  obs::Histogram* total_us = nullptr;  // handle_line end to end
};

class Engine {
 public:
  /// Instrument-slot layout: query families 0..5 (query_families()
  /// order), then the control/error pseudo-families.
  static constexpr std::size_t kFamilyCount = 6;
  static constexpr std::size_t kStatsSlot = 6;
  static constexpr std::size_t kMetricsSlot = 7;
  static constexpr std::size_t kErrorSlot = 8;
  static constexpr std::size_t kSlotCount = 9;

  explicit Engine(ServeOptions opts = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// One request line -> one response line (no trailing newline). Invalid
  /// requests yield ok:false responses, never throws. A line longer than
  /// kMaxRequestLineBytes (serve/limits.h) is rejected before parsing
  /// with the shared oversize error. The {"op":"stats"} and
  /// {"op":"metrics"} control requests answer counters / the obs
  /// snapshot and are themselves never cached.
  std::string handle_line(std::string_view line);

  /// handle_line, appended to a caller-owned buffer (identical bytes, no
  /// return-value string). The daemon loop and the load bench reuse one
  /// buffer across lines, so a warm request allocates nothing on this
  /// side of the cache.
  void handle_line_to(std::string_view line, std::string& out);

  /// Answer a whole batch; responses to query requests are parallel to
  /// `lines` and byte-identical to feeding the lines through handle_line
  /// one at a time on an equally-warm engine. Distinct uncached queries
  /// evaluate concurrently; duplicates within the batch evaluate once; a
  /// stats line is a sequence point (it reports counters as of
  /// everything before it in the batch, like a sequential replay would).
  /// Caveat: when the cache is so small that entries evict each other
  /// *within one segment*, leader puts race and the hit/miss/eviction
  /// counts a stats line reports can differ from sequential replay —
  /// query responses themselves never do.
  std::vector<std::string> handle_batch(const std::vector<std::string>& lines);

  CacheStats cache_stats() const { return cache_.stats(); }
  const ServeOptions& options() const { return opts_; }

  /// Mirror the subsystem-owned counters (cache shards, trace store,
  /// uptime) into the obs registry. Runs before every {"op":"metrics"}
  /// snapshot; the daemon's Prometheus scrape socket calls it as its
  /// pre-scrape hook. Thread-safe (scrape mutex); zero hot-path cost.
  void sync_metrics() const;
  obs::MetricsRegistry& registry() const;

 private:
  ThreadPool& pool() const;
  TraceStore& traces() const;
  /// {"op":"stats"} response body for the current counters.
  std::string stats_response(const std::string& id) const;
  /// {"op":"metrics"} response body: the obs snapshot as sorted-key JSON,
  /// transport-dependent domains excluded (see obs/export.h).
  std::string metrics_response(const std::string& id) const;
  void register_instruments();

  ServeOptions opts_;
  ResultCache cache_;

  /// Hot-path instrument slots (see FamilySlots).
  std::array<FamilySlots, kSlotCount> slots_{};
  /// Scrape-sync handles: cache / trace-store counters mirrored into obs
  /// by sync_metrics (advance_to under scrape_mu_).
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* cache_evictions_ = nullptr;
  obs::Counter* cache_inserts_ = nullptr;
  obs::Gauge* cache_entries_ = nullptr;
  obs::Gauge* cache_bytes_ = nullptr;
  std::vector<obs::Gauge*> shard_entries_;
  std::vector<obs::Gauge*> shard_bytes_;
  obs::Counter* trace_hits_ = nullptr;
  obs::Counter* trace_misses_ = nullptr;
  obs::Gauge* trace_entries_ = nullptr;
  obs::Gauge* uptime_seconds_ = nullptr;
  mutable AnnotatedMutex scrape_mu_;
};

}  // namespace hpcarbon::serve
