// Analytic models of the fifteen training benchmarks (Table 4).
//
// The paper ran these on physical P100/V100/A100 nodes; here each benchmark
// carries the parameters of an analytic performance model instead:
//
//  * base_p100_samples_per_s — single-GPU training throughput on the P100
//    reference node;
//  * volta_factor / ampere_factor — per-model speedups over the P100,
//    calibrated so per-suite average upgrade improvements reproduce the
//    paper's Table 6 (the suite averages of (1 - 1/factor) land within
//    ~1 percentage point of every Table 6 cell);
//  * ring_overhead (r) and sync_overhead (l) — multi-GPU data-parallel
//    communication costs as fractions of single-GPU step compute:
//       step(k) = t_comp * (1 + r * 2(k-1)/k + l * (k-1))
//    i.e. a ring-allreduce bandwidth term plus a per-extra-GPU
//    synchronization/launch term. Calibrated so the per-suite 1/2/4-GPU
//    scaling reproduces Fig. 4 (perf-to-embodied ~1.0 at 2 GPUs, ~0.88 for
//    NLP/CANDLE and ~0.79 for Vision at 4 GPUs).
//
// Parameter counts and per-sample FLOPs come from the public model
// descriptions and make the calibrated overheads physically sensible
// (e.g. BART's 406M parameters give it the largest ring term of the NLP
// set; ShuffleNetV2's 2.3M the smallest of Vision).
#pragma once

#include <string>
#include <vector>

#include "workload/suite.h"

namespace hpcarbon::workload {

struct BenchmarkModel {
  std::string name;
  Suite suite = Suite::kNlp;

  double params_millions = 0;
  double gflops_per_sample = 0;  // forward+backward
  int batch_per_gpu = 0;

  double base_p100_samples_per_s = 0;
  double volta_factor = 1.0;   // throughput multiplier vs P100
  double ampere_factor = 1.0;  // throughput multiplier vs P100

  double ring_overhead = 0.0;  // r — allreduce bandwidth cost fraction
  double sync_overhead = 0.0;  // l — per-extra-GPU sync cost fraction

  /// GPU power utilization while training (fraction of TDP drawn).
  double gpu_power_utilization = 0.92;
};

/// The five models of a suite, in Table 4 order.
const std::vector<BenchmarkModel>& models(Suite suite);
/// All fifteen models.
std::vector<const BenchmarkModel*> all_models();
/// Lookup by name; throws hpcarbon::Error if unknown.
const BenchmarkModel& model_by_name(const std::string& name);

}  // namespace hpcarbon::workload
