#include "workload/model.h"

#include "core/error.h"

namespace hpcarbon::workload {

namespace {

// Helper keeping the table below readable.
BenchmarkModel make(const char* name, Suite suite, double params_m,
                    double gflops, int batch, double base_tput,
                    double volta, double ampere, double r, double l) {
  BenchmarkModel m;
  m.name = name;
  m.suite = suite;
  m.params_millions = params_m;
  m.gflops_per_sample = gflops;
  m.batch_per_gpu = batch;
  m.base_p100_samples_per_s = base_tput;
  m.volta_factor = volta;
  m.ampere_factor = ampere;
  m.ring_overhead = r;
  m.sync_overhead = l;
  return m;
}

// volta/ampere factors encode per-model improvements (1 - 1/factor) whose
// suite averages reproduce Table 6; r/l encode the Fig. 4 multi-GPU scaling
// (see model.h). Ring overheads scale with parameter count within a suite.
std::vector<BenchmarkModel> make_nlp() {
  return {
      make("BERT", Suite::kNlp, 110, 530, 32, 28.0, 1.6949, 2.2012, 0.094,
           0.2715),
      make("DistilBERT", Suite::kNlp, 66, 270, 32, 56.0, 1.6129, 2.0161,
           0.057, 0.2715),
      make("MPNet", Suite::kNlp, 133, 560, 32, 24.0, 1.7986, 2.4175, 0.114,
           0.2715),
      make("RoBERTa", Suite::kNlp, 125, 550, 32, 26.0, 1.9231, 2.6709, 0.107,
           0.2715),
      make("BART", Suite::kNlp, 406, 980, 16, 10.0, 2.0243, 2.9337, 0.348,
           0.2715),
  };
}

std::vector<BenchmarkModel> make_vision() {
  return {
      make("ResNet50", Suite::kVision, 25.6, 24.6, 64, 230.0, 1.4493, 1.9585,
           0.0045, 0.4244),
      make("ResNeXt50", Suite::kVision, 25.0, 25.5, 64, 140.0, 1.6949,
           2.6483, 0.0044, 0.4244),
      make("ShuffleNetV2", Suite::kVision, 2.3, 0.9, 128, 950.0, 1.2821,
           1.5447, 0.0004, 0.4244),
      make("VGG19", Suite::kVision, 143.7, 117.0, 32, 95.0, 2.0408, 3.7106,
           0.0254, 0.4244),
      make("ViT", Suite::kVision, 86.6, 105.0, 64, 120.0, 2.5641, 5.6980,
           0.0153, 0.4244),
  };
}

std::vector<BenchmarkModel> make_candle() {
  return {
      make("Combo", Suite::kCandle, 13.0, 0.08, 256, 1400.0, 2.5316, 6.1748,
           0.21, 0.27),
      make("NT3", Suite::kCandle, 1.0, 0.9, 20, 420.0, 1.6129, 2.5602, 0.10,
           0.27),
      make("P1B1", Suite::kCandle, 2.0, 0.01, 100, 3200.0, 1.4286, 2.0121,
           0.12, 0.27),
      make("ST1", Suite::kCandle, 5.0, 0.05, 128, 900.0, 2.1277, 4.4326,
           0.15, 0.27),
      make("TC1", Suite::kCandle, 1.0, 1.2, 20, 500.0, 1.8519, 3.3671, 0.14,
           0.27),
  };
}

}  // namespace

const std::vector<BenchmarkModel>& models(Suite suite) {
  static const auto* nlp = new std::vector<BenchmarkModel>(make_nlp());
  static const auto* vision = new std::vector<BenchmarkModel>(make_vision());
  static const auto* candle = new std::vector<BenchmarkModel>(make_candle());
  switch (suite) {
    case Suite::kNlp: return *nlp;
    case Suite::kVision: return *vision;
    case Suite::kCandle: return *candle;
  }
  return *nlp;  // unreachable
}

std::vector<const BenchmarkModel*> all_models() {
  std::vector<const BenchmarkModel*> out;
  for (Suite s : all_suites()) {
    for (const auto& m : models(s)) out.push_back(&m);
  }
  return out;
}

const BenchmarkModel& model_by_name(const std::string& name) {
  for (Suite s : all_suites()) {
    for (const auto& m : models(s)) {
      if (m.name == name) return m;
    }
  }
  throw Error("unknown benchmark model: " + name);
}

}  // namespace hpcarbon::workload
