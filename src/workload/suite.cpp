#include "workload/suite.h"

namespace hpcarbon::workload {

const char* to_string(Suite s) {
  switch (s) {
    case Suite::kNlp: return "NLP";
    case Suite::kVision: return "Vision";
    case Suite::kCandle: return "CANDLE";
  }
  return "?";
}

std::vector<Suite> all_suites() {
  return {Suite::kNlp, Suite::kVision, Suite::kCandle};
}

}  // namespace hpcarbon::workload
