// Benchmark suites of Table 4: the deep-learning training workloads the
// paper characterizes on real GPU nodes.
//
//   NLP    — HuggingFace question answering: BERT, DistilBERT, MPNet,
//            RoBERTa, BART.
//   Vision — PyTorch image classification: ResNet50, ResNeXt50,
//            ShuffleNetV2, VGG19, ViT.
//   CANDLE — ANL cancer deep-learning Pilot1 benchmarks: Combo, NT3, P1B1,
//            ST1, TC1.
#pragma once

#include <string>
#include <vector>

namespace hpcarbon::workload {

enum class Suite { kNlp, kVision, kCandle };

const char* to_string(Suite s);
std::vector<Suite> all_suites();

}  // namespace hpcarbon::workload
