// Carbon-aware scheduling demo: runs one month of synthetic jobs over three
// regional sites (ESO / CISO / ERCOT) under each policy and prints the
// carbon-vs-wait tradeoff plus per-user carbon-budget accounting — the
// operational realization of the paper's Sec. 4 implications.
//
// Usage: ./examples/carbon_aware_scheduling
#include <iostream>

#include "core/table.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "sched/simulator.h"
#include "sched/workload_gen.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  // Home site: ERCOT (dirtiest of the trio); four summer weeks.
  const auto traces = grid::generate_traces(grid::fig7_regions());
  std::vector<sched::Site> sites = {
      sched::make_site("ERCOT", traces[2], 12),
      sched::make_site("ESO", traces[0], 12),
      sched::make_site("CISO", traces[1], 12),
  };
  sched::SchedulerSimulator sim(sites, HourOfYear(month_start_hour(5)));

  sched::WorkloadParams wp;
  wp.horizon_hours = 24.0 * 28;
  wp.arrival_rate_per_hour = 2.0;
  wp.user_count = 6;
  const auto jobs = sched::generate_jobs(wp);

  std::cout << banner("Carbon-aware scheduling across ERCOT / ESO / CISO");
  std::cout << jobs.size() << " jobs over 28 days from June 1; home site: "
            << "ERCOT\n\n";

  const std::pair<const char*, sched::Policy> policies[] = {
      {"fcfs-local", sched::Policy::kFcfsLocal},
      {"greedy-lowest-ci", sched::Policy::kGreedyLowestCi},
      {"threshold-delay", sched::Policy::kThresholdDelay},
      {"budget-aware", sched::Policy::kBudgetAware},
  };

  TextTable t({"Policy", "Carbon (kg)", "Mean wait (h)", "Remote jobs",
               "Utilization"});
  for (const auto& [label, policy] : policies) {
    sched::PolicyConfig cfg;
    cfg.policy = policy;
    cfg.ci_threshold_g_per_kwh = 320;
    cfg.max_delay_hours = 12;
    cfg.user_budget = Mass::kilograms(250);
    const auto m = sim.run(jobs, cfg);
    t.add_row({label, TextTable::num(m.total_carbon.to_kilograms(), 1),
               TextTable::num(m.mean_wait_hours, 2),
               std::to_string(m.remote_dispatches),
               TextTable::num(m.utilization, 2)});
  }
  std::cout << t.to_string();

  // Budget accounting detail for the budget-aware run.
  sched::PolicyConfig cfg;
  cfg.policy = sched::Policy::kBudgetAware;
  cfg.user_budget = Mass::kilograms(250);
  sched::CarbonBudgetLedger ledger;
  sim.run(jobs, cfg, nullptr, &ledger);
  std::cout << "\nPer-user carbon-budget ledger (allocation 250 kg):\n";
  TextTable ut({"User", "spent (kg)", "remaining %", "status"});
  for (int u = 0; u < wp.user_count; ++u) {
    const std::string user = "user" + std::to_string(u);
    ut.add_row({user, TextTable::num(ledger.spent(user).to_kilograms(), 1),
                TextTable::num(100 * ledger.remaining_fraction(user), 1),
                ledger.is_overdrawn(user) ? "OVERDRAWN" : "ok"});
  }
  std::cout << ut.to_string();

  std::cout << "\nGreedy cross-region placement cuts carbon at zero wait "
               "cost; threshold-delay trades wait time instead — the "
               "incentive the paper's carbon budgets are designed to price.\n";
  return 0;
}

HPCARBON_TOOL("carbon-aware-scheduling", ToolKind::kExample,
              "One month of jobs over three sites under every policy")
