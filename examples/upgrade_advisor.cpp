// Upgrade advisor: the decision framework of RQ 7/8 as a small CLI.
//
// Given the current node generation, a candidate upgrade, the facility's
// average carbon intensity, GPU usage, and expected remaining service life,
// it reports whether the upgrade is carbon-positive and when it breaks even.
//
// Usage:
//   ./examples/upgrade_advisor [from] [to] [ci_g_per_kwh] [usage] [years]
//   e.g. ./examples/upgrade_advisor V100 A100 200 0.4 4
// Defaults: V100 A100 200 0.4 4.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/table.h"
#include "lifecycle/upgrade.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

hw::NodeConfig node_by_name(const std::string& name) {
  if (name == "P100") return hw::p100_node();
  if (name == "V100") return hw::v100_node();
  if (name == "A100") return hw::a100_node();
  throw Error("unknown node generation: " + name +
              " (expected P100, V100, or A100)");
}

}  // namespace

static int tool_main(int argc, char** argv) {
  try {
    const std::string from = argc > 1 ? argv[1] : "V100";
    const std::string to = argc > 2 ? argv[2] : "A100";
    const double ci = argc > 3 ? std::atof(argv[3]) : 200.0;
    const double usage = argc > 4 ? std::atof(argv[4]) : 0.4;
    const double horizon = argc > 5 ? std::atof(argv[5]) : 4.0;

    std::cout << banner("Carbon-aware upgrade advisor: " + from + " -> " + to);
    std::cout << "carbon intensity " << ci << " g/kWh, GPU usage "
              << usage * 100 << "%, planning horizon " << horizon
              << " years\n\n";

    TextTable t({"Workload", "perf gain %", "embodied tax", "break-even (y)",
                 "savings at horizon", "verdict"});
    int favorable = 0;
    for (auto s : workload::all_suites()) {
      lifecycle::UpgradeScenario sc;
      sc.old_node = node_by_name(from);
      sc.new_node = node_by_name(to);
      sc.suite = s;
      sc.intensity = CarbonIntensity::grams_per_kwh(ci);
      sc.usage = lifecycle::UsageProfile{usage};
      const double perf = hw::upgrade_improvement_percent(s, sc.old_node,
                                                          sc.new_node);
      const auto be = lifecycle::breakeven_years(sc);
      const double savings = lifecycle::savings_percent(sc, horizon);
      const bool good = be.has_value() && *be < horizon;
      favorable += good;
      t.add_row({workload::to_string(s), TextTable::num(perf, 1),
                 to_string(lifecycle::upgrade_embodied(sc)),
                 be ? TextTable::num(*be, 2) : "never",
                 TextTable::pct(savings, 1),
                 good ? "upgrade" : "extend lifetime"});
    }
    std::cout << t.to_string();

    std::cout << "\nRecommendation: ";
    if (favorable == 3) {
      std::cout << "upgrade — the embodied carbon amortizes within your "
                   "horizon for every workload mix.\n";
    } else if (favorable == 0) {
      std::cout << "extend the current hardware's lifetime — on this energy "
                   "mix the embodied tax of new silicon outweighs the "
                   "operational savings (Insight 8).\n";
    } else {
      std::cout << "depends on your workload mix — see per-suite verdicts "
                   "above (Insight 9).\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

HPCARBON_TOOL("upgrade-advisor", ToolKind::kExample,
              "Is a node upgrade carbon-positive, and when does it break even?")
