// Green500 re-ranking: the paper's Insight 6 implication — "when ranking
// supercomputers based on their greenness, we should also consider the
// geographical location of the facility and energy-mix" — applied to the
// three studied systems.
//
// Ranks the Table 2 systems by (a) the classic FLOPS/W-style proxy
// (operational energy only) and (b) a holistic annual carbon score that
// adds regional intensity and amortized embodied carbon. The ordering
// changes: location and embodied carbon matter.
//
// Usage: ./examples/green500_reranker
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/stats.h"
#include "core/table.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "lifecycle/systems.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

struct Entry {
  std::string name;
  std::string region;
  double peak_pflops;
  double it_power_mw;       // average IT draw
  double annual_op_t;       // operational tCO2e/year on its grid
  double annual_em_t;       // embodied, amortized over 6 years
  double holistic_score;    // PFLOPS per (tCO2e/year)
};

}  // namespace

static int tool_main(int, char**) {
  // Regional grids: Frontier in the US Southeast (PJM-like mix is the
  // closest Table 3 proxy), LUMI on Finnish hydro (use the paper's 20 g/kWh
  // hydro figure), Perlmutter on the California grid.
  const auto pjm = grid::GridSimulator(grid::pjm()).run();
  const auto ciso = grid::GridSimulator(grid::ciso()).run();

  const double pjm_mean = stats::mean(pjm.values());
  const double ciso_mean = stats::mean(ciso.values());
  const double hydro = 20.0;

  const struct {
    const char* name;
    const char* region;
    double peak_pflops;
    double it_power_mw;
    double grid_ci;
  } systems[] = {
      {"Frontier", "US Southeast (PJM proxy)", 1102.0, 21.0, pjm_mean},
      {"LUMI", "Finland (hydro)", 309.0, 6.0, hydro},
      {"Perlmutter", "California (CISO)", 70.9, 2.6, ciso_mean},
  };

  std::vector<Entry> entries;
  const auto inventories = lifecycle::studied_systems();
  for (int i = 0; i < 3; ++i) {
    Entry e;
    e.name = systems[i].name;
    e.region = systems[i].region;
    e.peak_pflops = systems[i].peak_pflops;
    e.it_power_mw = systems[i].it_power_mw;
    const double kwh_year = systems[i].it_power_mw * 1000.0 * 8760.0 * 1.2;
    e.annual_op_t = kwh_year * systems[i].grid_ci / 1e6;
    e.annual_em_t =
        lifecycle::system_embodied(inventories[static_cast<size_t>(i)])
            .to_tonnes() /
        6.0;  // 6-year service life
    e.holistic_score = e.peak_pflops / (e.annual_op_t + e.annual_em_t);
    entries.push_back(e);
  }

  std::cout << banner("Green500-style ranking, two ways");

  std::cout << "\n(a) Energy-efficiency proxy (PFLOPS per MW, "
               "location-blind):\n";
  auto by_eff = entries;
  std::sort(by_eff.begin(), by_eff.end(), [](const Entry& a, const Entry& b) {
    return a.peak_pflops / a.it_power_mw > b.peak_pflops / b.it_power_mw;
  });
  TextTable ta({"Rank", "System", "PFLOPS/MW"});
  for (std::size_t i = 0; i < by_eff.size(); ++i) {
    ta.add_row({std::to_string(i + 1), by_eff[i].name,
                TextTable::num(by_eff[i].peak_pflops / by_eff[i].it_power_mw,
                               1)});
  }
  std::cout << ta.to_string();

  std::cout << "\n(b) Holistic carbon ranking (PFLOPS per annual tCO2e, "
               "grid mix + amortized embodied):\n";
  auto by_carbon = entries;
  std::sort(by_carbon.begin(), by_carbon.end(),
            [](const Entry& a, const Entry& b) {
              return a.holistic_score > b.holistic_score;
            });
  TextTable tb({"Rank", "System", "Region", "op tCO2e/y", "embodied tCO2e/y",
                "PFLOPS per tCO2e/y"});
  for (std::size_t i = 0; i < by_carbon.size(); ++i) {
    const auto& e = by_carbon[i];
    tb.add_row({std::to_string(i + 1), e.name, e.region,
                TextTable::num(e.annual_op_t, 0),
                TextTable::num(e.annual_em_t, 0),
                TextTable::num(e.holistic_score, 2)});
  }
  std::cout << tb.to_string();

  std::cout << "\nOn hydro, LUMI's operational carbon nearly vanishes and "
               "its amortized embodied carbon dominates — energy-mix and "
               "embodied accounting reshuffle the 'greenness' ranking.\n";
  return 0;
}

HPCARBON_TOOL("green500-reranker", ToolKind::kExample,
              "Green500 re-ranking by facility location and energy mix")
