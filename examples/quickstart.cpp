// Quickstart: the full C_total = C_em + C_op pipeline in ~60 lines.
//
//   1. Model a GPU node's embodied carbon (Eq. 2-5).
//   2. Generate an hourly carbon-intensity trace for a real region.
//   3. Track a training job with the carbontracker-style Tracker (Eq. 6).
//   4. Combine both into the node's lifetime footprint (Eq. 1).
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "core/stats.h"
#include "embodied/catalog.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "hw/node.h"
#include "hw/perf.h"
#include "lifecycle/footprint.h"
#include "op/attribution.h"
#include "op/tracker.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  // 1. Embodied carbon of a Table 5 A100 node (4x A100 PCIe + 4x EPYC 7542
  //    + 512 GB DDR4 + local SSD).
  const hw::NodeConfig node = hw::a100_node();
  const Mass embodied = hw::node_embodied(node);
  std::cout << "A100 node embodied carbon: " << to_string(embodied) << "\n";
  for (auto id : {node.gpu, node.cpu}) {
    const auto b = embodied::embodied_of(id);
    std::cout << "  " << embodied::display_name(id) << ": "
              << to_string(b.total()) << " ("
              << static_cast<int>(100 * b.packaging_share() + 0.5)
              << "% packaging)\n";
  }

  // 2. Hourly 2021-style carbon intensity for Great Britain (UK ESO).
  const auto trace = grid::GridSimulator(grid::eso()).run();
  std::cout << "\nESO trace: median "
            << to_string(CarbonIntensity::grams_per_kwh(
                   stats::median(trace.values())))
            << ", CoV " << stats::cov_percent(trace.values()) << "%\n";

  // 3. Track one BERT fine-tuning run (1M samples) starting at midnight on
  //    March 1st, carbontracker-style, and bill it completely: Eq. 6
  //    operational carbon plus its amortized share of the node's embodied
  //    carbon.
  op::Tracker tracker(trace, HourOfYear(month_start_hour(2)));
  const auto& bert = workload::model_by_name("BERT");
  const auto bill = op::billed_training(tracker, node, bert, 1e6);
  std::cout << "\n" << bill.operational.to_string();
  std::cout << "  embodied share:    " << to_string(bill.embodied_share)
            << " (" << static_cast<int>(100 * bill.embodied_fraction() + 0.5)
            << "% of the job's total bill)\n";

  // 4. Five-year lifetime footprint at 40% GPU usage on this grid.
  const auto lifetime = lifecycle::node_lifetime_footprint(
      node, workload::Suite::kNlp, 0.4, 5.0, trace);
  std::cout << "\n5-year node footprint on the ESO grid:\n  "
            << lifetime.to_string() << "\n";

  std::cout << "\nEq. 1 in action: "
            << static_cast<int>(100 * lifetime.embodied_share() + 0.5)
            << "% of this node's lifetime carbon was emitted before it ever "
               "ran a job. Re-price the same node on 20 g/kWh hydro and that "
               "share becomes "
            << static_cast<int>(
                   100 * lifecycle::node_lifetime_footprint(
                             node, workload::Suite::kNlp, 0.4, 5.0,
                             CarbonIntensity::grams_per_kwh(20))
                             .embodied_share() +
                   0.5)
            << "% — the greener the grid, the more embodied carbon "
               "dominates.\n";
  return 0;
}

HPCARBON_TOOL("quickstart", ToolKind::kExample,
              "Full C_total = C_em + C_op pipeline in ~60 lines")
