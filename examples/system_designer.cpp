// System designer: the RFP workflow the paper's Observation 2 implication
// recommends — compare candidate system designs by embodied carbon, not
// just peak FLOPS.
//
// Two hypothetical 100-node procurement options are compared:
//   Design A "FLOPS-first": MI250X-dense nodes, HDD capacity tier.
//   Design B "balanced":    A100 nodes, more DRAM, all-flash storage.
//
// Usage: ./examples/system_designer
#include <iostream>

#include "core/table.h"
#include "embodied/report.h"
#include "lifecycle/inventory.h"

#include "cli/registry.h"

using namespace hpcarbon;
using embodied::PartClass;
using embodied::PartId;

namespace {

lifecycle::SystemInventory design_a() {
  lifecycle::SystemInventory s;
  s.name = "Design A (FLOPS-first)";
  const double nodes = 100;
  s.components = {
      {PartId::kMi250x, nodes * 8},           // dense GPU blades
      {PartId::kEpyc7763, nodes * 1},
      {PartId::kDram64GbDdr4, nodes * 8},     // 512 GB/node
      {PartId::kSsdNytro3530_3_2Tb, 200},     // metadata flash
      {PartId::kHddExosX16_16Tb, 2500},       // 40 PB capacity tier
  };
  return s;
}

lifecycle::SystemInventory design_b() {
  lifecycle::SystemInventory s;
  s.name = "Design B (balanced)";
  const double nodes = 100;
  s.components = {
      {PartId::kA100Sxm4_40, nodes * 4},
      {PartId::kEpyc7763, nodes * 2},
      {PartId::kDram64GbDdr4, nodes * 16},    // 1 TB/node
      {PartId::kSsdNytro3530_3_2Tb, 3200},    // ~10 PB all-flash
  };
  return s;
}

double peak_fp64_pflops(const lifecycle::SystemInventory& s) {
  double tf = 0;
  for (const auto& c : s.components) {
    if (embodied::is_processor(c.part)) {
      tf += embodied::processor(c.part).fp64_tflops * c.count;
    }
  }
  return tf / 1000.0;
}

}  // namespace

static int tool_main(int, char**) {
  std::cout << banner("RFP embodied-carbon comparison");
  TextTable t({"Metric", "Design A (FLOPS-first)", "Design B (balanced)"});

  const auto a = design_a();
  const auto b = design_b();
  const auto ba = lifecycle::class_breakdown(a);
  const auto bb = lifecycle::class_breakdown(b);

  t.add_row({"peak FP64 (PFLOPS)", TextTable::num(peak_fp64_pflops(a), 1),
             TextTable::num(peak_fp64_pflops(b), 1)});
  t.add_row({"embodied total (t CO2e)", TextTable::num(ba.total().to_tonnes(), 1),
             TextTable::num(bb.total().to_tonnes(), 1)});
  t.add_row({"embodied per PFLOPS (t)",
             TextTable::num(ba.total().to_tonnes() / peak_fp64_pflops(a), 1),
             TextTable::num(bb.total().to_tonnes() / peak_fp64_pflops(b), 1)});
  for (auto cls : {PartClass::kGpu, PartClass::kCpu, PartClass::kDram,
                   PartClass::kSsd, PartClass::kHdd}) {
    t.add_row({std::string(to_string(cls)) + " share %",
               TextTable::num(ba.share_percent(cls), 1),
               TextTable::num(bb.share_percent(cls), 1)});
  }
  t.add_row({"memory+storage share %",
             TextTable::num(ba.memory_storage_share_percent(), 1),
             TextTable::num(bb.memory_storage_share_percent(), 1)});
  std::cout << t.to_string();

  std::cout << "\nTakeaway: Design A wins peak FLOPS, but its carbon is "
               "GPU-dominated and its HDD tier alone embodies "
            << to_string(ba.by_class[static_cast<size_t>(PartClass::kHdd)])
            << ".\nPerformance benchmarking alone is not sufficient — ask "
               "vendors for embodied-carbon specifications in the RFP.\n\n";

  // Full per-component RFP annex (one node's worth of Design B) with
  // Monte-Carlo confidence bounds — the disclosure format the paper's
  // implication asks vendors to provide.
  embodied::RfpReportOptions opts;
  opts.title = "Design B per-node disclosure";
  opts.monte_carlo_samples = 2048;
  std::cout << embodied::rfp_report(
      {{PartId::kA100Sxm4_40, 4},
       {PartId::kEpyc7763, 2},
       {PartId::kDram64GbDdr4, 16},
       {PartId::kSsdNytro3530_3_2Tb, 1}},
      opts);
  return 0;
}

HPCARBON_TOOL("system-designer", ToolKind::kExample,
              "Compare candidate system designs by embodied carbon")
