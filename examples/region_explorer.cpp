// Region explorer: inspect any Table 3 grid region — annual statistics,
// energy mix, diurnal profile, and the best/worst hours for running jobs.
//
// Usage: ./examples/region_explorer [CODE]
//   CODE in {KN, TK, ESO, CISO, PJM, MISO, ERCOT}; default ESO.
#include <iostream>
#include <string>

#include "core/stats.h"
#include "core/table.h"
#include "grid/analysis.h"
#include "grid/presets.h"
#include "grid/simulator.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int argc, char** argv) {
  const std::string code = argc > 1 ? argv[1] : "ESO";
  grid::RegionSpec spec;
  bool found = false;
  for (const auto& r : grid::all_regions()) {
    if (r.code == code) {
      spec = r;
      found = true;
      break;
    }
  }
  if (!found) {
    std::cerr << "unknown region '" << code
              << "' (expected KN, TK, ESO, CISO, PJM, MISO, ERCOT)\n";
    return 1;
  }

  std::cout << banner("Region " + spec.code + " — " + spec.name);
  std::cout << spec.country << ", " << spec.area << " (UTC"
            << (spec.tz.utc_offset_hours() >= 0 ? "+" : "")
            << spec.tz.utc_offset_hours() << ")\n\n";

  grid::GridSimulator sim(spec);
  const auto trace = sim.run();
  const auto summary = grid::summarize(trace);

  std::cout << "Annual carbon intensity (gCO2/kWh):\n";
  TextTable s({"min", "Q1", "median", "Q3", "max", "mean", "CoV %"});
  s.add_row({TextTable::num(summary.box.min, 0),
             TextTable::num(summary.box.q1, 0),
             TextTable::num(summary.box.median, 0),
             TextTable::num(summary.box.q3, 0),
             TextTable::num(summary.box.max, 0),
             TextTable::num(summary.box.mean, 0),
             TextTable::num(summary.cov_percent, 1)});
  std::cout << s.to_string() << "\n";

  std::cout << "Annual energy mix:\n";
  const auto mix = sim.annual_mix();
  TextTable m({"Source", "share %", ""});
  for (std::size_t i = 0; i < spec.sources.size(); ++i) {
    m.add_row({grid::to_string(spec.sources[i].type),
               TextTable::num(100.0 * mix[i], 1), bar(mix[i], 0.6, 30)});
  }
  m.add_row({"imports", TextTable::num(100.0 * mix.back(), 1),
             bar(mix.back(), 0.6, 30)});
  std::cout << m.to_string() << "\n";

  std::cout << "Mean diurnal profile (local time):\n";
  const auto prof = grid::diurnal_profile(trace);
  double lo = prof[0], hi = prof[0];
  int lo_h = 0, hi_h = 0;
  TextTable d({"hour", "gCO2/kWh", ""});
  for (int h = 0; h < kHoursPerDay; ++h) {
    const double v = prof[static_cast<std::size_t>(h)];
    if (v < lo) { lo = v; lo_h = h; }
    if (v > hi) { hi = v; hi_h = h; }
    d.add_row({std::to_string(h), TextTable::num(v, 0),
               bar(v, summary.box.max, 30)});
  }
  std::cout << d.to_string();

  std::cout << "\nGreenest hour: " << lo_h << ":00 local ("
            << TextTable::num(lo, 0) << " g/kWh); dirtiest: " << hi_h
            << ":00 (" << TextTable::num(hi, 0)
            << " g/kWh). A job shifted from the dirtiest to the greenest "
               "hour cuts its operational carbon by "
            << TextTable::num(100.0 * (hi - lo) / hi, 0) << "%.\n";
  return 0;
}

HPCARBON_TOOL("region-explorer", ToolKind::kExample,
              "Inspect any Table 3 region: stats, mix, diurnal profile [CODE]")
