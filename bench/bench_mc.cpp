// Ablation A5: cost of the Monte-Carlo engine abstraction.
//
// The mc::Engine replaced two hand-rolled sampling loops in
// embodied::propagate (and unlocked distribution APIs in the lifecycle,
// fleet, and scheduler layers). This bench verifies the abstraction is
// free: samples/sec of the engine vs the pre-refactor hand-rolled loop on
// the same per-sample model, thread-count scaling on explicit pools, and a
// checksum demonstrating bit-identical results on 1 worker vs many.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "core/stats.h"
#include "embodied/catalog.h"
#include "embodied/models.h"
#include "embodied/uncertainty.h"
#include "mc/engine.h"
#include "reporter.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0)
      .count();
}

// The pre-refactor propagate loop, verbatim: ad-hoc xor substreams, inline
// parallel_for, no engine. Kept here purely as the timing reference.
std::vector<double> hand_rolled(const embodied::ProcessorPart& part,
                                const embodied::UncertaintyBands& bands,
                                int samples, std::uint64_t seed,
                                ThreadPool& pool) {
  std::vector<double> grams(static_cast<std::size_t>(samples), 0.0);
  pool.parallel_for(0, grams.size(), [&](std::size_t i) {
    Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
    double total = 0;
    for (const auto& die : part.dies) {
      const double per_area = embodied::fab_footprint(die.node).total_g_per_cm2() *
                              rng.uniform(1.0 - bands.fab_per_area,
                                          1.0 + bands.fab_per_area);
      double y = part.yield + rng.uniform(-bands.yield, bands.yield);
      y = std::clamp(y, 0.5, 1.0);
      total += per_area * (die.area_mm2 / 100.0) * die.count / y;
    }
    total += embodied::kPackagingGramsPerIc * part.ic_count *
             rng.uniform(1.0 - bands.packaging, 1.0 + bands.packaging);
    grams[i] = total;
  });
  return grams;
}

double checksum(const std::vector<double>& xs) {
  double acc = 0;
  for (double x : xs) acc += x;
  return acc;
}

// The pre-refactor summarize(): mean, stddev, and three quantiles, each
// quantile call copying and sorting the vector again (uncertainty.cpp:23-25
// before the stats::Summary migration).
double legacy_summarize(const std::vector<double>& grams) {
  return stats::mean(grams) + stats::stddev(grams) +
         stats::quantile(grams, 0.05) + stats::quantile(grams, 0.50) +
         stats::quantile(grams, 0.95);
}

}  // namespace

static int tool_main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, "mc");
  bench::Reporter report("mc", args);
  const auto& part = embodied::processor(embodied::PartId::kA100Pcie40);
  const embodied::UncertaintyBands bands;
  // ~1M draws in full mode; smoke keeps the same code path but finishes in
  // well under a second so CI can afford the row.
  const int kSamples = args.smoke ? (1 << 16) : (1 << 20);
  const std::size_t hw_threads =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());

  bench::print_banner("MC engine vs hand-rolled loop (A100 embodied, " +
                      std::to_string(kSamples) + " samples)");
  ThreadPool pool(hw_threads);
  // Warm-up: fault in the pool and the part tables outside the timed runs.
  (void)hand_rolled(part, bands, 1 << 12, 1, pool);

  const auto t0 = clock_type::now();
  const auto hand = hand_rolled(part, bands, kSamples, 42, pool);
  const double ms_hand = ms_since(t0);

  mc::SamplePlan plan{kSamples, 42, &pool};
  const auto t1 = clock_type::now();
  const auto engine_samples = mc::Engine(plan).run_samples(
      [&](std::size_t, Rng& rng) {
        return embodied::sample_embodied_grams(part, bands, rng);
      });
  const double ms_engine = ms_since(t1);

  TextTable t({"Variant", "Time (ms)", "Msamples/s", "Overhead"});
  auto rate = [&](double ms) { return kSamples / ms / 1e3; };
  t.add_row({"hand-rolled loop (pre-refactor)", TextTable::num(ms_hand, 1),
             TextTable::num(rate(ms_hand), 2), "-"});
  t.add_row({"mc::Engine::run_samples", TextTable::num(ms_engine, 1),
             TextTable::num(rate(ms_engine), 2),
             TextTable::pct(100.0 * (ms_engine - ms_hand) / ms_hand, 1)});
  bench::print_table(t);
  std::cout << "Engine cost vs the reference loop is the substream "
               "derivation plus per-sample dispatch; the blocked engine "
               "amortizes both across a block.\n";

  bench::print_banner("Summarization + end-to-end propagate equivalent");
  // Pre-refactor pipeline: hand loop, then mean/stddev plus a fresh sort
  // per quantile. New pipeline: engine, then one-sort Distribution.
  const auto t2 = clock_type::now();
  const double legacy_sum = legacy_summarize(hand);
  const double ms_legacy_summ = ms_since(t2);

  const auto t3 = clock_type::now();
  const auto dist = mc::Engine(plan).run([&](std::size_t, Rng& rng) {
    return embodied::sample_embodied_grams(part, bands, rng);
  });
  const double ms_new_total = ms_since(t3);
  const double ms_old_total = ms_hand + ms_legacy_summ;

  TextTable e({"Pipeline", "Sample (ms)", "Summarize (ms)", "Total (ms)"});
  e.add_row({"pre-refactor (3-sort summary)", TextTable::num(ms_hand, 1),
             TextTable::num(ms_legacy_summ, 1),
             TextTable::num(ms_old_total, 1)});
  e.add_row({"mc::Engine + Distribution (1 sort)",
             TextTable::num(ms_engine, 1),
             TextTable::num(ms_new_total - ms_engine, 1),
             TextTable::num(ms_new_total, 1)});
  bench::print_table(e);
  std::cout << "end-to-end speedup "
            << TextTable::num(ms_old_total / ms_new_total, 2) << "x; p50 "
            << TextTable::num(dist.p50() / 1e3, 2) << " kg, p95 "
            << TextTable::num(dist.p95() / 1e3, 2) << " kg (legacy checksum "
            << TextTable::num(legacy_sum / 1e3, 2) << ")\n";

  bench::print_banner("Thread scaling and determinism");
  TextTable s({"Workers", "Time (ms)", "Msamples/s", "Checksum delta vs 1"});
  double checksum_serial = 0;
  bool bit_identical = true;
  std::vector<std::size_t> worker_counts = {1, 2};
  if (hw_threads > 2) worker_counts.push_back(hw_threads);
  for (std::size_t workers : worker_counts) {
    ThreadPool p(workers);
    mc::SamplePlan wp{kSamples, 42, &p};
    const auto w0 = clock_type::now();
    const auto xs = mc::Engine(wp).run_samples([&](std::size_t, Rng& rng) {
      return embodied::sample_embodied_grams(part, bands, rng);
    });
    const double ms = ms_since(w0);
    const double sum = checksum(xs);
    if (workers == 1) checksum_serial = sum;
    if (sum != checksum_serial) bit_identical = false;
    s.add_row({std::to_string(workers), TextTable::num(ms, 1),
               TextTable::num(rate(ms), 2),
               sum == checksum_serial ? "bit-identical" : "MISMATCH"});
  }
  bench::print_table(s);
  std::cout << "\nSubstreams are derived from (seed, sample index), never "
               "from the executing thread, so any worker count reproduces "
               "the same distribution bit for bit.\n";

  using bench::Direction;
  report.metric("samples", static_cast<double>(kSamples), "count",
                Direction::kHigherIsBetter);
  report.metric("engine_msamples_s", rate(ms_engine), "Msamples/s",
                Direction::kHigherIsBetter, /*pinned=*/true);
  report.metric("hand_msamples_s", rate(ms_hand), "Msamples/s",
                Direction::kHigherIsBetter);
  report.metric("engine_overhead_pct",
                100.0 * (ms_engine - ms_hand) / ms_hand, "%",
                Direction::kLowerIsBetter);
  report.metric("e2e_speedup", ms_old_total / ms_new_total, "x",
                Direction::kHigherIsBetter);
  report.metric("thread_bit_identical", bit_identical ? 1.0 : 0.0, "bool",
                Direction::kHigherIsBetter, /*pinned=*/true);
  report.write();
  return bit_identical ? 0 : 1;
}

HPCARBON_TOOL("mc", ToolKind::kBench,
              "Ablation A5: MC engine samples/sec vs hand-rolled loops, "
              "thread scaling, determinism; --json trajectory")
