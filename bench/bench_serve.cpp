// Serve-layer load generator: what the query service costs and what the
// cache buys.
//
// Phases are explicit and seed-pinned so that `--json` trajectory rows
// are comparable across machines and across PRs:
//
//   cold  — a fresh Engine answers the pinned Zipf mix line by line
//           (cache filling; every distinct query evaluates once).
//   warm  — the same Engine answers the identical mix again (cache full;
//           the steady state a dashboard-heavy production log sees).
//   batch — a second fresh Engine answers the same mix via handle_batch
//           (dedup + pool fan-out), cold then warm.
//
// The mix itself is a deterministic function of two pinned seeds:
// kShuffleSeed shuffles the query universe (so Zipf head ranks are not
// correlated with family order) and kMixSeed draws the Zipf(1.1) ranks.
// Identical on every machine, every run, full and smoke mode alike —
// smoke only shortens the replay, it does not re-roll it.
//
// (c) TraceStore reuse: what one preset-trace generation costs vs the
//     shared-store lookup every later section/query performs — the reason
//     `hpcarbon sweep` sections and `run --uncertainty` stopped re-parsing
//     their --trace-csv inputs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/table.h"
#include "net/loadgen.h"
#include "core/thread_pool.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "reporter.h"
#include "serve/cache.h"
#include "serve/engine.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

using clock_type = std::chrono::steady_clock;

// The pinned mix seeds live in net/loadgen.h now, shared with the
// netload bench so both trajectories replay the same stream. zipf_mix is
// prefix-stable, so growing the full replay (2000 -> 10000 requests, for
// a meaningful p999) extended the old stream instead of re-rolling it.
constexpr std::size_t kFullRequests = 10000;
constexpr std::size_t kSmokeRequests = 300;

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0)
      .count();
}

struct PassResult {
  double total_ms = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  serve::CacheStats stats;
};

PassResult replay(serve::Engine& engine, const std::vector<std::string>& mix) {
  const serve::CacheStats before = engine.cache_stats();
  std::vector<double> latencies_us;
  latencies_us.reserve(mix.size());
  std::string response;  // reused, as the daemon loop does
  const auto t0 = clock_type::now();
  for (const auto& line : mix) {
    const auto r0 = clock_type::now();
    response.clear();
    engine.handle_line_to(line, response);
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(clock_type::now() - r0)
            .count());
    if (response.find("\"ok\":true") == std::string::npos) {
      std::cerr << "unexpected error response: " << response << '\n';
      std::exit(1);
    }
  }
  PassResult res;
  res.total_ms = ms_since(t0);
  std::sort(latencies_us.begin(), latencies_us.end());
  res.p50_us = latencies_us[latencies_us.size() / 2];
  res.p99_us = latencies_us[latencies_us.size() * 99 / 100];
  res.p999_us = net::percentile_sorted(latencies_us, 0.999);
  res.stats = engine.cache_stats();
  res.stats.hits -= before.hits;
  res.stats.misses -= before.misses;
  return res;
}

double qps(const PassResult& r, std::size_t requests) {
  return 1000.0 * static_cast<double>(requests) / r.total_ms;
}

void add_pass_row(TextTable& t, const std::string& label, const PassResult& r,
                  std::size_t requests) {
  const double hit_rate =
      100.0 * static_cast<double>(r.stats.hits) /
      static_cast<double>(r.stats.hits + r.stats.misses);
  t.add_row({label, std::to_string(requests), TextTable::num(r.total_ms, 1),
             TextTable::num(qps(r, requests), 0), TextTable::num(r.p50_us, 1),
             TextTable::num(r.p99_us, 1), TextTable::num(hit_rate, 1),
             std::to_string(r.stats.evictions),
             std::to_string(r.stats.bytes)});
}

int tool_main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, "serve-load");
  bench::Reporter report("serve-load", args);
  const std::size_t requests = args.smoke ? kSmokeRequests : kFullRequests;

  bench::print_banner(
      "serve-load: Zipf query mix, cold vs warm cache (target >= 10x)");
  const auto mix = net::zipf_mix(requests);
  std::cout << net::query_universe().size() << " distinct queries, "
            << mix.size() << " Zipf(1.1)-skewed requests (shuffle seed "
            << net::kShuffleSeed << ", mix seed " << net::kMixSeed << ")\n";

  serve::ServeOptions opts;
  opts.cache_bytes = 4u << 20;
  serve::Engine engine(opts);

  TextTable t({"Phase", "Requests", "Total ms", "req/s", "p50 us", "p99 us",
               "Hit %", "Evictions", "Cache bytes"});
  const PassResult cold = replay(engine, mix);
  add_pass_row(t, "cold (cache filling)", cold, mix.size());
  const PassResult warm = replay(engine, mix);
  add_pass_row(t, "warm (cache full)", warm, mix.size());
  bench::print_table(t);
  std::cout << "warm-over-cold speedup: "
            << TextTable::num(cold.total_ms / warm.total_ms, 1)
            << "x (target >= 10x); cache stayed within its "
            << (opts.cache_bytes >> 20) << " MiB budget: "
            << (warm.stats.bytes <= opts.cache_bytes ? "yes" : "NO") << "\n";

  bench::print_banner("serve-load: batch planner (dedup + pool fan-out)");
  TextTable b({"Phase", "Requests", "Total ms", "req/s"});
  double batch_cold_ms = 0, batch_warm_ms = 0;
  {
    serve::Engine batch_engine(opts);
    const auto t0 = clock_type::now();
    const auto responses = batch_engine.handle_batch(mix);
    batch_cold_ms = ms_since(t0);
    const auto t1 = clock_type::now();
    (void)batch_engine.handle_batch(mix);
    batch_warm_ms = ms_since(t1);
    b.add_row({"batch cold", std::to_string(responses.size()),
               TextTable::num(batch_cold_ms, 1),
               TextTable::num(1000.0 * static_cast<double>(mix.size()) /
                                  batch_cold_ms, 0)});
    b.add_row({"batch warm", std::to_string(mix.size()),
               TextTable::num(batch_warm_ms, 1),
               TextTable::num(1000.0 * static_cast<double>(mix.size()) /
                                  batch_warm_ms, 0)});
  }
  bench::print_table(b);

  bench::print_banner("TraceStore: parse/generate once, share everywhere");
  // The satellite measurement: a preset year costs a full simulator run
  // on first touch and a map lookup afterwards — which is why the sweep
  // sections and `run --uncertainty N` now share one parse per
  // (region, file) instead of re-importing per section.
  serve::TraceStore store;
  const auto g0 = clock_type::now();
  const auto first = store.preset("ESO");
  const double generate_ms = ms_since(g0);
  const auto g1 = clock_type::now();
  constexpr int kLookups = 1000;
  for (int i = 0; i < kLookups; ++i) {
    if (store.preset("ESO").get() != first.get()) std::exit(1);
  }
  const double lookup_us = 1000.0 * ms_since(g1) / kLookups;
  TextTable s({"Operation", "Cost"});
  s.add_row({"generate ESO preset (first touch)",
             TextTable::num(generate_ms, 2) + " ms"});
  s.add_row({"shared-store lookup (every later use)",
             TextTable::num(lookup_us, 2) + " us"});
  s.add_row({"reuse factor", TextTable::num(
                                 1000.0 * generate_ms / lookup_us, 0) + "x"});
  bench::print_table(s);
  std::cout << "store counters: " << store.hits() << " hits, "
            << store.misses() << " misses\n";

  // The trajectory contract: warm p50/throughput are the pinned hot-path
  // metrics (the per-request cost once evaluation is out of the picture
  // — pure parse/canonicalize/hash/hit/emit); cold and batch rows are
  // informational context.
  using bench::Direction;
  report.metric("requests", static_cast<double>(mix.size()), "count",
                Direction::kHigherIsBetter);
  report.metric("cold_qps", qps(cold, mix.size()), "req/s",
                Direction::kHigherIsBetter);
  report.metric("cold_p50_us", cold.p50_us, "us", Direction::kLowerIsBetter);
  report.metric("warm_qps", qps(warm, mix.size()), "req/s",
                Direction::kHigherIsBetter, /*pinned=*/true);
  report.metric("warm_p50_us", warm.p50_us, "us", Direction::kLowerIsBetter,
                /*pinned=*/true);
  report.metric("warm_p99_us", warm.p99_us, "us", Direction::kLowerIsBetter);
  // Pinned tail: the p999 regression gate (10000 warm samples -> the
  // order statistic averages ~10 tail events, stable enough to pin).
  report.metric("warm_p999_us", warm.p999_us, "us", Direction::kLowerIsBetter,
                /*pinned=*/true);
  report.metric("warm_hit_pct",
                100.0 * static_cast<double>(warm.stats.hits) /
                    static_cast<double>(warm.stats.hits + warm.stats.misses),
                "%", Direction::kHigherIsBetter);
  report.metric("warm_over_cold", cold.total_ms / warm.total_ms, "x",
                Direction::kHigherIsBetter);
  report.metric("batch_cold_qps",
                1000.0 * static_cast<double>(mix.size()) / batch_cold_ms,
                "req/s", Direction::kHigherIsBetter);
  report.metric("batch_warm_qps",
                1000.0 * static_cast<double>(mix.size()) / batch_warm_ms,
                "req/s", Direction::kHigherIsBetter, /*pinned=*/true);
  report.metric("trace_generate_ms", generate_ms, "ms",
                Direction::kLowerIsBetter);
  report.metric("trace_lookup_us", lookup_us, "us", Direction::kLowerIsBetter);
  report.write();
  return 0;
}

}  // namespace

HPCARBON_TOOL("serve-load", ToolKind::kBench,
              "Query-service load generator: pinned-seed Zipf mix, "
              "cold/warm/batch phases, TraceStore reuse; --json trajectory")
