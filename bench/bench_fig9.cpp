// Figure 9 (RQ 8): carbon savings after upgrade under different GPU usage
// patterns (high 60%, medium 40%, low 26.7%), carbon intensity fixed at
// 200 gCO2/kWh.
//
// Paper shape: after one year of a V100->A100 upgrade on NLP, high/medium
// usage is clearly in the green while low usage has only just paid off the
// embodied carbon; the usage effect is real but smaller than the intensity
// effect of Fig. 8.
#include <iostream>

#include "bench_common.h"
#include "lifecycle/upgrade.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  bench::print_banner(
      "Figure 9: Carbon savings after upgrade by usage pattern (200 g/kWh)");

  const std::vector<double> years = {0.25, 0.5, 1, 2, 3, 4, 5};
  const std::pair<hw::NodeConfig, hw::NodeConfig> upgrades[3] = {
      {hw::p100_node(), hw::v100_node()},
      {hw::p100_node(), hw::a100_node()},
      {hw::v100_node(), hw::a100_node()}};
  const lifecycle::UsageProfile usages[3] = {lifecycle::UsageProfile::high(),
                                             lifecycle::UsageProfile::medium(),
                                             lifecycle::UsageProfile::low()};
  const char* usage_name[3] = {"high (60%)", "medium (40%)", "low (26.7%)"};

  for (auto s : workload::all_suites()) {
    for (const auto& [from, to] : upgrades) {
      std::cout << "\n-- " << workload::to_string(s) << ", " << from.name
                << " to " << to.name << " upgrade --\n";
      TextTable t({"GPU usage", "0.25y", "0.5y", "1y", "2y", "3y", "4y",
                   "5y", "break-even (y)"});
      for (int u = 0; u < 3; ++u) {
        lifecycle::UpgradeScenario sc;
        sc.old_node = from;
        sc.new_node = to;
        sc.suite = s;
        sc.intensity = CarbonIntensity::grams_per_kwh(200);
        sc.usage = usages[u];
        std::vector<std::string> row = {usage_name[u]};
        for (double v : lifecycle::savings_curve(sc, years)) {
          row.push_back(TextTable::pct(v, 1));
        }
        const auto be = lifecycle::breakeven_years(sc);
        row.push_back(be ? TextTable::num(*be, 2) : "never");
        t.add_row(row);
      }
      bench::print_table(t);
    }
  }

  std::cout << "\nInsight 9: low utilization stretches the amortization of "
               "the upgrade's embodied carbon — extending hardware lifetime "
               "is attractive for under-utilized, green-powered centers."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("fig9", ToolKind::kBench,
              "Fig. 9: upgrade savings under different GPU usage patterns")
