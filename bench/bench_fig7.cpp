// Figure 7 (RQ 6): for each hour of the day (JST-aligned, as in the paper),
// how many days of the year each of the three greenest regions (ESO, CISO,
// ERCOT) has the lowest carbon intensity.
//
// Paper shape: ESO dominates JST hours ~8-20 (UK midnight-to-noon); CISO
// wins most other hours; no region wins every hour; ERCOT takes scattered
// days.
#include <iostream>

#include "bench_common.h"
#include "grid/analysis.h"
#include "grid/presets.h"
#include "grid/simulator.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  const auto traces = grid::generate_traces(grid::fig7_regions());
  const auto winners = grid::hourly_lowest_ci(traces, kJst);

  bench::print_banner(
      "Figure 7: Days with the lowest carbon intensity per JST hour");
  TextTable t({"JST hour", "ESO (GB)", "CISO (Cal)", "ERCOT (Tex)",
               "leader"});
  for (int h = 0; h < kHoursPerDay; ++h) {
    const auto hu = static_cast<std::size_t>(h);
    const int eso = winners.counts[0][hu];
    const int ciso = winners.counts[1][hu];
    const int ercot = winners.counts[2][hu];
    std::string leader = "ESO";
    if (ciso >= eso && ciso >= ercot) leader = "CISO";
    if (ercot > eso && ercot > ciso) leader = "ERCOT";
    t.add_row({std::to_string(h), std::to_string(eso), std::to_string(ciso),
               std::to_string(ercot), leader});
  }
  bench::print_table(t);

  int eso_total = 0, ciso_total = 0, ercot_total = 0;
  for (int h = 0; h < kHoursPerDay; ++h) {
    const auto hu = static_cast<std::size_t>(h);
    eso_total += winners.counts[0][hu];
    ciso_total += winners.counts[1][hu];
    ercot_total += winners.counts[2][hu];
  }
  std::cout << "\nannual winner-hours: ESO " << eso_total << ", CISO "
            << ciso_total << ", ERCOT " << ercot_total << "\n";
  std::cout << "Insight 7: no single region is the consistent winner — the "
               "case for geographically distributed, carbon-aware job "
               "placement."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("fig7", ToolKind::kBench,
              "Fig. 7: hour-of-day lowest-CI winner analysis (JST-aligned)")
