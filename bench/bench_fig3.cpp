// Figure 3: manufacturing vs packaging split of the embodied carbon per
// device class (the paper's ring charts).
//
// Paper reference: GPU 15% / CPU 7% / DRAM 42% / SSD 2% / HDD 2% packaging.
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"
#include "embodied/catalog.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  bench::print_banner(
      "Figure 3: Manufacturing vs packaging share of embodied carbon");

  const std::map<embodied::PartClass, double> paper = {
      {embodied::PartClass::kGpu, 15.0}, {embodied::PartClass::kCpu, 7.0},
      {embodied::PartClass::kDram, 42.0}, {embodied::PartClass::kSsd, 2.0},
      {embodied::PartClass::kHdd, 2.0}};

  std::map<embodied::PartClass, std::pair<double, double>> agg;  // pkg, total
  for (auto id : embodied::table1_parts()) {
    const auto b = embodied::embodied_of(id);
    const auto cls = embodied::is_processor(id)
                         ? embodied::processor(id).cls
                         : embodied::memory(id).cls;
    agg[cls].first += b.packaging.to_grams();
    agg[cls].second += b.total().to_grams();
  }

  TextTable t({"Class", "Manufacturing %", "Packaging %",
               "Packaging % (paper)"});
  for (const auto& [cls, pt] : agg) {
    const double pkg = 100.0 * pt.first / pt.second;
    t.add_row({to_string(cls), TextTable::num(100.0 - pkg, 1),
               TextTable::num(pkg, 1), TextTable::num(paper.at(cls), 0)});
  }
  bench::print_table(t);

  std::cout << "\nObservation 3: manufacturing dominates everywhere except "
               "DRAM, where packaging contributes over 40%."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("fig3", ToolKind::kBench,
              "Fig. 3: manufacturing vs packaging split per device class")
