// Figure 8 (RQ 7): carbon savings over five years after a node upgrade,
// for three upgrade options (rows) x three average carbon intensities
// (columns: high 400, medium 200, low 20 gCO2/kWh) x three workloads.
//
// Paper shape: curves start negative (embodied "tax"), cross into savings
// in <0.5 y at high intensity, <1 y at medium, ~5 y at low; NLP sits below
// Vision/CANDLE for the V100->A100 row.
#include <iostream>

#include "bench_common.h"
#include "lifecycle/upgrade.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  bench::print_banner("Figure 8: Carbon savings after upgrade (usage 40%)");

  const std::vector<double> years = {0.1, 0.25, 0.5, 1, 2, 3, 4, 5};
  const std::pair<hw::NodeConfig, hw::NodeConfig> upgrades[3] = {
      {hw::p100_node(), hw::v100_node()},
      {hw::p100_node(), hw::a100_node()},
      {hw::v100_node(), hw::a100_node()}};
  const double intensities[3] = {400, 200, 20};
  const char* intensity_name[3] = {"high (400 g/kWh)", "medium (200 g/kWh)",
                                   "low (20 g/kWh)"};

  for (const auto& [from, to] : upgrades) {
    for (int c = 0; c < 3; ++c) {
      std::cout << "\n-- " << from.name << " to " << to.name
                << " upgrade, " << intensity_name[c]
                << " carbon intensity --\n";
      TextTable t({"Workload", "0.1y", "0.25y", "0.5y", "1y", "2y", "3y",
                   "4y", "5y", "break-even (y)"});
      for (auto s : workload::all_suites()) {
        lifecycle::UpgradeScenario sc;
        sc.old_node = from;
        sc.new_node = to;
        sc.suite = s;
        sc.intensity = CarbonIntensity::grams_per_kwh(intensities[c]);
        std::vector<std::string> row = {workload::to_string(s)};
        for (double v : lifecycle::savings_curve(sc, years)) {
          row.push_back(TextTable::pct(v, 1));
        }
        const auto be = lifecycle::breakeven_years(sc);
        row.push_back(be ? TextTable::num(*be, 2) : "never");
        t.add_row(row);
      }
      bench::print_table(t);
    }
  }

  std::cout << "\nInsight 8: at high/medium intensity the embodied tax is "
               "amortized in well under a year; on near-renewable grids "
               "(20 g/kWh) payoff takes roughly five years — extending "
               "hardware lifetime is then the carbon-friendly option."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("fig8", ToolKind::kBench,
              "Fig. 8: five-year upgrade savings across grids and workloads")
