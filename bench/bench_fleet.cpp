// Ablation A4: fleet-scale upgrade planning under grid decarbonization.
//
// Extends Fig. 8's single-node analysis to a 100-node V100 fleet weighing
// three strategies — keep, phased replacement (4 years), all-at-once — on
// grids that decarbonize at 0/5/15 %/year. The paper's Insight 8 in
// procurement form: the greener the trajectory, the longer embodied carbon
// takes to amortize, until phasing (or keeping) wins.
#include <iostream>

#include "bench_common.h"
#include "lifecycle/fleet.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  lifecycle::UpgradeScenario node;
  node.old_node = hw::v100_node();
  node.new_node = hw::a100_node();
  node.suite = workload::Suite::kVision;

  const int kNodes = 100;
  const auto immediate = lifecycle::all_at_once(node, kNodes);
  const auto spread = lifecycle::phased(node, kNodes, 4);
  lifecycle::FleetPlan keep;
  keep.node = node;
  keep.node_count = kNodes;
  keep.replacement_schedule = {};

  bench::print_banner(
      "Ablation A4: 100-node fleet, V100 -> A100, cumulative tCO2e");
  for (double decline : {0.0, 0.05, 0.15}) {
    const lifecycle::GridTrajectory traj(
        CarbonIntensity::grams_per_kwh(200), decline);
    std::cout << "\n-- grid decarbonization " << decline * 100
              << " %/year (starts at 200 g/kWh) --\n";
    TextTable t({"Strategy", "1y", "2y", "4y", "6y", "8y",
                 "savings at 8y"});
    const std::vector<double> years = {1, 2, 4, 6, 8};
    for (const auto& [label, plan] :
         {std::pair{"keep (no upgrade)", keep},
          std::pair{"phased over 4 years", spread},
          std::pair{"all-at-once", immediate}}) {
      std::vector<std::string> row = {label};
      for (double y : years) {
        row.push_back(TextTable::num(
            lifecycle::fleet_cumulative_carbon(plan, traj, y).to_tonnes(),
            1));
      }
      row.push_back(
          TextTable::pct(lifecycle::fleet_savings_percent(plan, traj, 8.0), 1));
      t.add_row(row);
    }
    bench::print_table(t);
  }

  bench::print_banner("Break-even (years) under decarbonization, per suite");
  TextTable b({"Start CI (g/kWh)", "Decline %/yr", "NLP", "Vision", "CANDLE"});
  for (double ci0 : {200.0, 25.0}) {
    for (double decline : {0.0, 0.10, 0.20, 0.30}) {
      const lifecycle::GridTrajectory traj(
          CarbonIntensity::grams_per_kwh(ci0), decline);
      std::vector<std::string> row = {TextTable::num(ci0, 0),
                                      TextTable::num(decline * 100, 0)};
      for (auto s : workload::all_suites()) {
        lifecycle::UpgradeScenario sc = node;
        sc.suite = s;
        const auto be = lifecycle::breakeven_years(sc, traj);
        row.push_back(be ? TextTable::num(*be, 2) : "never");
      }
      b.add_row(row);
    }
  }
  bench::print_table(b);

  std::cout << "\nOn a 200 g/kWh grid the upgrade pays for itself quickly "
               "even under decarbonization; on an already-green grid "
               "(25 g/kWh) that is also greening, the embodied tax is never "
               "repaid — serve out the fleet's lifetime instead (Insight 8, "
               "fleet edition). Phasing defers but does not avoid embodied "
               "carbon: a bad upgrade should be skipped, not phased."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("fleet", ToolKind::kBench,
              "Ablation A4: fleet-scale upgrade planning under decarbonization")
