// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/table.h"

namespace hpcarbon::bench {

inline void print_banner(const std::string& title) {
  std::cout << "\n" << banner(title);
}

inline void print_table(const TextTable& t) { std::cout << t.to_string(); }

/// "paper X, measured Y (delta D)" annotation cell.
inline std::string vs_paper(double measured, double paper, int precision = 1) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f (paper %.*f)", precision, measured,
                precision, paper);
  return buf;
}

}  // namespace hpcarbon::bench
