// Ablation A2: sensitivity of the headline results to the modeling choices
// the paper flags as threats to validity — fab yield, EPC constants, PUE,
// Monte-Carlo input bands, and the chiplet-IO-die exclusion documented in
// the catalog.
#include <iostream>

#include "bench_common.h"
#include "embodied/catalog.h"
#include "embodied/uncertainty.h"
#include "lifecycle/upgrade.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

void yield_sweep() {
  bench::print_banner("Sensitivity: fab yield (paper fixes 0.875)");
  TextTable t({"Yield", "A100 embodied (kg)", "MI250X embodied (kg)",
               "max GPU/CPU ratio"});
  for (double y : {0.95, 0.875, 0.80, 0.70, 0.60}) {
    auto with_yield = [&](embodied::PartId id) {
      embodied::ProcessorPart p = embodied::processor(id);
      p.yield = y;
      return embodied::embodied(p).total().to_kilograms();
    };
    double max_ratio = 0;
    for (auto g : {embodied::PartId::kMi250x, embodied::PartId::kA100Pcie40,
                   embodied::PartId::kV100Sxm2_32}) {
      for (auto c : {embodied::PartId::kEpyc7763, embodied::PartId::kEpyc7742,
                     embodied::PartId::kXeonGold6240R}) {
        max_ratio = std::max(max_ratio, with_yield(g) / with_yield(c));
      }
    }
    t.add_row({TextTable::num(y, 3),
               TextTable::num(with_yield(embodied::PartId::kA100Pcie40), 2),
               TextTable::num(with_yield(embodied::PartId::kMi250x), 2),
               TextTable::num(max_ratio, 2)});
  }
  bench::print_table(t);
  std::cout << "Observation 1 (GPU > CPU, ratio ~3.4x) is yield-invariant: "
               "yield scales all Eq. 3 terms together.\n";
}

void iod_inclusion() {
  bench::print_banner(
      "Sensitivity: including the EPYC 12nm IO die (excluded by default)");
  embodied::ProcessorPart epyc = embodied::processor(embodied::PartId::kEpyc7763);
  const double base = embodied::embodied(epyc).total().to_kilograms();
  epyc.dies.push_back({416.0, embodied::ProcessNode::nm12, 1});
  const double with_iod = embodied::embodied(epyc).total().to_kilograms();
  const double v100 =
      embodied::embodied_of(embodied::PartId::kV100Sxm2_32).total().to_kilograms();
  TextTable t({"Variant", "EPYC 7763 (kg)", "V100 (kg)", "GPU still higher?"});
  t.add_row({"compute dies only (default)", TextTable::num(base, 2),
             TextTable::num(v100, 2), base < v100 ? "yes" : "no"});
  t.add_row({"with 416 mm^2 IOD", TextTable::num(with_iod, 2),
             TextTable::num(v100, 2), with_iod < v100 ? "yes" : "no"});
  bench::print_table(t);
  std::cout << "Counting the mature-node IO die lifts the chiplet CPU above "
               "the oldest GPU — exactly the data-availability ambiguity the "
               "paper's RFP implication asks vendors to resolve.\n";
}

void epc_sweep() {
  bench::print_banner("Sensitivity: DRAM EPC (paper: 65 gCO2/GB)");
  TextTable t({"EPC (g/GB)", "64GB module (kg)", "packaging share %"});
  for (double epc : {45.0, 55.0, 65.0, 75.0, 85.0}) {
    embodied::MemoryPart d = embodied::memory(embodied::PartId::kDram64GbDdr4);
    d.epc_g_per_gb = epc;
    const auto b = embodied::embodied(d);
    t.add_row({TextTable::num(epc, 0),
               TextTable::num(b.total().to_kilograms(), 2),
               TextTable::num(100 * b.packaging_share(), 1)});
  }
  bench::print_table(t);
  std::cout << "The Fig. 3 DRAM packaging share (42%) depends directly on "
               "the vendor EPC — a 10 g/GB shift moves it several points.\n";
}

void pue_sweep() {
  bench::print_banner(
      "Sensitivity: PUE effect on upgrade break-even (V100->A100, NLP, "
      "200 g/kWh)");
  TextTable t({"PUE", "break-even (years)", "savings at 1y %"});
  for (double pue : {1.1, 1.2, 1.4, 1.6}) {
    lifecycle::UpgradeScenario sc;
    sc.old_node = hw::v100_node();
    sc.new_node = hw::a100_node();
    sc.suite = workload::Suite::kNlp;
    sc.intensity = CarbonIntensity::grams_per_kwh(200);
    sc.pue = op::PueModel(pue);
    const auto be = lifecycle::breakeven_years(sc);
    t.add_row({TextTable::num(pue, 1), be ? TextTable::num(*be, 2) : "never",
               TextTable::pct(lifecycle::savings_percent(sc, 1.0), 1)});
  }
  bench::print_table(t);
  std::cout << "Higher PUE inflates every operational kWh, so inefficient "
               "facilities amortize upgrades faster.\n";
}

void monte_carlo() {
  bench::print_banner("Monte-Carlo uncertainty on Table 1 embodied carbon");
  TextTable t({"Part", "point (kg)", "p05 (kg)", "p50 (kg)", "p95 (kg)",
               "rel. 90% band"});
  for (auto id : embodied::table1_parts()) {
    const double point = embodied::embodied_of(id).total().to_kilograms();
    embodied::UncertaintyResult r;
    if (embodied::is_processor(id)) {
      r = embodied::propagate(embodied::processor(id),
                              embodied::UncertaintyBands{}, 8192);
    } else {
      r = embodied::propagate(embodied::memory(id),
                              embodied::UncertaintyBands{}, 8192);
    }
    const double band =
        (r.p95.to_kilograms() - r.p05.to_kilograms()) / point * 100.0;
    t.add_row({embodied::display_name(id), TextTable::num(point, 2),
               TextTable::num(r.p05.to_kilograms(), 2),
               TextTable::num(r.p50.to_kilograms(), 2),
               TextTable::num(r.p95.to_kilograms(), 2),
               TextTable::num(band, 0) + "%"});
  }
  bench::print_table(t);
  std::cout << "Input bands of +/-15-25% induce ~30-50% relative 90% "
               "intervals — the quantified version of the paper's "
               "threats-to-validity discussion.\n";
}

}  // namespace

static int tool_main(int, char**) {
  yield_sweep();
  iod_inclusion();
  epc_sweep();
  pue_sweep();
  monte_carlo();
  return 0;
}

HPCARBON_TOOL("sensitivity", ToolKind::kBench,
              "Ablation A2: sensitivity to yield, EPC, PUE, and MC input bands")
