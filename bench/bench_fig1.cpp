// Figure 1: embodied carbon footprint of GPU/CPU devices, absolute and
// normalized to theoretical FP64 performance.
//
// Paper shape: every GPU above every CPU (max ratio ~3.4x); trend reverses
// per TFLOPS, with the MI250X lowest of all.
#include <iostream>

#include "bench_common.h"
#include "embodied/catalog.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  bench::print_banner("Figure 1 (a): Embodied carbon of GPU/CPU devices");
  TextTable a({"Device", "Class", "Embodied (kgCO2)", ""});
  double max_kg = 0;
  for (auto id : embodied::table1_processors()) {
    max_kg = std::max(max_kg,
                      embodied::embodied_of(id).total().to_kilograms());
  }
  for (auto id : embodied::table1_processors()) {
    const auto& p = embodied::processor(id);
    const double kg = embodied::embodied_of(id).total().to_kilograms();
    a.add_row({p.name, to_string(p.cls), TextTable::num(kg, 2),
               bar(kg, max_kg, 34)});
  }
  bench::print_table(a);

  bench::print_banner(
      "Figure 1 (b): Embodied carbon per TeraFLOPS (FP64 theoretical)");
  TextTable b({"Device", "FP64 TFLOPS", "kgCO2 / TFLOPS", ""});
  double max_ratio = 0;
  for (auto id : embodied::table1_processors()) {
    max_ratio = std::max(max_ratio,
                         embodied::kg_per_tflop_fp64(embodied::processor(id)));
  }
  for (auto id : embodied::table1_processors()) {
    const auto& p = embodied::processor(id);
    const double r = embodied::kg_per_tflop_fp64(p);
    b.add_row({p.name, TextTable::num(p.fp64_tflops, 2), TextTable::num(r, 2),
               bar(r, max_ratio, 34)});
  }
  bench::print_table(b);

  // Headline checks against the paper's stated claims.
  double max_gpu_cpu_ratio = 0;
  const std::vector<embodied::PartId> gpus = {
      embodied::PartId::kMi250x, embodied::PartId::kA100Pcie40,
      embodied::PartId::kV100Sxm2_32};
  const std::vector<embodied::PartId> cpus = {
      embodied::PartId::kEpyc7763, embodied::PartId::kEpyc7742,
      embodied::PartId::kXeonGold6240R};
  for (auto g : gpus) {
    for (auto c : cpus) {
      max_gpu_cpu_ratio =
          std::max(max_gpu_cpu_ratio,
                   embodied::embodied_of(g).total().to_grams() /
                       embodied::embodied_of(c).total().to_grams());
    }
  }
  std::cout << "\nmax GPU/CPU embodied ratio: "
            << bench::vs_paper(max_gpu_cpu_ratio, 3.4) << "\n";
  std::cout << "MI250X kg/TFLOPS is the lowest of all modeled processors "
               "(Observation 1 holds)."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("fig1", ToolKind::kBench,
              "Fig. 1: embodied carbon of GPU/CPU devices, absolute and per-TFLOPS")
