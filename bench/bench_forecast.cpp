// Ablation A3: carbon-intensity forecasting and forecast-driven scheduling.
//
// (a) Forecast skill: persistence vs diurnal-template across the three
//     Fig. 7 regions at 1/6/12/24-hour horizons.
// (b) Policy value: forecast-delay vs threshold-delay vs run-now on a
//     single home site, per region — how much of the temporal opportunity
//     of Fig. 6's variance can a causal forecast actually capture?
#include <iostream>

#include "bench_common.h"
#include "core/stats.h"
#include "grid/forecast.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "sched/simulator.h"
#include "sched/workload_gen.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  const auto specs = grid::fig7_regions();
  const auto traces = grid::generate_traces(specs);

  bench::print_banner("Ablation A3 (a): forecast skill (MAE, g/kWh)");
  TextTable t({"Region", "Horizon (h)", "Persistence MAE",
               "Diurnal-template MAE", "Template wins?"});
  for (std::size_t r = 0; r < traces.size(); ++r) {
    grid::PersistenceForecast persistence(traces[r]);
    grid::DiurnalTemplateForecast tmpl(traces[r]);
    for (int h : {1, 6, 12, 24}) {
      const auto sp = grid::evaluate(persistence, traces[r], h);
      const auto st = grid::evaluate(tmpl, traces[r], h);
      t.add_row({traces[r].region_code(), std::to_string(h),
                 TextTable::num(sp.mae, 1), TextTable::num(st.mae, 1),
                 st.mae < sp.mae ? "yes" : "no"});
    }
  }
  bench::print_table(t);

  bench::print_banner(
      "Ablation A3 (b): temporal shifting value on a single home site");
  sched::WorkloadParams wp;
  wp.horizon_hours = 24.0 * 28;
  wp.arrival_rate_per_hour = 2.0;
  const auto jobs = sched::generate_jobs(wp);

  TextTable p({"Home region", "Policy", "Carbon (kg)", "vs run-now",
               "Mean wait (h)"});
  for (std::size_t r = 0; r < traces.size(); ++r) {
    std::vector<sched::Site> site = {
        sched::make_site(traces[r].region_code(), traces[r], 24)};
    sched::SchedulerSimulator sim(site, HourOfYear(month_start_hour(5)));

    sched::PolicyConfig now_cfg;
    now_cfg.policy = sched::Policy::kFcfsLocal;
    const auto base = sim.run(jobs, now_cfg);

    auto report = [&](const char* label, const sched::PolicyConfig& cfg) {
      const auto m = sim.run(jobs, cfg);
      const double delta = 100.0 *
                           (base.total_carbon.to_grams() -
                            m.total_carbon.to_grams()) /
                           base.total_carbon.to_grams();
      p.add_row({traces[r].region_code(), label,
                 TextTable::num(m.total_carbon.to_kilograms(), 1),
                 TextTable::pct(delta, 1),
                 TextTable::num(m.mean_wait_hours, 2)});
    };

    report("run-now", now_cfg);
    sched::PolicyConfig thr;
    thr.policy = sched::Policy::kThresholdDelay;
    thr.ci_threshold_g_per_kwh =
        stats::quantile(traces[r].values(), 0.35);
    thr.max_delay_hours = 12;
    report("threshold-delay (p35)", thr);
    sched::PolicyConfig fc;
    fc.policy = sched::Policy::kForecastDelay;
    fc.max_delay_hours = 12;
    report("forecast-delay (12 h)", fc);
  }
  bench::print_table(p);

  std::cout << "\nThe diurnal template halves persistence error at 12-24 h "
               "horizons on solar-shaped grids; forecast-delay then captures "
               "most of the temporal opportunity without a hand-tuned "
               "threshold."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("forecast", ToolKind::kBench,
              "Ablation A3: CI forecasting skill and forecast-driven scheduling")
