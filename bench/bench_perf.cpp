// Micro-benchmarks of the framework's hot computational paths
// (google-benchmark): grid trace generation, trace analytics, embodied
// rollups, upgrade curves, Monte-Carlo propagation, and a full scheduler
// run. These bound the cost of interactive use (e.g. re-running a system
// design sweep inside an RFP loop).
#include <benchmark/benchmark.h>

#include "embodied/catalog.h"
#include "embodied/uncertainty.h"
#include "grid/analysis.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "hw/perf.h"
#include "lifecycle/systems.h"
#include "lifecycle/upgrade.h"
#include "sched/simulator.h"
#include "sched/workload_gen.h"

using namespace hpcarbon;

namespace {

void BM_GridTraceGeneration(benchmark::State& state) {
  const auto spec = grid::eso();
  for (auto _ : state) {
    auto trace = grid::GridSimulator(spec).run();
    benchmark::DoNotOptimize(trace.values().data());
  }
  state.SetItemsProcessed(state.iterations() * kHoursPerYear);
}
BENCHMARK(BM_GridTraceGeneration);

void BM_TraceSummary(benchmark::State& state) {
  const auto trace = grid::GridSimulator(grid::ciso()).run();
  for (auto _ : state) {
    auto s = grid::summarize(trace);
    benchmark::DoNotOptimize(s.cov_percent);
  }
}
BENCHMARK(BM_TraceSummary);

void BM_HourlyWinnerAnalysis(benchmark::State& state) {
  const auto traces = grid::generate_traces(grid::fig7_regions());
  for (auto _ : state) {
    auto w = grid::hourly_lowest_ci(traces, kJst);
    benchmark::DoNotOptimize(w.counts.data());
  }
}
BENCHMARK(BM_HourlyWinnerAnalysis);

void BM_SystemEmbodiedRollup(benchmark::State& state) {
  const auto frontier = lifecycle::frontier();
  for (auto _ : state) {
    auto b = lifecycle::class_breakdown(frontier);
    benchmark::DoNotOptimize(b.by_class.data());
  }
}
BENCHMARK(BM_SystemEmbodiedRollup);

void BM_UpgradeSavingsCurve(benchmark::State& state) {
  lifecycle::UpgradeScenario sc;
  sc.old_node = hw::p100_node();
  sc.new_node = hw::a100_node();
  sc.suite = workload::Suite::kVision;
  const std::vector<double> years = {0.25, 0.5, 1, 2, 3, 4, 5};
  for (auto _ : state) {
    auto curve = lifecycle::savings_curve(sc, years);
    benchmark::DoNotOptimize(curve.data());
  }
}
BENCHMARK(BM_UpgradeSavingsCurve);

void BM_MonteCarloUncertainty(benchmark::State& state) {
  const auto& part = embodied::processor(embodied::PartId::kMi250x);
  const auto samples = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = embodied::propagate(part, embodied::UncertaintyBands{}, samples);
    benchmark::DoNotOptimize(r.mean);
  }
  state.SetItemsProcessed(state.iterations() * samples);
}
BENCHMARK(BM_MonteCarloUncertainty)->Arg(1024)->Arg(8192);

void BM_SchedulerMonth(benchmark::State& state) {
  const auto traces = grid::generate_traces(grid::fig7_regions());
  std::vector<sched::Site> sites = {sched::make_site("ESO", traces[0], 12),
                                    sched::make_site("CISO", traces[1], 12),
                                    sched::make_site("ERCOT", traces[2], 12)};
  sched::SchedulerSimulator sim(sites, HourOfYear(0));
  sched::WorkloadParams wp;
  wp.horizon_hours = 24.0 * 28;
  const auto jobs = sched::generate_jobs(wp);
  sched::PolicyConfig cfg;
  cfg.policy = sched::Policy::kGreedyLowestCi;
  for (auto _ : state) {
    auto m = sim.run(jobs, cfg);
    benchmark::DoNotOptimize(m.total_carbon);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(jobs.size()));
}
BENCHMARK(BM_SchedulerMonth);

void BM_Table6Reproduction(benchmark::State& state) {
  const auto p = hw::p100_node(), v = hw::v100_node(), a = hw::a100_node();
  for (auto _ : state) {
    double acc = 0;
    for (auto s : workload::all_suites()) {
      acc += hw::upgrade_improvement_percent(s, p, v);
      acc += hw::upgrade_improvement_percent(s, p, a);
      acc += hw::upgrade_improvement_percent(s, v, a);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Table6Reproduction);

}  // namespace

BENCHMARK_MAIN();
