// Micro-benchmarks of the framework's hot computational paths: grid trace
// generation, trace analytics, embodied rollups, upgrade curves,
// Monte-Carlo propagation, and a full scheduler run. These bound the cost
// of interactive use (e.g. re-running a system design sweep inside an RFP
// loop).
//
// Originally written against google-benchmark; the harness is now a small
// self-calibrating timer so the bench builds everywhere the repo builds
// and can emit trajectory rows (--json) with no external dependency. Each
// kernel is run once to estimate its cost, then repeated until the timed
// window (200 ms full, 20 ms smoke) is filled — the same adaptive scheme
// google-benchmark uses, minus the statistics we don't chart.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "embodied/catalog.h"
#include "embodied/uncertainty.h"
#include "grid/analysis.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "hw/perf.h"
#include "lifecycle/systems.h"
#include "lifecycle/upgrade.h"
#include "reporter.h"
#include "sched/simulator.h"
#include "sched/workload_gen.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

using clock_type = std::chrono::steady_clock;

// Defeat dead-code elimination without google-benchmark's DoNotOptimize:
// accumulate into a volatile sink.
volatile double g_sink = 0;

struct KernelRow {
  std::string name;
  double ns_per_op = 0;
  double items_per_s = 0;  // 0 when the kernel has no item count
  long reps = 0;
};

/// Run `fn` (returning a double to sink) adaptively: one calibration call,
/// then enough reps to fill `window_ms`. items_per_op scales the
/// throughput column (0 = not meaningful).
template <typename Fn>
KernelRow time_kernel(const std::string& name, double window_ms,
                      double items_per_op, Fn&& fn) {
  const auto c0 = clock_type::now();
  g_sink = g_sink + fn();
  const double first_ms =
      std::chrono::duration<double, std::milli>(clock_type::now() - c0)
          .count();
  long reps = static_cast<long>(window_ms / std::max(first_ms, 1e-6));
  reps = std::max(1L, std::min(reps, 1000000L));
  const auto t0 = clock_type::now();
  for (long r = 0; r < reps; ++r) g_sink = g_sink + fn();
  const double total_ms =
      std::chrono::duration<double, std::milli>(clock_type::now() - t0)
          .count();
  KernelRow row;
  row.name = name;
  row.reps = reps;
  row.ns_per_op = total_ms * 1e6 / static_cast<double>(reps);
  if (items_per_op > 0) {
    row.items_per_s = items_per_op * static_cast<double>(reps) /
                      (total_ms / 1000.0);
  }
  return row;
}

}  // namespace

static int tool_main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, "perf");
  bench::Reporter report("perf", args);
  const double window_ms = args.smoke ? 20.0 : 200.0;

  bench::print_banner("Hot-path micro-benchmarks (self-calibrating, " +
                      TextTable::num(window_ms, 0) + " ms window per kernel)");

  std::vector<KernelRow> rows;

  rows.push_back(time_kernel("grid_trace_generation", window_ms,
                             kHoursPerYear, [] {
    return grid::GridSimulator(grid::eso()).run().values().back();
  }));

  {
    const auto trace = grid::GridSimulator(grid::ciso()).run();
    rows.push_back(time_kernel("trace_summary", window_ms, 0, [&] {
      return grid::summarize(trace).cov_percent;
    }));
  }

  {
    const auto traces = grid::generate_traces(grid::fig7_regions());
    rows.push_back(time_kernel("hourly_winner_analysis", window_ms, 0, [&] {
      return static_cast<double>(
          grid::hourly_lowest_ci(traces, kJst).counts.front()[0]);
    }));
  }

  {
    const auto frontier = lifecycle::frontier();
    rows.push_back(time_kernel("system_embodied_rollup", window_ms, 0, [&] {
      return lifecycle::class_breakdown(frontier).by_class.front().to_grams();
    }));
  }

  {
    lifecycle::UpgradeScenario sc;
    sc.old_node = hw::p100_node();
    sc.new_node = hw::a100_node();
    sc.suite = workload::Suite::kVision;
    const std::vector<double> years = {0.25, 0.5, 1, 2, 3, 4, 5};
    rows.push_back(time_kernel("upgrade_savings_curve", window_ms, 0, [&] {
      return lifecycle::savings_curve(sc, years).back();
    }));
  }

  {
    const auto& part = embodied::processor(embodied::PartId::kMi250x);
    for (int samples : {1024, 8192}) {
      rows.push_back(time_kernel(
          "mc_uncertainty_" + std::to_string(samples), window_ms, samples,
          [&] {
            return embodied::propagate(part, embodied::UncertaintyBands{},
                                       samples)
                .mean.to_grams();
          }));
    }
  }

  {
    const auto traces = grid::generate_traces(grid::fig7_regions());
    std::vector<sched::Site> sites = {sched::make_site("ESO", traces[0], 12),
                                      sched::make_site("CISO", traces[1], 12),
                                      sched::make_site("ERCOT", traces[2], 12)};
    sched::SchedulerSimulator sim(sites, HourOfYear(0));
    sched::WorkloadParams wp;
    wp.horizon_hours = 24.0 * 28;
    const auto jobs = sched::generate_jobs(wp);
    sched::PolicyConfig cfg;
    cfg.policy = sched::Policy::kGreedyLowestCi;
    rows.push_back(time_kernel("scheduler_month", window_ms,
                               static_cast<double>(jobs.size()), [&] {
      return sim.run(jobs, cfg).total_carbon.to_grams();
    }));
  }

  {
    const auto p = hw::p100_node(), v = hw::v100_node(), a = hw::a100_node();
    rows.push_back(time_kernel("table6_reproduction", window_ms, 0, [&] {
      double acc = 0;
      for (auto s : workload::all_suites()) {
        acc += hw::upgrade_improvement_percent(s, p, v);
        acc += hw::upgrade_improvement_percent(s, p, a);
        acc += hw::upgrade_improvement_percent(s, v, a);
      }
      return acc;
    }));
  }

  TextTable t({"Kernel", "Reps", "ns/op", "Items/s"});
  using bench::Direction;
  for (const auto& r : rows) {
    t.add_row({r.name, std::to_string(r.reps), TextTable::num(r.ns_per_op, 0),
               r.items_per_s > 0 ? TextTable::num(r.items_per_s / 1e6, 2) + " M"
                                 : "-"});
    // mc_uncertainty_8192 is the pinned row: the propagate path is the
    // in-process consumer of the batched MC engine this trajectory tracks.
    report.metric(r.name + "_ns", r.ns_per_op, "ns",
                  Direction::kLowerIsBetter,
                  /*pinned=*/r.name == "mc_uncertainty_8192");
  }
  bench::print_table(t);
  report.write();
  return 0;
}

HPCARBON_TOOL("perf", ToolKind::kBench,
              "Hot-path micro-benchmarks: grid sim, analytics, rollups, MC "
              "propagation, scheduler month; --json trajectory")
