// Network front-end load generator: what `hpcarbon serve --listen` costs
// over real sockets, with an in-process epoll server and the shared
// pinned-seed Zipf mix (src/net/loadgen — the same stream serve-load
// replays engine-side, so the delta between the two trajectories is the
// transport).
//
// Phases:
//
//   scale — closed-loop saturation sweep over connection counts (each
//           connection keeps `depth` requests pipelined; send-on-response)
//           on a warm cache. The peak is the pinned saturation
//           throughput; the sweep is the connection-concurrency scaling
//           story (1 .. >=1000 concurrent sockets on loopback TCP).
//   open  — open-loop latency at a fixed offered rate: seeded Poisson
//           arrivals sent on schedule regardless of outstanding
//           responses, latency measured from the *scheduled* send time
//           (no coordinated omission). p50 is pinned; p99/p999/shed are
//           reported.
//   shed  — overload demonstration: a 1-worker server with a tiny
//           in-flight budget, a cold expensive scheduler query at the
//           head of the line, and a pipelined burst behind it — the
//           bounded queue must answer the overflow with explicit shed
//           responses, not latency collapse.
//
// The server runs in-process (its own thread, workers=0 inline mode for
// the measurement phases: on a single-core host the IO thread answering
// inline is the saturation shape) on 127.0.0.1:<ephemeral>.
//
// Flags beyond the shared bench set: --conns N (top of the scaling
// sweep), --depth D (pipelining depth per connection), --rate R
// (open-loop offered req/s).
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/table.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "reporter.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

constexpr std::uint64_t kArrivalSeed = 23;  // pinned, like the mix seeds

/// Raise RLIMIT_NOFILE toward its hard cap so >=1000 client sockets plus
/// the server side fit; no-op when the soft limit already suffices.
void ensure_fd_budget(std::size_t needed) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur >= needed) return;
  rl.rlim_cur = rl.rlim_max < needed ? rl.rlim_max : rlim_t{needed};
  setrlimit(RLIMIT_NOFILE, &rl);
}

/// An in-process `hpcarbon serve --listen` on an ephemeral loopback
/// port: start() on the caller, run() on a private thread, drained and
/// joined by the destructor.
struct ServerHarness {
  net::Server server;
  std::thread io;

  explicit ServerHarness(net::ServerOptions opts)
      : server([&] {
          opts.tcp = "127.0.0.1:0";
          return std::move(opts);
        }()) {
    server.start();
    io = std::thread([this] { server.run(); });
  }
  ~ServerHarness() {
    server.begin_drain();
    io.join();
  }
  net::LoadTarget target() const { return {server.tcp_endpoint(), ""}; }
};

int tool_main(int argc, char** argv) {
  // Peel off netload-specific flags, hand the rest to the shared parser.
  std::size_t top_conns = 1024;
  std::size_t depth = 8;
  double rate = 50000;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--conns") {
      top_conns = static_cast<std::size_t>(std::stoul(next_value("--conns")));
    } else if (arg == "--depth") {
      depth = static_cast<std::size_t>(std::stoul(next_value("--depth")));
    } else if (arg == "--rate") {
      rate = std::stod(next_value("--rate"));
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto args = bench::BenchArgs::parse(
      static_cast<int>(rest.size()), rest.data(), "netload");
  bench::Reporter report("netload", args);

  if (args.smoke) {
    if (top_conns > 128) top_conns = 128;
    rate = std::min(rate, 4000.0);
  }
  ensure_fd_budget(top_conns + 64);

  // Connection-concurrency ladder up to --conns (>=1000 by default).
  std::vector<std::size_t> ladder;
  for (std::size_t c = 1; c < top_conns; c *= 8) ladder.push_back(c);
  ladder.push_back(top_conns);
  const std::size_t level_requests = args.smoke ? 4000 : 120000;
  const std::size_t open_requests =
      args.smoke ? 3000 : static_cast<std::size_t>(rate * 2);

  bench::print_banner(
      "netload: closed-loop saturation vs connection count (loopback TCP, "
      "pipelining depth " + std::to_string(depth) + ")");
  const auto mix = net::zipf_mix(level_requests);

  double sat_qps = 0;
  double qps_top = 0;
  {
    net::ServerOptions sopts;
    sopts.workers = 0;  // inline: the single-core saturation shape
    ServerHarness h(sopts);
    // Warm the cache first so the sweep measures transport + hot engine.
    (void)net::run_closed_loop(h.target(), mix, 8, depth);

    TextTable t({"Conns", "Requests", "req/s", "p50 us", "p99 us", "Shed"});
    for (const std::size_t conns : ladder) {
      const auto r = net::run_closed_loop(h.target(), mix, conns, depth);
      if (r.errors != 0 || r.received != mix.size()) {
        std::cerr << "netload: closed loop lost requests (errors=" << r.errors
                  << ", received=" << r.received << ")\n";
        return 1;
      }
      sat_qps = std::max(sat_qps, r.qps);
      if (conns == top_conns) qps_top = r.qps;
      t.add_row({std::to_string(conns), std::to_string(r.received),
                 TextTable::num(r.qps, 0),
                 TextTable::num(net::percentile_sorted(r.latencies_us, 0.5), 1),
                 TextTable::num(net::percentile_sorted(r.latencies_us, 0.99),
                                1),
                 std::to_string(r.shed)});
    }
    bench::print_table(t);
    std::cout << "saturation: " << TextTable::num(sat_qps, 0)
              << " req/s peak; " << TextTable::num(qps_top, 0) << " req/s at "
              << top_conns << " connections (target >= 100k at >= 1000)\n";
  }

  bench::print_banner("netload: open-loop latency at " +
                      TextTable::num(rate, 0) +
                      " req/s offered (seeded Poisson arrivals)");
  double p50 = 0, p99 = 0, p999 = 0, shed_rate = 0;
  {
    net::ServerOptions sopts;
    sopts.workers = 0;
    ServerHarness h(sopts);
    const std::size_t open_conns = std::min<std::size_t>(top_conns, 256);
    const auto open_mix = net::zipf_mix(open_requests);
    (void)net::run_closed_loop(h.target(), open_mix, 8, depth);  // warm
    const auto r = net::run_open_loop(h.target(), open_mix, rate, open_conns,
                                      kArrivalSeed);
    if (r.errors != 0) {
      std::cerr << "netload: open loop lost requests (errors=" << r.errors
                << ")\n";
      return 1;
    }
    p50 = net::percentile_sorted(r.latencies_us, 0.5);
    p99 = net::percentile_sorted(r.latencies_us, 0.99);
    p999 = net::percentile_sorted(r.latencies_us, 0.999);
    shed_rate = static_cast<double>(r.shed) /
                static_cast<double>(r.received == 0 ? 1 : r.received);
    TextTable t({"Offered req/s", "Achieved", "Conns", "p50 us", "p99 us",
                 "p999 us", "Shed %"});
    t.add_row({TextTable::num(r.offered_rps, 0),
               TextTable::num(r.achieved_rps, 0),
               std::to_string(open_conns), TextTable::num(p50, 1),
               TextTable::num(p99, 1), TextTable::num(p999, 1),
               TextTable::num(100.0 * shed_rate, 2)});
    bench::print_table(t);
  }

  bench::print_banner(
      "netload: bounded in-flight queue sheds, never stalls (1 worker, "
      "max-inflight 4, cold sched query head-of-line)");
  double demo_shed_pct = 0;
  {
    net::ServerOptions sopts;
    sopts.workers = 1;
    sopts.max_inflight = 4;
    ServerHarness h(sopts);
    // A cold scheduler run pins the only worker for milliseconds; the
    // pipelined burst behind it overflows the 4-deep queue.
    std::vector<std::string> burst;
    burst.push_back(R"({"op":"sched","params":{"policy":"net-benefit"}})");
    const std::size_t tail = args.smoke ? 300 : 2000;
    for (std::size_t i = 0; i < tail; ++i) {
      burst.push_back(R"({"op":"embodied","params":{"part":"epyc-7763"}})");
    }
    const auto r = net::run_closed_loop(h.target(), burst, 1, burst.size());
    demo_shed_pct = 100.0 * static_cast<double>(r.shed) /
                    static_cast<double>(r.received == 0 ? 1 : r.received);
    std::cout << r.received << " responses, " << r.shed
              << " shed (" << TextTable::num(demo_shed_pct, 1)
              << "%); every request answered: "
              << (r.received == burst.size() ? "yes" : "NO") << "\n";
    if (r.received != burst.size()) return 1;
    if (r.shed == 0) {
      std::cerr << "netload: expected the overload burst to shed\n";
      return 1;
    }
  }

  using bench::Direction;
  report.metric("conns", static_cast<double>(top_conns), "count",
                Direction::kHigherIsBetter);
  report.metric("depth", static_cast<double>(depth), "count",
                Direction::kHigherIsBetter);
  report.metric("sat_qps", sat_qps, "req/s", Direction::kHigherIsBetter,
                /*pinned=*/true);
  report.metric("qps_top_conns", qps_top, "req/s",
                Direction::kHigherIsBetter);
  report.metric("open_rate", rate, "req/s", Direction::kHigherIsBetter);
  // Open-loop latency shares one core with the server here, so absolute
  // values swing run-to-run; the trajectory reports them unpinned and
  // pins the saturation throughput instead.
  report.metric("open_p50_us", p50, "us", Direction::kLowerIsBetter);
  report.metric("open_p99_us", p99, "us", Direction::kLowerIsBetter);
  report.metric("open_p999_us", p999, "us", Direction::kLowerIsBetter);
  report.metric("open_shed_rate", shed_rate, "ratio",
                Direction::kLowerIsBetter);
  report.metric("overload_shed_pct", demo_shed_pct, "%",
                Direction::kHigherIsBetter);
  report.write();
  return 0;
}

}  // namespace

HPCARBON_TOOL("netload", ToolKind::kBench,
              "Socket front-end load generator: closed-loop saturation vs "
              "connection count, open-loop Poisson latency (p50/p99/p999), "
              "overload shedding; --json trajectory")
