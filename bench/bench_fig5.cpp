// Figure 5 (RQ 4): embodied-carbon contribution by component class for
// Frontier, LUMI, and Perlmutter.
//
// Paper reference shares (GPU/CPU/DRAM/SSD/HDD %):
//   Frontier   36 /  5 / 17 / 12 / 30
//   LUMI       42 / 12 / 25 /  6 / 15
//   Perlmutter 22 / 18 / 30 / 30 /  0
#include <iostream>

#include "bench_common.h"
#include "lifecycle/systems.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  bench::print_banner(
      "Figure 5: Embodied carbon breakdown of leadership systems");

  const double paper[3][5] = {{36, 5, 17, 12, 30},
                              {42, 12, 25, 6, 15},
                              {22, 18, 30, 30, 0}};

  TextTable t({"System", "GPU %", "CPU %", "DRAM %", "SSD %", "HDD %",
               "Mem+Storage %"});
  const auto systems = lifecycle::studied_systems();
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const auto b = lifecycle::class_breakdown(systems[i]);
    auto cell = [&](embodied::PartClass cls, double ref) {
      return bench::vs_paper(b.share_percent(cls), ref, 0);
    };
    t.add_row({systems[i].name,
               cell(embodied::PartClass::kGpu, paper[i][0]),
               cell(embodied::PartClass::kCpu, paper[i][1]),
               cell(embodied::PartClass::kDram, paper[i][2]),
               cell(embodied::PartClass::kSsd, paper[i][3]),
               cell(embodied::PartClass::kHdd, paper[i][4]),
               TextTable::num(b.memory_storage_share_percent(), 1)});
  }
  bench::print_table(t);

  const auto fb = lifecycle::class_breakdown(lifecycle::frontier());
  std::cout << "\nFrontier GPU/CPU embodied ratio: "
            << TextTable::num(fb.share_percent(embodied::PartClass::kGpu) /
                                  fb.share_percent(embodied::PartClass::kCpu),
                              1)
            << "x (paper: more than 7x)\n";
  std::cout << "Observation 5: memory+storage contribute ~60% (Frontier, "
               "Perlmutter) and ~50% (LUMI) of embodied carbon."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("fig5", ToolKind::kBench,
              "Fig. 5: embodied-carbon share by component for three systems")
