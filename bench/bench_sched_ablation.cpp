// Ablation A1: the carbon-intensity-aware scheduler the paper's Sec. 4
// implications call for, evaluated against a carbon-unaware baseline over
// the three greenest Table 3 regions (ESO home, CISO and ERCOT remote).
//
// The policy column enumerates the string-keyed registry (sched/policy.h),
// so a newly registered policy appears here with no edits. Reported: total
// carbon, savings vs baseline, wait times, and remote dispatch counts —
// plus a timing section showing the O(1) prefix-sum interval-carbon queries
// against the hour-stepping loop they replaced.
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/rng.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "reporter.h"
#include "sched/engine.h"
#include "sched/policy.h"
#include "sched/workload_gen.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

// The pre-refactor hour-stepping integral, kept as the timing reference.
double hour_stepping_interval_sum(const grid::CarbonIntensityTrace& trace,
                                  double start, double duration) {
  double acc = 0;
  double remaining = duration;
  double cursor = start;
  while (remaining > 1e-12) {
    const double hour_end = std::floor(cursor) + 1.0;
    const double step = std::min(remaining, hour_end - cursor);
    const HourOfYear h(static_cast<int>(std::floor(cursor)));
    acc += trace.at(h).to_g_per_kwh() * step;
    cursor += step;
    remaining -= step;
  }
  return acc;
}

void bench_interval_carbon(const grid::CarbonIntensityTrace& trace,
                           bench::Reporter& report, bool smoke) {
  bench::print_banner("Interval-carbon queries: prefix sum vs hour stepping");
  // Year-long trace, random intervals up to a full year (the Top500-scale
  // workloads of Rao & Chien 2025 price multi-month windows per system).
  Rng rng(7);
  const int kQueries = smoke ? 2000 : 20000;
  std::vector<std::pair<double, double>> queries;
  queries.reserve(static_cast<std::size_t>(kQueries));
  for (int i = 0; i < kQueries; ++i) {
    queries.emplace_back(rng.uniform(0.0, kHoursPerYear),
                         rng.uniform(1.0, kHoursPerYear));
  }

  using clock = std::chrono::steady_clock;
  double sum_loop = 0;
  const auto t0 = clock::now();
  for (const auto& [s, d] : queries) {
    sum_loop += hour_stepping_interval_sum(trace, s, d);
  }
  const auto t1 = clock::now();
  double sum_prefix = 0;
  for (const auto& [s, d] : queries) sum_prefix += trace.interval_sum(s, d);
  const auto t2 = clock::now();

  const double ms_loop =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double ms_prefix =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  TextTable t({"Method", "Queries", "Time (ms)", "ns/query"});
  t.add_row({"hour-stepping loop (pre-refactor)", std::to_string(kQueries),
             TextTable::num(ms_loop, 1),
             TextTable::num(ms_loop * 1e6 / kQueries, 0)});
  t.add_row({"prefix sum (O(1))", std::to_string(kQueries),
             TextTable::num(ms_prefix, 1),
             TextTable::num(ms_prefix * 1e6 / kQueries, 0)});
  bench::print_table(t);
  const double rel_err =
      std::abs(sum_prefix - sum_loop) / std::max(1.0, std::abs(sum_loop));
  std::cout << "speedup " << TextTable::num(ms_loop / ms_prefix, 0)
            << "x, agreement " << rel_err << " relative\n";

  using bench::Direction;
  report.metric("interval_prefix_ns", ms_prefix * 1e6 / kQueries, "ns",
                Direction::kLowerIsBetter, /*pinned=*/true);
  report.metric("interval_loop_ns", ms_loop * 1e6 / kQueries, "ns",
                Direction::kLowerIsBetter);
  report.metric("interval_speedup", ms_loop / ms_prefix, "x",
                Direction::kHigherIsBetter);
}

}  // namespace

static int tool_main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, "sched-ablation");
  bench::Reporter report("sched-ablation", args);
  // Home site is the dirtiest of the Fig. 7 trio (ERCOT); ESO and CISO are
  // the remote options. Moderate load (well under one site's capacity) so
  // the policies differ by *placement choice*, not by queueing overflow.
  // The four-week window starts June 1: the paper's Fig. 7 complementarity
  // is strongest outside the UK winter-demand peak. Smoke mode shortens
  // the horizon to one week; savings percentages shift slightly, which is
  // why fingerprint.mode is part of every trajectory row.
  const auto traces = grid::generate_traces(grid::fig7_regions());
  std::vector<sched::Site> sites = {
      sched::make_site("ERCOT", traces[2], 16),
      sched::make_site("ESO", traces[0], 16),
      sched::make_site("CISO", traces[1], 16),
  };
  sched::SchedulingEngine engine(sites, HourOfYear(month_start_hour(5)));

  sched::WorkloadParams wp;
  wp.horizon_hours = 24.0 * (args.smoke ? 7 : 28);
  wp.arrival_rate_per_hour = 2.5;
  const auto jobs = sched::generate_jobs(wp);

  // One knob bag serves every registered policy: each reads only its own
  // fields (threshold tuned below ERCOT's June median).
  sched::PolicyConfig cfg;
  cfg.ci_threshold_g_per_kwh = 320.0;
  cfg.max_delay_hours = 12.0;
  cfg.user_budget = Mass::kilograms(300);

  bench::print_banner("Ablation A1: carbon-aware scheduling policies");
  std::cout << jobs.size() << " jobs over " << wp.horizon_hours / 24
            << " days starting June 1; 3 regional sites (home: ERCOT); "
            << sched::registered_policies().size()
            << " registered policies\n\n";

  using clock = std::chrono::steady_clock;
  const auto sweep_start = clock::now();
  double baseline_g = 0;
  double best_savings = 0;
  TextTable t({"Policy", "Carbon (kg)", "Savings vs baseline", "Mean wait (h)",
               "p95 wait (h)", "Remote jobs"});
  for (const auto& desc : sched::registered_policies()) {
    const auto policy = desc.make(cfg);
    const auto m = engine.run(jobs, *policy);
    if (baseline_g == 0) baseline_g = m.total_carbon.to_grams();
    const double savings =
        100.0 * (baseline_g - m.total_carbon.to_grams()) / baseline_g;
    best_savings = std::max(best_savings, savings);
    t.add_row({desc.name, TextTable::num(m.total_carbon.to_kilograms(), 1),
               TextTable::pct(savings, 1), TextTable::num(m.mean_wait_hours, 2),
               TextTable::num(m.p95_wait_hours, 2),
               std::to_string(m.remote_dispatches)});
  }
  const double sweep_ms =
      std::chrono::duration<double, std::milli>(clock::now() - sweep_start)
          .count();
  bench::print_table(t);
  std::cout << "policy sweep wall time " << TextTable::num(sweep_ms, 0)
            << " ms\n";

  // Threshold sensitivity for the temporal-shifting policy.
  bench::print_banner("Threshold-delay sensitivity (home site only)");
  TextTable s({"CI threshold (g/kWh)", "Max delay (h)", "Carbon (kg)",
               "Mean wait (h)"});
  for (double thr : {280.0, 320.0, 360.0}) {
    for (double delay : {6.0, 12.0, 24.0}) {
      sched::PolicyConfig c;
      c.ci_threshold_g_per_kwh = thr;
      c.max_delay_hours = delay;
      const auto policy = sched::make_policy("threshold-delay", c);
      const auto m = engine.run(jobs, *policy);
      s.add_row({TextTable::num(thr, 0), TextTable::num(delay, 0),
                 TextTable::num(m.total_carbon.to_kilograms(), 1),
                 TextTable::num(m.mean_wait_hours, 2)});
    }
  }
  bench::print_table(s);

  bench_interval_carbon(traces[2], report, args.smoke);

  std::cout << "\nCross-region greedy dispatch exploits the Fig. 7 "
               "complementarity; threshold-delay trades queue wait for "
               "carbon, the incentive the paper's carbon-budget proposal "
               "formalizes."
            << std::endl;

  using bench::Direction;
  report.metric("jobs", static_cast<double>(jobs.size()), "count",
                Direction::kHigherIsBetter);
  report.metric("policy_sweep_ms", sweep_ms, "ms", Direction::kLowerIsBetter,
                /*pinned=*/true);
  report.metric("jobs_per_s",
                1000.0 * static_cast<double>(jobs.size()) *
                    static_cast<double>(sched::registered_policies().size()) /
                    sweep_ms,
                "jobs/s", Direction::kHigherIsBetter);
  report.metric("best_savings_pct", best_savings, "%",
                Direction::kHigherIsBetter);
  report.write();
  return 0;
}

HPCARBON_TOOL("sched-ablation", ToolKind::kBench,
              "Ablation A1: carbon-aware scheduling policies vs FCFS "
              "baseline; --json trajectory")
