// Ablation A1: the carbon-intensity-aware scheduler the paper's Sec. 4
// implications call for, evaluated against a carbon-unaware baseline over
// the three greenest Table 3 regions (ESO home, CISO and ERCOT remote).
//
// Policies: FCFS-local (baseline), greedy lowest-CI cross-region dispatch,
// local threshold-delay, and budget-aware priority. Reported: total carbon,
// savings vs baseline, wait times, and remote dispatch counts.
#include <iostream>

#include "bench_common.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "sched/simulator.h"
#include "sched/workload_gen.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  // Home site is the dirtiest of the Fig. 7 trio (ERCOT); ESO and CISO are
  // the remote options. Moderate load (well under one site's capacity) so
  // the policies differ by *placement choice*, not by queueing overflow.
  // The four-week window starts June 1: the paper's Fig. 7 complementarity
  // is strongest outside the UK winter-demand peak.
  const auto traces = grid::generate_traces(grid::fig7_regions());
  std::vector<sched::Site> sites = {
      sched::make_site("ERCOT", traces[2], 16),
      sched::make_site("ESO", traces[0], 16),
      sched::make_site("CISO", traces[1], 16),
  };
  sched::SchedulerSimulator sim(sites, HourOfYear(month_start_hour(5)));

  sched::WorkloadParams wp;
  wp.horizon_hours = 24.0 * 28;  // four weeks
  wp.arrival_rate_per_hour = 2.5;
  const auto jobs = sched::generate_jobs(wp);

  struct Entry {
    const char* label;
    sched::PolicyConfig cfg;
  };
  std::vector<Entry> entries;
  {
    sched::PolicyConfig c;
    c.policy = sched::Policy::kFcfsLocal;
    entries.push_back({"fcfs-local (baseline)", c});
  }
  {
    sched::PolicyConfig c;
    c.policy = sched::Policy::kGreedyLowestCi;
    entries.push_back({"greedy-lowest-ci", c});
  }
  {
    sched::PolicyConfig c;
    c.policy = sched::Policy::kThresholdDelay;
    c.ci_threshold_g_per_kwh = 320.0;  // below ERCOT's June median
    c.max_delay_hours = 12.0;
    entries.push_back({"threshold-delay (320 g, 12 h)", c});
  }
  {
    sched::PolicyConfig c;
    c.policy = sched::Policy::kBudgetAware;
    c.user_budget = Mass::kilograms(300);
    entries.push_back({"budget-aware", c});
  }
  {
    sched::PolicyConfig c;
    c.policy = sched::Policy::kForecastDelay;
    c.max_delay_hours = 12.0;
    entries.push_back({"forecast-delay (12 h)", c});
  }
  {
    sched::PolicyConfig c;
    c.policy = sched::Policy::kNetBenefit;
    entries.push_back({"net-benefit dispatch", c});
  }

  bench::print_banner("Ablation A1: carbon-aware scheduling policies");
  std::cout << jobs.size() << " jobs over " << wp.horizon_hours / 24
            << " days starting June 1; 3 regional sites (home: ERCOT)\n\n";

  double baseline_g = 0;
  TextTable t({"Policy", "Carbon (kg)", "Savings vs baseline", "Mean wait (h)",
               "p95 wait (h)", "Remote jobs"});
  for (const auto& e : entries) {
    const auto m = sim.run(jobs, e.cfg);
    if (baseline_g == 0) baseline_g = m.total_carbon.to_grams();
    const double savings =
        100.0 * (baseline_g - m.total_carbon.to_grams()) / baseline_g;
    t.add_row({e.label, TextTable::num(m.total_carbon.to_kilograms(), 1),
               TextTable::pct(savings, 1), TextTable::num(m.mean_wait_hours, 2),
               TextTable::num(m.p95_wait_hours, 2),
               std::to_string(m.remote_dispatches)});
  }
  bench::print_table(t);

  // Threshold sensitivity for the temporal-shifting policy.
  bench::print_banner("Threshold-delay sensitivity (home site only)");
  TextTable s({"CI threshold (g/kWh)", "Max delay (h)", "Carbon (kg)",
               "Mean wait (h)"});
  for (double thr : {280.0, 320.0, 360.0}) {
    for (double delay : {6.0, 12.0, 24.0}) {
      sched::PolicyConfig c;
      c.policy = sched::Policy::kThresholdDelay;
      c.ci_threshold_g_per_kwh = thr;
      c.max_delay_hours = delay;
      const auto m = sim.run(jobs, c);
      s.add_row({TextTable::num(thr, 0), TextTable::num(delay, 0),
                 TextTable::num(m.total_carbon.to_kilograms(), 1),
                 TextTable::num(m.mean_wait_hours, 2)});
    }
  }
  bench::print_table(s);

  std::cout << "\nCross-region greedy dispatch exploits the Fig. 7 "
               "complementarity; threshold-delay trades queue wait for "
               "carbon, the incentive the paper's carbon-budget proposal "
               "formalizes."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("sched-ablation", ToolKind::kBench,
              "Ablation A1: carbon-aware scheduling policies vs FCFS baseline")
