// Figure 2: embodied carbon of DRAM/SSD/HDD devices, absolute and
// normalized to device bandwidth.
//
// Paper shape: each device 5-25 kgCO2 (comparable to compute units);
// per-GB/s cost HDD >> SSD >> DRAM.
#include <iostream>

#include "bench_common.h"
#include "embodied/catalog.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  bench::print_banner("Figure 2 (a): Embodied carbon of DRAM/SSD/HDD");
  TextTable a({"Device", "Capacity (GB)", "EPC (g/GB)", "Embodied (kgCO2)",
               ""});
  for (auto id : embodied::table1_memory_storage()) {
    const auto& m = embodied::memory(id);
    const double kg = embodied::embodied_of(id).total().to_kilograms();
    a.add_row({m.name, TextTable::num(m.capacity_gb, 0),
               TextTable::num(m.epc_g_per_gb, 2), TextTable::num(kg, 2),
               bar(kg, 25.0, 34)});
  }
  bench::print_table(a);

  bench::print_banner("Figure 2 (b): Embodied carbon per bandwidth (GB/s)");
  TextTable b({"Device", "Bandwidth (GB/s)", "kgCO2 per GB/s", ""});
  for (auto id : embodied::table1_memory_storage()) {
    const auto& m = embodied::memory(id);
    const double r = embodied::kg_per_gbps(m);
    b.add_row({m.name, TextTable::num(m.bandwidth_gb_per_s, 3),
               TextTable::num(r, 2), bar(r, 85.0, 34)});
  }
  bench::print_table(b);

  std::cout << "\nDRAM per-bandwidth carbon is negligible next to HDD "
               "(Observation 2 holds: capacity devices are comparable to "
               "compute units in absolute embodied carbon)."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("fig2", ToolKind::kBench,
              "Fig. 2: embodied carbon of DRAM/SSD/HDD, absolute and per-GB/s")
