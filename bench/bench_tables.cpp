// Reproduces the paper's configuration tables (1-5) from the library's
// catalogs, so that every constant the experiments depend on is printed and
// auditable.
#include <iostream>

#include "bench_common.h"
#include "embodied/catalog.h"
#include "grid/presets.h"
#include "hw/node.h"
#include "lifecycle/systems.h"
#include "workload/model.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

void table1() {
  bench::print_banner("Table 1: Modeled individual components");
  TextTable t({"Type", "Component", "Part Name", "Release Date"});
  for (auto id : embodied::table1_parts()) {
    if (embodied::is_processor(id)) {
      const auto& p = embodied::processor(id);
      t.add_row({to_string(p.cls), p.name, p.part_name, p.release});
    } else {
      const auto& m = embodied::memory(id);
      t.add_row({to_string(m.cls), m.name, m.part_name, m.release});
    }
  }
  bench::print_table(t);
}

void table2() {
  bench::print_banner("Table 2: Studied HPC systems");
  TextTable t({"System", "Location", "CPU & GPU", "Cores", "Year"});
  for (const auto& s : lifecycle::studied_systems()) {
    t.add_row({s.name, s.location, s.processors, std::to_string(s.cores),
               std::to_string(s.year)});
  }
  bench::print_table(t);
}

void table3() {
  bench::print_banner("Table 3: Independent system operators and regions");
  TextTable t({"Operator", "Country", "Region", "UTC offset"});
  for (const auto& r : grid::all_regions()) {
    t.add_row({r.name + " (" + r.code + ")", r.country, r.area,
               std::to_string(r.tz.utc_offset_hours())});
  }
  bench::print_table(t);
}

void table4() {
  bench::print_banner("Table 4: Benchmarks performed and their models");
  TextTable t({"Benchmark", "Models"});
  for (auto s : workload::all_suites()) {
    std::string names;
    for (const auto& m : workload::models(s)) {
      if (!names.empty()) names += ", ";
      names += m.name;
    }
    t.add_row({workload::to_string(s), names});
  }
  bench::print_table(t);
}

void table5() {
  bench::print_banner("Table 5: Different generations of nodes analyzed");
  TextTable t({"Name", "GPU", "CPU"});
  for (const auto& n : {hw::p100_node(), hw::v100_node(), hw::a100_node()}) {
    const auto& g = embodied::processor(n.gpu);
    const auto& c = embodied::processor(n.cpu);
    t.add_row({n.name,
               std::to_string(n.gpu_count) + " x " + g.part_name,
               std::to_string(n.cpu_count) + " x " + c.part_name});
  }
  bench::print_table(t);
}

}  // namespace

static int tool_main(int, char**) {
  table1();
  table2();
  table3();
  table4();
  table5();
  std::cout << "\nAll configuration tables reproduced from library catalogs."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("tables", ToolKind::kBench,
              "Tables 1-5: every catalog constant the experiments depend on")
