// Figure 4 (RQ 3): embodied carbon vs performance as the number of V100
// GPUs in a node (2x Xeon Gold 6240R) grows from 1 to 4, per benchmark
// suite, both normalized to the 1-GPU node.
//
// Paper reference: at 2 GPUs both rise 30-40% (perf/embodied ~ 1.0); at 4
// GPUs perf/embodied drops to ~0.88 (NLP, CANDLE) and ~0.79 (Vision).
#include <iostream>

#include "bench_common.h"
#include "hw/node.h"
#include "hw/perf.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

double suite_perf(workload::Suite s, int k) {
  const auto& ms = workload::models(s);
  double acc = 0;
  for (const auto& m : ms) {
    acc += hw::throughput(m, hw::fig4_node(k)) /
           hw::throughput(m, hw::fig4_node(1));
  }
  return acc / static_cast<double>(ms.size());
}

}  // namespace

static int tool_main(int, char**) {
  bench::print_banner(
      "Figure 4: Embodied carbon and performance vs number of GPUs");

  const double e1 =
      hw::node_embodied(hw::fig4_node(1), hw::EmbodiedScope::kComputeOnly)
          .to_grams();

  TextTable t({"Suite", "GPUs", "Embodied (norm)", "Performance (norm)",
               "Perf / Embodied", "Paper ratio"});
  for (auto s : workload::all_suites()) {
    for (int k : {1, 2, 4}) {
      const double ek =
          hw::node_embodied(hw::fig4_node(k), hw::EmbodiedScope::kComputeOnly)
              .to_grams() /
          e1;
      const double perf = suite_perf(s, k);
      double paper_ratio = 1.0;
      if (k == 4) paper_ratio = (s == workload::Suite::kVision) ? 0.79 : 0.88;
      t.add_row({workload::to_string(s), std::to_string(k),
                 TextTable::num(ek, 3), TextTable::num(perf, 3),
                 TextTable::num(perf / ek, 3),
                 TextTable::num(paper_ratio, 2)});
    }
  }
  bench::print_table(t);

  std::cout << "\nObservation 4: embodied carbon grows linearly with GPU "
               "count while performance saturates; carbon per unit of "
               "achieved performance worsens at 4 GPUs."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("fig4", ToolKind::kBench,
              "Fig. 4: embodied carbon vs performance as GPUs per node grow")
