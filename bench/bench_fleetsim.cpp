// Fleet-simulator throughput: millions of simulated jobs per second on
// thousands of nodes.
//
// The headline of src/fleetsim is scale — an event-heap engine with
// integer ticks and struct-of-arrays job storage that pushes ~1M synthetic
// jobs through a 4096-node trio at over a million simulated jobs per
// wall-clock second, while staying bit-identical to the original
// sched::SchedulingEngine. This bench measures exactly that: workload
// generation rate, simulation throughput under fcfs-local and a
// cross-region policy, the speedup over the original engine on the same
// jobs, and a bitwise parity verdict (the acceptance gate, pinned).
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/table.h"
#include "fleetsim/engine.h"
#include "fleetsim/workload.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "reporter.h"
#include "sched/engine.h"
#include "sched/policy.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

bool metrics_equal(const sched::ScheduleMetrics& a,
                   const sched::ScheduleMetrics& b) {
  return a.total_carbon.to_grams() == b.total_carbon.to_grams() &&
         a.transfer_carbon.to_grams() == b.transfer_carbon.to_grams() &&
         a.total_energy.to_kwh() == b.total_energy.to_kwh() &&
         a.mean_wait_hours == b.mean_wait_hours &&
         a.p95_wait_hours == b.p95_wait_hours &&
         a.utilization == b.utilization &&
         a.jobs_completed == b.jobs_completed &&
         a.remote_dispatches == b.remote_dispatches;
}

}  // namespace

static int tool_main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, "fleetsim");
  bench::Reporter report("fleetsim", args);

  // Paper trio (ERCOT home, ESO + CISO remote), sized to 4096 nodes total
  // in full mode. The Poisson rate keeps mean concurrency (~rate x 5.5h
  // mean duration) at ~85% of the *home* capacity, since fcfs-local must
  // absorb the whole stream on site 0: realistically busy, not overloaded
  // (an overloaded queue measures the O(queue) policy scan, not the
  // engine).
  const int home_cap = args.smoke ? 512 : 2048;
  const int remote_cap = args.smoke ? 256 : 1024;
  const double rate = args.smoke ? 80.0 : 320.0;
  const double horizon_hours = args.smoke ? 1250.0 : 3125.0;  // rate*h ~ jobs

  const auto traces = grid::generate_traces(grid::fig7_regions());
  const std::vector<sched::Site> sites = {
      sched::make_site("ERCOT", traces[2], home_cap),
      sched::make_site("ESO", traces[0], remote_cap),
      sched::make_site("CISO", traces[1], remote_cap)};
  const HourOfYear epoch(3624);  // June 1
  const fleetsim::FleetEngine fleet(sites, epoch);

  fleetsim::FleetWorkloadParams wp;
  wp.rate_per_hour = rate;
  wp.horizon_hours = horizon_hours;
  wp.user_count = 64;

  bench::print_banner("fleet workload generation (" +
                      std::string(args.smoke ? "smoke" : "full") + " mode)");
  const auto g0 = clock_type::now();
  const fleetsim::FleetJobs jobs = fleetsim::generate_fleet_jobs(wp);
  const double gen_s = seconds_since(g0);
  const double n = static_cast<double>(jobs.size());
  std::cout << jobs.size() << " jobs onto " << fleet.capacity_total()
            << " nodes in " << TextTable::num(gen_s * 1e3, 1) << " ms ("
            << TextTable::num(n / gen_s / 1e6, 2) << " Mjobs/s generated)\n";

  bench::print_banner("simulation throughput");
  TextTable t({"Engine / policy", "Time (s)", "Mjobs/s", "Carbon kg"});
  auto timed_fleet = [&](const char* policy_name, double* out_s) {
    const auto policy = sched::make_policy(policy_name);
    const auto t0 = clock_type::now();
    const auto m = fleet.run(jobs, *policy);
    *out_s = seconds_since(t0);
    t.add_row({std::string("fleetsim / ") + policy_name,
               TextTable::num(*out_s, 2), TextTable::num(n / *out_s / 1e6, 2),
               TextTable::num(m.total_carbon.to_kilograms(), 1)});
    return m;
  };
  double warm_s = 0, fcfs_s = 0, greedy_s = 0;
  (void)timed_fleet("fcfs-local", &warm_s);  // warm-up: fault in traces
  const auto fcfs_metrics = timed_fleet("fcfs-local", &fcfs_s);
  const auto greedy_metrics = timed_fleet("greedy-lowest-ci", &greedy_s);
  (void)greedy_metrics;

  // The original engine on the exact same jobs: the speedup denominator
  // and the parity oracle in one run.
  const std::vector<sched::Job> arrivals = jobs.to_jobs();
  sched::SchedulingEngine oracle(sites, epoch);
  const auto oracle_policy = sched::make_policy("fcfs-local");
  const auto o0 = clock_type::now();
  const auto oracle_metrics = oracle.run(arrivals, *oracle_policy);
  const double oracle_s = seconds_since(o0);
  t.add_row({"sched::SchedulingEngine / fcfs-local",
             TextTable::num(oracle_s, 2), TextTable::num(n / oracle_s / 1e6, 2),
             TextTable::num(oracle_metrics.total_carbon.to_kilograms(), 1)});
  bench::print_table(t);

  const bool parity = metrics_equal(fcfs_metrics, oracle_metrics);
  const double jobs_per_sec = n / fcfs_s;
  std::cout << "\nfcfs-local: " << TextTable::num(jobs_per_sec / 1e6, 2)
            << " Mjobs/s (" << TextTable::num(oracle_s / fcfs_s, 2)
            << "x the original engine); parity vs SchedulingEngine: "
            << (parity ? "bit-identical" : "MISMATCH") << "\n";

  using bench::Direction;
  report.metric("jobs", n, "count", Direction::kHigherIsBetter);
  report.metric("nodes", fleet.capacity_total(), "count",
                Direction::kHigherIsBetter);
  report.metric("jobs_per_sec", jobs_per_sec, "jobs/s",
                Direction::kHigherIsBetter, /*pinned=*/true);
  report.metric("greedy_jobs_per_sec", n / greedy_s, "jobs/s",
                Direction::kHigherIsBetter);
  report.metric("gen_jobs_per_sec", n / gen_s, "jobs/s",
                Direction::kHigherIsBetter);
  report.metric("speedup_vs_sched_engine", oracle_s / fcfs_s, "x",
                Direction::kHigherIsBetter);
  report.metric("parity_bit_identical", parity ? 1.0 : 0.0, "bool",
                Direction::kHigherIsBetter, /*pinned=*/true);
  report.write();
  return parity ? 0 : 1;
}

HPCARBON_TOOL("fleetsim", ToolKind::kBench,
              "Fleet-simulator throughput: Mjobs/s on 4k nodes, speedup and "
              "bitwise parity vs SchedulingEngine; --json trajectory")
