// Machine-readable benchmark trajectory: the JSON side of the bench
// harness.
//
// Every perf-relevant bench accepts --json and, when asked, appends one
// *row* to a trajectory file (BENCH_<name>.json by default): an
// environment fingerprint (compiler, build type, CPU model, worker
// threads, full/smoke mode), a free-form label, a UTC stamp, and a map of
// named metrics. Metrics marked *pinned* are the regression contract —
// tools/bench_diff.py compares two rows (or the first and last row of one
// committed trajectory) and exits nonzero when any pinned metric moved in
// its bad direction by more than the threshold. Without --json the
// benches print their human tables exactly as before; the Reporter is
// additive.
//
// Trajectory layout (one file per bench, rows append-only):
//
//   {"bench":"serve_load","schema":1,"rows":[
//   {"fingerprint":{...},"label":"baseline","metrics":{...},"utc":"..."},
//   {"fingerprint":{...},"label":"zero-copy","metrics":{...},"utc":"..."}
//   ]}
//
// Rows are never rewritten: the history of a metric across PRs is the
// point — a speed claim without a row here is just prose.
#pragma once

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/json.h"

namespace hpcarbon::bench {

/// Shared bench command line: every JSON-emitting bench understands
///   --json            append a row to the trajectory file
///   --out PATH        trajectory path (default BENCH_<name>.json in cwd)
///   --label TEXT      row label (default "run")
///   --smoke           reduced iteration counts for CI smoke jobs
struct BenchArgs {
  bool json = false;
  bool smoke = false;
  std::string label = "run";
  std::string out;

  static BenchArgs parse(int argc, char** argv, const std::string& bench_name) {
    BenchArgs a;
    a.out = "BENCH_" + file_slug(bench_name) + ".json";
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next_value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
        return argv[++i];
      };
      if (arg == "--json") a.json = true;
      else if (arg == "--smoke") a.smoke = true;
      else if (arg == "--label") a.label = next_value("--label");
      else if (arg == "--out") a.out = next_value("--out");
      else {
        throw Error("bench: unknown flag '" + arg +
                    "' (supported: --json --smoke --label TEXT --out PATH)");
      }
    }
    return a;
  }

  /// "serve-load" -> "serve_load": the file stem of the trajectory.
  static std::string file_slug(const std::string& bench_name) {
    std::string s = bench_name;
    for (char& c : s) {
      if (c == '-') c = '_';
    }
    return s;
  }
};

enum class Direction { kHigherIsBetter, kLowerIsBetter };

class Reporter {
 public:
  Reporter(std::string bench_name, BenchArgs args)
      : name_(std::move(bench_name)), args_(std::move(args)) {}

  bool enabled() const { return args_.json; }
  bool smoke() const { return args_.smoke; }

  /// Record one metric. Pinned metrics form the regression contract that
  /// tools/bench_diff.py enforces; unpinned ones are informational.
  void metric(const std::string& name, double value, const std::string& unit,
              Direction better, bool pinned = false) {
    metrics_.push_back({name, value, unit, better, pinned});
  }

  /// Append the row to the trajectory file. No-op without --json.
  void write() const {
    if (!args_.json) return;
    json::Value doc = load_or_init();
    doc.set("rows", appended_rows(doc));
    std::ofstream out(args_.out, std::ios::trunc);
    HPC_REQUIRE(out.good(), "bench: cannot write trajectory " + args_.out);
    out << render(doc);
    std::cerr << "bench " << name_ << ": trajectory row '" << args_.label
              << "' (" << metrics_.size() << " metrics) appended to "
              << args_.out << "\n";
  }

  /// The row's environment fingerprint. bench_diff warns when two compared
  /// rows disagree here: a cross-machine or smoke-vs-full comparison is
  /// still printable, but it is not a regression verdict.
  json::Value fingerprint() const {
    json::Value fp = json::Value::object();
    fp.set("build", json::Value::string(build_type()));
    fp.set("compiler", json::Value::string(compiler()));
    fp.set("cpu", json::Value::string(cpu_model()));
    fp.set("mode", json::Value::string(args_.smoke ? "smoke" : "full"));
    fp.set("threads",
           json::Value::number(static_cast<double>(worker_threads())));
    return fp;
  }

  static std::string compiler() {
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
  }

  static std::string build_type() {
#ifdef NDEBUG
    return "release";
#else
    return "debug";
#endif
  }

  static std::string cpu_model() {
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t colon = line.find(':');
      if (line.compare(0, 10, "model name") == 0 &&
          colon != std::string::npos) {
        std::size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ') ++start;
        return line.substr(start);
      }
    }
    return "unknown";
  }

  static std::size_t worker_threads() {
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

 private:
  struct Metric {
    std::string name;
    double value = 0;
    std::string unit;
    Direction better = Direction::kHigherIsBetter;
    bool pinned = false;
  };

  json::Value row() const {
    json::Value metrics = json::Value::object();
    for (const auto& m : metrics_) {
      json::Value entry = json::Value::object();
      entry.set("better", json::Value::string(
                              m.better == Direction::kHigherIsBetter
                                  ? "higher"
                                  : "lower"));
      entry.set("pinned", json::Value::boolean(m.pinned));
      entry.set("unit", json::Value::string(m.unit));
      entry.set("value", json::Value::number(m.value));
      metrics.set(m.name, std::move(entry));
    }
    json::Value r = json::Value::object();
    r.set("fingerprint", fingerprint());
    r.set("label", json::Value::string(args_.label));
    r.set("metrics", std::move(metrics));
    r.set("utc", json::Value::string(utc_now()));
    return r;
  }

  json::Value load_or_init() const {
    std::ifstream in(args_.out);
    if (in.good()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      json::Value doc = json::Value::parse(buf.str());
      const json::Value* bench = doc.find("bench");
      HPC_REQUIRE(bench != nullptr && bench->is_string() &&
                      bench->as_string() == BenchArgs::file_slug(name_),
                  "bench: " + args_.out + " belongs to another bench; "
                  "pass --out to write elsewhere");
      return doc;
    }
    json::Value doc = json::Value::object();
    doc.set("bench", json::Value::string(BenchArgs::file_slug(name_)));
    doc.set("schema", json::Value::number(1));
    doc.set("rows", json::Value::array());
    return doc;
  }

  json::Value appended_rows(const json::Value& doc) const {
    json::Value rows = json::Value::array();
    if (const json::Value* existing = doc.find("rows")) {
      for (const auto& r : existing->items()) rows.push_back(r);
    }
    rows.push_back(row());
    return rows;
  }

  /// One row per line: readable diffs, still a single JSON document.
  static std::string render(const json::Value& doc) {
    std::string out = "{\"bench\":";
    out += json::quote(doc.find("bench")->as_string());
    out += ",\"schema\":";
    out += json::dump_number(doc.find("schema")->as_number());
    out += ",\"rows\":[\n";
    const auto& rows = doc.find("rows")->items();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i].dump_to(out, /*sort_keys=*/true);
      if (i + 1 < rows.size()) out.push_back(',');
      out.push_back('\n');
    }
    out += "]}\n";
    return out;
  }

  static std::string utc_now() {
    const std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[80];  // worst-case %04d expansions stay within bounds
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                  tm.tm_min, tm.tm_sec);
    return buf;
  }

  std::string name_;
  BenchArgs args_;
  std::vector<Metric> metrics_;
};

}  // namespace hpcarbon::bench
