// Ablation A4: resolution-agnostic series core.
//
// (a) Integral query cost vs resolution: the whole point of the StepSeries
//     prefix sums is that an interval integral is O(1) in both the interval
//     length and the sample count — a 5-minute trace carries 12x the
//     samples of an hourly one and must answer in the same time.
// (b) Construction and resampling throughput: what an import of a year of
//     5-minute Electricity Maps data costs before the first query runs.
#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/rng.h"
#include "core/series.h"
#include "core/time.h"
#include "reporter.h"

#include "cli/registry.h"

using namespace hpcarbon;

namespace {

std::vector<double> synthetic_year(double step_seconds) {
  const auto n = static_cast<std::size_t>(
      kHoursPerYear * kSecondsPerHour / step_seconds);
  std::vector<double> v(n);
  Rng rng(11);
  for (std::size_t i = 0; i < n; ++i) {
    const double hod =
        std::fmod(static_cast<double>(i) * step_seconds / 3600.0, 24.0);
    v[i] = 300.0 - 120.0 * std::exp(-(hod - 13.0) * (hod - 13.0) / 16.0) +
           rng.uniform(-10.0, 10.0);
  }
  return v;
}

using clock_type = std::chrono::steady_clock;

double ns_per_call(clock_type::time_point t0, clock_type::time_point t1,
                   int calls) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / calls;
}

}  // namespace

static int tool_main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, "series");
  bench::Reporter report("series", args);
  const int kQueries = args.smoke ? 20000 : 200000;
  const int kReps = args.smoke ? 5 : 50;
  Rng rng(3);
  std::vector<std::pair<double, double>> queries;
  queries.reserve(static_cast<std::size_t>(kQueries));
  for (int i = 0; i < kQueries; ++i) {
    queries.emplace_back(rng.uniform(-8760.0, 2.0 * 8760.0),
                         rng.uniform(0.01, 3.0 * 8760.0));
  }

  using bench::Direction;
  bench::print_banner("A4 (a): integral query cost vs resolution");
  TextTable t({"Resolution", "Samples", "ns/query", "vs hourly", "Checksum"});
  double hourly_ns = 0;
  for (const double step : {3600.0, 900.0, 300.0}) {
    const StepSeries s(synthetic_year(step), step);
    // Warm-up pass keeps the first-touch page faults out of the timing.
    double sink = 0;
    for (const auto& [a, d] : queries) sink += s.integral(a, d);
    const auto t0 = clock_type::now();
    double acc = 0;
    for (const auto& [a, d] : queries) acc += s.integral(a, d);
    const auto t1 = clock_type::now();
    const double ns = ns_per_call(t0, t1, kQueries);
    if (step == 3600.0) hourly_ns = ns;
    t.add_row({TextTable::num(step, 0) + " s",
               std::to_string(s.size()), TextTable::num(ns, 1),
               TextTable::num(ns / hourly_ns, 2) + "x",
               TextTable::num((acc + sink) * 1e-9, 3)});
    report.metric("integral_ns_" + TextTable::num(step, 0) + "s", ns, "ns",
                  Direction::kLowerIsBetter, /*pinned=*/step == 300.0);
  }
  bench::print_table(t);
  std::cout << "O(1) check: 12x the samples must not mean 12x the query "
               "cost.\n";

  bench::print_banner("A4 (b): construction / resampling throughput");
  TextTable c({"Operation", "Samples", "ms", "M samples/s"});
  for (const double step : {3600.0, 300.0}) {
    const auto values = synthetic_year(step);
    const auto t0 = clock_type::now();
    double sink = 0;
    for (int r = 0; r < kReps; ++r) {
      const StepSeries s(values, step);
      sink += s.total();
    }
    const auto t1 = clock_type::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / kReps;
    c.add_row({"construct @" + TextTable::num(step, 0) + " s",
               std::to_string(values.size()), TextTable::num(ms, 3),
               TextTable::num(static_cast<double>(values.size()) / ms / 1e3,
                              1)});
    report.metric("construct_msamples_s_" + TextTable::num(step, 0) + "s",
                  static_cast<double>(values.size()) / ms / 1e3, "Msamples/s",
                  Direction::kHigherIsBetter, /*pinned=*/step == 300.0);
    (void)sink;
  }
  {
    const StepSeries fine(synthetic_year(300.0), 300.0);
    const auto t0 = clock_type::now();
    double sink = 0;
    for (int r = 0; r < kReps; ++r) {
      sink += fine.resampled(3600.0).total();
    }
    const auto t1 = clock_type::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / kReps;
    c.add_row({"resample 300 s -> 3600 s", std::to_string(fine.size()),
               TextTable::num(ms, 3),
               TextTable::num(static_cast<double>(fine.size()) / ms / 1e3,
                              1)});
    report.metric("resample_msamples_s",
                  static_cast<double>(fine.size()) / ms / 1e3, "Msamples/s",
                  Direction::kHigherIsBetter, /*pinned=*/true);
    (void)sink;
  }
  bench::print_table(c);
  report.write();
  return 0;
}

HPCARBON_TOOL("series", ToolKind::kBench,
              "Ablation A4: StepSeries integral cost vs resolution, "
              "construction/resampling throughput; --json trajectory")
