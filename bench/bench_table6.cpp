// Table 6 (RQ 7): performance improvement from node upgrades, per benchmark
// suite, as average time-to-solution reduction.
//
// Paper reference:
//   P100 -> V100: NLP 44.4%  Vision 41.2%  CANDLE 45.5%  avg 43.4%
//   P100 -> A100: NLP 59.0%  Vision 60.2%  CANDLE 68.3%  avg 62.5%
//   V100 -> A100: NLP 25.6%  Vision 35.8%  CANDLE 44.4%  avg 35.9%
#include <iostream>

#include "bench_common.h"
#include "hw/node.h"
#include "hw/perf.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  bench::print_banner("Table 6: Performance improvement from node upgrades");

  const double paper[3][4] = {{44.4, 41.2, 45.5, 43.4},
                              {59.0, 60.2, 68.3, 62.5},
                              {25.6, 35.8, 44.4, 35.9}};
  const hw::NodeConfig nodes[3] = {hw::p100_node(), hw::v100_node(),
                                   hw::a100_node()};
  const std::pair<int, int> upgrades[3] = {{0, 1}, {0, 2}, {1, 2}};

  TextTable t({"Upgrade Option", "NLP Improv.", "Vision Improv.",
               "CANDLE Improv.", "Average Improv."});
  for (int u = 0; u < 3; ++u) {
    const auto& from = nodes[upgrades[u].first];
    const auto& to = nodes[upgrades[u].second];
    double avg = 0;
    std::vector<std::string> row = {from.name + " to " + to.name};
    int col = 0;
    for (auto s : workload::all_suites()) {
      const double imp = hw::upgrade_improvement_percent(s, from, to);
      avg += imp;
      row.push_back(bench::vs_paper(imp, paper[u][col++]) + "%");
    }
    row.push_back(bench::vs_paper(avg / 3.0, paper[u][3]) + "%");
    t.add_row(row);
  }
  bench::print_table(t);

  std::cout << "\nCANDLE gains the most from every upgrade option, matching "
               "the paper."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("table6", ToolKind::kBench,
              "Table 6: per-suite performance improvement from node upgrades")
