// Figure 6 (RQ 5): annual carbon-intensity distribution (box stats) and
// coefficient of variation for the seven Table 3 operators, 8760 hourly
// samples per region.
//
// Paper shape: ESO lowest median (<200 g/kWh) with the highest CoV; Tokyo
// highest median (~3x ESO) with the lowest CoV; ESO and CISO are the two
// most variable regions.
#include <iostream>

#include "bench_common.h"
#include "grid/analysis.h"
#include "grid/presets.h"
#include "grid/simulator.h"

#include "cli/registry.h"

using namespace hpcarbon;

static int tool_main(int, char**) {
  const auto traces = grid::generate_traces(grid::all_regions());
  const auto summaries = grid::summarize(traces);

  bench::print_banner("Figure 6 (a): Annual carbon intensity by region");
  TextTable a({"Region", "whisker-", "Q1", "Median", "Q3", "whisker+",
               "Mean"});
  for (const auto& s : summaries) {
    a.add_row({s.code, TextTable::num(s.box.whisker_low, 0),
               TextTable::num(s.box.q1, 0), TextTable::num(s.box.median, 0),
               TextTable::num(s.box.q3, 0),
               TextTable::num(s.box.whisker_high, 0),
               TextTable::num(s.box.mean, 0)});
  }
  bench::print_table(a);

  bench::print_banner("Figure 6 (b): CoV (%) of annual carbon intensity");
  TextTable b({"Region", "CoV %", ""});
  double max_cov = 0;
  for (const auto& s : summaries) max_cov = std::max(max_cov, s.cov_percent);
  for (const auto& s : summaries) {
    b.add_row({s.code, TextTable::num(s.cov_percent, 1),
               bar(s.cov_percent, max_cov, 34)});
  }
  bench::print_table(b);

  auto median_of = [&](const std::string& code) {
    for (const auto& s : summaries) {
      if (s.code == code) return s.box.median;
    }
    return 0.0;
  };
  std::cout << "\nTK/ESO median ratio: "
            << bench::vs_paper(median_of("TK") / median_of("ESO"), 3.0)
            << "\nInsight 6: the greenest regions (ESO, CISO) show the "
               "largest temporal variation; the dirtiest (TK, KN) the least."
            << std::endl;
  return 0;
}

HPCARBON_TOOL("fig6", ToolKind::kBench,
              "Fig. 6: annual carbon-intensity distribution for seven regions")
