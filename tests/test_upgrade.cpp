// Upgrade-analysis tests: RQ 7 (Fig. 8) and RQ 8 (Fig. 9).
#include "lifecycle/upgrade.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace hpcarbon::lifecycle {
namespace {

using hw::a100_node;
using hw::p100_node;
using hw::v100_node;
using workload::Suite;

UpgradeScenario scenario(const hw::NodeConfig& from, const hw::NodeConfig& to,
                         Suite suite, double ci, double usage = 0.4) {
  UpgradeScenario s;
  s.old_node = from;
  s.new_node = to;
  s.suite = suite;
  s.intensity = CarbonIntensity::grams_per_kwh(ci);
  s.usage = UsageProfile{usage};
  return s;
}

TEST(Upgrade, UsageTiersMatchPaper) {
  // Medium 40% from production traces; high/low at 1.5x more/less.
  EXPECT_DOUBLE_EQ(UsageProfile::medium().gpu_usage, 0.40);
  EXPECT_DOUBLE_EQ(UsageProfile::high().gpu_usage, 0.60);
  EXPECT_NEAR(UsageProfile::low().gpu_usage, 0.2667, 1e-3);
}

TEST(Upgrade, NewNodeUsesLessAnnualEnergyForSameWork) {
  for (Suite s : workload::all_suites()) {
    const auto sc = scenario(p100_node(), a100_node(), s, 200);
    EXPECT_LT(annual_energy_upgrade(sc).to_kwh(),
              annual_energy_keep(sc).to_kwh())
        << workload::to_string(s);
  }
}

TEST(Upgrade, SavingsStartNegative) {
  // "all curves start from a negative point because an upgrade immediately
  //  incurs embodied carbon cost".
  for (Suite s : workload::all_suites()) {
    const auto sc = scenario(p100_node(), v100_node(), s, 200);
    EXPECT_LT(savings_percent(sc, 0.05), 0.0);
  }
}

TEST(Upgrade, SavingsMonotonicallyIncreaseOverTime) {
  const auto sc = scenario(v100_node(), a100_node(), Suite::kVision, 200);
  double prev = savings_percent(sc, 0.1);
  for (double y : {0.5, 1.0, 2.0, 3.0, 5.0}) {
    const double cur = savings_percent(sc, y);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Upgrade, Fig8BreakevenUnderHalfYearAtHighIntensity) {
  // "at high carbon intensity, it takes less than half a year to amortize".
  for (Suite s : workload::all_suites()) {
    for (const auto& to : {v100_node(), a100_node()}) {
      const auto sc = scenario(p100_node(), to, s, 400);
      const auto be = breakeven_years(sc);
      ASSERT_TRUE(be.has_value());
      EXPECT_LT(*be, 0.5) << workload::to_string(s) << " -> " << to.name;
    }
  }
}

TEST(Upgrade, Fig8BreakevenUnderOneYearAtMediumIntensity) {
  // "at medium carbon intensity, it takes less than a year".
  for (Suite s : workload::all_suites()) {
    for (const auto& [from, to] :
         {std::pair{p100_node(), v100_node()},
          std::pair{p100_node(), a100_node()},
          std::pair{v100_node(), a100_node()}}) {
      const auto be = breakeven_years(scenario(from, to, s, 200));
      ASSERT_TRUE(be.has_value());
      EXPECT_LT(*be, 1.0) << workload::to_string(s);
    }
  }
}

TEST(Upgrade, Fig8BreakevenAboutFiveYearsAtLowIntensity) {
  // "at low carbon intensity … the amortization time is about five years
  //  or more" (20 g/kWh hydropower).
  for (Suite s : workload::all_suites()) {
    const auto be = breakeven_years(scenario(p100_node(), v100_node(), s, 20));
    ASSERT_TRUE(be.has_value());
    EXPECT_GT(*be, 2.5) << workload::to_string(s);
    EXPECT_LT(*be, 8.0) << workload::to_string(s);
  }
  // V100 -> A100 on NLP is the slowest payoff: beyond five years.
  const auto be =
      breakeven_years(scenario(v100_node(), a100_node(), Suite::kNlp, 20));
  ASSERT_TRUE(be.has_value());
  EXPECT_GT(*be, 5.0);
}

TEST(Upgrade, BreakevenScalesInverselyWithIntensity) {
  const auto hi = breakeven_years(
      scenario(p100_node(), a100_node(), Suite::kVision, 400));
  const auto lo = breakeven_years(
      scenario(p100_node(), a100_node(), Suite::kVision, 20));
  ASSERT_TRUE(hi.has_value() && lo.has_value());
  EXPECT_NEAR(*lo / *hi, 20.0, 1e-6);  // 400/20 ratio
}

TEST(Upgrade, NlpGainsLeastFromVoltaToAmpere) {
  // Table 6 / Fig. 8: NLP receives the least V100->A100 improvement, so
  // its savings curve sits below Vision and CANDLE.
  const double nlp = savings_percent(
      scenario(v100_node(), a100_node(), Suite::kNlp, 200), 3.0);
  const double vision = savings_percent(
      scenario(v100_node(), a100_node(), Suite::kVision, 200), 3.0);
  const double candle = savings_percent(
      scenario(v100_node(), a100_node(), Suite::kCandle, 200), 3.0);
  EXPECT_LT(nlp, vision);
  EXPECT_LT(vision, candle);
}

TEST(Upgrade, Fig9LowUsageJustBreaksEvenAtOneYear) {
  // "after one year, a high/medium usage pattern would result in carbon
  //  reduction, whereas the low usage pattern has just paid off the initial
  //  embodied carbon" (V100 -> A100, NLP, 200 g/kWh).
  const double low = savings_percent(
      scenario(v100_node(), a100_node(), Suite::kNlp, 200, 0.4 / 1.5), 1.0);
  const double med = savings_percent(
      scenario(v100_node(), a100_node(), Suite::kNlp, 200, 0.4), 1.0);
  const double high = savings_percent(
      scenario(v100_node(), a100_node(), Suite::kNlp, 200, 0.6), 1.0);
  EXPECT_NEAR(low, 0.0, 4.0);  // just paid off
  EXPECT_GT(med, low);
  EXPECT_GT(high, med);
  EXPECT_GT(med, 3.0);
  EXPECT_GT(high, 8.0);
}

TEST(Upgrade, HigherUsageAmortizesFaster) {
  // Insight 9: high GPU utilization -> quicker upgrade payoff.
  const auto hi = breakeven_years(
      scenario(p100_node(), a100_node(), Suite::kCandle, 200, 0.6));
  const auto lo = breakeven_years(
      scenario(p100_node(), a100_node(), Suite::kCandle, 200, 0.4 / 1.5));
  ASSERT_TRUE(hi.has_value() && lo.has_value());
  EXPECT_LT(*hi, *lo);
}

TEST(Upgrade, UsageMattersLessThanIntensity) {
  // "The difference is not as significant as the carbon intensity, where it
  //  can be multiple years of difference."
  const auto sc = [&](double ci, double usage) {
    return *breakeven_years(
        scenario(v100_node(), a100_node(), Suite::kVision, ci, usage));
  };
  const double usage_spread = sc(200, 0.4 / 1.5) - sc(200, 0.6);
  const double intensity_spread = sc(20, 0.4) - sc(400, 0.4);
  EXPECT_GT(intensity_spread, usage_spread * 3.0);
}

TEST(Upgrade, AsymptoteIndependentOfIntensity) {
  const double a400 = asymptotic_savings_percent(
      scenario(p100_node(), a100_node(), Suite::kNlp, 400));
  const double a20 = asymptotic_savings_percent(
      scenario(p100_node(), a100_node(), Suite::kNlp, 20));
  EXPECT_NEAR(a400, a20, 1e-9);
  EXPECT_GT(a400, 30.0);  // P100->A100 saves a lot of energy
  EXPECT_LT(a400, 70.0);
  // Savings approach the asymptote from below.
  const auto sc = scenario(p100_node(), a100_node(), Suite::kNlp, 400);
  EXPECT_LT(savings_percent(sc, 5.0), a400);
  EXPECT_NEAR(savings_percent(sc, 50.0), a400, 2.0);
}

TEST(Upgrade, DowngradeNeverBreaksEven) {
  // A100 -> P100 "upgrade" consumes more energy per job: no breakeven.
  const auto sc = scenario(a100_node(), p100_node(), Suite::kNlp, 200);
  EXPECT_FALSE(breakeven_years(sc).has_value());
  EXPECT_LT(savings_percent(sc, 5.0), 0.0);
}

TEST(Upgrade, SavingsCurveMatchesPointQueries) {
  const auto sc = scenario(p100_node(), v100_node(), Suite::kCandle, 200);
  const std::vector<double> years = {0.5, 1, 2, 5};
  const auto curve = savings_curve(sc, years);
  ASSERT_EQ(curve.size(), years.size());
  for (std::size_t i = 0; i < years.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve[i], savings_percent(sc, years[i]));
  }
}

TEST(Upgrade, Validation) {
  auto sc = scenario(p100_node(), v100_node(), Suite::kNlp, 200);
  EXPECT_THROW(savings_percent(sc, 0.0), Error);
  sc.usage.gpu_usage = 0.0;
  EXPECT_THROW(annual_energy_keep(sc), Error);
  sc.usage.gpu_usage = 1.5;
  EXPECT_THROW(annual_energy_keep(sc), Error);
}

}  // namespace
}  // namespace hpcarbon::lifecycle
