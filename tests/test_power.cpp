#include "hw/power.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "hw/perf.h"

namespace hpcarbon::hw {
namespace {

using workload::Suite;

TEST(Power, IdleBelowTraining) {
  for (const NodeConfig& n : {p100_node(), v100_node(), a100_node()}) {
    const double idle = node_idle_power(n).to_watts();
    const double busy = node_training_power(n, Suite::kNlp).to_watts();
    EXPECT_GT(idle, 0.0) << n.name;
    EXPECT_GT(busy, idle) << n.name;
  }
}

TEST(Power, TrainingPowerInPhysicalRange) {
  // 4-GPU training nodes draw roughly 1-2.5 kW.
  for (const NodeConfig& n : {p100_node(), v100_node(), a100_node()}) {
    for (Suite s : workload::all_suites()) {
      const double w = node_training_power(n, s).to_watts();
      EXPECT_GT(w, 900.0) << n.name;
      EXPECT_LT(w, 2500.0) << n.name;
    }
  }
}

TEST(Power, IdleGpusDrawIdleFloor) {
  const NodeConfig v = v100_node();
  const auto& bert = workload::model_by_name("BERT");
  const double all4 = node_training_power(v, bert, 4).to_watts();
  const double just1 = node_training_power(v, bert, 1).to_watts();
  const auto& gpu = embodied::processor(v.gpu);
  // Difference: 3 GPUs move from active draw to idle floor.
  const double expected =
      3 * (gpu.tdp_watts * bert.gpu_power_utilization - gpu.idle_watts);
  EXPECT_NEAR(all4 - just1, expected, 1e-9);
}

TEST(Power, AveragePowerInterpolatesUsage) {
  const NodeConfig v = v100_node();
  const double idle = node_idle_power(v).to_watts();
  const double busy = node_training_power(v, Suite::kNlp).to_watts();
  EXPECT_NEAR(node_average_power(v, Suite::kNlp, 0.0).to_watts(), idle, 1e-9);
  EXPECT_NEAR(node_average_power(v, Suite::kNlp, 1.0).to_watts(), busy, 1e-9);
  EXPECT_NEAR(node_average_power(v, Suite::kNlp, 0.4).to_watts(),
              idle + 0.4 * (busy - idle), 1e-9);
  EXPECT_THROW(node_average_power(v, Suite::kNlp, 1.5), Error);
  EXPECT_THROW(node_average_power(v, Suite::kNlp, -0.1), Error);
}

TEST(Power, TrainingEnergyMatchesPowerTimesTime) {
  const NodeConfig v = v100_node();
  const auto& bert = workload::model_by_name("BERT");
  const double samples = 1e6;
  const Energy e = training_energy(v, bert, samples);
  const double tput = throughput(bert, v);
  const double hours = samples / tput / 3600.0;
  const double expect_kwh =
      node_training_power(v, bert).to_kilowatts() * hours;
  EXPECT_NEAR(e.to_kwh(), expect_kwh, 1e-9);
  EXPECT_THROW(training_energy(v, bert, 0), Error);
}

TEST(Power, NewerNodesUseLessEnergyPerJob) {
  // The physical basis of RQ 7: upgrades save operational energy.
  const double samples = 1e6;
  for (const auto* m : workload::all_models()) {
    const double p = training_energy(p100_node(), *m, samples).to_kwh();
    const double v = training_energy(v100_node(), *m, samples).to_kwh();
    const double a = training_energy(a100_node(), *m, samples).to_kwh();
    EXPECT_LT(v, p) << m->name;
    EXPECT_LT(a, v) << m->name;
  }
}

TEST(Power, RejectsBadGpuCount) {
  const auto& bert = workload::model_by_name("BERT");
  EXPECT_THROW(node_training_power(v100_node(), bert, 5), Error);
}

}  // namespace
}  // namespace hpcarbon::hw
