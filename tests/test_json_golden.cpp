// Golden byte-identity suite for the JSON core and the serve wire format.
//
// The zero-copy parser/emitter rework must not move a single byte: parsed
// values must dump identically (plain and sorted-key), parse errors must
// keep their exact messages and offsets (error text is part of the serve
// response contract), serve responses over the request fixture must stay
// bit-identical, and canonical cache keys must not rotate (a changed
// canonical form would silently invalidate every deployed cache).
//
// The goldens were captured from the pre-rework implementation and are
// committed; any diff is an observable wire-format change. To regenerate
// after an *intentional* change, run the test binary with
// HPCARBON_REGEN_GOLDEN=1 and commit the rewritten fixtures together with
// an explanation of why the bytes moved.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/json.h"
#include "serve/engine.h"
#include "serve/request.h"

namespace {

using namespace hpcarbon;

std::string data_path(const std::string& name) {
  return std::string(HPCARBON_TEST_DATA_DIR) + "/" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool regen_requested() {
  const char* env = std::getenv("HPCARBON_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  for (const auto& l : lines) out << l << '\n';
  std::fprintf(stderr, "regenerated golden %s (%zu lines)\n", path.c_str(),
               lines.size());
}

/// Compare produced lines against a committed golden, or rewrite the
/// golden under HPCARBON_REGEN_GOLDEN=1.
void expect_matches_golden(const std::vector<std::string>& produced,
                           const std::string& golden_name) {
  const std::string path = data_path(golden_name);
  if (regen_requested()) {
    write_lines(path, produced);
    return;
  }
  const std::vector<std::string> golden = read_lines(path);
  ASSERT_EQ(produced.size(), golden.size())
      << golden_name << " line count changed — the corpus and its golden "
      << "must move together";
  for (std::size_t i = 0; i < produced.size(); ++i) {
    EXPECT_EQ(produced[i], golden[i])
        << golden_name << " line " << i + 1 << " diverged";
  }
}

/// What the corpus golden records per document: dumps for valid
/// documents, the exact error text otherwise.
std::string corpus_result(const std::string& doc) {
  try {
    const json::Value v = json::Value::parse(doc);
    return "ok\t" + v.dump() + "\t" + v.dump(/*sort_keys=*/true);
  } catch (const Error& e) {
    return std::string("error\t") + e.what();
  }
}

TEST(JsonGolden, CorpusParseAndDumpBytes) {
  const auto corpus = read_lines(data_path("json_corpus.jsonl"));
  ASSERT_FALSE(corpus.empty());
  std::vector<std::string> produced;
  produced.reserve(corpus.size());
  for (const auto& doc : corpus) produced.push_back(corpus_result(doc));
  expect_matches_golden(produced, "json_corpus_golden.tsv");
}

TEST(JsonGolden, CorpusRoundTripIsStable) {
  // dump() output re-parsed and re-dumped must reproduce itself exactly —
  // emission is a fixed point of the parser, whatever the input spelling.
  for (const auto& doc : read_lines(data_path("json_corpus.jsonl"))) {
    json::Value v;
    try {
      v = json::Value::parse(doc);
    } catch (const Error&) {
      continue;  // error cases covered by CorpusParseAndDumpBytes
    }
    const std::string once = v.dump();
    EXPECT_EQ(json::Value::parse(once).dump(), once) << "input: " << doc;
    const std::string sorted = v.dump(/*sort_keys=*/true);
    EXPECT_EQ(json::Value::parse(sorted).dump(/*sort_keys=*/true), sorted)
        << "input: " << doc;
  }
}

TEST(JsonGolden, DumpToMatchesDump) {
  // The append-style emission the hot path uses must be byte-identical to
  // the returning form, including when appending after existing content.
  for (const auto& doc : read_lines(data_path("json_corpus.jsonl"))) {
    json::Value v;
    try {
      v = json::Value::parse(doc);
    } catch (const Error&) {
      continue;
    }
    for (const bool sort_keys : {false, true}) {
      std::string buf = "prefix:";
      v.dump_to(buf, sort_keys);
      EXPECT_EQ(buf, "prefix:" + v.dump(sort_keys)) << "input: " << doc;
    }
  }
}

TEST(JsonGolden, CanonicalKeysDoNotRotate) {
  // Canonical form + FNV key per parseable fixture request. A rotated key
  // or reshaped canonical string silently severs every deployed cache.
  std::vector<std::string> produced;
  for (const auto& line : read_lines(data_path("requests.jsonl"))) {
    try {
      const serve::Query q = serve::parse_query_line(line);
      char key_hex[32];
      std::snprintf(key_hex, sizeof(key_hex), "%016llx",
                    static_cast<unsigned long long>(q.key));
      produced.push_back(std::string(key_hex) + "\t" + q.canonical);
      EXPECT_EQ(q.key, json::fnv1a64(q.canonical));
    } catch (const Error& e) {
      produced.push_back(std::string("error\t") + e.what());
    }
  }
  expect_matches_golden(produced, "canonical_golden.tsv");
}

TEST(JsonGolden, ServeResponsesBitIdentical) {
  // The full front door: every fixture request line through a fresh
  // engine, responses byte-compared against the committed golden (success
  // and error lines alike).
  const auto lines = read_lines(data_path("requests.jsonl"));
  serve::Engine engine;
  std::vector<std::string> produced;
  produced.reserve(lines.size());
  for (const auto& line : lines) produced.push_back(engine.handle_line(line));
  expect_matches_golden(produced, "requests_golden.jsonl");

  // And the batch planner must agree with the line-at-a-time loop on a
  // second fresh engine, byte for byte.
  serve::Engine batch_engine;
  const auto batch = batch_engine.handle_batch(lines);
  ASSERT_EQ(batch.size(), produced.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i], produced[i]) << "batch/serve divergence on line "
                                     << i + 1;
  }
}

}  // namespace
