// src/obs unit + stress coverage: bucket goldens, bit-exact snapshot
// merging, registry determinism, both exposition formats, and a
// concurrent record-vs-scrape hammer with exact reconciliation
// (race_stress label — the TSan CI job hot-repeats this binary).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/scrape.h"

namespace hpcarbon::obs {
namespace {

// ---------------------------------------------------------------------------
// Clock helpers.

TEST(ObsClock, ElapsedNsIsNonNegativeAndZeroOnBackwardsStep) {
  const std::uint64_t t0 = ticks();
  const std::uint64_t t1 = ticks();
  EXPECT_GE(elapsed_ns(t0, t1), 0u);
  EXPECT_EQ(elapsed_ns(t0, t0), 0u);
  EXPECT_EQ(elapsed_ns(t1, t0), 0u);  // backwards: clamp, never UB
}

TEST(ObsClock, BuildFingerprintNamesCompilerAndBuildType) {
  const std::string& fp = build_fingerprint();
  const bool compiler = fp.find("gcc") != std::string::npos ||
                        fp.find("clang") != std::string::npos ||
                        fp.find("unknown-compiler") != std::string::npos;
  EXPECT_TRUE(compiler) << fp;
  const bool build_type = fp.find("release") != std::string::npos ||
                          fp.find("debug") != std::string::npos;
  EXPECT_TRUE(build_type) << fp;
}

// ---------------------------------------------------------------------------
// Histogram bucket goldens: the 1-2-5 ladder with inclusive upper bounds.

TEST(ObsHistogram, BucketBoundaryGoldens) {
  // Bound values land in their own bucket (inclusive upper bound);
  // bound + 1 ns lands in the next.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(1000), 0u);     // 1 us
  EXPECT_EQ(Histogram::bucket_of(1001), 1u);
  EXPECT_EQ(Histogram::bucket_of(2000), 1u);     // 2 us
  EXPECT_EQ(Histogram::bucket_of(2001), 2u);
  EXPECT_EQ(Histogram::bucket_of(5000), 2u);     // 5 us
  EXPECT_EQ(Histogram::bucket_of(5001), 3u);
  EXPECT_EQ(Histogram::bucket_of(1000000), 9u);  // 1 ms
  EXPECT_EQ(Histogram::bucket_of(100000000000ull), 24u);  // 100 s: last finite
  EXPECT_EQ(Histogram::bucket_of(100000000001ull), 25u);  // overflow
  EXPECT_EQ(Histogram::bucket_of(~0ull), Histogram::kBuckets - 1);

  // Every bound maps to its own index — the full ladder, exhaustively.
  for (std::size_t b = 0; b < Histogram::kBoundNs.size(); ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::kBoundNs[b]), b);
    EXPECT_EQ(Histogram::bucket_of(Histogram::kBoundNs[b] + 1), b + 1);
  }
}

TEST(ObsHistogram, RecordSnapshotAndExactSum) {
  Histogram h;
  h.record_ns(500);     // bucket 0
  h.record_ns(1500);    // bucket 1
  h.record_ns(1500);    // bucket 1
  h.record_ns(250000);  // bucket 8 (200..500 us)
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum_ns, 500u + 1500u + 1500u + 250000u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[8], 1u);
}

TEST(ObsHistogram, QuantileInterpolationGoldens) {
  Histogram::Snapshot empty;
  EXPECT_EQ(empty.quantile_us(0.5), 0.0);
  EXPECT_EQ(empty.mean_us(), 0.0);

  // Four observations in bucket 1 ((1, 2] us): the median interpolates
  // to the bucket midpoint, q=1 to the upper bound.
  Histogram h;
  for (int i = 0; i < 4; ++i) h.record_ns(1500);
  const auto snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile_us(0.5), 1.5);
  EXPECT_DOUBLE_EQ(snap.quantile_us(1.0), 2.0);
  EXPECT_DOUBLE_EQ(snap.mean_us(), 1.5);

  // A single sub-microsecond observation: bucket 0 spans (0, 1] us.
  Histogram h0;
  h0.record_ns(500);
  EXPECT_DOUBLE_EQ(h0.snapshot().quantile_us(0.5), 0.5);

  // Overflow observations report the last finite bound (1e8 us).
  Histogram over;
  over.record_ns(200000000000ull);  // 200 s
  EXPECT_DOUBLE_EQ(over.snapshot().quantile_us(0.5), 1e8);
}

TEST(ObsHistogram, MergeIsAssociativeAndBitExact) {
  Histogram ha, hb, hc;
  ha.record_ns(500);
  ha.record_ns(1500);
  hb.record_ns(7000);
  hb.record_ns(123456789);
  hc.record_ns(3);
  const auto a = ha.snapshot(), b = hb.snapshot(), c = hc.snapshot();

  Histogram::Snapshot ab_c = a;   // (a + b) + c
  ab_c.merge(b).merge(c);
  Histogram::Snapshot bc = b;     // a + (b + c)
  bc.merge(c);
  Histogram::Snapshot a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.sum_ns, a_bc.sum_ns);
  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab_c.count, 5u);
  EXPECT_EQ(ab_c.sum_ns, 500u + 1500u + 7000u + 123456789u + 3u);
}

TEST(ObsHistogram, ConcurrentRecordingTotalsAreThreadCountInvariant) {
  // The same observation multiset recorded under 1, 2, and 4 threads
  // must snapshot to identical totals: stripes only shard contention,
  // never meaning.
  // 4200 observations total: divisible by 1, 2, and 4 threads AND by the
  // 7 distinct values below, so every configuration records the exact
  // same multiset.
  constexpr unsigned kTotalObs = 4200;
  const auto run = [](unsigned threads) {
    Histogram h;
    std::vector<std::thread> pool;
    const unsigned per_thread = kTotalObs / threads;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&h, per_thread] {
        for (unsigned i = 0; i < per_thread; ++i) {
          h.record_ns(500 + (i % 7) * 400);  // spans buckets 0..1
        }
      });
    }
    for (auto& th : pool) th.join();
    return h.snapshot();
  };
  const auto s1 = run(1), s2 = run(2), s4 = run(4);
  EXPECT_EQ(s1.count, s2.count);
  EXPECT_EQ(s1.count, s4.count);
  EXPECT_EQ(s1.sum_ns, s2.sum_ns);
  EXPECT_EQ(s1.sum_ns, s4.sum_ns);
  EXPECT_EQ(s1.buckets, s2.buckets);
  EXPECT_EQ(s1.buckets, s4.buckets);
}

// ---------------------------------------------------------------------------
// Counter / Gauge.

TEST(ObsCounter, IncValueAndAdvanceTo) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.advance_to(100);  // raise to the authoritative external total
  EXPECT_EQ(c.value(), 100u);
  c.advance_to(50);  // never moves backwards
  EXPECT_EQ(c.value(), 100u);
}

TEST(ObsGauge, SetAddSubObserveMax) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  Gauge hw;
  hw.observe_max(7);
  hw.observe_max(3);  // below the high-water mark: no-op
  EXPECT_EQ(hw.value(), 7);
  hw.observe_max(9);
  EXPECT_EQ(hw.value(), 9);
}

// ---------------------------------------------------------------------------
// Registry: idempotence, ordering, kind safety.

TEST(ObsRegistry, RegistrationIsIdempotentAndOrdered) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("test_requests_total", "family=\"a\"", "Requests.");
  Gauge& g1 = reg.gauge("test_depth", "", "Depth.");
  Histogram& h1 = reg.histogram("test_latency_us", "", "Latency.");
  // Re-registration returns the same instrument, not a fresh one.
  Counter& c2 = reg.counter("test_requests_total", "family=\"a\"", "ignored");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(&g1, &reg.gauge("test_depth", "", ""));
  EXPECT_EQ(&h1, &reg.histogram("test_latency_us", "", ""));
  EXPECT_EQ(reg.size(), 3u);

  // Same name, different labels: a distinct series, appended in order.
  reg.counter("test_requests_total", "family=\"b\"", "Requests.");
  c1.inc(3);
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].id(), "test_requests_total{family=\"a\"}");
  EXPECT_EQ(samples[0].value, 3);
  EXPECT_EQ(samples[1].id(), "test_depth");
  EXPECT_EQ(samples[2].id(), "test_latency_us");
  EXPECT_EQ(samples[3].id(), "test_requests_total{family=\"b\"}");
}

TEST(ObsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("test_metric", "", "A counter.");
  EXPECT_THROW(reg.gauge("test_metric", "", ""), Error);
  EXPECT_THROW(reg.histogram("test_metric", "", ""), Error);
}

// ---------------------------------------------------------------------------
// Exposition formats.

TEST(ObsExport, PrometheusFormatGolden) {
  MetricsRegistry reg;
  reg.counter("test_total", "", "Things counted.").inc(7);
  reg.gauge("test_depth", "", "Queue depth.").set(-2);
  Histogram& h = reg.histogram("test_lat_us", "family=\"a\"", "Latency.");
  h.record_ns(1500);  // bucket 1
  h.record_ns(1500);
  h.record_ns(500);  // bucket 0

  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# HELP test_total Things counted.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("\ntest_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("\ntest_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_lat_us histogram\n"), std::string::npos);
  // Cumulative buckets: le bounds are whole microseconds; bucket 0 holds
  // 1 observation, bucket 1's cumulative count is 3, and every later
  // bucket (and +Inf) repeats the total.
  EXPECT_NE(text.find("test_lat_us_bucket{family=\"a\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_us_bucket{family=\"a\",le=\"2\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_us_bucket{family=\"a\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  // _sum renders ns as us with exactly three decimals (3500 ns = 3.500).
  EXPECT_NE(text.find("test_lat_us_sum{family=\"a\"} 3.500\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_us_count{family=\"a\"} 3\n"),
            std::string::npos);
  // HELP/TYPE emitted once per base name.
  EXPECT_EQ(text.find("# HELP test_total"), text.rfind("# HELP test_total"));
}

TEST(ObsExport, JsonSortsKeysAndHonorsExcludePrefixes) {
  MetricsRegistry reg;
  reg.counter("zzz_total", "", "Last registered, first excluded-check.");
  reg.counter("aaa_total", "", "").inc(1);
  reg.counter("net_bytes_total", "", "Transport-dependent.");
  const json::Value v = to_json(reg.snapshot(), {"net_"});
  const std::string text = v.dump(/*sort_keys=*/true);
  EXPECT_NE(text.find("\"aaa_total\":1"), std::string::npos) << text;
  EXPECT_NE(text.find("\"zzz_total\":0"), std::string::npos) << text;
  EXPECT_EQ(text.find("net_bytes_total"), std::string::npos) << text;
  // Sorted dump: aaa before zzz regardless of registration order.
  EXPECT_LT(text.find("aaa_total"), text.find("zzz_total"));
}

// ---------------------------------------------------------------------------
// Scrape endpoint + concurrent record-vs-scrape hammer (race_stress).

/// Minimal scrape client: connect, read to EOF.
std::string scrape_once(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  std::string out;
  char chunk[65536];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      out.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);
  return out;
}

TEST(ObsScrape, ServesOneExpositionPerConnection) {
  MetricsRegistry reg;
  reg.counter("test_scrape_total", "", "Scrape smoke.").inc(5);
  const std::string path =
      "/tmp/hpcarbon_test_obs_" + std::to_string(::getpid()) + ".sock";
  int pre_scrapes = 0;
  ScrapeServer server(path, &reg, [&pre_scrapes] { ++pre_scrapes; });
  server.start();
  for (int i = 0; i < 3; ++i) {
    const std::string text = scrape_once(path);
    EXPECT_NE(text.find("test_scrape_total 5\n"), std::string::npos) << text;
  }
  server.stop();
  EXPECT_EQ(pre_scrapes, 3);
}

TEST(ObsRaceStress, ConcurrentRecordVsScrapeReconcilesExactly) {
  // Writers hammer a counter and a histogram while a reader snapshots
  // continuously. Per-reader snapshot counts must be monotone
  // (stripes only grow and one reader re-reads each stripe in order),
  // and the final quiesced snapshot must reconcile exactly.
  constexpr unsigned kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  MetricsRegistry reg;
  Counter& events = reg.counter("race_events_total", "", "Events.");
  Histogram& lat = reg.histogram("race_lat_us", "", "Latency.");

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots_taken{0};
  std::thread reader([&] {
    std::uint64_t last_count = 0;
    std::uint64_t last_events = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto samples = reg.snapshot();
      ASSERT_EQ(samples.size(), 2u);
      const auto ev = static_cast<std::uint64_t>(samples[0].value);
      const auto& snap = samples[1].hist;
      EXPECT_GE(ev, last_events);
      EXPECT_GE(snap.count, last_count);
      EXPECT_LE(ev, kWriters * kPerWriter);
      last_events = ev;
      last_count = snap.count;
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&events, &lat] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        events.inc();
        lat.record_ns(500 + (i % 10) * 300);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_GT(snapshots_taken.load(), 0u);

  // Quiesced: every write is visible and the totals are exact.
  constexpr std::uint64_t kTotal = kWriters * kPerWriter;
  EXPECT_EQ(events.value(), kTotal);
  const auto snap = lat.snapshot();
  EXPECT_EQ(snap.count, kTotal);
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 0; i < kPerWriter; ++i) {
    expected_sum += kWriters * (500 + (i % 10) * 300);
  }
  EXPECT_EQ(snap.sum_ns, expected_sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kTotal);
}

}  // namespace
}  // namespace hpcarbon::obs
