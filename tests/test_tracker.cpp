#include "op/tracker.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "hw/perf.h"
#include "op/operational.h"

namespace hpcarbon::op {
namespace {

grid::CarbonIntensityTrace constant_trace(double v) {
  return grid::CarbonIntensityTrace(
      "X", kUtc, std::vector<double>(kHoursPerYear, v));
}

TEST(Tracker, ConstantJobMatchesEq6) {
  const auto trace = constant_trace(200.0);
  TrackerOptions opts;
  opts.sample_interval = Hours::seconds(60);
  opts.pue = PueModel(1.2);
  Tracker tracker(trace, HourOfYear(0), opts);
  const auto report = tracker.track(
      "constant", [](Hours) { return Power::kilowatts(1.5); },
      Hours::hours(2));
  EXPECT_NEAR(report.it_energy.to_kwh(), 3.0, 1e-6);
  EXPECT_NEAR(report.facility_energy.to_kwh(), 3.6, 1e-6);
  EXPECT_NEAR(report.carbon.to_grams(), 3.6 * 200.0, 1e-3);
  EXPECT_NEAR(report.average_intensity.to_g_per_kwh(), 200.0, 1e-6);
  EXPECT_NEAR(report.average_power.to_kilowatts(), 1.5, 1e-6);
  EXPECT_EQ(report.job_name, "constant");
}

TEST(Tracker, PricesEnergyAtHourOfConsumption) {
  std::vector<double> v(kHoursPerYear, 100.0);
  v[1] = 400.0;
  const grid::CarbonIntensityTrace trace("X", kUtc, v);
  TrackerOptions opts;
  opts.sample_interval = Hours::minutes(6);
  opts.pue = PueModel(1.0);
  Tracker tracker(trace, HourOfYear(0), opts);
  const auto report = tracker.track(
      "two-hours", [](Hours) { return Power::kilowatts(1.0); },
      Hours::hours(2));
  // 1 kWh at 100 + 1 kWh at 400.
  EXPECT_NEAR(report.carbon.to_grams(), 500.0, 1.0);
}

TEST(Tracker, MatchesOperationalIntegration) {
  // The streaming tracker and the closed-form hourly integration must agree
  // for constant power.
  const auto trace = constant_trace(350.0);
  const Power p = Power::kilowatts(2.0);
  const Hours d = Hours::hours(5);
  TrackerOptions opts;
  opts.sample_interval = Hours::minutes(1);
  Tracker tracker(trace, HourOfYear(100), opts);
  const auto report = tracker.track("x", [p](Hours) { return p; }, d);
  const Mass direct =
      operational_carbon(p, trace, HourOfYear(100), d, opts.pue);
  EXPECT_NEAR(report.carbon.to_grams(), direct.to_grams(),
              direct.to_grams() * 1e-3);
}

TEST(Tracker, TrainingRunUsesPerfAndPowerModels) {
  const auto trace = constant_trace(250.0);
  Tracker tracker(trace, HourOfYear(0));
  const auto node = hw::v100_node();
  const auto& bert = workload::model_by_name("BERT");
  const double samples = hw::throughput(bert, node) * 3600.0;  // 1 h of work
  const auto report = tracker.track_training(node, bert, samples);
  EXPECT_NEAR(report.duration.count(), 1.0, 1e-6);
  EXPECT_NEAR(report.average_power.to_watts(),
              hw::node_training_power(node, bert).to_watts(), 1.0);
  EXPECT_NE(report.job_name.find("BERT"), std::string::npos);
  EXPECT_NE(report.job_name.find("V100"), std::string::npos);
}

TEST(Tracker, GreenerRegionYieldsLessCarbonForSameJob) {
  const auto dirty = constant_trace(500.0);
  const auto clean = constant_trace(50.0);
  const auto node = hw::a100_node();
  const auto& vit = workload::model_by_name("ViT");
  const double samples = 1e6;
  Tracker td(dirty, HourOfYear(0)), tc(clean, HourOfYear(0));
  const auto rd = td.track_training(node, vit, samples);
  const auto rc = tc.track_training(node, vit, samples);
  EXPECT_NEAR(rd.carbon.to_grams() / rc.carbon.to_grams(), 10.0, 0.1);
  EXPECT_NEAR(rd.it_energy.to_kwh(), rc.it_energy.to_kwh(), 1e-9);
}

TEST(Tracker, ReportToStringContainsFields) {
  const auto trace = constant_trace(100.0);
  Tracker tracker(trace, HourOfYear(0));
  const auto report = tracker.track(
      "fmt", [](Hours) { return Power::watts(500); }, Hours::hours(1));
  const std::string s = report.to_string();
  EXPECT_NE(s.find("fmt"), std::string::npos);
  EXPECT_NE(s.find("operational CO2"), std::string::npos);
  EXPECT_NE(s.find("avg CI"), std::string::npos);
}

TEST(Tracker, RejectsNonPositiveDuration) {
  const auto trace = constant_trace(100.0);
  Tracker tracker(trace, HourOfYear(0));
  EXPECT_THROW(
      tracker.track("bad", [](Hours) { return Power::watts(1); },
                    Hours::hours(0)),
      Error);
}

}  // namespace
}  // namespace hpcarbon::op
