// Property-based tests: parameterized sweeps (TEST_P) asserting model
// invariants across wide input ranges rather than single examples.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "embodied/catalog.h"
#include "embodied/models.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "hw/perf.h"
#include "hw/power.h"
#include "lifecycle/upgrade.h"
#include "op/operational.h"

namespace hpcarbon {
namespace {

using workload::Suite;

// --- Embodied model properties ---------------------------------------------

class DieAreaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DieAreaSweep, ManufacturingCarbonIsLinearInArea) {
  const double area = GetParam();
  const Mass one = embodied::die_manufacturing_carbon(
      area, embodied::ProcessNode::nm7);
  const Mass twice = embodied::die_manufacturing_carbon(
      2.0 * area, embodied::ProcessNode::nm7);
  EXPECT_NEAR(twice.to_grams(), 2.0 * one.to_grams(), 1e-9 * twice.to_grams());
}

TEST_P(DieAreaSweep, YieldMonotonicity) {
  // Worse yield -> strictly more carbon per good die.
  const double area = GetParam();
  double prev = 0;
  for (double y : {0.95, 0.875, 0.8, 0.7, 0.6}) {
    const double g =
        embodied::die_manufacturing_carbon(area, embodied::ProcessNode::nm7, y)
            .to_grams();
    EXPECT_GT(g, prev);
    prev = g;
  }
}

INSTANTIATE_TEST_SUITE_P(Areas, DieAreaSweep,
                         ::testing::Values(50.0, 100.0, 300.0, 600.0, 826.0,
                                           1448.0));

class CapacitySweep : public ::testing::TestWithParam<double> {};

TEST_P(CapacitySweep, Eq4LinearInCapacity) {
  embodied::MemoryPart m;
  m.name = "sweep";
  m.cls = embodied::PartClass::kSsd;
  m.capacity_gb = GetParam();
  m.epc_g_per_gb = 6.21;
  const double expected = 6.21 * GetParam();
  EXPECT_NEAR(embodied::capacity_manufacturing(m).to_grams(), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacitySweep,
                         ::testing::Values(64.0, 256.0, 1024.0, 3200.0,
                                           16000.0, 64000.0));

// --- Operational (Eq. 6) properties -----------------------------------------

class Eq6Sweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Eq6Sweep, CarbonBilinearInEnergyAndIntensity) {
  const auto [kwh, ci] = GetParam();
  const Mass base =
      op::operational_carbon(Energy::kilowatt_hours(kwh),
                             CarbonIntensity::grams_per_kwh(ci),
                             op::PueModel(1.0));
  EXPECT_NEAR(base.to_grams(), kwh * ci, 1e-9 * (1.0 + kwh * ci));
  const Mass double_e =
      op::operational_carbon(Energy::kilowatt_hours(2 * kwh),
                             CarbonIntensity::grams_per_kwh(ci),
                             op::PueModel(1.0));
  EXPECT_NEAR(double_e.to_grams(), 2.0 * base.to_grams(),
              1e-9 * (1.0 + double_e.to_grams()));
}

INSTANTIATE_TEST_SUITE_P(
    EnergyIntensityGrid, Eq6Sweep,
    ::testing::Combine(::testing::Values(0.1, 10.0, 1000.0),
                       ::testing::Values(20.0, 200.0, 800.0)));

// --- Perf model properties ---------------------------------------------------

class GpuCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(GpuCountSweep, SpeedupBoundedByGpuCount) {
  const int k = GetParam();
  for (const auto* m : workload::all_models()) {
    const double t1 = hw::throughput(*m, hw::fig4_node(1));
    const double tk = hw::throughput(*m, hw::fig4_node(k));
    EXPECT_LE(tk, k * t1 * (1.0 + 1e-12)) << m->name;
    EXPECT_GE(tk, t1) << m->name;  // adding GPUs never hurts
  }
}

TEST_P(GpuCountSweep, MarginalGpuValueDiminishes) {
  const int k = GetParam();
  if (k < 2) return;
  for (Suite s : workload::all_suites()) {
    const double eff_k =
        hw::suite_score(s, hw::fig4_node(k)) / k;
    const double eff_prev =
        hw::suite_score(s, hw::fig4_node(k - 1)) / (k - 1);
    EXPECT_LT(eff_k, eff_prev * (1.0 + 1e-9)) << workload::to_string(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, GpuCountSweep, ::testing::Values(1, 2, 3, 4,
                                                                  6, 8));

// --- Power model properties --------------------------------------------------

class UsageSweep : public ::testing::TestWithParam<double> {};

TEST_P(UsageSweep, AveragePowerMonotoneInUsage) {
  const double u = GetParam();
  for (const auto& node :
       {hw::p100_node(), hw::v100_node(), hw::a100_node()}) {
    const double at_u =
        hw::node_average_power(node, Suite::kNlp, u).to_watts();
    const double at_less =
        hw::node_average_power(node, Suite::kNlp, u * 0.5).to_watts();
    EXPECT_GT(at_u, at_less) << node.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Usages, UsageSweep,
                         ::testing::Values(0.1, 0.2667, 0.4, 0.6, 0.8, 1.0));

// --- Upgrade model properties -----------------------------------------------

class IntensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(IntensitySweep, SavingsIncreaseWithIntensity) {
  // At any fixed horizon, a dirtier grid always favors the upgrade more.
  const double ci = GetParam();
  lifecycle::UpgradeScenario lo, hi;
  lo.old_node = hi.old_node = hw::p100_node();
  lo.new_node = hi.new_node = hw::a100_node();
  lo.suite = hi.suite = Suite::kVision;
  lo.intensity = CarbonIntensity::grams_per_kwh(ci);
  hi.intensity = CarbonIntensity::grams_per_kwh(ci * 2.0);
  for (double years : {0.5, 1.0, 3.0}) {
    EXPECT_GT(lifecycle::savings_percent(hi, years),
              lifecycle::savings_percent(lo, years))
        << "ci=" << ci << " t=" << years;
  }
}

TEST_P(IntensitySweep, BreakevenInverseInIntensity) {
  const double ci = GetParam();
  lifecycle::UpgradeScenario sc;
  sc.old_node = hw::v100_node();
  sc.new_node = hw::a100_node();
  sc.suite = Suite::kCandle;
  sc.intensity = CarbonIntensity::grams_per_kwh(ci);
  const auto be = lifecycle::breakeven_years(sc);
  ASSERT_TRUE(be.has_value());
  sc.intensity = CarbonIntensity::grams_per_kwh(2.0 * ci);
  const auto be2 = lifecycle::breakeven_years(sc);
  ASSERT_TRUE(be2.has_value());
  EXPECT_NEAR(*be / *be2, 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Intensities, IntensitySweep,
                         ::testing::Values(20.0, 50.0, 100.0, 200.0, 400.0,
                                           800.0));

// --- Grid simulator properties ----------------------------------------------

class RegionSweep : public ::testing::TestWithParam<int> {};

TEST_P(RegionSweep, TraceIsPhysical) {
  const auto spec = grid::all_regions()[static_cast<size_t>(GetParam())];
  const auto trace = grid::GridSimulator(spec).run();
  double lo = 1e18, hi = 0;
  for (double v : trace.values()) {
    EXPECT_TRUE(std::isfinite(v)) << spec.code;
    EXPECT_GE(v, 0.0) << spec.code;
    // No grid hour can be dirtier than pure coal or cleaner than pure wind.
    EXPECT_LE(v, grid::lifecycle_ci(grid::SourceType::kCoal)) << spec.code;
    EXPECT_GE(v, grid::lifecycle_ci(grid::SourceType::kWind)) << spec.code;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi, lo) << spec.code << " trace is constant";
}

TEST_P(RegionSweep, MixFractionsAreValid) {
  const auto spec = grid::all_regions()[static_cast<size_t>(GetParam())];
  const auto mix = grid::GridSimulator(spec).annual_mix();
  double total = 0;
  for (double f : mix) {
    EXPECT_GE(f, 0.0) << spec.code;
    EXPECT_LE(f, 1.0) << spec.code;
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9) << spec.code;
}

INSTANTIATE_TEST_SUITE_P(AllRegions, RegionSweep,
                         ::testing::Range(0, 7));

// --- Table 6 consistency property --------------------------------------------

class SuiteSweep : public ::testing::TestWithParam<Suite> {};

TEST_P(SuiteSweep, UpgradeImprovementsCompose) {
  // For each suite, P->A improvement must exceed both P->V and V->A, and
  // per-model improvements compose multiplicatively.
  const Suite s = GetParam();
  const auto p = hw::p100_node(), v = hw::v100_node(), a = hw::a100_node();
  const double pv = hw::upgrade_improvement_percent(s, p, v);
  const double pa = hw::upgrade_improvement_percent(s, p, a);
  const double va = hw::upgrade_improvement_percent(s, v, a);
  EXPECT_GT(pa, pv);
  EXPECT_GT(pa, va);
  for (const auto& m : workload::models(s)) {
    const double direct = hw::throughput(m, a) / hw::throughput(m, p);
    const double composed = (hw::throughput(m, v) / hw::throughput(m, p)) *
                            (hw::throughput(m, a) / hw::throughput(m, v));
    EXPECT_NEAR(direct, composed, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Suites, SuiteSweep,
                         ::testing::Values(Suite::kNlp, Suite::kVision,
                                           Suite::kCandle));

}  // namespace
}  // namespace hpcarbon
