#include "hw/node.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace hpcarbon::hw {
namespace {

TEST(Node, Table5Presets) {
  const NodeConfig p = p100_node();
  EXPECT_EQ(p.gpu, embodied::PartId::kP100Pcie16);
  EXPECT_EQ(p.gpu_count, 4);
  EXPECT_EQ(p.cpu, embodied::PartId::kXeonE5_2680);
  EXPECT_EQ(p.cpu_count, 2);
  EXPECT_EQ(p.arch, GpuArch::kPascal);

  const NodeConfig v = v100_node();
  EXPECT_EQ(v.gpu, embodied::PartId::kV100Sxm2_32);
  EXPECT_EQ(v.cpu, embodied::PartId::kXeonGold6240R);
  EXPECT_EQ(v.cpu_count, 2);

  const NodeConfig a = a100_node();
  EXPECT_EQ(a.gpu, embodied::PartId::kA100Pcie40);
  EXPECT_EQ(a.cpu, embodied::PartId::kEpyc7542);
  EXPECT_EQ(a.cpu_count, 4);  // Table 5: 4x EPYC 7542

  EXPECT_EQ(node_for(GpuArch::kPascal).name, "P100");
  EXPECT_EQ(node_for(GpuArch::kAmpere).name, "A100");
}

TEST(Node, DramModuleCount) {
  NodeConfig n = v100_node();
  n.dram_gb = 384;
  EXPECT_EQ(n.dram_module_count(), 6);  // 64 GB modules
  n.dram_gb = 100;
  EXPECT_EQ(n.dram_module_count(), 2);  // ceil
}

TEST(Node, ComputeScopeEmbodiedSumsCpusAndGpus) {
  const NodeConfig v = v100_node();
  const double expected =
      4 * embodied::embodied_of(embodied::PartId::kV100Sxm2_32)
              .total()
              .to_grams() +
      2 * embodied::embodied_of(embodied::PartId::kXeonGold6240R)
              .total()
              .to_grams();
  EXPECT_NEAR(node_embodied(v, EmbodiedScope::kComputeOnly).to_grams(),
              expected, 1e-6);
}

TEST(Node, FullScopeAddsDramAndSsd) {
  const NodeConfig v = v100_node();
  const double compute =
      node_embodied(v, EmbodiedScope::kComputeOnly).to_grams();
  const double full = node_embodied(v, EmbodiedScope::kFullNode).to_grams();
  const double dimm =
      embodied::embodied_of(embodied::PartId::kDram64GbDdr4).total().to_grams();
  const double ssd = embodied::embodied_of(embodied::PartId::kSsdNytro3530_3_2Tb)
                         .total()
                         .to_grams();
  EXPECT_NEAR(full - compute, 6 * dimm + ssd, 1e-6);
}

TEST(Node, NewerGenerationsCarryMoreEmbodiedCarbon) {
  const double p = node_embodied(p100_node()).to_grams();
  const double v = node_embodied(v100_node()).to_grams();
  const double a = node_embodied(a100_node()).to_grams();
  EXPECT_LT(p, v);
  EXPECT_LT(v, a);
}

TEST(Node, Fig4NodeScalesLinearlyInGpus) {
  // RQ 3: "the embodied carbon footprint increase is proportional to the
  // number of GPUs added".
  const double e1 =
      node_embodied(fig4_node(1), EmbodiedScope::kComputeOnly).to_grams();
  const double e2 =
      node_embodied(fig4_node(2), EmbodiedScope::kComputeOnly).to_grams();
  const double e4 =
      node_embodied(fig4_node(4), EmbodiedScope::kComputeOnly).to_grams();
  const double gpu =
      embodied::embodied_of(embodied::PartId::kV100Sxm2_32).total().to_grams();
  EXPECT_NEAR(e2 - e1, gpu, 1e-6);
  EXPECT_NEAR(e4 - e2, 2 * gpu, 1e-6);
}

TEST(Node, Fig4EmbodiedRatiosMatchPaper) {
  // 2 GPUs: +30-40%; 4 GPUs: ~2.2x (both normalized to the 1-GPU node).
  const double e1 =
      node_embodied(fig4_node(1), EmbodiedScope::kComputeOnly).to_grams();
  const double r2 =
      node_embodied(fig4_node(2), EmbodiedScope::kComputeOnly).to_grams() / e1;
  const double r4 =
      node_embodied(fig4_node(4), EmbodiedScope::kComputeOnly).to_grams() / e1;
  EXPECT_GT(r2, 1.30);
  EXPECT_LT(r2, 1.45);
  EXPECT_NEAR(r4, 2.24, 0.1);
}

TEST(Node, Fig4NodeRejectsBadGpuCounts) {
  EXPECT_THROW(fig4_node(0), Error);
  EXPECT_THROW(fig4_node(9), Error);
  EXPECT_NO_THROW(fig4_node(8));
}

TEST(Node, EmbodiedRequiresValidCounts) {
  NodeConfig n = v100_node();
  n.cpu_count = 0;
  EXPECT_THROW(node_embodied(n), Error);
}

TEST(Node, ArchNames) {
  EXPECT_STREQ(to_string(GpuArch::kPascal), "Pascal (P100)");
  EXPECT_STREQ(to_string(GpuArch::kAmpere), "Ampere (A100)");
}

}  // namespace
}  // namespace hpcarbon::hw
