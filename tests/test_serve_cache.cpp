#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "serve/cache.h"

namespace hpcarbon::serve {
namespace {

std::string fixture_path() {
  return std::string(HPCARBON_TEST_DATA_DIR) + "/sample_5min.csv";
}

TEST(ResultCache, HitMissAndCounters) {
  ResultCache cache(/*shards=*/2, /*byte_budget=*/1 << 16);
  EXPECT_EQ(cache.shard_count(), 2u);
  EXPECT_FALSE(cache.get(1, "k1").has_value());
  cache.put(1, "k1", "one");
  cache.put(2, "k2", "two");
  EXPECT_EQ(cache.get(1, "k1").value(), "one");
  EXPECT_EQ(cache.get(2, "k2").value(), "two");
  EXPECT_FALSE(cache.get(3, "k3").has_value());

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.inserts, 2u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, ResultCache::entry_cost("k1", "one") +
                         ResultCache::entry_cost("k2", "two"));
}

TEST(ResultCache, HashCollisionReadsAsMissNeverAsWrongAnswer) {
  // Two distinct canonical strings forced onto one 64-bit key: the
  // resident entry must not be served for the other question.
  ResultCache cache(1, 1 << 16);
  cache.put(42, "canonical-A", "answer-A");
  EXPECT_FALSE(cache.get(42, "canonical-B").has_value());
  EXPECT_EQ(cache.get(42, "canonical-A").value(), "answer-A");
  // A colliding put replaces the resident (latest canonical wins).
  cache.put(42, "canonical-B", "answer-B");
  EXPECT_EQ(cache.get(42, "canonical-B").value(), "answer-B");
  EXPECT_FALSE(cache.get(42, "canonical-A").has_value());
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, LruEvictionOrderUnderByteBudget) {
  // One shard, room for exactly three identical-cost entries.
  const std::string payload(100, 'x');
  const std::size_t budget = 3 * ResultCache::entry_cost("k1", payload);
  ResultCache cache(1, budget);
  cache.put(1, "k1", payload);
  cache.put(2, "k2", payload);
  cache.put(3, "k3", payload);
  EXPECT_EQ(cache.stats().entries, 3u);

  // Touch 1 so 2 becomes least-recently-used, then overflow with 4.
  EXPECT_TRUE(cache.get(1, "k1").has_value());
  cache.put(4, "k4", payload);
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.get(2, "k2").has_value());  // the LRU victim
  EXPECT_TRUE(cache.get(1, "k1").has_value());
  EXPECT_TRUE(cache.get(3, "k3").has_value());
  EXPECT_TRUE(cache.get(4, "k4").has_value());
  EXPECT_LE(cache.stats().bytes, budget);
}

TEST(ResultCache, UpdateAdjustsBytesAndRefreshesRecency) {
  const std::string small(10, 's');
  const std::string big(200, 'b');
  ResultCache cache(1, 1 << 16);
  cache.put(7, "k7", small);
  const std::size_t before = cache.stats().bytes;
  cache.put(7, "k7", big);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);  // replace, not insert
  EXPECT_EQ(cache.stats().bytes,
            before - ResultCache::entry_cost("k7", small) +
                ResultCache::entry_cost("k7", big));
  EXPECT_EQ(cache.get(7, "k7").value(), big);
}

TEST(ResultCache, OversizeValueIsNotCached) {
  ResultCache cache(1, 1 << 10);  // 1 KiB shard budget
  cache.put(1, "k1", "keep-me");
  cache.put(2, "k2", std::string(4096, 'z'));  // larger than the shard
  EXPECT_FALSE(cache.get(2, "k2").has_value());
  EXPECT_TRUE(cache.get(1, "k1").has_value());  // nothing evicted for it
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCache, RejectsDegenerateGeometry) {
  EXPECT_THROW(ResultCache(0, 1 << 20), Error);
  EXPECT_THROW(ResultCache(1024, 1024), Error);  // budget < overhead/shard
}

// The acceptance hammer: 8 threads against 8 shards, mixed get/put on a
// shared key space, under ASan/UBSan in CI. Counters must reconcile.
TEST(ResultCache, ShardIndependenceUnderThreadHammer) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  ResultCache cache(8, 64 << 10);
  std::atomic<std::uint64_t> gets{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 255));
        const std::string canonical = "canon-" + std::to_string(key);
        if (rng.bernoulli(0.5)) {
          cache.put(key, canonical, "value-" + std::to_string(key));
        } else {
          const auto v = cache.get(key, canonical);
          if (v.has_value()) {
            // Values are immutable per key: no torn reads under races.
            EXPECT_EQ(*v, "value-" + std::to_string(key));
          }
          gets.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, gets.load());
  EXPECT_LE(s.bytes, cache.byte_budget());
  EXPECT_LE(s.entries, 256u);
  EXPECT_GT(s.hits, 0u);

  // Exact ledger coherence, not just sanitizer silence: entries enter
  // only via insert and leave only via eviction, and the byte counter
  // must equal the summed cost of exactly the resident entries (probed
  // single-threaded after the hammer; probing moves hit/miss counters
  // but never bytes or entries).
  EXPECT_EQ(s.entries, s.inserts - s.evictions);
  std::size_t resident = 0;
  std::size_t resident_bytes = 0;
  for (std::uint64_t key = 0; key < 256; ++key) {
    const std::string canonical = "canon-" + std::to_string(key);
    if (cache.get(key, canonical).has_value()) {
      ++resident;
      resident_bytes +=
          ResultCache::entry_cost(canonical, "value-" + std::to_string(key));
    }
  }
  EXPECT_EQ(resident, s.entries);
  EXPECT_EQ(resident_bytes, s.bytes);

  // Shard-balance coherence: the per-shard occupancy arrays (the
  // hpcarbon_cache_shard_* gauges) must partition the totals exactly —
  // every entry lives in exactly one shard ledger.
  ASSERT_EQ(s.shard_entries.size(), 8u);
  ASSERT_EQ(s.shard_bytes.size(), 8u);
  std::size_t shard_entry_sum = 0;
  std::size_t shard_byte_sum = 0;
  for (std::size_t i = 0; i < s.shard_entries.size(); ++i) {
    shard_entry_sum += s.shard_entries[i];
    shard_byte_sum += s.shard_bytes[i];
    EXPECT_LE(s.shard_bytes[i], cache.byte_budget()) << "shard " << i;
  }
  EXPECT_EQ(shard_entry_sum, s.entries);
  EXPECT_EQ(shard_byte_sum, s.bytes);
}

TEST(TraceStore, PresetMatchesBatchGeneratorBitForBit) {
  TraceStore store;
  const auto eso = store.preset("ESO");
  const auto batch = grid::generate_traces({grid::eso()});
  ASSERT_EQ(eso->size(), batch[0].size());
  EXPECT_EQ(eso->values(), batch[0].values());
  EXPECT_EQ(eso->time_zone().utc_offset_hours(),
            batch[0].time_zone().utc_offset_hours());

  // Second lookup: same immutable object, counted as a hit.
  const auto again = store.preset("ESO");
  EXPECT_EQ(again.get(), eso.get());
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(TraceStore, ImportedParsesOnceAndCachesTheNote) {
  TraceStore store;
  std::string note1, note2;
  const auto a = store.imported("ESO", fixture_path(), &note1);
  const auto b = store.imported("ESO", fixture_path(), &note2);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(note1, note2);
  EXPECT_NE(note1.find("ESO <- "), std::string::npos);
  EXPECT_NE(note1.find("105120 samples"), std::string::npos) << note1;
  EXPECT_EQ(a->step_seconds(), 300.0);

  // Same path under a different region code is a distinct trace (zone
  // tagging differs).
  const auto c = store.imported("CISO", fixture_path());
  EXPECT_NE(c.get(), a.get());
  EXPECT_EQ(store.size(), 2u);

  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.misses(), 0u);
}

TEST(TraceStore, ImportCapEvictsLeastRecentlyUsedImportOnly) {
  TraceStore store;
  store.set_max_imports(2);
  EXPECT_EQ(store.max_imports(), 2u);
  const auto preset = store.preset("ESO");  // never evicted
  const auto a = store.imported("ESO", fixture_path());
  const auto b = store.imported("CISO", fixture_path());
  EXPECT_EQ(store.size(), 3u);

  // Touch `a` so the CISO import is the LRU victim when KN arrives.
  store.imported("ESO", fixture_path());
  store.imported("KN", fixture_path());
  EXPECT_EQ(store.size(), 3u);  // preset + 2 imports, CISO dropped

  // The evicted trace's holders are unaffected; re-requesting re-parses.
  EXPECT_EQ(b->region_code(), "CISO");
  const std::uint64_t misses_before = store.misses();
  const auto b2 = store.imported("CISO", fixture_path());
  EXPECT_EQ(store.misses(), misses_before + 1);
  EXPECT_EQ(b2->values(), b->values());
  // Presets survive any import churn.
  EXPECT_EQ(store.preset("ESO").get(), preset.get());
}

TEST(TraceStore, UnknownCodeAndMissingFileThrow) {
  TraceStore store;
  EXPECT_THROW(store.preset("ATLANTIS"), Error);
  EXPECT_THROW(store.imported("ATLANTIS", fixture_path()), Error);
  EXPECT_THROW(store.imported("ESO", "/no/such/file.csv"), Error);
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace hpcarbon::serve
