#include "workload/model.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace hpcarbon::workload {
namespace {

TEST(Workload, Table4SuiteRoster) {
  EXPECT_EQ(all_suites().size(), 3u);
  EXPECT_EQ(models(Suite::kNlp).size(), 5u);
  EXPECT_EQ(models(Suite::kVision).size(), 5u);
  EXPECT_EQ(models(Suite::kCandle).size(), 5u);
  EXPECT_EQ(all_models().size(), 15u);
}

TEST(Workload, Table4ModelNames) {
  // NLP: BERT, DistilBERT, MPNet, RoBERTa, BART.
  for (const char* name :
       {"BERT", "DistilBERT", "MPNet", "RoBERTa", "BART"}) {
    EXPECT_EQ(model_by_name(name).suite, Suite::kNlp) << name;
  }
  for (const char* name :
       {"ResNet50", "ResNeXt50", "ShuffleNetV2", "VGG19", "ViT"}) {
    EXPECT_EQ(model_by_name(name).suite, Suite::kVision) << name;
  }
  for (const char* name : {"Combo", "NT3", "P1B1", "ST1", "TC1"}) {
    EXPECT_EQ(model_by_name(name).suite, Suite::kCandle) << name;
  }
  EXPECT_THROW(model_by_name("GPT-7"), Error);
}

TEST(Workload, SuiteNames) {
  EXPECT_STREQ(to_string(Suite::kNlp), "NLP");
  EXPECT_STREQ(to_string(Suite::kVision), "Vision");
  EXPECT_STREQ(to_string(Suite::kCandle), "CANDLE");
}

TEST(Workload, ArchFactorsMonotonic) {
  // Every benchmark is faster on Volta than Pascal and on Ampere than Volta.
  for (const auto* m : all_models()) {
    EXPECT_GT(m->volta_factor, 1.0) << m->name;
    EXPECT_GT(m->ampere_factor, m->volta_factor) << m->name;
  }
}

TEST(Workload, SuiteAverageImprovementsMatchTable6) {
  // Table 6 via per-model factors: improvement = 1 - mean(1/factor).
  auto avg_improvement = [](Suite s, auto factor_of) {
    double acc = 0;
    for (const auto& m : models(s)) acc += 1.0 / factor_of(m);
    return 100.0 * (1.0 - acc / 5.0);
  };
  auto volta = [](const BenchmarkModel& m) { return m.volta_factor; };
  auto ampere = [](const BenchmarkModel& m) { return m.ampere_factor; };
  auto va = [](const BenchmarkModel& m) {
    return m.ampere_factor / m.volta_factor;
  };
  // P100 -> V100: 44.4 / 41.2 / 45.5 %.
  EXPECT_NEAR(avg_improvement(Suite::kNlp, volta), 44.4, 1.0);
  EXPECT_NEAR(avg_improvement(Suite::kVision, volta), 41.2, 1.0);
  EXPECT_NEAR(avg_improvement(Suite::kCandle, volta), 45.5, 1.0);
  // P100 -> A100: 59.0 / 60.2 / 68.3 %.
  EXPECT_NEAR(avg_improvement(Suite::kNlp, ampere), 59.0, 1.0);
  EXPECT_NEAR(avg_improvement(Suite::kVision, ampere), 60.2, 1.0);
  EXPECT_NEAR(avg_improvement(Suite::kCandle, ampere), 68.3, 1.0);
  // V100 -> A100: 25.6 / 35.8 / 44.4 %.
  EXPECT_NEAR(avg_improvement(Suite::kNlp, va), 25.6, 1.0);
  EXPECT_NEAR(avg_improvement(Suite::kVision, va), 35.8, 1.0);
  EXPECT_NEAR(avg_improvement(Suite::kCandle, va), 44.4, 1.0);
}

TEST(Workload, CandleAlwaysImprovesTheMost) {
  // "the CANDLE benchmark demonstrated greater performance improvements
  //  than the other two benchmarks across all three upgrade options".
  using FactorFn = double (*)(const BenchmarkModel&);
  auto improvement = [](Suite s, FactorFn factor_of) {
    double acc = 0;
    for (const auto& m : models(s)) acc += 1.0 / factor_of(m);
    return 1.0 - acc / 5.0;
  };
  const FactorFn factors[] = {
      [](const BenchmarkModel& m) { return m.volta_factor; },
      [](const BenchmarkModel& m) { return m.ampere_factor; },
      [](const BenchmarkModel& m) { return m.ampere_factor / m.volta_factor; },
  };
  for (FactorFn factor : factors) {
    EXPECT_GT(improvement(Suite::kCandle, factor),
              improvement(Suite::kNlp, factor));
    EXPECT_GT(improvement(Suite::kCandle, factor),
              improvement(Suite::kVision, factor));
  }
}

TEST(Workload, CommOverheadsNonNegative) {
  for (const auto* m : all_models()) {
    EXPECT_GE(m->ring_overhead, 0.0) << m->name;
    EXPECT_GE(m->sync_overhead, 0.0) << m->name;
    EXPECT_GT(m->base_p100_samples_per_s, 0.0) << m->name;
    EXPECT_GT(m->params_millions, 0.0) << m->name;
    EXPECT_GT(m->batch_per_gpu, 0) << m->name;
    EXPECT_GT(m->gpu_power_utilization, 0.5) << m->name;
    EXPECT_LE(m->gpu_power_utilization, 1.0) << m->name;
  }
}

TEST(Workload, RingOverheadTracksParameterCountWithinNlp) {
  // BART (406M params) must have the largest allreduce cost of the NLP set;
  // DistilBERT (66M) the smallest.
  const auto& bart = model_by_name("BART");
  const auto& distil = model_by_name("DistilBERT");
  for (const auto& m : models(Suite::kNlp)) {
    EXPECT_LE(m.ring_overhead, bart.ring_overhead) << m.name;
    EXPECT_GE(m.ring_overhead, distil.ring_overhead) << m.name;
  }
}

}  // namespace
}  // namespace hpcarbon::workload
