#include "op/attribution.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "hw/perf.h"

namespace hpcarbon::op {
namespace {

grid::CarbonIntensityTrace constant_trace(double v) {
  return grid::CarbonIntensityTrace(
      "X", kUtc, std::vector<double>(kHoursPerYear, v));
}

TEST(Attribution, FullServiceLifeAttributesAllEmbodiedCarbon) {
  const auto node = hw::v100_node();
  AmortizationPolicy policy;
  const Hours lifetime_busy =
      Hours::hours(policy.service_life_years * 8760.0 *
                   policy.expected_utilization);
  const Mass attributed = amortized_embodied(node, lifetime_busy, policy);
  EXPECT_NEAR(attributed.to_grams(),
              hw::node_embodied(node).to_grams(),
              hw::node_embodied(node).to_grams() * 1e-9);
}

TEST(Attribution, LinearInBusyTime) {
  const auto node = hw::a100_node();
  const Mass one = amortized_embodied(node, Hours::hours(10));
  const Mass two = amortized_embodied(node, Hours::hours(20));
  EXPECT_NEAR(two.to_grams(), 2.0 * one.to_grams(), 1e-9);
  EXPECT_DOUBLE_EQ(amortized_embodied(node, Hours::hours(0)).to_grams(), 0.0);
}

TEST(Attribution, ShorterLifeOrLowerUtilizationRaisesTheRate) {
  const auto node = hw::v100_node();
  AmortizationPolicy base;
  AmortizationPolicy short_life;
  short_life.service_life_years = 3.0;
  AmortizationPolicy idle;
  idle.expected_utilization = 0.2;
  EXPECT_GT(embodied_rate_g_per_hour(node, short_life),
            embodied_rate_g_per_hour(node, base));
  EXPECT_GT(embodied_rate_g_per_hour(node, idle),
            embodied_rate_g_per_hour(node, base));
}

TEST(Attribution, BilledTrainingCombinesBothTerms) {
  const auto trace = constant_trace(200.0);
  Tracker tracker(trace, HourOfYear(0));
  const auto node = hw::v100_node();
  const auto& bert = workload::model_by_name("BERT");
  const double samples = hw::throughput(bert, node) * 3600.0;  // 1 h job
  const auto bill = billed_training(tracker, node, bert, samples);
  EXPECT_NEAR(bill.embodied_share.to_grams(),
              embodied_rate_g_per_hour(node), 1.0);  // ~1 busy hour
  EXPECT_GT(bill.operational.carbon.to_grams(), 0.0);
  EXPECT_NEAR(bill.total().to_grams(),
              bill.operational.carbon.to_grams() +
                  bill.embodied_share.to_grams(),
              1e-9);
  EXPECT_GT(bill.embodied_fraction(), 0.0);
  EXPECT_LT(bill.embodied_fraction(), 1.0);
}

TEST(Attribution, PartialNodeJobsPayProportionally) {
  const auto trace = constant_trace(200.0);
  Tracker tracker(trace, HourOfYear(0));
  const auto node = hw::v100_node();
  const auto& bert = workload::model_by_name("BERT");
  // Same wall-clock duration on 1 vs 4 GPUs: bill 1/4 vs 4/4 of the node.
  const double hour_samples_1 = hw::throughput(bert, node, 1) * 3600.0;
  const double hour_samples_4 = hw::throughput(bert, node, 4) * 3600.0;
  const auto b1 =
      billed_training(tracker, node, bert, hour_samples_1, {}, 1);
  const auto b4 =
      billed_training(tracker, node, bert, hour_samples_4, {}, 4);
  EXPECT_NEAR(b4.embodied_share.to_grams() / b1.embodied_share.to_grams(),
              4.0, 1e-6);
}

TEST(Attribution, EmbodiedFractionGrowsAsGridsDecarbonize) {
  // The accounting version of Observation 5's implication: on hydro the
  // embodied share dominates the job's bill.
  const auto dirty = constant_trace(500.0);
  const auto hydro = constant_trace(20.0);
  const auto node = hw::a100_node();
  const auto& vit = workload::model_by_name("ViT");
  const double samples = 1e6;
  Tracker td(dirty, HourOfYear(0)), th(hydro, HourOfYear(0));
  const auto bd = billed_training(td, node, vit, samples);
  const auto bh = billed_training(th, node, vit, samples);
  EXPECT_NEAR(bd.embodied_share.to_grams(), bh.embodied_share.to_grams(),
              1e-6);
  // 20 g/kWh hydro: embodied ~18% of the bill; 500 g/kWh coal: ~1%.
  EXPECT_GT(bh.embodied_fraction(), 0.15);
  EXPECT_LT(bd.embodied_fraction(), 0.05);
  EXPECT_GT(bh.embodied_fraction(), 10.0 * bd.embodied_fraction());
}

TEST(Attribution, Validation) {
  const auto node = hw::v100_node();
  AmortizationPolicy bad;
  bad.service_life_years = 0;
  EXPECT_THROW(embodied_rate_g_per_hour(node, bad), Error);
  bad = AmortizationPolicy{};
  bad.expected_utilization = 0;
  EXPECT_THROW(embodied_rate_g_per_hour(node, bad), Error);
  bad.expected_utilization = 1.5;
  EXPECT_THROW(embodied_rate_g_per_hour(node, bad), Error);
  EXPECT_THROW(amortized_embodied(node, Hours::hours(-1)), Error);
}

}  // namespace
}  // namespace hpcarbon::op
