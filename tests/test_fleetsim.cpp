// Fleet-simulator suite: the integer-tick engine must be a bit-identical
// drop-in for sched::SchedulingEngine on tick-aligned workloads.
//
// The parity argument: kTicksPerHour is a power of two, so every tick
// converts to an exact double, sums of tick-quantized hours are exact FP
// arithmetic, and the (epsilon-free) SchedulingEngine therefore walks the
// identical event sequence on the quantized doubles that FleetEngine
// walks on the ticks. Both engines then evaluate the same accounting
// expressions on the same doubles — metrics, per-job outcomes, and ledger
// balances match bitwise, for every registered policy. These tests pin
// exactly that (EXPECT_EQ on doubles, not a tolerance).
#include "fleetsim/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/thread_pool.h"
#include "fleetsim/jobs.h"
#include "fleetsim/uncertainty.h"
#include "fleetsim/workload.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "sched/engine.h"
#include "sched/policy.h"
#include "sched/workload_gen.h"

namespace hpcarbon::fleetsim {
namespace {

// Same paper trio the engine/policy suite uses: ERCOT home, ESO + CISO
// remote (generate_traces returns fig7_regions order ESO, CISO, ERCOT).
std::vector<sched::Site> fig7_sites(int capacity = 32) {
  const auto traces = grid::generate_traces(grid::fig7_regions());
  return {sched::make_site("ERCOT", traces[2], capacity),
          sched::make_site("ESO", traces[0], capacity),
          sched::make_site("CISO", traces[1], capacity)};
}

/// Snap a double-based workload onto the tick grid, the precondition for
/// bit-identical parity (continuous submit times are not representable in
/// either engine's event maths identically otherwise).
std::vector<sched::Job> quantized(std::vector<sched::Job> jobs) {
  for (auto& j : jobs) {
    j.submit_hour = hours_of(nearest_tick(j.submit_hour));
    j.duration_hours =
        hours_of(std::max<Tick>(1, nearest_tick(j.duration_hours)));
  }
  return jobs;
}

std::vector<sched::Job> seeded_quantized_jobs() {
  sched::WorkloadParams wp;
  wp.horizon_hours = 24 * 10;
  wp.arrival_rate_per_hour = 2.0;
  wp.seed = 31337;
  return quantized(sched::generate_jobs(wp));
}

sched::PolicyConfig tuned_config() {
  sched::PolicyConfig cfg;
  cfg.ci_threshold_g_per_kwh = 320;
  cfg.max_delay_hours = 12;
  cfg.user_budget = Mass::kilograms(150);
  cfg.burn_cap_g_per_hour = 4000;
  return cfg;
}

void expect_metrics_bitwise(const sched::ScheduleMetrics& a,
                            const sched::ScheduleMetrics& b,
                            const std::string& label) {
  EXPECT_EQ(a.total_carbon.to_grams(), b.total_carbon.to_grams()) << label;
  EXPECT_EQ(a.transfer_carbon.to_grams(), b.transfer_carbon.to_grams())
      << label;
  EXPECT_EQ(a.total_energy.to_kwh(), b.total_energy.to_kwh()) << label;
  EXPECT_EQ(a.mean_wait_hours, b.mean_wait_hours) << label;
  EXPECT_EQ(a.p95_wait_hours, b.p95_wait_hours) << label;
  EXPECT_EQ(a.utilization, b.utilization) << label;
  EXPECT_EQ(a.jobs_completed, b.jobs_completed) << label;
  EXPECT_EQ(a.remote_dispatches, b.remote_dispatches) << label;
}

TEST(FleetTicks, ConversionsAreExact) {
  EXPECT_EQ(hours_of(0), 0.0);
  EXPECT_EQ(hours_of(kTicksPerHour), 1.0);
  EXPECT_EQ(hours_of(kTicksPerHour / 2), 0.5);
  // Round-trip: any tick-aligned value survives double conversion.
  for (Tick t : {Tick{1}, Tick{3}, Tick{1023}, Tick{123456789}}) {
    EXPECT_EQ(nearest_tick(hours_of(t)), t);
    EXPECT_TRUE(tick_aligned(hours_of(t)));
  }
  EXPECT_FALSE(tick_aligned(0.1));  // 0.1 h is not on a 1/1024 grid
  EXPECT_EQ(ceil_tick(1.0), kTicksPerHour);
  EXPECT_EQ(ceil_tick(hours_of(5) + 1e-9), Tick{6});
}

// The tentpole contract: every registered policy produces bit-identical
// metrics, outcomes, and ledger balances through both engines on the
// paper trio.
TEST(FleetParity, AllRegistryPoliciesBitIdentical) {
  const auto sites = fig7_sites();
  const HourOfYear epoch(3624);  // June 1, as the scheduler suite uses
  const auto jobs = seeded_quantized_jobs();
  ASSERT_GT(jobs.size(), 200u);
  const FleetJobs fleet_jobs = FleetJobs::from_jobs(jobs);
  const sched::PolicyConfig cfg = tuned_config();

  sched::SchedulingEngine oracle(sites, epoch);
  const FleetEngine fleet(sites, epoch);

  for (const auto& desc : sched::registered_policies()) {
    std::vector<sched::JobOutcome> oracle_outcomes;
    sched::CarbonBudgetLedger oracle_ledger;
    const auto oracle_policy = desc.make(cfg);
    const auto expected =
        oracle.run(jobs, *oracle_policy, &oracle_outcomes, &oracle_ledger);

    FleetOutcomes outcomes;
    sched::CarbonBudgetLedger ledger;
    const auto fleet_policy = desc.make(cfg);
    const auto got = fleet.run(fleet_jobs, *fleet_policy, &outcomes, &ledger);

    expect_metrics_bitwise(expected, got, desc.name);
    ASSERT_EQ(outcomes.size(), oracle_outcomes.size()) << desc.name;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      EXPECT_EQ(outcomes.job_id[i], oracle_outcomes[i].job_id) << desc.name;
      EXPECT_EQ(sites[outcomes.site[i]].code, oracle_outcomes[i].site)
          << desc.name;
      EXPECT_EQ(hours_of(outcomes.start[i]), oracle_outcomes[i].start_hour)
          << desc.name;
      EXPECT_EQ(outcomes.wait_hours[i], oracle_outcomes[i].wait_hours)
          << desc.name;
      EXPECT_EQ(outcomes.carbon_g[i], oracle_outcomes[i].carbon.to_grams())
          << desc.name;
    }
    for (const auto& user : fleet_jobs.users) {
      EXPECT_EQ(ledger.spent(user).to_grams(),
                oracle_ledger.spent(user).to_grams())
          << desc.name << " user " << user;
      EXPECT_EQ(ledger.allocation(user).to_grams(),
                oracle_ledger.allocation(user).to_grams())
          << desc.name << " user " << user;
    }
  }
}

// Congested parity: capacity small enough that queues build and the
// hourly-tick / planned-start wake sources all fire.
TEST(FleetParity, CongestedTrioStaysBitIdentical) {
  const auto sites = fig7_sites(/*capacity=*/4);
  const HourOfYear epoch(3624);
  const auto jobs = seeded_quantized_jobs();
  const FleetJobs fleet_jobs = FleetJobs::from_jobs(jobs);

  sched::SchedulingEngine oracle(sites, epoch);
  const FleetEngine fleet(sites, epoch);
  for (const char* name : {"greedy-lowest-ci", "threshold-delay",
                           "forecast-delay", "renewable-cap"}) {
    const auto p1 = sched::make_policy(name);
    const auto p2 = sched::make_policy(name);
    expect_metrics_bitwise(oracle.run(jobs, *p1), fleet.run(fleet_jobs, *p2),
                           name);
  }
}

// Tie-heavy parity: bursty workloads submit whole batches at one tick, so
// FCFS order within a tick must be deterministic in BOTH engines. This is
// the regression test for SchedulingEngine's former std::sort (unstable:
// equal submit times could permute, changing dispatch order and therefore
// the FP summation order under congestion).
TEST(FleetParity, SameTickSubmissionsStayBitIdentical) {
  const auto sites = fig7_sites(/*capacity=*/8);
  const HourOfYear epoch(3624);
  FleetWorkloadParams p;
  p.process = ArrivalProcess::kBursty;
  p.horizon_hours = 24 * 10;
  p.rate_per_hour = 6.0;
  p.burst_mean_size = 12.0;
  const FleetJobs fleet_jobs = generate_fleet_jobs(p);
  ASSERT_GT(fleet_jobs.size(), 500u);

  sched::SchedulingEngine oracle(sites, epoch);
  const FleetEngine fleet(sites, epoch);
  for (const char* name : {"fcfs-local", "greedy-lowest-ci"}) {
    const auto p1 = sched::make_policy(name);
    const auto p2 = sched::make_policy(name);
    expect_metrics_bitwise(oracle.run(fleet_jobs.to_jobs(), *p1),
                           fleet.run(fleet_jobs, *p2), name);
  }
}

TEST(FleetEngineBasics, EmptyFleetYieldsZeroMetrics) {
  const FleetEngine fleet(fig7_sites(), HourOfYear(0));
  const auto policy = sched::make_policy("fcfs-local");
  FleetOutcomes outcomes;
  const auto m = fleet.run(FleetJobs{}, *policy, &outcomes);
  EXPECT_EQ(m.jobs_completed, 0);
  EXPECT_EQ(m.total_carbon.to_grams(), 0.0);
  EXPECT_EQ(outcomes.size(), 0u);
}

TEST(FleetEngineBasics, ValidateRejectsBrokenVectors) {
  FleetJobs jobs;
  jobs.push(0, 10, 5, Power::kilowatts(1.0), "a");
  jobs.push(1, 5, 5, Power::kilowatts(1.0), "a");  // out of order
  EXPECT_THROW(jobs.validate(), Error);

  FleetJobs zero_dur;
  zero_dur.push(0, 0, 0, Power::kilowatts(1.0), "a");
  EXPECT_THROW(zero_dur.validate(), Error);

  FleetJobs ragged;
  ragged.push(0, 0, 1, Power::kilowatts(1.0), "a");
  ragged.submit.push_back(7);  // desync the parallel vectors
  EXPECT_THROW(ragged.validate(), Error);
}

TEST(FleetWorkload, GenerationIsDeterministicPerSeedAndProcess) {
  FleetWorkloadParams p;
  p.horizon_hours = 24 * 7;
  p.rate_per_hour = 6.0;
  for (const auto process : {ArrivalProcess::kPoisson, ArrivalProcess::kDiurnal,
                             ArrivalProcess::kBursty}) {
    p.process = process;
    const FleetJobs a = generate_fleet_jobs(p);
    const FleetJobs b = generate_fleet_jobs(p);
    ASSERT_GT(a.size(), 100u) << to_string(process);
    EXPECT_EQ(a.submit, b.submit) << to_string(process);
    EXPECT_EQ(a.duration, b.duration) << to_string(process);
    EXPECT_EQ(a.user, b.user) << to_string(process);
    a.validate();
    // The long-run rate is preserved within sampling noise (20%).
    const double expected = p.rate_per_hour * p.horizon_hours;
    EXPECT_NEAR(static_cast<double>(a.size()), expected, 0.2 * expected)
        << to_string(process);
  }
  p.process = ArrivalProcess::kPoisson;
  p.seed = 777;
  const FleetJobs other_seed = generate_fleet_jobs(p);
  p.seed = 2024;
  const FleetJobs base = generate_fleet_jobs(p);
  EXPECT_NE(base.submit, other_seed.submit);
}

TEST(FleetWorkload, AttributeStreamIsSharedAcrossProcesses) {
  // Substream separation: the duration draw sequence depends only on the
  // seed, not on which arrival process consumed the arrival stream.
  FleetWorkloadParams p;
  p.horizon_hours = 24 * 7;
  p.rate_per_hour = 6.0;
  p.process = ArrivalProcess::kPoisson;
  const FleetJobs poisson = generate_fleet_jobs(p);
  p.process = ArrivalProcess::kDiurnal;
  const FleetJobs diurnal = generate_fleet_jobs(p);
  const std::size_t n = std::min(poisson.size(), diurnal.size());
  ASSERT_GT(n, 100u);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(poisson.duration[i], diurnal.duration[i]) << i;
    ASSERT_EQ(poisson.user[i], diurnal.user[i]) << i;
  }
}

TEST(FleetWorkload, DiurnalConcentratesArrivalsAroundPeak) {
  FleetWorkloadParams p;
  p.process = ArrivalProcess::kDiurnal;
  p.horizon_hours = 24 * 28;
  p.rate_per_hour = 8.0;
  p.diurnal_amplitude = 0.9;
  const FleetJobs jobs = generate_fleet_jobs(p);
  std::size_t near_peak = 0;
  std::size_t near_trough = 0;
  for (const Tick t : jobs.submit) {
    const double hour_of_day = std::fmod(hours_of(t), 24.0);
    if (std::abs(hour_of_day - p.diurnal_peak_hour) <= 3) ++near_peak;
    const double trough = std::fmod(p.diurnal_peak_hour + 12.0, 24.0);
    if (std::abs(hour_of_day - trough) <= 3) ++near_trough;
  }
  EXPECT_GT(near_peak, 2 * near_trough);
}

TEST(FleetWorkload, BurstyBatchesShareSubmitTicks) {
  FleetWorkloadParams p;
  p.process = ArrivalProcess::kBursty;
  p.horizon_hours = 24 * 14;
  p.rate_per_hour = 8.0;
  p.burst_mean_size = 8.0;
  const FleetJobs jobs = generate_fleet_jobs(p);
  ASSERT_GT(jobs.size(), 200u);
  // Far fewer distinct submit ticks than jobs: batches land together.
  std::vector<Tick> distinct(jobs.submit);
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  EXPECT_LT(distinct.size() * 3, jobs.size());
}

std::string data_path(const std::string& name) {
  return std::string(HPCARBON_TEST_DATA_DIR) + "/" + name;
}

TEST(FleetReplay, SampleFixtureLoadsAndRuns) {
  std::vector<std::int32_t> origin;
  const FleetJobs jobs =
      load_jobs_csv(data_path("jobs_sample.csv"), /*site_count=*/3, &origin);
  ASSERT_EQ(jobs.size(), 12u);
  jobs.validate();
  ASSERT_EQ(origin.size(), 12u);
  // Sorted by submit; ids preserve the file's row order.
  EXPECT_EQ(jobs.id[0], 0);
  EXPECT_EQ(hours_of(jobs.submit[0]), 0.0);
  EXPECT_EQ(hours_of(jobs.submit[11]), 24.0);
  EXPECT_EQ(hours_of(jobs.duration[0]), 2.5);
  EXPECT_EQ(jobs.users[jobs.user[0]], "alice");
  EXPECT_EQ(origin[1], 1);  // bob's 0.25h job came from site 1
  EXPECT_EQ(jobs.power[0].to_kilowatts(), Power::kilowatts(1.2).to_kilowatts());

  const FleetEngine fleet(fig7_sites(), HourOfYear(3624));
  const auto policy = sched::make_policy("greedy-lowest-ci");
  const auto m = fleet.run(jobs, *policy);
  EXPECT_EQ(m.jobs_completed, 12);
  EXPECT_GT(m.total_carbon.to_grams(), 0.0);
}

TEST(FleetReplay, ReplayedFixtureMatchesSchedulingEngine) {
  // Replayed traces go through the same parity contract as synthetic
  // workloads: the fixture's times are tick-aligned, so both engines
  // must agree bitwise.
  const FleetJobs jobs = load_jobs_csv(data_path("jobs_sample.csv"), 3);
  const auto sites = fig7_sites();
  sched::SchedulingEngine oracle(sites, HourOfYear(3624));
  const FleetEngine fleet(sites, HourOfYear(3624));
  const auto p1 = sched::make_policy("net-benefit");
  const auto p2 = sched::make_policy("net-benefit");
  expect_metrics_bitwise(oracle.run(jobs.to_jobs(), *p1),
                         fleet.run(jobs, *p2), "replay");
}

void expect_rejects(const std::string& csv, const std::string& needle,
                    std::size_t site_count = 3) {
  try {
    parse_jobs_csv(csv, site_count);
    FAIL() << "expected rejection mentioning '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(FleetReplay, RejectionsCarryLineNumbers) {
  const std::string header = "submit_hours,duration_hours,power_kw,user\n";
  // Ragged row (line number from the raw CSV layer).
  expect_rejects(header + "0,1,1,alice\n2,1,1\n", "ragged CSV row 3");
  // Negative / zero durations.
  expect_rejects(header + "0,-2,1,alice\n", "duration_hours must be positive (line 2)");
  expect_rejects(header + "0,1,1,alice\n1,0,1,bob\n", "line 3");
  // Negative submit, bad number, empty user.
  expect_rejects(header + "-1,1,1,alice\n", "negative submit_hours (line 2)");
  expect_rejects(header + "0,abc,1,alice\n", "non-numeric duration_hours");
  expect_rejects(header + "0,1,1,\n", "empty user (line 2)");
  // Out-of-range or fractional site, against site_count=3.
  const std::string h5 = "submit_hours,duration_hours,power_kw,user,site\n";
  expect_rejects(h5 + "0,1,1,alice,3\n", "site must be an integer in [0, 3) (line 2)");
  expect_rejects(h5 + "0,1,1,alice,-1\n", "line 2");
  expect_rejects(h5 + "0,1,1,alice,1.5\n", "line 2");
  // Header itself must match.
  expect_rejects("a,b,c,d\n0,1,1,alice\n", "header must be");
}

TEST(FleetUncertainty, SavingsDistributionIsThreadCountBitIdentical) {
  const FleetEngine fleet(fig7_sites(), HourOfYear(3624));
  FleetWorkloadParams wp;
  wp.horizon_hours = 24 * 3;
  wp.rate_per_hour = 2.0;
  ThreadPool one(1);
  ThreadPool four(4);
  const auto d1 = fleet_savings_distribution(fleet, wp, "greedy-lowest-ci",
                                             {16, 99, &one});
  const auto d4 = fleet_savings_distribution(fleet, wp, "greedy-lowest-ci",
                                             {16, 99, &four});
  EXPECT_EQ(d1.samples(), d4.samples());
  EXPECT_EQ(d1.p50(), d4.p50());
  EXPECT_EQ(d1.p05(), d4.p05());
  EXPECT_EQ(d1.p95(), d4.p95());
}

}  // namespace
}  // namespace hpcarbon::fleetsim
