#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hpcarbon {
namespace {

// Pin the global pool to 4 workers before its first use, so the nested
// parallel_for tests exercise real cross-thread nesting even on the
// single-core CI runners where hardware_concurrency() is 1.
[[maybe_unused]] const bool g_pool_size_pinned = [] {
  ThreadPool::set_global_threads(4);
  return true;
}();

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  pool.parallel_for(7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(0, 10, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::global().parallel_for(0, 10,
                                    [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
  EXPECT_EQ(ThreadPool::global().size(), 4u);  // pinned above
}

TEST(ThreadPool, NestedParallelForOnSamePoolDoesNotDeadlock) {
  // Regression: a parallel_for issued from inside a pool worker used to
  // submit chunks back to the same (fully busy) pool and block on them.
  // The nested call must run inline instead.
  std::atomic<int> counter{0};
  ThreadPool::global().parallel_for(0, 8, [&](std::size_t) {
    ThreadPool::global().parallel_for(0, 100,
                                      [&](std::size_t) { ++counter; });
  });
  EXPECT_EQ(counter.load(), 800);
}

TEST(ThreadPool, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 4,
                        [&](std::size_t) {
                          pool.parallel_for(0, 10, [](std::size_t i) {
                            if (i == 7) throw std::runtime_error("inner");
                          });
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(0, 10000, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
}

}  // namespace
}  // namespace hpcarbon
