#include "sched/budget.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace hpcarbon::sched {
namespace {

TEST(Budget, AllocationAndCharge) {
  CarbonBudgetLedger ledger;
  ledger.set_allocation("alice", Mass::kilograms(100));
  EXPECT_DOUBLE_EQ(ledger.allocation("alice").to_kilograms(), 100.0);
  EXPECT_DOUBLE_EQ(ledger.spent("alice").to_grams(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.remaining_fraction("alice"), 1.0);

  ledger.charge("alice", Mass::kilograms(25));
  EXPECT_DOUBLE_EQ(ledger.spent("alice").to_kilograms(), 25.0);
  EXPECT_DOUBLE_EQ(ledger.remaining_fraction("alice"), 0.75);
  EXPECT_FALSE(ledger.is_overdrawn("alice"));
}

TEST(Budget, OverdraftDetected) {
  CarbonBudgetLedger ledger;
  ledger.set_allocation("bob", Mass::kilograms(10));
  ledger.charge("bob", Mass::kilograms(15));
  EXPECT_LT(ledger.remaining_fraction("bob"), 0.0);
  EXPECT_TRUE(ledger.is_overdrawn("bob"));
}

TEST(Budget, UnknownUserTreatedAsSpent) {
  CarbonBudgetLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.remaining_fraction("nobody"), 0.0);
  EXPECT_DOUBLE_EQ(ledger.allocation("nobody").to_grams(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.spent("nobody").to_grams(), 0.0);
}

TEST(Budget, ChargesAccumulate) {
  CarbonBudgetLedger ledger;
  ledger.set_allocation("carol", Mass::kilograms(100));
  for (int i = 0; i < 10; ++i) ledger.charge("carol", Mass::kilograms(5));
  EXPECT_DOUBLE_EQ(ledger.spent("carol").to_kilograms(), 50.0);
  EXPECT_DOUBLE_EQ(ledger.remaining_fraction("carol"), 0.5);
}

TEST(Budget, PriorityRanksEconomicalUsersFirst) {
  // The paper's incentive: economical users "could be prioritized to reduce
  // their queue wait time".
  CarbonBudgetLedger ledger;
  ledger.set_allocation("thrifty", Mass::kilograms(100));
  ledger.set_allocation("spender", Mass::kilograms(100));
  ledger.charge("thrifty", Mass::kilograms(10));
  ledger.charge("spender", Mass::kilograms(90));
  EXPECT_GT(ledger.priority("thrifty"), ledger.priority("spender"));
}

TEST(Budget, Validation) {
  CarbonBudgetLedger ledger;
  EXPECT_THROW(ledger.set_allocation("x", Mass::grams(-1)), Error);
  EXPECT_THROW(ledger.charge("x", Mass::grams(-1)), Error);
}

TEST(Budget, ZeroAllocationIsFullySpent) {
  CarbonBudgetLedger ledger;
  ledger.set_allocation("zero", Mass::grams(0));
  EXPECT_DOUBLE_EQ(ledger.remaining_fraction("zero"), 0.0);
}

}  // namespace
}  // namespace hpcarbon::sched
