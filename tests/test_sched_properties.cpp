// Property sweeps over every registered scheduler policy (TEST_P):
// regardless of policy, the engine must conserve work, account energy
// consistently, stay deterministic, and never beat a clairvoyant lower
// bound. The sweep enumerates the string-keyed policy registry, so a newly
// registered policy is property-tested with no edits here.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/stats.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "sched/simulator.h"
#include "sched/workload_gen.h"

namespace hpcarbon::sched {
namespace {

class PolicySweep : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    // Generous capacity: even Poisson bursts never exhaust a site, so
    // policy behaviour (not queueing) is what every property observes.
    const auto traces = grid::generate_traces(grid::fig7_regions());
    sites_ = new std::vector<Site>{make_site("ERCOT", traces[2], 64),
                                   make_site("ESO", traces[0], 64),
                                   make_site("CISO", traces[1], 64)};
    WorkloadParams wp;
    wp.horizon_hours = 24 * 10;
    // Offered load ~8.4 concurrent vs 12 home slots: queueing never binds,
    // so the delay-budget property below is exact.
    wp.arrival_rate_per_hour = 1.5;
    wp.seed = 4242;
    jobs_ = new std::vector<Job>(generate_jobs(wp));
  }
  static void TearDownTestSuite() {
    delete sites_;
    delete jobs_;
    sites_ = nullptr;
    jobs_ = nullptr;
  }
  static PolicyConfig config() {
    PolicyConfig cfg;
    cfg.ci_threshold_g_per_kwh = 320;
    cfg.max_delay_hours = 12;
    cfg.user_budget = Mass::kilograms(100);
    return cfg;
  }
  /// Engine + registry-made policy for the parametrized name.
  static ScheduleMetrics run_param(SchedulingEngine& engine,
                                   std::vector<JobOutcome>* outcomes = nullptr) {
    const auto policy = make_policy(GetParam(), config());
    return engine.run(*jobs_, *policy, outcomes, nullptr);
  }
  static std::vector<Site>* sites_;
  static std::vector<Job>* jobs_;
};

std::vector<Site>* PolicySweep::sites_ = nullptr;
std::vector<Job>* PolicySweep::jobs_ = nullptr;

TEST_P(PolicySweep, CompletesEveryJobExactlyOnce) {
  SchedulingEngine sim(*sites_, HourOfYear(month_start_hour(5)));
  std::vector<JobOutcome> outcomes;
  const auto m = run_param(sim, &outcomes);
  EXPECT_EQ(m.jobs_completed, static_cast<int>(jobs_->size()));
  ASSERT_EQ(outcomes.size(), jobs_->size());
  std::vector<int> ids;
  for (const auto& o : outcomes) ids.push_back(o.job_id);
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<int>(i));
  }
}

TEST_P(PolicySweep, EnergyAtLeastItDemandTimesPue) {
  SchedulingEngine sim(*sites_, HourOfYear(month_start_hour(5)));
  const auto m = run_param(sim);
  double it_kwh = 0;
  for (const auto& j : *jobs_) {
    it_kwh += j.it_power.to_kilowatts() * j.duration_hours;
  }
  EXPECT_GE(m.total_energy.to_kwh(), it_kwh * 1.2 - 1e-6);
}

TEST_P(PolicySweep, NoJobStartsBeforeSubmission) {
  SchedulingEngine sim(*sites_, HourOfYear(month_start_hour(5)));
  std::vector<JobOutcome> outcomes;
  run_param(sim, &outcomes);
  for (const auto& o : outcomes) {
    EXPECT_GE(o.wait_hours, -1e-9) << "job " << o.job_id;
  }
}

TEST_P(PolicySweep, DelayPoliciesRespectTheDelayBudget) {
  const std::string p = GetParam();
  // renewable-cap shares the guard: its fairness valve is max_delay_hours.
  if (p != "threshold-delay" && p != "forecast-delay" && p != "renewable-cap") {
    GTEST_SKIP();
  }
  SchedulingEngine sim(*sites_, HourOfYear(month_start_hour(5)));
  std::vector<JobOutcome> outcomes;
  const auto cfg = config();
  run_param(sim, &outcomes);
  for (const auto& o : outcomes) {
    // Delay budget + at most one dispatch tick of slack (capacity is never
    // binding at this load).
    EXPECT_LE(o.wait_hours, cfg.max_delay_hours + 1.5) << "job " << o.job_id;
  }
}

TEST_P(PolicySweep, DeterministicAcrossRuns) {
  SchedulingEngine sim(*sites_, HourOfYear(month_start_hour(5)));
  const auto a = run_param(sim);
  const auto b = run_param(sim);
  EXPECT_DOUBLE_EQ(a.total_carbon.to_grams(), b.total_carbon.to_grams());
  EXPECT_DOUBLE_EQ(a.mean_wait_hours, b.mean_wait_hours);
  EXPECT_EQ(a.remote_dispatches, b.remote_dispatches);
}

TEST_P(PolicySweep, NeverBeatsClairvoyantLowerBound) {
  // Lower bound: every job runs at the year-minimum intensity across all
  // sites, with no transfer cost.
  SchedulingEngine sim(*sites_, HourOfYear(month_start_hour(5)));
  const auto m = run_param(sim);
  double min_ci = 1e18;
  for (const auto& s : *sites_) {
    min_ci = std::min(min_ci, hpcarbon::stats::min(s.trace_utc.values()));
  }
  double bound_g = 0;
  for (const auto& j : *jobs_) {
    bound_g += j.it_power.to_kilowatts() * j.duration_hours * 1.2 * min_ci;
  }
  EXPECT_GE(m.total_carbon.to_grams(), bound_g);
}

TEST_P(PolicySweep, PerJobCarbonSumsToTotal) {
  SchedulingEngine sim(*sites_, HourOfYear(month_start_hour(5)));
  std::vector<JobOutcome> outcomes;
  const auto m = run_param(sim, &outcomes);
  double sum = 0;
  for (const auto& o : outcomes) sum += o.carbon.to_grams();
  EXPECT_NEAR(sum, m.total_carbon.to_grams(),
              1e-6 * m.total_carbon.to_grams());
}

std::vector<std::string> all_policy_names() {
  std::vector<std::string> names;
  for (const auto& desc : registered_policies()) names.push_back(desc.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep, ::testing::ValuesIn(all_policy_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace hpcarbon::sched
