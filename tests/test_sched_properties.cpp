// Property sweeps over all scheduler policies (TEST_P): regardless of
// policy, the simulator must conserve work, account energy consistently,
// stay deterministic, and never beat a clairvoyant lower bound.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/stats.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "sched/simulator.h"
#include "sched/workload_gen.h"

namespace hpcarbon::sched {
namespace {

class PolicySweep : public ::testing::TestWithParam<Policy> {
 protected:
  static void SetUpTestSuite() {
    // Generous capacity: even Poisson bursts never exhaust a site, so
    // policy behaviour (not queueing) is what every property observes.
    const auto traces = grid::generate_traces(grid::fig7_regions());
    sites_ = new std::vector<Site>{make_site("ERCOT", traces[2], 64),
                                   make_site("ESO", traces[0], 64),
                                   make_site("CISO", traces[1], 64)};
    WorkloadParams wp;
    wp.horizon_hours = 24 * 10;
    // Offered load ~8.4 concurrent vs 12 home slots: queueing never binds,
    // so the delay-budget property below is exact.
    wp.arrival_rate_per_hour = 1.5;
    wp.seed = 4242;
    jobs_ = new std::vector<Job>(generate_jobs(wp));
  }
  static void TearDownTestSuite() {
    delete sites_;
    delete jobs_;
    sites_ = nullptr;
    jobs_ = nullptr;
  }
  static PolicyConfig config(Policy p) {
    PolicyConfig cfg;
    cfg.policy = p;
    cfg.ci_threshold_g_per_kwh = 320;
    cfg.max_delay_hours = 12;
    cfg.user_budget = Mass::kilograms(100);
    return cfg;
  }
  static std::vector<Site>* sites_;
  static std::vector<Job>* jobs_;
};

std::vector<Site>* PolicySweep::sites_ = nullptr;
std::vector<Job>* PolicySweep::jobs_ = nullptr;

TEST_P(PolicySweep, CompletesEveryJobExactlyOnce) {
  SchedulerSimulator sim(*sites_, HourOfYear(month_start_hour(5)));
  std::vector<JobOutcome> outcomes;
  const auto m = sim.run(*jobs_, config(GetParam()), &outcomes, nullptr);
  EXPECT_EQ(m.jobs_completed, static_cast<int>(jobs_->size()));
  ASSERT_EQ(outcomes.size(), jobs_->size());
  std::vector<int> ids;
  for (const auto& o : outcomes) ids.push_back(o.job_id);
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<int>(i));
  }
}

TEST_P(PolicySweep, EnergyAtLeastItDemandTimesPue) {
  SchedulerSimulator sim(*sites_, HourOfYear(month_start_hour(5)));
  const auto m = sim.run(*jobs_, config(GetParam()));
  double it_kwh = 0;
  for (const auto& j : *jobs_) {
    it_kwh += j.it_power.to_kilowatts() * j.duration_hours;
  }
  EXPECT_GE(m.total_energy.to_kwh(), it_kwh * 1.2 - 1e-6);
}

TEST_P(PolicySweep, NoJobStartsBeforeSubmission) {
  SchedulerSimulator sim(*sites_, HourOfYear(month_start_hour(5)));
  std::vector<JobOutcome> outcomes;
  sim.run(*jobs_, config(GetParam()), &outcomes, nullptr);
  for (const auto& o : outcomes) {
    EXPECT_GE(o.wait_hours, -1e-9) << "job " << o.job_id;
  }
}

TEST_P(PolicySweep, DelayPoliciesRespectTheDelayBudget) {
  const Policy p = GetParam();
  if (p != Policy::kThresholdDelay && p != Policy::kForecastDelay) {
    GTEST_SKIP();
  }
  SchedulerSimulator sim(*sites_, HourOfYear(month_start_hour(5)));
  std::vector<JobOutcome> outcomes;
  auto cfg = config(p);
  sim.run(*jobs_, cfg, &outcomes, nullptr);
  for (const auto& o : outcomes) {
    // Delay budget + at most one dispatch tick of slack (capacity is never
    // binding at this load).
    EXPECT_LE(o.wait_hours, cfg.max_delay_hours + 1.5) << "job " << o.job_id;
  }
}

TEST_P(PolicySweep, DeterministicAcrossRuns) {
  SchedulerSimulator sim(*sites_, HourOfYear(month_start_hour(5)));
  const auto a = sim.run(*jobs_, config(GetParam()));
  const auto b = sim.run(*jobs_, config(GetParam()));
  EXPECT_DOUBLE_EQ(a.total_carbon.to_grams(), b.total_carbon.to_grams());
  EXPECT_DOUBLE_EQ(a.mean_wait_hours, b.mean_wait_hours);
  EXPECT_EQ(a.remote_dispatches, b.remote_dispatches);
}

TEST_P(PolicySweep, NeverBeatsClairvoyantLowerBound) {
  // Lower bound: every job runs at the year-minimum intensity across all
  // sites, with no transfer cost.
  SchedulerSimulator sim(*sites_, HourOfYear(month_start_hour(5)));
  const auto m = sim.run(*jobs_, config(GetParam()));
  double min_ci = 1e18;
  for (const auto& s : *sites_) {
    min_ci = std::min(min_ci, hpcarbon::stats::min(s.trace_utc.values()));
  }
  double bound_g = 0;
  for (const auto& j : *jobs_) {
    bound_g += j.it_power.to_kilowatts() * j.duration_hours * 1.2 * min_ci;
  }
  EXPECT_GE(m.total_carbon.to_grams(), bound_g);
}

TEST_P(PolicySweep, PerJobCarbonSumsToTotal) {
  SchedulerSimulator sim(*sites_, HourOfYear(month_start_hour(5)));
  std::vector<JobOutcome> outcomes;
  const auto m = sim.run(*jobs_, config(GetParam()), &outcomes, nullptr);
  double sum = 0;
  for (const auto& o : outcomes) sum += o.carbon.to_grams();
  EXPECT_NEAR(sum, m.total_carbon.to_grams(),
              1e-6 * m.total_carbon.to_grams());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(Policy::kFcfsLocal, Policy::kGreedyLowestCi,
                      Policy::kThresholdDelay, Policy::kBudgetAware,
                      Policy::kForecastDelay, Policy::kNetBenefit),
    [](const ::testing::TestParamInfo<Policy>& param_info) {
      std::string name = to_string(param_info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace hpcarbon::sched
