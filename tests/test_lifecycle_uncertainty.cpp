#include "lifecycle/uncertainty.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "grid/presets.h"
#include "grid/simulator.h"
#include "hw/node.h"

namespace hpcarbon::lifecycle {
namespace {

LifecycleBands zero_bands() {
  LifecycleBands b;
  b.embodied.fab_per_area = 0;
  b.embodied.yield = 0;
  b.embodied.epc = 0;
  b.embodied.packaging = 0;
  b.grid_ci = 0;
  return b;
}

UpgradeScenario v100_to_a100() {
  UpgradeScenario s;
  s.old_node = hw::v100_node();
  s.new_node = hw::a100_node();
  s.suite = workload::Suite::kNlp;
  s.intensity = CarbonIntensity::grams_per_kwh(200);
  return s;
}

TEST(LifecycleBandsValidation, RejectsBadBands) {
  LifecycleBands negative;
  negative.grid_ci = -0.1;
  const auto node = hw::v100_node();
  EXPECT_THROW(node_lifetime_footprint_distribution(
                   node, workload::Suite::kNlp, 0.4, 3.0,
                   CarbonIntensity::grams_per_kwh(200), op::PueModel(1.2),
                   negative, {64, 1, nullptr}),
               Error);
  LifecycleBands too_wide;
  too_wide.grid_ci = 1.0;
  EXPECT_THROW(validate(too_wide), Error);
}

TEST(LifecycleBandsValidation, YieldBandEscapingClampRejectedAtNodeSeam) {
  // The part-aware yield check must also guard the hw::sample_node_embodied
  // path every lifecycle distribution samples through, not just
  // embodied::propagate.
  LifecycleBands wide;
  wide.embodied.yield = 0.40;  // 0.875 +/- 0.40 escapes the [0.5, 1.0] clamp
  Rng rng(1);
  EXPECT_THROW(hw::sample_node_embodied(hw::v100_node(),
                                        hw::EmbodiedScope::kFullNode,
                                        wide.embodied, rng),
               Error);
  const auto s = v100_to_a100();
  const GridTrajectory traj(s.intensity, 0.03);
  EXPECT_THROW(
      breakeven_distribution(s, traj, 15.0, wide, {16, 1, nullptr}), Error);
}

TEST(FootprintDistributionTest, ZeroBandsCollapseToPointEstimate) {
  const auto node = hw::v100_node();
  const auto intensity = CarbonIntensity::grams_per_kwh(300);
  const TotalFootprint point = node_lifetime_footprint(
      node, workload::Suite::kNlp, 0.4, 5.0, intensity, op::PueModel(1.2));
  const auto d = node_lifetime_footprint_distribution(
      node, workload::Suite::kNlp, 0.4, 5.0, intensity, op::PueModel(1.2),
      zero_bands(), {128, 9, nullptr});
  // Per-sample arithmetic mirrors (but does not share) the point-estimate
  // code path, so agreement is to rounding, not bit-exact.
  EXPECT_NEAR(d.embodied.mean() / point.embodied.to_grams(), 1.0, 1e-9);
  EXPECT_NEAR(d.operational.mean() / point.operational.to_grams(), 1.0, 1e-12);
  EXPECT_NEAR(d.total.mean() / point.total().to_grams(), 1.0, 1e-9);
  EXPECT_LT(d.total.stddev(), d.total.mean() * 1e-9);
}

TEST(FootprintDistributionTest, TotalIsPerSampleSumAndTraceOverloadWorks) {
  const auto traces = grid::generate_traces({grid::ciso()});
  const auto d = node_lifetime_footprint_distribution(
      hw::a100_node(), workload::Suite::kNlp, 0.4, 4.0, traces[0],
      HourOfYear(0), op::PueModel(1.2), LifecycleBands{}, {512, 4, nullptr});
  ASSERT_EQ(d.total.samples(), 512);
  // total = embodied + operational holds in the mean (same draws; only
  // summation order separates the two sides).
  EXPECT_NEAR(d.total.mean() / (d.embodied.mean() + d.operational.mean()),
              1.0, 1e-12);
  // And the spread exceeds each component's (independent sources add).
  EXPECT_GE(d.total.stddev(), d.operational.stddev());
  EXPECT_GT(d.operational.mean(), 0.0);
}

TEST(BreakevenDistributionTest, ZeroBandsMatchDeterministicBreakeven) {
  const auto s = v100_to_a100();
  const GridTrajectory traj(s.intensity, 0.03);
  const auto det = breakeven_years(s, traj, 15.0);
  ASSERT_TRUE(det.has_value());
  const auto d = breakeven_distribution(s, traj, 15.0, zero_bands(),
                                        {64, 2, nullptr});
  EXPECT_EQ(d.samples, 64);
  EXPECT_DOUBLE_EQ(d.payback_probability, 1.0);
  EXPECT_NEAR(d.years.p50(), *det, 1e-6);
  EXPECT_NEAR(d.years.stddev(), 0.0, 1e-9);
}

TEST(BreakevenDistributionTest, NeverPayingBackGivesEmptyYears) {
  // Upgrading to an identical node buys no energy savings: embodied can
  // never amortize.
  UpgradeScenario s;
  s.old_node = hw::v100_node();
  s.new_node = hw::v100_node();
  const GridTrajectory traj(CarbonIntensity::grams_per_kwh(200), 0.0);
  const auto d =
      breakeven_distribution(s, traj, 20.0, LifecycleBands{}, {64, 3, nullptr});
  EXPECT_DOUBLE_EQ(d.payback_probability, 0.0);
  EXPECT_TRUE(d.years.empty());
  EXPECT_EQ(d.samples, 64);
}

TEST(SavingsDistributionTest, ZeroBandsMatchScenarioSavings) {
  const auto s = v100_to_a100();
  const GridTrajectory traj(s.intensity, 0.05);
  const double det = savings_percent(s, traj, 4.0);
  const auto d =
      savings_distribution(s, traj, 4.0, zero_bands(), {64, 5, nullptr});
  EXPECT_NEAR(d.mean(), det, 1e-6);
  EXPECT_NEAR(d.stddev(), 0.0, 1e-9);
}

TEST(FleetSavingsDistributionTest, ZeroBandsMatchPointAndSchedulesDiffer) {
  const auto s = v100_to_a100();
  const GridTrajectory traj(s.intensity, 0.03);
  const auto fleet = all_at_once(s, 100);
  const double det = fleet_savings_percent(fleet, traj, 6.0);
  const auto d = fleet_savings_distribution(fleet, traj, 6.0, zero_bands(),
                                            {64, 6, nullptr});
  EXPECT_NEAR(d.mean(), det, 1e-6);

  // Under uncertainty the phased plan still trails all-at-once at a fixed
  // horizon (it defers the operational savings), and the distribution is
  // deterministic for a fixed plan.
  const auto all = fleet_savings_distribution(fleet, traj, 6.0,
                                              LifecycleBands{}, {256, 7, nullptr});
  const auto phased4 = fleet_savings_distribution(
      phased(s, 100, 4), traj, 6.0, LifecycleBands{}, {256, 7, nullptr});
  EXPECT_GT(all.p50(), phased4.p50());
  const auto again = fleet_savings_distribution(
      fleet, traj, 6.0, LifecycleBands{}, {256, 7, nullptr});
  EXPECT_EQ(all.sorted(), again.sorted());
}

TEST(SampleNodeEmbodied, ZeroBandsMatchNodeEmbodied) {
  Rng rng(1);
  const auto node = hw::a100_node();
  const Mass point = hw::node_embodied(node, hw::EmbodiedScope::kFullNode);
  const Mass sampled = hw::sample_node_embodied(
      node, hw::EmbodiedScope::kFullNode, zero_bands().embodied, rng);
  EXPECT_NEAR(sampled.to_grams() / point.to_grams(), 1.0, 1e-9);

  // Compute-only scope excludes DRAM/SSD draws.
  const Mass compute = hw::sample_node_embodied(
      node, hw::EmbodiedScope::kComputeOnly, zero_bands().embodied, rng);
  EXPECT_LT(compute.to_grams(), sampled.to_grams());
}

}  // namespace
}  // namespace hpcarbon::lifecycle
